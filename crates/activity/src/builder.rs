//! Building activity tables from unsorted tuples.

use crate::error::ActivityError;
use crate::schema::Schema;
use crate::table::ActivityTable;
use crate::tuple::Tuple;
use crate::value::Value;

/// Accumulates tuples in any order, then sorts by the primary key and
/// validates uniqueness on [`TableBuilder::finish`].
pub struct TableBuilder {
    schema: Schema,
    rows: Vec<Tuple>,
}

impl TableBuilder {
    /// Start building a table with the given schema.
    pub fn new(schema: Schema) -> Self {
        TableBuilder { schema, rows: Vec::new() }
    }

    /// Start building with capacity for `n` rows.
    pub fn with_capacity(schema: Schema, n: usize) -> Self {
        TableBuilder { schema, rows: Vec::with_capacity(n) }
    }

    /// Append one tuple, checking arity and types eagerly.
    pub fn push(&mut self, values: Vec<Value>) -> Result<(), ActivityError> {
        if values.len() != self.schema.arity() {
            return Err(ActivityError::ArityMismatch {
                expected: self.schema.arity(),
                got: values.len(),
            });
        }
        for (idx, attr) in self.schema.attributes().iter().enumerate() {
            match values[idx].value_type() {
                Some(t) if t == attr.vtype => {}
                _ => {
                    return Err(ActivityError::TypeMismatch {
                        attribute: attr.name.clone(),
                        expected: attr.vtype.name(),
                        got: values[idx].to_string(),
                    })
                }
            }
        }
        self.rows.push(Tuple::new(values));
        Ok(())
    }

    /// Number of rows buffered so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows are buffered.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Sort by `(Au, At, Ae)` and build the table, rejecting duplicates.
    pub fn finish(mut self) -> Result<ActivityTable, ActivityError> {
        let (u, t, a) = (self.schema.user_idx(), self.schema.time_idx(), self.schema.action_idx());
        self.rows.sort_unstable_by(|x, y| {
            let kx = (x.get(u).as_str(), x.get(t).as_int(), x.get(a).as_str());
            let ky = (y.get(u).as_str(), y.get(t).as_int(), y.get(a).as_str());
            kx.cmp(&ky)
        });
        ActivityTable::from_sorted_rows(self.schema, self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, AttributeRole};
    use crate::value::ValueType;

    fn tiny_schema() -> Schema {
        Schema::new(vec![
            Attribute::new("u", ValueType::Str, AttributeRole::User),
            Attribute::new("t", ValueType::Int, AttributeRole::Time),
            Attribute::new("a", ValueType::Str, AttributeRole::Action),
        ])
        .unwrap()
    }

    #[test]
    fn sorts_on_finish() {
        let mut b = TableBuilder::new(tiny_schema());
        b.push(vec![Value::str("b"), Value::int(2), Value::str("x")]).unwrap();
        b.push(vec![Value::str("a"), Value::int(9), Value::str("x")]).unwrap();
        b.push(vec![Value::str("a"), Value::int(1), Value::str("x")]).unwrap();
        let t = b.finish().unwrap();
        assert_eq!(t.key(0), ("a", 1, "x"));
        assert_eq!(t.key(1), ("a", 9, "x"));
        assert_eq!(t.key(2), ("b", 2, "x"));
    }

    #[test]
    fn rejects_bad_arity_eagerly() {
        let mut b = TableBuilder::new(tiny_schema());
        let err = b.push(vec![Value::str("a")]).unwrap_err();
        assert!(matches!(err, ActivityError::ArityMismatch { expected: 3, got: 1 }));
    }

    #[test]
    fn rejects_bad_type_eagerly() {
        let mut b = TableBuilder::new(tiny_schema());
        let err = b.push(vec![Value::int(1), Value::int(2), Value::str("x")]).unwrap_err();
        assert!(matches!(err, ActivityError::TypeMismatch { .. }));
    }

    #[test]
    fn rejects_duplicates_on_finish() {
        let mut b = TableBuilder::new(tiny_schema());
        b.push(vec![Value::str("a"), Value::int(1), Value::str("x")]).unwrap();
        b.push(vec![Value::str("a"), Value::int(1), Value::str("x")]).unwrap();
        assert!(matches!(b.finish().unwrap_err(), ActivityError::DuplicateKey { .. }));
    }

    #[test]
    fn empty_table_is_fine() {
        let t = TableBuilder::new(tiny_schema()).finish().unwrap();
        assert!(t.is_empty());
        assert_eq!(t.num_users(), 0);
    }
}
