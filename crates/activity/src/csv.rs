//! Minimal CSV import/export for activity tables.
//!
//! The dataset in the paper arrives as a 3.6 GB raw CSV file; this module
//! provides the equivalent ingest path for synthetic or user-provided data.
//! Only the subset of CSV needed for activity data is implemented: comma
//! separation, optional double-quote quoting with `""` escapes, and a header
//! row matching the schema's attribute names. Timestamps may be given either
//! as raw integer seconds or in the `YYYY/MM/DD:HHMM` paper format.

use crate::builder::TableBuilder;
use crate::error::ActivityError;
use crate::schema::Schema;
use crate::table::ActivityTable;
use crate::time::Timestamp;
use crate::value::{Value, ValueType};
use std::io::{BufRead, BufReader, Read, Write};

/// Parse one CSV record into fields. Handles quoted fields with embedded
/// commas and doubled quotes.
fn split_record(line: &str, line_no: usize) -> Result<Vec<String>, ActivityError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    loop {
        match chars.peek() {
            None => {
                fields.push(std::mem::take(&mut cur));
                return Ok(fields);
            }
            Some('"') => {
                chars.next();
                loop {
                    match chars.next() {
                        Some('"') => {
                            if chars.peek() == Some(&'"') {
                                chars.next();
                                cur.push('"');
                            } else {
                                break;
                            }
                        }
                        Some(c) => cur.push(c),
                        None => {
                            return Err(ActivityError::BadCsv {
                                line: line_no,
                                message: "unterminated quoted field".into(),
                            })
                        }
                    }
                }
            }
            Some(',') => {
                chars.next();
                fields.push(std::mem::take(&mut cur));
            }
            Some(_) => cur.push(chars.next().expect("peeked")),
        }
    }
}

/// Quote a field if necessary.
fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Read an activity table from CSV with a header row.
pub fn read_csv<R: Read>(schema: Schema, reader: R) -> Result<ActivityTable, ActivityError> {
    let buf = BufReader::new(reader);
    let mut builder = TableBuilder::new(schema.clone());
    let mut lines = buf.lines().enumerate();
    let header = match lines.next() {
        Some((_, line)) => split_record(&line?, 1)?,
        None => return builder.finish(),
    };
    let expected: Vec<String> = schema.names().iter().map(|s| s.to_string()).collect();
    if header != expected {
        return Err(ActivityError::BadCsv {
            line: 1,
            message: format!("header {header:?} does not match schema {expected:?}"),
        });
    }
    for (i, line) in lines {
        let line_no = i + 1;
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let fields = split_record(&line, line_no)?;
        if fields.len() != schema.arity() {
            return Err(ActivityError::BadCsv {
                line: line_no,
                message: format!("expected {} fields, got {}", schema.arity(), fields.len()),
            });
        }
        let mut values = Vec::with_capacity(fields.len());
        for (idx, field) in fields.into_iter().enumerate() {
            let attr = schema.attribute(idx);
            let v = match attr.vtype {
                ValueType::Str => Value::from(field),
                ValueType::Int => {
                    if idx == schema.time_idx() {
                        match field.parse::<i64>() {
                            Ok(v) => Value::int(v),
                            Err(_) => Value::int(Timestamp::parse(&field)?.secs()),
                        }
                    } else {
                        Value::int(field.parse::<i64>().map_err(|_| ActivityError::BadCsv {
                            line: line_no,
                            message: format!("bad integer {field:?} for {}", attr.name),
                        })?)
                    }
                }
            };
            values.push(v);
        }
        builder.push(values)?;
    }
    builder.finish()
}

/// Write an activity table as CSV with a header row. Timestamps are written
/// as raw integer seconds for lossless round-tripping.
pub fn write_csv<W: Write>(table: &ActivityTable, writer: &mut W) -> Result<(), ActivityError> {
    let names = table.schema().names();
    writeln!(writer, "{}", names.join(","))?;
    for row in table.rows() {
        let mut first = true;
        for v in row.values() {
            if !first {
                write!(writer, ",")?;
            }
            first = false;
            write!(writer, "{}", quote(&v.to_string()))?;
        }
        writeln!(writer)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GeneratorConfig};

    #[test]
    fn roundtrip_generated_table() {
        let table = generate(&GeneratorConfig::small());
        let mut buf = Vec::new();
        write_csv(&table, &mut buf).unwrap();
        let back = read_csv(table.schema().clone(), &buf[..]).unwrap();
        assert_eq!(back.num_rows(), table.num_rows());
        assert_eq!(back.rows(), table.rows());
    }

    #[test]
    fn parses_paper_timestamps() {
        let schema = Schema::game_actions();
        let csv = "player,time,action,country,city,role,session,gold\n\
                   001,2013/05/19:1000,launch,Australia,Sydney,dwarf,10,0\n";
        let t = read_csv(schema, csv.as_bytes()).unwrap();
        assert_eq!(t.num_rows(), 1);
        let time = t.rows()[0].get(1).as_int().unwrap();
        assert_eq!(Timestamp(time).render(), "2013/05/19:1000");
    }

    #[test]
    fn quoted_fields() {
        let schema = Schema::game_actions();
        let csv = "player,time,action,country,city,role,session,gold\n\
                   001,100,launch,\"Korea, Republic of\",\"Se\"\"oul\",dwarf,1,0\n";
        let t = read_csv(schema, csv.as_bytes()).unwrap();
        assert_eq!(t.rows()[0].get(3).as_str(), Some("Korea, Republic of"));
        assert_eq!(t.rows()[0].get(4).as_str(), Some("Se\"oul"));
    }

    #[test]
    fn rejects_wrong_header() {
        let schema = Schema::game_actions();
        let csv = "a,b\n";
        assert!(matches!(
            read_csv(schema, csv.as_bytes()).unwrap_err(),
            ActivityError::BadCsv { line: 1, .. }
        ));
    }

    #[test]
    fn rejects_bad_field_count() {
        let schema = Schema::game_actions();
        let csv = "player,time,action,country,city,role,session,gold\n001,100\n";
        assert!(matches!(
            read_csv(schema, csv.as_bytes()).unwrap_err(),
            ActivityError::BadCsv { line: 2, .. }
        ));
    }

    #[test]
    fn empty_input_gives_empty_table() {
        let schema = Schema::game_actions();
        let t = read_csv(schema, "".as_bytes()).unwrap();
        assert!(t.is_empty());
    }
}
