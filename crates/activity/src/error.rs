//! Error type for the activity data model.

use std::fmt;

/// Errors raised while constructing, parsing, or validating activity tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActivityError {
    /// A tuple violated the `(Au, At, Ae)` primary-key constraint.
    DuplicateKey {
        /// The offending user id.
        user: String,
        /// The offending timestamp (seconds).
        time: i64,
        /// The offending action.
        action: String,
    },
    /// A tuple had the wrong number of values for the schema.
    ArityMismatch {
        /// Number of attributes in the schema.
        expected: usize,
        /// Number of values in the tuple.
        got: usize,
    },
    /// A value's type did not match the attribute's declared type.
    TypeMismatch {
        /// Attribute name.
        attribute: String,
        /// Declared type name.
        expected: &'static str,
        /// Actual value rendered as text.
        got: String,
    },
    /// The schema is missing one of the three required roles
    /// (user, time, action) or declares one of them twice.
    InvalidSchema(String),
    /// Referenced an attribute that does not exist.
    UnknownAttribute(String),
    /// Failed to parse a timestamp.
    BadTimestamp(String),
    /// Failed to parse CSV input.
    BadCsv {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Wrapper around I/O failures.
    Io(String),
}

impl fmt::Display for ActivityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActivityError::DuplicateKey { user, time, action } => write!(
                f,
                "primary-key violation: user {user:?} performed {action:?} twice at t={time}"
            ),
            ActivityError::ArityMismatch { expected, got } => {
                write!(f, "tuple arity mismatch: schema has {expected} attributes, tuple has {got}")
            }
            ActivityError::TypeMismatch { attribute, expected, got } => {
                write!(f, "attribute {attribute:?} expects {expected}, got value {got}")
            }
            ActivityError::InvalidSchema(msg) => write!(f, "invalid schema: {msg}"),
            ActivityError::UnknownAttribute(name) => write!(f, "unknown attribute {name:?}"),
            ActivityError::BadTimestamp(s) => write!(f, "cannot parse timestamp {s:?}"),
            ActivityError::BadCsv { line, message } => {
                write!(f, "csv error on line {line}: {message}")
            }
            ActivityError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for ActivityError {}

impl From<std::io::Error> for ActivityError {
    fn from(e: std::io::Error) -> Self {
        ActivityError::Io(e.to_string())
    }
}
