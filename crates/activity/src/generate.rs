//! Deterministic synthetic generator for the paper's mobile-game dataset.
//!
//! The evaluation dataset of the paper (§5.1) is proprietary: 30 M activity
//! tuples from 57,077 users of a real mobile game, spanning 2013-05-19 to
//! 2013-06-26, with 16 actions, country/city/role dimensions, and
//! session-length/gold measures. This module produces a synthetic equivalent
//! preserving the properties the experiments exercise:
//!
//! * every user's **first action is `launch`** (noted in §5.3.2);
//! * births are **skewed towards the early days** of the observation window,
//!   giving a concave birth CDF like Figure 8;
//! * per-user activity volume is heavy-tailed;
//! * the **aging effect**: per-user shopping spend decays with age;
//! * the **social-change effect**: later cohorts spend/retain more (the
//!   Table 3 pattern of rows improving down the page);
//! * the paper's **scale-factor semantics**: scale X replicates the user
//!   population X times under fresh user ids ([`scale_table`]).
//!
//! Generation is fully deterministic for a given [`GeneratorConfig`].

use crate::builder::TableBuilder;
use crate::schema::Schema;
use crate::table::ActivityTable;
use crate::time::{Timestamp, SECONDS_PER_DAY};
use crate::value::Value;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashSet;
use std::sync::Arc;

/// The 16 actions played in the paper's game. `launch` is always a user's
/// first action; `launch`, `shop`, and `achievement` are the birth actions
/// used in the benchmark queries.
pub const ACTIONS: [&str; 16] = [
    "launch",
    "shop",
    "achievement",
    "fight",
    "quest",
    "chat",
    "trade",
    "upgrade",
    "craft",
    "explore",
    "pvp",
    "daily",
    "gift",
    "guild",
    "tutorial",
    "logout",
];

/// Relative frequencies for non-launch actions during a session.
const ACTION_WEIGHTS: [(&str, u32); 15] = [
    ("fight", 20),
    ("quest", 15),
    ("shop", 12),
    ("chat", 10),
    ("explore", 8),
    ("daily", 8),
    ("pvp", 6),
    ("upgrade", 5),
    ("logout", 5),
    ("craft", 4),
    ("trade", 3),
    ("achievement", 3),
    ("guild", 2),
    ("gift", 2),
    ("tutorial", 1),
];

/// Countries with skewed popularity and three cities each.
const COUNTRIES: [(&str, u32, [&str; 3]); 12] = [
    ("China", 24, ["Beijing", "Shanghai", "Shenzhen"]),
    ("United States", 20, ["Chicago", "New York", "Austin"]),
    ("Australia", 12, ["Sydney", "Melbourne", "Perth"]),
    ("Japan", 9, ["Tokyo", "Osaka", "Kyoto"]),
    ("Germany", 7, ["Berlin", "Munich", "Hamburg"]),
    ("Brazil", 6, ["Sao Paulo", "Rio", "Recife"]),
    ("India", 6, ["Mumbai", "Delhi", "Pune"]),
    ("United Kingdom", 5, ["London", "Leeds", "Bristol"]),
    ("France", 4, ["Paris", "Lyon", "Nice"]),
    ("Singapore", 3, ["Bedok", "Jurong", "Tampines"]),
    ("Canada", 2, ["Toronto", "Vancouver", "Montreal"]),
    ("Korea", 2, ["Seoul", "Busan", "Incheon"]),
];

/// Player roles; the role at birth drives the `role = "dwarf"` birth
/// predicates of Q4.
const ROLES: [&str; 8] =
    ["dwarf", "wizard", "assassin", "bandit", "knight", "archer", "mage", "priest"];

/// How user births are distributed across the observation window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalModel {
    /// Births follow a truncated exponential skewed towards the early days
    /// (the paper's Figure 8 shape). Every user can stay active until the
    /// end of the window, so chunk time-bounds all overlap.
    EarlySkew,
    /// Cohort-clustered arrival: the birth day ramps deterministically with
    /// the user id across the window and each user stays active for at
    /// most `active_days` days after birth. Because user ids order the
    /// table and chunking follows user order, chunks far apart in user
    /// space get **disjoint time bounds** — making §4.2 time-range chunk
    /// pruning visible on synthetic data (the paper's pruning wins come
    /// from exactly this kind of arrival clustering in real logs).
    CohortClustered {
        /// Maximum days of activity after a user's birth.
        active_days: u32,
    },
}

/// Configuration for the synthetic workload.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of distinct users at scale 1.
    pub num_users: usize,
    /// Observation window in days (the paper's window is 38 days).
    pub num_days: u32,
    /// First day of the window (paper: 2013-05-19).
    pub start: Timestamp,
    /// RNG seed; identical configs generate identical tables.
    pub seed: u64,
    /// Mean of the exponential birth-day distribution, in days. Smaller
    /// values skew births earlier. ([`ArrivalModel::EarlySkew`] only.)
    pub birth_mean_days: f64,
    /// Retention half-life in days: daily activity decays as
    /// `exp(-age/retention)`.
    pub retention_days: f64,
    /// Expected number of activities in a user's *first* active day.
    pub base_intensity: f64,
    /// How births are placed across the window.
    pub arrival: ArrivalModel,
    /// Share of the final table's rows emitted as a single "whale" user's
    /// block (0 = none). Because chunking never splits a user, a 0.5 share
    /// forces one chunk to hold about half of all rows — the skew fixture
    /// for scheduler-balance experiments ([`GeneratorConfig::skewed`]).
    pub whale_row_share: f64,
}

impl GeneratorConfig {
    /// Default configuration: roughly 100 activities per user, matching the
    /// paper's ~525 tuples/user shape at laptop scale.
    pub fn new(num_users: usize) -> Self {
        GeneratorConfig {
            num_users,
            num_days: 38,
            start: Timestamp::from_ymd_hm(2013, 5, 19, 0, 0),
            seed: 0xC0_04_A7_A0,
            birth_mean_days: 9.0,
            retention_days: 9.0,
            base_intensity: 10.0,
            arrival: ArrivalModel::EarlySkew,
            whale_row_share: 0.0,
        }
    }

    /// A tiny deterministic dataset for unit tests (fast to build).
    pub fn small() -> Self {
        GeneratorConfig::new(60)
    }

    /// The default benchmarking base dataset (scale factor 1).
    pub fn benchmark_base() -> Self {
        GeneratorConfig::new(1_000)
    }

    /// Cohort-clustered arrival: births ramp over the window with the user
    /// id and each user is active for at most 5 days, so chunk time-bounds
    /// are (mostly) disjoint and time-range pruning fires.
    pub fn cohort_clustered(num_users: usize) -> Self {
        GeneratorConfig {
            arrival: ArrivalModel::CohortClustered { active_days: 5 },
            ..GeneratorConfig::new(num_users)
        }
    }

    /// Heavily skewed dataset: `num_users` ordinary users plus one "whale"
    /// user holding ~50% of all rows. Since chunking never splits a user,
    /// one chunk ends up with about half the table — the worst case for
    /// static per-chunk work division and the fixture the
    /// `morsel_scheduler` bench uses to measure work-stealing balance.
    pub fn skewed(num_users: usize) -> Self {
        GeneratorConfig { whale_row_share: 0.5, ..GeneratorConfig::new(num_users) }
    }
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig::new(1_000)
    }
}

fn pick_weighted<'a, T>(rng: &mut StdRng, items: &'a [(T, u32)]) -> &'a T {
    let total: u32 = items.iter().map(|(_, w)| *w).sum();
    let mut x = rng.random_range(0..total);
    for (item, w) in items {
        if x < *w {
            return item;
        }
        x -= *w;
    }
    &items[items.len() - 1].0
}

/// Generate the scale-1 activity table for a configuration.
pub fn generate(config: &GeneratorConfig) -> ActivityTable {
    let schema = Schema::game_actions();
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Rough sizing: intensity decays geometrically over the retention window.
    let est_per_user = (config.base_intensity * config.retention_days) as usize + 4;
    let mut builder = TableBuilder::with_capacity(schema, config.num_users * est_per_user);

    let country_items: Vec<((usize, &str), u32)> =
        COUNTRIES.iter().enumerate().map(|(i, (name, w, _))| ((i, *name), *w)).collect();
    let action_arcs: Vec<(Arc<str>, u32)> =
        ACTION_WEIGHTS.iter().map(|(a, w)| (Arc::<str>::from(*a), *w)).collect();
    let launch: Arc<str> = Arc::from("launch");

    for uid in 0..config.num_users {
        let user: Arc<str> = Arc::from(format!("{uid:07}"));
        emit_user(
            &mut rng,
            config,
            uid,
            &mut builder,
            &user,
            &country_items,
            &action_arcs,
            &launch,
        );
    }
    if config.whale_row_share > 0.0 {
        emit_whale(&mut rng, config, &mut builder, &action_arcs, &launch);
    }
    builder.finish().expect("generator emits unique keys")
}

/// Emit the single "whale" user whose block holds `whale_row_share` of the
/// final table's rows (sized against what the ordinary users produced).
/// Timestamps are strictly increasing, so the primary key stays unique and
/// the block is time-ordered; the first tuple is a `launch`, preserving the
/// generator's first-action invariant.
fn emit_whale(
    rng: &mut StdRng,
    config: &GeneratorConfig,
    builder: &mut TableBuilder,
    action_arcs: &[(Arc<str>, u32)],
    launch: &Arc<str>,
) {
    let share = config.whale_row_share.clamp(0.0, 0.9);
    let normal_rows = builder.len();
    let n_rows = ((normal_rows as f64) * share / (1.0 - share)).round() as usize;
    if n_rows == 0 {
        return;
    }
    // finish() sorts users lexicographically and ids are zero-padded, so
    // this id drops the whale's block near the middle of the table.
    let user: Arc<str> = Arc::from(format!("{:07}-whale", config.num_users / 2));
    let country: Arc<str> = Arc::from("China");
    let city: Arc<str> = Arc::from("Beijing");
    let role: Arc<str> = Arc::from(ROLES[rng.random_range(0..ROLES.len())]);
    let window = config.num_days as i64 * SECONDS_PER_DAY;
    // One tuple every `stride` seconds fills the window; a dense whale
    // (more rows than window seconds) packs one per second past its end.
    let birth_secs = 3600i64;
    let stride = ((window - 2 * birth_secs) / n_rows as i64).max(1);
    let mut push = |secs: i64, action: &Arc<str>, gold: i64, session: i64| {
        builder
            .push(vec![
                Value::Str(user.clone()),
                Value::int(config.start.secs() + secs),
                Value::Str(action.clone()),
                Value::Str(country.clone()),
                Value::Str(city.clone()),
                Value::Str(role.clone()),
                Value::int(session),
                Value::int(gold),
            ])
            .expect("whale tuples are well-typed");
    };
    push(birth_secs, launch, 0, rng.random_range(1..30));
    for i in 1..n_rows {
        let secs = birth_secs + i as i64 * stride;
        let action = pick_weighted(rng, action_arcs);
        let gold = if action.as_ref() == "shop" { rng.random_range(1..80) } else { 0 };
        push(secs, action, gold, rng.random_range(1..120));
    }
}

#[allow(clippy::too_many_arguments)]
fn emit_user(
    rng: &mut StdRng,
    config: &GeneratorConfig,
    uid: usize,
    builder: &mut TableBuilder,
    user: &Arc<str>,
    country_items: &[((usize, &str), u32)],
    action_arcs: &[(Arc<str>, u32)],
    launch: &Arc<str>,
) {
    let (country_idx, country) = *pick_weighted(rng, country_items);
    let country: Arc<str> = Arc::from(country);
    let city: Arc<str> = Arc::from(COUNTRIES[country_idx].2[rng.random_range(0..3usize)]);
    let mut role: Arc<str> = Arc::from(ROLES[rng.random_range(0..ROLES.len())]);

    let birth_day = match config.arrival {
        // Truncated exponential over the window -> concave CDF.
        ArrivalModel::EarlySkew => loop {
            let x = -config.birth_mean_days * (1.0 - rng.random::<f64>()).ln();
            if x < config.num_days as f64 {
                break x as u32;
            }
        },
        // Deterministic ramp: birth day is non-decreasing in the user id,
        // so user-ordered chunks cluster births in time.
        ArrivalModel::CohortClustered { .. } => {
            ((uid as u64 * config.num_days as u64 / config.num_users.max(1) as u64) as u32)
                .min(config.num_days - 1)
        }
    };
    let birth_week = birth_day / 7;

    // Heavy-tailed personal intensity multiplier in [0.2, ~4].
    let personal = 0.2 + 3.8 * rng.random::<f64>().powi(3);
    // Cohort (social-change) effect: later cohorts retain and spend more,
    // reproducing Table 3's improving rows.
    let cohort_boost = 1.0 + 0.18 * birth_week as f64;

    // Occupied (time, action) pairs enforce the primary key.
    let mut used: HashSet<(i64, u32)> = HashSet::new();
    let push = |builder: &mut TableBuilder,
                used: &mut HashSet<(i64, u32)>,
                mut secs: i64,
                action: &Arc<str>,
                action_code: u32,
                role: &Arc<str>,
                gold: i64,
                session: i64,
                country: &Arc<str>,
                city: &Arc<str>| {
        while !used.insert((secs, action_code)) {
            secs += 1;
        }
        builder
            .push(vec![
                Value::Str(user.clone()),
                Value::int(config.start.secs() + secs),
                Value::Str(action.clone()),
                Value::Str(country.clone()),
                Value::Str(city.clone()),
                Value::Str(role.clone()),
                Value::int(session),
                Value::int(gold),
            ])
            .expect("generator tuples are well-typed");
    };

    // Birth tuple: the first launch.
    let birth_secs =
        birth_day as i64 * SECONDS_PER_DAY + rng.random_range(6 * 3600..23 * 3600) as i64;
    push(
        builder,
        &mut used,
        birth_secs,
        launch,
        0,
        &role,
        0,
        rng.random_range(1..30),
        &country,
        &city,
    );

    // Subsequent days: intensity decays with age (the aging effect). Under
    // cohort-clustered arrival the activity window is additionally capped,
    // which is what keeps distant chunks' time bounds disjoint.
    let remaining = match config.arrival {
        ArrivalModel::EarlySkew => config.num_days - birth_day,
        ArrivalModel::CohortClustered { active_days } => {
            (config.num_days - birth_day).min(active_days)
        }
    };
    for age_day in 0..remaining {
        let intensity =
            config.base_intensity * personal * (-(age_day as f64) / config.retention_days).exp();
        // Later cohorts are better retained.
        let intensity = intensity * (0.8 + 0.2 * cohort_boost);
        let n_acts = poisson_approx(rng, intensity.min(60.0));
        if n_acts == 0 {
            continue;
        }
        // Each active day begins with a (re-)launch, except the birth day
        // which already has one.
        let day_base = (birth_day + age_day) as i64 * SECONDS_PER_DAY;
        if age_day > 0 {
            let secs = day_base + rng.random_range(6 * 3600..10 * 3600) as i64;
            push(
                builder,
                &mut used,
                secs,
                launch,
                0,
                &role,
                0,
                rng.random_range(1..30),
                &country,
                &city,
            );
        }
        // On the birth day, activities must not precede the birth tuple
        // (every user's first action is `launch`).
        let day_lo = if age_day == 0 { (birth_secs - day_base + 60) as u32 } else { 6 * 3600 };
        let day_hi: u32 = 24 * 3600 - 90;
        for _ in 0..n_acts {
            let chosen = {
                let total: u32 = ACTION_WEIGHTS.iter().map(|(_, w)| w).sum();
                let mut x = rng.random_range(0..total);
                let mut idx = ACTION_WEIGHTS.len() - 1;
                for (i, (_, w)) in ACTION_WEIGHTS.iter().enumerate() {
                    if x < *w {
                        idx = i;
                        break;
                    }
                    x -= *w;
                }
                idx
            };
            let action = &action_arcs[chosen].0;
            let action_code = 1 + chosen as u32;
            // Rare permanent role change (the paper's t4 shows one).
            if rng.random_bool(0.01) {
                role = Arc::from(ROLES[rng.random_range(0..ROLES.len())]);
            }
            let secs = day_base + rng.random_range(day_lo.min(day_hi - 1)..day_hi) as i64;
            let gold = if action.as_ref() == "shop" {
                // Aging decay + cohort boost + noise; this is what Table 3 /
                // Figure 1 aggregate.
                let age_weeks = age_day as f64 / 7.0;
                let base = 55.0 * (-0.42 * age_weeks).exp() * cohort_boost;
                (base * (0.7 + 0.6 * rng.random::<f64>())).round().max(1.0) as i64
            } else {
                0
            };
            let session = rng.random_range(1..120);
            push(
                builder,
                &mut used,
                secs,
                action,
                action_code,
                &role,
                gold,
                session,
                &country,
                &city,
            );
        }
    }
}

/// Small-mean Poisson sampler (inversion by sequential search); good enough
/// for intensities below ~60 and fully deterministic.
fn poisson_approx(rng: &mut StdRng, mean: f64) -> u32 {
    if mean <= 0.0 {
        return 0;
    }
    let limit = (-mean).exp();
    let mut product = rng.random::<f64>();
    let mut count = 0u32;
    while product > limit {
        count += 1;
        product *= rng.random::<f64>();
        if count > 200 {
            break;
        }
    }
    count
}

/// Apply the paper's scale-factor semantics: a scale-X table contains X
/// copies of the user population, each copy under fresh user ids, with
/// otherwise identical activity tuples.
pub fn scale_table(base: &ActivityTable, scale: usize) -> ActivityTable {
    assert!(scale >= 1, "scale factor must be >= 1");
    if scale == 1 {
        return base.clone();
    }
    let schema = base.schema().clone();
    let uidx = schema.user_idx();
    let mut builder = TableBuilder::with_capacity(schema.clone(), base.num_rows() * scale);
    for copy in 0..scale {
        for row in base.rows() {
            let mut values = row.values().to_vec();
            let orig = values[uidx].as_str().expect("user is a string");
            values[uidx] = Value::from(format!("s{copy:02}-{orig}"));
            builder.push(values).expect("scaled tuples well-typed");
        }
    }
    builder.finish().expect("scaling preserves key uniqueness")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = GeneratorConfig::small();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.num_rows(), b.num_rows());
        assert_eq!(a.rows(), b.rows());
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = GeneratorConfig::small();
        let a = generate(&cfg);
        cfg.seed ^= 1;
        let b = generate(&cfg);
        assert_ne!(a.rows(), b.rows());
    }

    #[test]
    fn first_action_is_launch_for_every_user() {
        let t = generate(&GeneratorConfig::small());
        let aidx = t.schema().action_idx();
        for block in t.user_blocks() {
            assert_eq!(t.rows()[block.start].get(aidx).as_str(), Some("launch"));
        }
    }

    #[test]
    fn user_count_matches_config() {
        let cfg = GeneratorConfig::small();
        let t = generate(&cfg);
        assert_eq!(t.num_users(), cfg.num_users);
    }

    #[test]
    fn births_skew_early() {
        let cfg = GeneratorConfig::new(300);
        let t = generate(&cfg);
        let tidx = t.schema().time_idx();
        let mut first_half = 0usize;
        let mut total = 0usize;
        for block in t.user_blocks() {
            let birth = t.rows()[block.start].get(tidx).as_int().unwrap();
            let day = (birth - cfg.start.secs()) / SECONDS_PER_DAY;
            if day < (cfg.num_days / 2) as i64 {
                first_half += 1;
            }
            total += 1;
        }
        // An exponential with mean 9 days puts ~88% of births in the first
        // 19 days; require a clear majority to catch regressions.
        assert!(first_half * 10 > total * 7, "{first_half}/{total} births in first half");
    }

    #[test]
    fn shop_actions_have_positive_gold_others_zero() {
        let t = generate(&GeneratorConfig::small());
        let aidx = t.schema().action_idx();
        let gidx = t.schema().index_of("gold").unwrap();
        let mut saw_shop = false;
        for row in t.rows() {
            let gold = row.get(gidx).as_int().unwrap();
            if row.get(aidx).as_str() == Some("shop") {
                saw_shop = true;
                assert!(gold > 0);
            } else {
                assert_eq!(gold, 0);
            }
        }
        assert!(saw_shop);
    }

    #[test]
    fn aging_effect_present() {
        // Average spend in the first age-week should exceed the third.
        let t = generate(&GeneratorConfig::new(400));
        let s = t.schema();
        let (tidx, aidx, gidx) = (s.time_idx(), s.action_idx(), s.index_of("gold").unwrap());
        let mut sums = [0f64; 4];
        let mut counts = [0usize; 4];
        for block in t.user_blocks() {
            let birth = t.rows()[block.start].get(tidx).as_int().unwrap();
            for i in block.range() {
                let row = &t.rows()[i];
                if row.get(aidx).as_str() != Some("shop") {
                    continue;
                }
                let age_w = ((row.get(tidx).as_int().unwrap() - birth) / (7 * SECONDS_PER_DAY))
                    .clamp(0, 3) as usize;
                sums[age_w] += row.get(gidx).as_int().unwrap() as f64;
                counts[age_w] += 1;
            }
        }
        if counts[0] > 20 && counts[2] > 20 {
            assert!(sums[0] / counts[0] as f64 > sums[2] / counts[2] as f64);
        }
    }

    #[test]
    fn scale_two_doubles_rows_and_users() {
        let base = generate(&GeneratorConfig::small());
        let scaled = scale_table(&base, 2);
        assert_eq!(scaled.num_rows(), base.num_rows() * 2);
        assert_eq!(scaled.num_users(), base.num_users() * 2);
        scaled.validate().unwrap();
    }

    #[test]
    fn scale_one_is_identity() {
        let base = generate(&GeneratorConfig::small());
        let scaled = scale_table(&base, 1);
        assert_eq!(scaled.rows(), base.rows());
    }

    #[test]
    fn cohort_clustered_is_deterministic() {
        let cfg = GeneratorConfig::cohort_clustered(80);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.num_users(), 80);
    }

    #[test]
    fn cohort_clustered_births_ramp_with_user_id() {
        let cfg = GeneratorConfig::cohort_clustered(120);
        let t = generate(&cfg);
        let tidx = t.schema().time_idx();
        let mut last_birth_day = i64::MIN;
        let mut distinct_days = std::collections::HashSet::new();
        for block in t.user_blocks() {
            let birth = t.rows()[block.start].get(tidx).as_int().unwrap();
            let day = (birth - cfg.start.secs()) / SECONDS_PER_DAY;
            assert!(day >= last_birth_day, "births must be non-decreasing in user order");
            last_birth_day = day;
            distinct_days.insert(day);
        }
        // The ramp spans (most of) the window instead of collapsing early.
        assert!(distinct_days.len() as u32 >= cfg.num_days / 2, "{distinct_days:?}");
    }

    #[test]
    fn cohort_clustered_bounds_activity_window() {
        let active_days = match GeneratorConfig::cohort_clustered(1).arrival {
            ArrivalModel::CohortClustered { active_days } => active_days,
            _ => unreachable!(),
        };
        let cfg = GeneratorConfig::cohort_clustered(100);
        let t = generate(&cfg);
        let tidx = t.schema().time_idx();
        for block in t.user_blocks() {
            let birth = t.rows()[block.start].get(tidx).as_int().unwrap();
            for i in block.range() {
                let secs = t.rows()[i].get(tidx).as_int().unwrap();
                assert!(
                    secs - birth <= (active_days as i64) * SECONDS_PER_DAY,
                    "activity escapes the cohort window"
                );
            }
        }
    }

    #[test]
    fn skewed_emits_one_whale_holding_half_the_rows() {
        let cfg = GeneratorConfig::skewed(60);
        let t = generate(&cfg);
        assert_eq!(t.num_users(), cfg.num_users + 1, "ordinary users plus the whale");
        let largest = t.user_blocks().map(|b| b.range().len()).max().unwrap();
        let share = largest as f64 / t.num_rows() as f64;
        assert!((0.4..=0.6).contains(&share), "whale holds {share:.2} of rows");
        // The generator invariants hold for the whale too.
        let aidx = t.schema().action_idx();
        for block in t.user_blocks() {
            assert_eq!(t.rows()[block.start].get(aidx).as_str(), Some("launch"));
        }
        t.validate().unwrap();
    }

    #[test]
    fn skewed_is_deterministic() {
        let cfg = GeneratorConfig::skewed(40);
        assert_eq!(generate(&cfg).rows(), generate(&cfg).rows());
    }

    #[test]
    fn all_actions_from_catalog() {
        let t = generate(&GeneratorConfig::small());
        let aidx = t.schema().action_idx();
        for row in t.rows() {
            let a = row.get(aidx).as_str().unwrap();
            assert!(ACTIONS.contains(&a), "unknown action {a}");
        }
    }
}
