//! # cohana-activity
//!
//! The *activity table* data model from "Cohort Query Processing"
//! (Jiang et al., VLDB 2016), plus a deterministic synthetic generator for
//! the mobile-game dataset used in the paper's evaluation.
//!
//! An activity table `D` is a relation with attributes
//! `(Au, At, Ae, A1, …, An)` where:
//!
//! * `Au` — a string uniquely identifying a user,
//! * `At` — the time at which `Au` performed the action,
//! * `Ae` — an action drawn from a pre-defined collection of actions,
//! * every other attribute is a standard relational attribute, classified as
//!   a *dimension* (string) or a *measure* (integer).
//!
//! The table carries a primary-key constraint on `(Au, At, Ae)`: a user can
//! perform a given action at most once per time instant.
//!
//! The central type is [`ActivityTable`], which stores tuples in the sorted
//! order of the primary key. This yields the two properties the COHANA
//! storage layer exploits:
//!
//! 1. **clustering** — all tuples of a user are contiguous, and
//! 2. **time ordering** — each user's tuples are chronological.
//!
//! ```
//! use cohana_activity::{generate, GeneratorConfig};
//!
//! let table = generate(&GeneratorConfig::small());
//! assert!(table.num_rows() > 0);
//! // Activity tables are always sorted by (user, time, action).
//! table.validate().unwrap();
//! ```

pub mod builder;
pub mod csv;
pub mod error;
pub mod generate;
pub mod schema;
pub mod table;
pub mod time;
pub mod tuple;
pub mod value;

pub use builder::TableBuilder;
pub use error::ActivityError;
pub use generate::{generate, scale_table, ArrivalModel, GeneratorConfig};
pub use schema::{Attribute, AttributeRole, Schema};
pub use table::{ActivityTable, UserBlock};
pub use time::{TimeBin, Timestamp, SECONDS_PER_DAY, SECONDS_PER_WEEK};
pub use tuple::Tuple;
pub use value::{Value, ValueType};

/// Convenient `Result` alias for this crate.
pub type Result<T> = std::result::Result<T, ActivityError>;
