//! Activity-table schemas.

use crate::error::ActivityError;
use crate::value::ValueType;

/// The role an attribute plays in the activity data model (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttributeRole {
    /// `Au` — the user identifier. Exactly one per schema, string-typed.
    User,
    /// `At` — the action timestamp. Exactly one per schema, int-typed
    /// (seconds since epoch).
    Time,
    /// `Ae` — the action. Exactly one per schema, string-typed, drawn from a
    /// pre-defined collection of actions.
    Action,
    /// A dimension attribute (string), e.g. country, city, role.
    Dimension,
    /// A measure attribute (integer), e.g. gold, session length.
    Measure,
}

/// A named, typed attribute with a role.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name as referenced in queries.
    pub name: String,
    /// Value type.
    pub vtype: ValueType,
    /// Data-model role.
    pub role: AttributeRole,
}

impl Attribute {
    /// Build an attribute.
    pub fn new(name: impl Into<String>, vtype: ValueType, role: AttributeRole) -> Self {
        Attribute { name: name.into(), vtype, role }
    }
}

/// An activity-table schema: the ordered list of attributes plus cached
/// positions of the three special roles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attributes: Vec<Attribute>,
    user_idx: usize,
    time_idx: usize,
    action_idx: usize,
}

impl Schema {
    /// Validate and build a schema. Requires exactly one attribute for each
    /// of the user / time / action roles, with the right types, and unique
    /// attribute names.
    pub fn new(attributes: Vec<Attribute>) -> Result<Self, ActivityError> {
        let one = |role: AttributeRole, want: ValueType| -> Result<usize, ActivityError> {
            let mut found = None;
            for (i, a) in attributes.iter().enumerate() {
                if a.role == role {
                    if found.is_some() {
                        return Err(ActivityError::InvalidSchema(format!(
                            "duplicate {role:?} attribute"
                        )));
                    }
                    if a.vtype != want {
                        return Err(ActivityError::InvalidSchema(format!(
                            "{role:?} attribute {:?} must be {}",
                            a.name,
                            want.name()
                        )));
                    }
                    found = Some(i);
                }
            }
            found.ok_or_else(|| ActivityError::InvalidSchema(format!("missing {role:?} attribute")))
        };
        let user_idx = one(AttributeRole::User, ValueType::Str)?;
        let time_idx = one(AttributeRole::Time, ValueType::Int)?;
        let action_idx = one(AttributeRole::Action, ValueType::Str)?;
        for a in &attributes {
            match a.role {
                AttributeRole::Dimension if a.vtype != ValueType::Str => {
                    return Err(ActivityError::InvalidSchema(format!(
                        "dimension {:?} must be string",
                        a.name
                    )))
                }
                AttributeRole::Measure if a.vtype != ValueType::Int => {
                    return Err(ActivityError::InvalidSchema(format!(
                        "measure {:?} must be int",
                        a.name
                    )))
                }
                _ => {}
            }
        }
        for (i, a) in attributes.iter().enumerate() {
            if attributes[..i].iter().any(|b| b.name == a.name) {
                return Err(ActivityError::InvalidSchema(format!(
                    "duplicate attribute name {:?}",
                    a.name
                )));
            }
        }
        Ok(Schema { attributes, user_idx, time_idx, action_idx })
    }

    /// The schema of the paper's running example: the `GameActions` table
    /// with country/city/role dimensions and session/gold measures.
    pub fn game_actions() -> Self {
        Schema::new(vec![
            Attribute::new("player", ValueType::Str, AttributeRole::User),
            Attribute::new("time", ValueType::Int, AttributeRole::Time),
            Attribute::new("action", ValueType::Str, AttributeRole::Action),
            Attribute::new("country", ValueType::Str, AttributeRole::Dimension),
            Attribute::new("city", ValueType::Str, AttributeRole::Dimension),
            Attribute::new("role", ValueType::Str, AttributeRole::Dimension),
            Attribute::new("session", ValueType::Int, AttributeRole::Measure),
            Attribute::new("gold", ValueType::Int, AttributeRole::Measure),
        ])
        .expect("game_actions schema is valid")
    }

    /// Ordered attribute list.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Position of the user attribute `Au`.
    pub fn user_idx(&self) -> usize {
        self.user_idx
    }

    /// Position of the time attribute `At`.
    pub fn time_idx(&self) -> usize {
        self.time_idx
    }

    /// Position of the action attribute `Ae`.
    pub fn action_idx(&self) -> usize {
        self.action_idx
    }

    /// Look up an attribute position by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }

    /// Look up an attribute position by name, failing with a typed error.
    pub fn require(&self, name: &str) -> Result<usize, ActivityError> {
        self.index_of(name).ok_or_else(|| ActivityError::UnknownAttribute(name.to_string()))
    }

    /// Attribute at a position.
    pub fn attribute(&self, idx: usize) -> &Attribute {
        &self.attributes[idx]
    }

    /// Names of all attributes, in order.
    pub fn names(&self) -> Vec<&str> {
        self.attributes.iter().map(|a| a.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn game_actions_layout() {
        let s = Schema::game_actions();
        assert_eq!(s.arity(), 8);
        assert_eq!(s.user_idx(), 0);
        assert_eq!(s.time_idx(), 1);
        assert_eq!(s.action_idx(), 2);
        assert_eq!(s.index_of("gold"), Some(7));
        assert_eq!(s.index_of("nope"), None);
    }

    #[test]
    fn rejects_missing_user() {
        let err = Schema::new(vec![
            Attribute::new("time", ValueType::Int, AttributeRole::Time),
            Attribute::new("action", ValueType::Str, AttributeRole::Action),
        ])
        .unwrap_err();
        assert!(matches!(err, ActivityError::InvalidSchema(_)));
    }

    #[test]
    fn rejects_duplicate_roles_and_names() {
        assert!(Schema::new(vec![
            Attribute::new("u1", ValueType::Str, AttributeRole::User),
            Attribute::new("u2", ValueType::Str, AttributeRole::User),
            Attribute::new("time", ValueType::Int, AttributeRole::Time),
            Attribute::new("action", ValueType::Str, AttributeRole::Action),
        ])
        .is_err());
        assert!(Schema::new(vec![
            Attribute::new("u", ValueType::Str, AttributeRole::User),
            Attribute::new("u", ValueType::Int, AttributeRole::Time),
            Attribute::new("action", ValueType::Str, AttributeRole::Action),
        ])
        .is_err());
    }

    #[test]
    fn rejects_wrong_types() {
        // Int user attribute.
        assert!(Schema::new(vec![
            Attribute::new("u", ValueType::Int, AttributeRole::User),
            Attribute::new("t", ValueType::Int, AttributeRole::Time),
            Attribute::new("a", ValueType::Str, AttributeRole::Action),
        ])
        .is_err());
        // String measure.
        assert!(Schema::new(vec![
            Attribute::new("u", ValueType::Str, AttributeRole::User),
            Attribute::new("t", ValueType::Int, AttributeRole::Time),
            Attribute::new("a", ValueType::Str, AttributeRole::Action),
            Attribute::new("gold", ValueType::Str, AttributeRole::Measure),
        ])
        .is_err());
    }
}
