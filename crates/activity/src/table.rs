//! The [`ActivityTable`]: tuples stored in primary-key order.

use crate::error::ActivityError;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// A contiguous run of tuples belonging to one user.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserBlock {
    /// Row index of the user's first tuple.
    pub start: usize,
    /// Number of tuples for this user.
    pub len: usize,
}

impl UserBlock {
    /// Row range of the block.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.len
    }
}

/// An activity table: a schema plus tuples sorted by `(Au, At, Ae)`.
///
/// The sorted order gives the *clustering* property (tuples of the same user
/// are contiguous) and the *time-ordering* property (each user's tuples are
/// chronological), which §4.1 of the paper relies on.
#[derive(Debug, Clone)]
pub struct ActivityTable {
    schema: Schema,
    rows: Vec<Tuple>,
}

impl ActivityTable {
    /// Build from pre-sorted rows. Prefer [`crate::TableBuilder`], which
    /// sorts and validates; this constructor checks the invariants and fails
    /// if they do not hold.
    pub fn from_sorted_rows(schema: Schema, rows: Vec<Tuple>) -> Result<Self, ActivityError> {
        let table = ActivityTable { schema, rows };
        table.validate()?;
        Ok(table)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All rows, in primary-key order.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Number of tuples.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The primary-key triple of a row: `(user, time, action)`.
    pub fn key(&self, row: usize) -> (&str, i64, &str) {
        let t = &self.rows[row];
        (
            t.get(self.schema.user_idx()).as_str().expect("user is a string"),
            t.get(self.schema.time_idx()).as_int().expect("time is an int"),
            t.get(self.schema.action_idx()).as_str().expect("action is a string"),
        )
    }

    /// Verify arity, types, sortedness, and primary-key uniqueness.
    pub fn validate(&self) -> Result<(), ActivityError> {
        for row in &self.rows {
            if row.arity() != self.schema.arity() {
                return Err(ActivityError::ArityMismatch {
                    expected: self.schema.arity(),
                    got: row.arity(),
                });
            }
            for (idx, attr) in self.schema.attributes().iter().enumerate() {
                let v = row.get(idx);
                match v.value_type() {
                    Some(t) if t == attr.vtype => {}
                    None => {
                        return Err(ActivityError::TypeMismatch {
                            attribute: attr.name.clone(),
                            expected: attr.vtype.name(),
                            got: "NULL".into(),
                        })
                    }
                    Some(_) => {
                        return Err(ActivityError::TypeMismatch {
                            attribute: attr.name.clone(),
                            expected: attr.vtype.name(),
                            got: v.to_string(),
                        })
                    }
                }
            }
        }
        for i in 1..self.rows.len() {
            let prev = self.key(i - 1);
            let cur = self.key(i);
            if prev >= cur {
                if prev == cur {
                    return Err(ActivityError::DuplicateKey {
                        user: cur.0.to_string(),
                        time: cur.1,
                        action: cur.2.to_string(),
                    });
                }
                return Err(ActivityError::InvalidSchema(format!(
                    "rows not sorted by primary key at index {i}"
                )));
            }
        }
        Ok(())
    }

    /// Iterate over the per-user blocks, in user order.
    pub fn user_blocks(&self) -> UserBlocks<'_> {
        UserBlocks { table: self, pos: 0 }
    }

    /// Number of distinct users.
    pub fn num_users(&self) -> usize {
        self.user_blocks().count()
    }

    /// Distinct values of a string attribute, sorted. Deduplicates through
    /// a hash set first so only the (usually small) distinct set is sorted.
    pub fn distinct_strings(&self, attr_idx: usize) -> Vec<&str> {
        let set: std::collections::HashSet<&str> =
            self.rows.iter().filter_map(|r| r.get(attr_idx).as_str()).collect();
        let mut out: Vec<&str> = set.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// `(min, max)` of an integer attribute, or `None` for an empty table.
    pub fn int_range(&self, attr_idx: usize) -> Option<(i64, i64)> {
        let mut it = self.rows.iter().filter_map(|r| r.get(attr_idx).as_int());
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for v in it {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }

    /// Render the first `n` rows as an aligned text table (for examples).
    pub fn preview(&self, n: usize) -> String {
        let names = self.schema.names();
        let mut widths: Vec<usize> = names.iter().map(|s| s.len()).collect();
        let shown: Vec<Vec<String>> = self
            .rows
            .iter()
            .take(n)
            .map(|r| {
                r.values()
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let s = if i == self.schema.time_idx() {
                            if let Value::Int(secs) = v {
                                crate::time::Timestamp(*secs).render()
                            } else {
                                v.to_string()
                            }
                        } else {
                            v.to_string()
                        };
                        widths[i] = widths[i].max(s.len());
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        for (i, n) in names.iter().enumerate() {
            out.push_str(&format!("{:w$}  ", n, w = widths[i]));
        }
        out.push('\n');
        for row in shown {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:w$}  ", cell, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// Iterator over per-user blocks.
pub struct UserBlocks<'a> {
    table: &'a ActivityTable,
    pos: usize,
}

impl Iterator for UserBlocks<'_> {
    type Item = UserBlock;

    fn next(&mut self) -> Option<UserBlock> {
        if self.pos >= self.table.rows.len() {
            return None;
        }
        let start = self.pos;
        let uidx = self.table.schema.user_idx();
        let user = self.table.rows[start].get(uidx).as_str().expect("user is a string");
        let mut end = start + 1;
        while end < self.table.rows.len() && self.table.rows[end].get(uidx).as_str() == Some(user) {
            end += 1;
        }
        self.pos = end;
        Some(UserBlock { start, len: end - start })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TableBuilder;
    use crate::time::Timestamp;

    fn paper_table() -> ActivityTable {
        // The ten tuples of Table 1 in the paper (with city/session filled in).
        let mut b = TableBuilder::new(Schema::game_actions());
        type RawRow = (
            &'static str,
            &'static str,
            &'static str,
            &'static str,
            &'static str,
            &'static str,
            i64,
            i64,
        );
        let rows: [RawRow; 10] = [
            ("001", "2013/05/19:1000", "launch", "Australia", "Sydney", "dwarf", 10, 0),
            ("001", "2013/05/20:0800", "shop", "Australia", "Sydney", "dwarf", 15, 50),
            ("001", "2013/05/20:1400", "shop", "Australia", "Sydney", "dwarf", 30, 100),
            ("001", "2013/05/21:1400", "shop", "Australia", "Sydney", "assassin", 20, 50),
            ("001", "2013/05/22:0900", "fight", "Australia", "Sydney", "assassin", 5, 0),
            ("002", "2013/05/20:0900", "launch", "United States", "Chicago", "wizard", 8, 0),
            ("002", "2013/05/21:1500", "shop", "United States", "Chicago", "wizard", 12, 30),
            ("002", "2013/05/22:1700", "shop", "United States", "Chicago", "wizard", 9, 40),
            ("003", "2013/05/20:1000", "launch", "China", "Beijing", "bandit", 25, 0),
            ("003", "2013/05/21:1000", "fight", "China", "Beijing", "bandit", 11, 0),
        ];
        for (p, t, a, c, city, role, sess, gold) in rows {
            b.push(vec![
                Value::str(p),
                Value::int(Timestamp::parse(t).unwrap().secs()),
                Value::str(a),
                Value::str(c),
                Value::str(city),
                Value::str(role),
                Value::int(sess),
                Value::int(gold),
            ])
            .unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn paper_table_valid_and_clustered() {
        let t = paper_table();
        assert_eq!(t.num_rows(), 10);
        assert_eq!(t.num_users(), 3);
        let blocks: Vec<UserBlock> = t.user_blocks().collect();
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0], UserBlock { start: 0, len: 5 });
        assert_eq!(blocks[1], UserBlock { start: 5, len: 3 });
        assert_eq!(blocks[2], UserBlock { start: 8, len: 2 });
    }

    #[test]
    fn time_ordering_within_user() {
        let t = paper_table();
        for b in t.user_blocks() {
            let times: Vec<i64> = b
                .range()
                .map(|i| t.rows()[i].get(t.schema().time_idx()).as_int().unwrap())
                .collect();
            let mut sorted = times.clone();
            sorted.sort_unstable();
            assert_eq!(times, sorted);
        }
    }

    #[test]
    fn distinct_and_range() {
        let t = paper_table();
        let action_idx = t.schema().action_idx();
        assert_eq!(t.distinct_strings(action_idx), vec!["fight", "launch", "shop"]);
        let gold_idx = t.schema().index_of("gold").unwrap();
        assert_eq!(t.int_range(gold_idx), Some((0, 100)));
    }

    #[test]
    fn detects_duplicate_key() {
        let s = Schema::game_actions();
        let make = |time: i64| {
            Tuple::new(vec![
                Value::str("001"),
                Value::int(time),
                Value::str("shop"),
                Value::str("Australia"),
                Value::str("Sydney"),
                Value::str("dwarf"),
                Value::int(1),
                Value::int(1),
            ])
        };
        let err = ActivityTable::from_sorted_rows(s, vec![make(5), make(5)]).unwrap_err();
        assert!(matches!(err, ActivityError::DuplicateKey { .. }));
    }

    #[test]
    fn detects_unsorted_rows() {
        let s = Schema::game_actions();
        let make = |user: &str| {
            Tuple::new(vec![
                Value::str(user),
                Value::int(5),
                Value::str("shop"),
                Value::str("Australia"),
                Value::str("Sydney"),
                Value::str("dwarf"),
                Value::int(1),
                Value::int(1),
            ])
        };
        let err = ActivityTable::from_sorted_rows(s, vec![make("b"), make("a")]).unwrap_err();
        assert!(matches!(err, ActivityError::InvalidSchema(_)));
    }

    #[test]
    fn preview_contains_header() {
        let t = paper_table();
        let p = t.preview(2);
        assert!(p.contains("player"));
        assert!(p.contains("2013/05/19:1000"));
    }
}
