//! Timestamps and time bins.
//!
//! Activity timestamps are stored as **seconds since the Unix epoch** in an
//! `i64`. The paper renders them as `YYYY/MM/DD:HHMM` (e.g.
//! `2013/05/19:1000`); this module parses and formats that representation
//! using a proleptic-Gregorian civil-date conversion, so no external time
//! crate is needed.

use crate::error::ActivityError;

/// Number of seconds in a day.
pub const SECONDS_PER_DAY: i64 = 86_400;
/// Number of seconds in a week.
pub const SECONDS_PER_WEEK: i64 = 7 * SECONDS_PER_DAY;

/// A point in time, in seconds since the Unix epoch (UTC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// Build a timestamp from a civil date and an `HHMM` clock value.
    pub fn from_ymd_hm(year: i32, month: u32, day: u32, hour: u32, minute: u32) -> Self {
        let days = days_from_civil(year, month, day);
        Timestamp(days * SECONDS_PER_DAY + (hour as i64) * 3600 + (minute as i64) * 60)
    }

    /// Parse the paper's `YYYY/MM/DD:HHMM` format. A bare `YYYY-MM-DD` /
    /// `YYYY/MM/DD` (midnight) is also accepted, as used by `BETWEEN`
    /// predicates in the benchmark queries.
    pub fn parse(s: &str) -> Result<Self, ActivityError> {
        let bad = || ActivityError::BadTimestamp(s.to_string());
        let (date_part, clock_part) = match s.split_once(':') {
            Some((d, c)) => (d, Some(c)),
            None => (s, None),
        };
        let sep = if date_part.contains('/') { '/' } else { '-' };
        let mut it = date_part.split(sep);
        let year: i32 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let month: u32 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let day: u32 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        if it.next().is_some() || !(1..=12).contains(&month) || !(1..=31).contains(&day) {
            return Err(bad());
        }
        let (hour, minute) = match clock_part {
            Some(c) if c.len() == 4 => {
                let h: u32 = c[..2].parse().map_err(|_| bad())?;
                let m: u32 = c[2..].parse().map_err(|_| bad())?;
                if h >= 24 || m >= 60 {
                    return Err(bad());
                }
                (h, m)
            }
            Some(_) => return Err(bad()),
            None => (0, 0),
        };
        Ok(Timestamp::from_ymd_hm(year, month, day, hour, minute))
    }

    /// Render as the paper's `YYYY/MM/DD:HHMM` format.
    pub fn render(&self) -> String {
        let days = self.0.div_euclid(SECONDS_PER_DAY);
        let secs = self.0.rem_euclid(SECONDS_PER_DAY);
        let (y, m, d) = civil_from_days(days);
        format!("{:04}/{:02}/{:02}:{:02}{:02}", y, m, d, secs / 3600, (secs % 3600) / 60)
    }

    /// Render just the date as `YYYY-MM-DD` (used for cohort labels).
    pub fn render_date(&self) -> String {
        let (y, m, d) = civil_from_days(self.0.div_euclid(SECONDS_PER_DAY));
        format!("{y:04}-{m:02}-{d:02}")
    }

    /// Seconds since epoch.
    #[inline]
    pub fn secs(&self) -> i64 {
        self.0
    }
}

/// Time-bin granularity for cohort identification and age normalization.
///
/// The paper assumes age granularity of a day "without loss of generality";
/// cohorts are typically binned by day, week, or month.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TimeBin {
    /// Calendar day bins.
    #[default]
    Day,
    /// 7-day bins anchored at the Unix epoch (a Thursday; the paper's anchor
    /// is irrelevant as long as it is consistent).
    Week,
    /// Calendar month bins.
    Month,
}

impl TimeBin {
    /// Map a raw timestamp to the inclusive start of its bin.
    pub fn bin_start(&self, t: Timestamp) -> Timestamp {
        match self {
            TimeBin::Day => Timestamp(t.0.div_euclid(SECONDS_PER_DAY) * SECONDS_PER_DAY),
            TimeBin::Week => Timestamp(t.0.div_euclid(SECONDS_PER_WEEK) * SECONDS_PER_WEEK),
            TimeBin::Month => {
                let (y, m, _) = civil_from_days(t.0.div_euclid(SECONDS_PER_DAY));
                Timestamp(days_from_civil(y, m, 1) * SECONDS_PER_DAY)
            }
        }
    }

    /// Normalize a raw age (seconds) to this granularity. Ages are counted in
    /// whole units: an activity 10 hours after birth is age `1` in `Day`
    /// granularity per the paper's examples (t2 is "the week 1 age
    /// sub-partition" even though it is <7 days after birth), i.e. the unit
    /// count is `ceil`-like: `floor((secs - 1) / unit) + 1` for positive ages.
    pub fn age_units(&self, age_secs: i64) -> i64 {
        let unit = match self {
            TimeBin::Day => SECONDS_PER_DAY,
            TimeBin::Week => SECONDS_PER_WEEK,
            // Months vary in length; the 30-day convention is fine for ages.
            TimeBin::Month => 30 * SECONDS_PER_DAY,
        };
        if age_secs <= 0 {
            // Non-positive ages are excluded from aggregation; normalize to
            // zero so callers can test `> 0` uniformly.
            0
        } else {
            (age_secs - 1).div_euclid(unit) + 1
        }
    }
}

/// Days from civil date, Howard Hinnant's algorithm (public domain).
pub fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = y as i64 - if m <= 2 { 1 } else { 0 };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (m as i64 + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Civil date from days since epoch, Howard Hinnant's algorithm.
pub fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    ((y + if m <= 2 { 1 } else { 0 }) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_roundtrip_epoch() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn civil_roundtrip_paper_dates() {
        for (y, m, d) in [(2013, 5, 19), (2013, 6, 26), (2000, 2, 29), (1999, 12, 31)] {
            let days = days_from_civil(y, m, d);
            assert_eq!(civil_from_days(days), (y, m, d));
        }
    }

    #[test]
    fn parse_paper_format() {
        let t = Timestamp::parse("2013/05/19:1000").unwrap();
        assert_eq!(t.render(), "2013/05/19:1000");
        assert_eq!(t.render_date(), "2013-05-19");
    }

    #[test]
    fn parse_date_only() {
        let t = Timestamp::parse("2013-05-21").unwrap();
        assert_eq!(t.render(), "2013/05/21:0000");
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in ["", "2013", "2013/13/01", "2013/05/19:2500", "x/y/z", "2013/05/19:99"] {
            assert!(Timestamp::parse(s).is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn ordering_matches_chronology() {
        let a = Timestamp::parse("2013/05/19:1000").unwrap();
        let b = Timestamp::parse("2013/05/20:0800").unwrap();
        assert!(a < b);
    }

    #[test]
    fn day_bin_and_age_units() {
        let birth = Timestamp::parse("2013/05/19:1000").unwrap();
        let act = Timestamp::parse("2013/05/20:0800").unwrap();
        let age = act.secs() - birth.secs();
        assert_eq!(TimeBin::Day.age_units(age), 1);
        assert_eq!(TimeBin::Week.age_units(age), 1);
        assert_eq!(TimeBin::Day.age_units(0), 0);
        assert_eq!(TimeBin::Day.age_units(-5), 0);
        assert_eq!(TimeBin::Day.age_units(SECONDS_PER_DAY), 1);
        assert_eq!(TimeBin::Day.age_units(SECONDS_PER_DAY + 1), 2);
    }

    #[test]
    fn week_bin_is_stable() {
        let t = Timestamp::parse("2013/05/19:1000").unwrap();
        let start = TimeBin::Week.bin_start(t);
        assert!(start <= t);
        assert!(t.secs() - start.secs() < SECONDS_PER_WEEK);
        // Every instant in the same week maps to the same start.
        let t2 = Timestamp(start.secs() + SECONDS_PER_WEEK - 1);
        assert_eq!(TimeBin::Week.bin_start(t2), start);
    }

    #[test]
    fn month_bin_start() {
        let t = Timestamp::parse("2013/05/19:1000").unwrap();
        assert_eq!(TimeBin::Month.bin_start(t).render_date(), "2013-05-01");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn civil_roundtrip_random_days(days in -1_000_000i64..1_000_000) {
                let (y, m, d) = civil_from_days(days);
                prop_assert_eq!(days_from_civil(y, m, d), days);
                prop_assert!((1..=12).contains(&m));
                prop_assert!((1..=31).contains(&d));
            }

            #[test]
            fn bin_start_is_idempotent_and_lower(secs in 0i64..(200i64 * 365 * SECONDS_PER_DAY)) {
                for bin in [TimeBin::Day, TimeBin::Week, TimeBin::Month] {
                    let t = Timestamp(secs);
                    let start = bin.bin_start(t);
                    prop_assert!(start <= t, "{bin:?}");
                    prop_assert_eq!(bin.bin_start(start), start, "{:?} not idempotent", bin);
                }
            }

            #[test]
            fn age_units_monotone_and_positive(a in 1i64..10_000_000, b in 1i64..10_000_000) {
                for bin in [TimeBin::Day, TimeBin::Week, TimeBin::Month] {
                    let (lo, hi) = (a.min(b), a.max(b));
                    prop_assert!(bin.age_units(lo) <= bin.age_units(hi));
                    prop_assert!(bin.age_units(lo) >= 1, "positive ages bin to >= 1");
                }
            }

            #[test]
            fn render_parse_roundtrip(secs in 0i64..(100i64 * 365 * SECONDS_PER_DAY)) {
                // Truncate to minute precision, which is what the paper's
                // format carries.
                let t = Timestamp((secs / 60) * 60);
                prop_assert_eq!(Timestamp::parse(&t.render()).unwrap(), t);
            }
        }
    }
}
