//! Activity tuples.

use crate::value::Value;
use std::fmt;

/// A single activity tuple: one value per schema attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tuple {
    values: Box<[Value]>,
}

impl Tuple {
    /// Build a tuple from values (arity is validated by the table builder).
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values: values.into_boxed_slice() }
    }

    /// Value at an attribute position.
    #[inline]
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// All values.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of values.
    #[inline]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Consume into the underlying values.
    pub fn into_values(self) -> Vec<Value> {
        self.values.into_vec()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tuple::new(vec![Value::str("001"), Value::int(7)]);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.get(0).as_str(), Some("001"));
        assert_eq!(t.get(1).as_int(), Some(7));
        assert_eq!(t.to_string(), "(001, 7)");
    }

    #[test]
    fn into_values_roundtrip() {
        let vals = vec![Value::str("a"), Value::int(1)];
        let t = Tuple::new(vals.clone());
        assert_eq!(t.into_values(), vals);
    }
}
