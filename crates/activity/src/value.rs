//! Dynamically-typed attribute values.

use std::fmt;
use std::sync::Arc;

/// The type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// UTF-8 string (user ids, actions, dimensions).
    Str,
    /// 64-bit signed integer (timestamps, measures).
    Int,
}

impl ValueType {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            ValueType::Str => "string",
            ValueType::Int => "int",
        }
    }
}

/// A single attribute value.
///
/// Strings are reference-counted so that tuples can be cloned cheaply when a
/// baseline engine materializes intermediate results.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// String value.
    Str(Arc<str>),
    /// Integer value.
    Int(i64),
    /// SQL-style NULL (used by outer operators in the baseline engines).
    Null,
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// Construct an integer value.
    pub fn int(v: i64) -> Self {
        Value::Int(v)
    }

    /// Borrow the string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extract the integer, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The runtime type, or `None` for NULL.
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Str(_) => Some(ValueType::Str),
            Value::Int(_) => Some(ValueType::Int),
            Value::Null => None,
        }
    }

    /// Whether this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s.into())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let s = Value::str("dwarf");
        assert_eq!(s.as_str(), Some("dwarf"));
        assert_eq!(s.as_int(), None);
        assert_eq!(s.value_type(), Some(ValueType::Str));

        let i = Value::int(42);
        assert_eq!(i.as_int(), Some(42));
        assert_eq!(i.as_str(), None);

        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.value_type(), None);
    }

    #[test]
    fn ordering_within_type() {
        assert!(Value::int(1) < Value::int(2));
        assert!(Value::str("a") < Value::str("b"));
    }

    #[test]
    fn display() {
        assert_eq!(Value::str("shop").to_string(), "shop");
        assert_eq!(Value::int(-3).to_string(), "-3");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}
