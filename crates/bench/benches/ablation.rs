//! Ablation benchmarks for DESIGN.md D1–D4: each COHANA optimization
//! toggled off individually, plus the fully naive configuration. Q4 (the
//! most selective query) shows the largest effect of user skipping.

use cohana_activity::{generate, GeneratorConfig};
use cohana_core::{paper, PlannerOptions, Statement};
use cohana_storage::{CompressedTable, CompressionOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn bench_ablation(c: &mut Criterion) {
    let table = generate(&GeneratorConfig::new(500));
    let compressed = Arc::new(
        CompressedTable::build(&table, CompressionOptions::with_chunk_size(8 * 1024)).unwrap(),
    );
    let variants: Vec<(&str, PlannerOptions)> = vec![
        ("full", PlannerOptions::default()),
        ("no_pushdown", PlannerOptions { push_down_birth_selection: false, ..Default::default() }),
        ("no_skip", PlannerOptions { skip_unqualified_users: false, ..Default::default() }),
        ("no_prune", PlannerOptions { prune_chunks: false, ..Default::default() }),
        ("no_array", PlannerOptions { array_aggregation: false, ..Default::default() }),
        ("naive", PlannerOptions::naive()),
    ];

    let mut g = c.benchmark_group("ablation");
    g.sample_size(15)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for (qname, q) in [("q1", paper::q1()), ("q4", paper::q4())] {
        for (vname, opts) in &variants {
            let stmt = Statement::over(compressed.clone(), &q, *opts, 1).unwrap();
            g.bench_with_input(BenchmarkId::new(qname, vname), &q, |b, _| {
                b.iter(|| stmt.execute().unwrap())
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
