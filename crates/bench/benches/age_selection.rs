//! Figure 9 (criterion form): age-selection selectivity. Q7's latency
//! grows with the age bound `g` (more distinct retained users to count);
//! Q8's grows slowly (dominated by finding births; shop tuples thin out
//! with age — the aging effect).

use cohana_activity::{generate, GeneratorConfig};
use cohana_core::{paper, PlannerOptions, Statement};
use cohana_storage::{CompressedTable, CompressionOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn bench_age_selectivity(c: &mut Criterion) {
    let table = generate(&GeneratorConfig::new(500));
    let compressed = Arc::new(
        CompressedTable::build(&table, CompressionOptions::with_chunk_size(8 * 1024)).unwrap(),
    );

    let mut g = c.benchmark_group("fig9_age_selection");
    g.sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for age in [1i64, 4, 7, 14] {
        let stmt7 =
            Statement::over(compressed.clone(), &paper::q7(age), PlannerOptions::default(), 1)
                .unwrap();
        g.bench_with_input(BenchmarkId::new("q7_g", age), &age, |b, _| {
            b.iter(|| stmt7.execute().unwrap())
        });
        let stmt8 =
            Statement::over(compressed.clone(), &paper::q8(age), PlannerOptions::default(), 1)
                .unwrap();
        g.bench_with_input(BenchmarkId::new("q8_g", age), &age, |b, _| {
            b.iter(|| stmt8.execute().unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_age_selectivity);
criterion_main!(benches);
