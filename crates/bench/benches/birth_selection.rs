//! Figure 8 (criterion form): birth-selection selectivity. Q5's latency
//! should track the birth CDF as the date upper bound widens, because the
//! engine skips every tuple of unqualified users.

use cohana_activity::{generate, GeneratorConfig, SECONDS_PER_DAY};
use cohana_core::{paper, PlannerOptions, Statement};
use cohana_storage::{CompressedTable, CompressionOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn bench_birth_selectivity(c: &mut Criterion) {
    let cfg = GeneratorConfig::new(500);
    let table = generate(&cfg);
    let compressed = Arc::new(
        CompressedTable::build(&table, CompressionOptions::with_chunk_size(8 * 1024)).unwrap(),
    );
    let start = cfg.start.secs();

    let mut g = c.benchmark_group("fig8_birth_selection");
    g.sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for days in [2i64, 9, 19, 38] {
        let q5 = paper::q5(start, start + days * SECONDS_PER_DAY);
        let stmt5 = Statement::over(compressed.clone(), &q5, PlannerOptions::default(), 1).unwrap();
        g.bench_with_input(BenchmarkId::new("q5_d2", days), &days, |b, _| {
            b.iter(|| stmt5.execute().unwrap())
        });
        let q6 = paper::q6(start, start + days * SECONDS_PER_DAY);
        let stmt6 = Statement::over(compressed.clone(), &q6, PlannerOptions::default(), 1).unwrap();
        g.bench_with_input(BenchmarkId::new("q6_d2", days), &days, |b, _| {
            b.iter(|| stmt6.execute().unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_birth_selectivity);
criterion_main!(benches);
