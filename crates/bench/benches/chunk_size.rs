//! Figure 6 (criterion form): COHANA Q1–Q4 latency across chunk sizes at a
//! fixed laptop-scale dataset. The CLI harness (`cohana-bench --exp fig6`)
//! runs the full scale sweep.

use cohana_activity::{generate, GeneratorConfig};
use cohana_core::{paper, PlannerOptions, Statement};
use cohana_storage::{CompressedTable, CompressionOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn bench_chunk_sizes(c: &mut Criterion) {
    let table = generate(&GeneratorConfig::new(500));
    let chunk_sizes = [4 * 1024usize, 16 * 1024, 64 * 1024];
    let queries =
        [("q1", paper::q1()), ("q2", paper::q2()), ("q3", paper::q3()), ("q4", paper::q4())];

    let mut g = c.benchmark_group("fig6_chunk_size");
    g.sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for &chunk in &chunk_sizes {
        let compressed = Arc::new(
            CompressedTable::build(&table, CompressionOptions::with_chunk_size(chunk)).unwrap(),
        );
        for (name, q) in &queries {
            let stmt =
                Statement::over(compressed.clone(), q, PlannerOptions::default(), 1).unwrap();
            g.bench_with_input(
                BenchmarkId::new(*name, format!("{}K", chunk / 1024)),
                &chunk,
                |b, _| b.iter(|| stmt.execute().unwrap()),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_chunk_sizes);
criterion_main!(benches);
