//! Figure 11 (criterion form): Q1–Q4 across the five evaluation schemes.
//! The expected ordering is COHANA ≪ MONET-M < MONET-S < PG-M < PG-S,
//! spanning orders of magnitude.

use cohana_activity::{generate, GeneratorConfig};
use cohana_core::{paper, PlannerOptions, Statement};
use cohana_relational::{ColEngine, RowEngine};
use cohana_storage::{CompressedTable, CompressionOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn bench_schemes(c: &mut Criterion) {
    let table = generate(&GeneratorConfig::new(400));
    let compressed = Arc::new(
        CompressedTable::build(&table, CompressionOptions::with_chunk_size(16 * 1024)).unwrap(),
    );
    let mut col = ColEngine::load(&table);
    let mut row = RowEngine::load(&table);
    for action in ["launch", "shop"] {
        col.create_mv(action);
        row.create_mv(action);
    }

    let queries =
        [("q1", paper::q1()), ("q2", paper::q2()), ("q3", paper::q3()), ("q4", paper::q4())];
    let mut g = c.benchmark_group("fig11_schemes");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for (name, q) in &queries {
        let stmt = Statement::over(compressed.clone(), q, PlannerOptions::default(), 1).unwrap();
        g.bench_with_input(BenchmarkId::new("cohana", name), q, |b, _| {
            b.iter(|| stmt.execute().unwrap())
        });
        g.bench_with_input(BenchmarkId::new("monet_m", name), q, |b, q| {
            b.iter(|| col.execute_mv(q).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("monet_s", name), q, |b, q| {
            b.iter(|| col.execute_sql(q).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("pg_m", name), q, |b, q| {
            b.iter(|| row.execute_mv(q).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("pg_s", name), q, |b, q| {
            b.iter(|| row.execute_sql(q).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
