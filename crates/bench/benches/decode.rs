//! Decode throughput of the v4 per-blob codecs, measured on the packed
//! column sections of the default-generator dataset.
//!
//! Every non-user column of every chunk is block-decoded back to values,
//! then assigned to the codec the v4 writer would select for it (smallest
//! encoding, raw on ties) — so each group times a codec on the sections
//! real files actually store under it, not on columns it would never win.
//! Each selected section is encoded in both stream layouts: the legacy
//! single-state rANS stream and the 4-way interleaved one the encoder now
//! emits for large sections. The timed groups decode those sections
//! through `decode_section_into` (the scratch path — no `BitPacked`
//! repack), with `Throughput::Bytes` set to the sections' *decoded* size,
//! so the report's `bytes_per_sec` is decoded-bytes-out per second:
//!
//! - `decode/delta`, `decode/ans`: the interleaved layout (what new files
//!   contain).
//! - `decode/delta_single`, `decode/ans_single`: the pre-interleaving
//!   layout (what old files contain) — the baseline the interleaving win
//!   is measured against.
//! - `decode/raw`: the v3 path (header parse + one `unpack_range` sweep)
//!   over every section, the ceiling no entropy codec can beat.
//!
//! After the timed groups it appends one `decode/speedup` JSON line with
//! directly-timed interleaved-over-single ratios per codec (stable even
//! in smoke mode, where criterion runs a single iteration); CI asserts
//! the line and its floor.
//!
//! Full mode uses a ~560K-row table; smoke mode (`COHANA_BENCH_SMOKE=1`,
//! CI) shrinks it to a bit-rot check.

use cohana_activity::{generate, GeneratorConfig};
use cohana_storage::{
    codec::{decode_section_into, encode_section, raw_section_len},
    Codec, CompressedTable, CompressionOptions,
};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Instant;

/// One encoded section plus what its decoder must be told.
struct Section {
    bytes: Vec<u8>,
    expected_raw: u64,
    expected_len: u64,
    /// Decoded output size — `width u8 | len u64 | words…`, the same
    /// "bytes the blob decodes to" unit the io-stats layer counts.
    raw_bytes: u64,
}

/// Encode every column's values with `codec` in the given stream layout.
fn encode_all(columns: &[&(Vec<u64>, u8)], codec: Codec, ways: usize) -> Vec<Section> {
    columns
        .iter()
        .filter_map(|(values, width)| {
            let bytes = encode_section(values, *width, codec, ways)?;
            let raw = raw_section_len(*width, values.len() as u64);
            Some(Section {
                bytes,
                expected_raw: raw,
                expected_len: values.len() as u64,
                raw_bytes: raw,
            })
        })
        .collect()
}

/// The codec the v4 writer would store this column under: smallest
/// encoding wins, earlier codec on ties — the same rule as
/// `codec::encode_array`, with each entropy codec in its auto-selected
/// (interleaved) layout.
fn selected_codec(values: &[u64], width: u8) -> Codec {
    let mut best = (Codec::Raw, raw_section_len(width, values.len() as u64) as usize);
    for codec in [Codec::Delta, Codec::Ans] {
        if let Some(bytes) = encode_section(values, width, codec, 4) {
            if bytes.len() < best.1 {
                best = (codec, bytes.len());
            }
        }
    }
    best.0
}

/// Decode every section once into the shared scratch vector.
fn decode_all(codec: Codec, sections: &[Section], scratch: &mut Vec<u64>) -> u64 {
    let mut sink = 0u64;
    for s in sections {
        decode_section_into(codec, &s.bytes, s.expected_raw, Some(s.expected_len), scratch)
            .expect("bench sections decode");
        sink = sink.wrapping_add(scratch.last().copied().unwrap_or(0));
    }
    sink
}

/// Directly-timed decoded-bytes/s over a few repetitions (best-of), for
/// the speedup line: criterion's smoke mode runs one iteration, too noisy
/// to assert a ratio on.
fn measure_mbps(codec: Codec, sections: &[Section], total: u64) -> f64 {
    let mut scratch = Vec::new();
    let reps = if std::env::var_os("COHANA_BENCH_SMOKE").is_some() { 3 } else { 10 };
    let mut best = f64::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(decode_all(codec, sections, &mut scratch));
        best = best.min(start.elapsed().as_secs_f64());
    }
    total as f64 / best / 1e6
}

fn bench_decode(c: &mut Criterion) {
    let smoke = std::env::var_os("COHANA_BENCH_SMOKE").is_some();
    let users = if smoke { 200 } else { 6_000 };
    let table = generate(&GeneratorConfig::new(users));
    let compressed =
        CompressedTable::build(&table, CompressionOptions::with_chunk_size(16 * 1024)).unwrap();
    let schema = compressed.schema().clone();

    // Block-decode every non-user column of every chunk back to plain
    // values — the arrays the codecs actually see at write time.
    let mut columns: Vec<(Vec<u64>, u8)> = Vec::new();
    for chunk in compressed.chunks() {
        for (attr, col) in chunk.columns().iter().enumerate() {
            let Some(col) = col else { continue };
            if attr == schema.user_idx() {
                continue;
            }
            let packed = col.packed();
            let mut values = vec![0u64; packed.len()];
            packed.unpack_range(0, packed.len(), &mut values);
            columns.push((values, packed.width()));
        }
    }

    let all: Vec<&(Vec<u64>, u8)> = columns.iter().collect();
    let delta_cols: Vec<&(Vec<u64>, u8)> =
        all.iter().copied().filter(|(v, w)| selected_codec(v, *w) == Codec::Delta).collect();
    let ans_cols: Vec<&(Vec<u64>, u8)> =
        all.iter().copied().filter(|(v, w)| selected_codec(v, *w) == Codec::Ans).collect();

    let cases: Vec<(&str, Codec, Vec<Section>)> = vec![
        ("delta", Codec::Delta, encode_all(&delta_cols, Codec::Delta, 4)),
        ("delta_single", Codec::Delta, encode_all(&delta_cols, Codec::Delta, 1)),
        ("ans", Codec::Ans, encode_all(&ans_cols, Codec::Ans, 4)),
        ("ans_single", Codec::Ans, encode_all(&ans_cols, Codec::Ans, 1)),
        ("raw", Codec::Raw, encode_all(&all, Codec::Raw, 1)),
    ];

    let mut g = c.benchmark_group("decode");
    let mut scratch = Vec::new();
    for (name, codec, sections) in &cases {
        let total: u64 = sections.iter().map(|s| s.raw_bytes).sum();
        eprintln!(
            "# decode/{name}: {} sections, {} encoded bytes, {total} decoded bytes",
            sections.len(),
            sections.iter().map(|s| s.bytes.len()).sum::<usize>()
        );
        g.throughput(Throughput::Bytes(total));
        g.bench_function(*name, |b| {
            b.iter(|| std::hint::black_box(decode_all(*codec, sections, &mut scratch)))
        });
    }
    g.finish();

    // The interleaving win, timed directly so the ratio holds still even
    // under smoke mode's single criterion iteration.
    let mut speedups = Vec::new();
    for (multi, single, codec) in
        [("delta", "delta_single", Codec::Delta), ("ans", "ans_single", Codec::Ans)]
    {
        let m = cases.iter().find(|c| c.0 == multi).unwrap();
        let s = cases.iter().find(|c| c.0 == single).unwrap();
        let total: u64 = m.2.iter().map(|x| x.raw_bytes).sum();
        let m_mbps = measure_mbps(codec, &m.2, total);
        let s_mbps = measure_mbps(codec, &s.2, total);
        let ratio = m_mbps / s_mbps.max(f64::MIN_POSITIVE);
        eprintln!(
            "# decode/speedup {}: interleaved {m_mbps:.0} MB/s vs single-state {s_mbps:.0} MB/s \
             ({ratio:.2}x)",
            codec.name()
        );
        speedups.push(format!(
            "\"{}_mbps\": {m_mbps:.1}, \"{}_single_mbps\": {s_mbps:.1}, \
             \"{}_speedup\": {ratio:.3}",
            codec.name(),
            codec.name(),
            codec.name()
        ));
    }
    record_line(&format!("{{\"bench\": \"decode/speedup\", {}}}", speedups.join(", ")));
}

/// Append one extra JSON line to the same report file the criterion shim
/// writes (bench binaries run sequentially, so appending is race-free).
fn record_line(line: &str) {
    let Some(path) = std::env::var_os("COHANA_BENCH_REPORT") else { return };
    if let Ok(mut f) =
        std::fs::OpenOptions::new().create(true).append(true).open(std::path::Path::new(&path))
    {
        use std::io::Write;
        let _ = writeln!(f, "{line}");
    }
}

criterion_group!(benches, bench_decode);
criterion_main!(benches);
