//! Incremental-ingest microbenchmarks: append throughput for the two batch
//! shapes (new users only — the pure-append fast path — vs time-sliced
//! batches whose returning users force chunk rewrites), plus Q1 latency on
//! an appended file against the same file compacted.
//!
//! CI runs this bench in smoke mode (`COHANA_BENCH_SMOKE=1`, one iteration
//! per bench) so append/compact bit-rot fails the workflow.

use cohana_activity::{generate, ActivityTable, GeneratorConfig, TableBuilder};
use cohana_core::{paper, plan_query, PlannerOptions, Statement};
use cohana_storage::{persist, ChunkSource, CompressedTable, CompressionOptions, FileSource};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn bench_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("cohana-ingest-bench");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Contiguous time slices (returning users in every later slice).
fn time_slices(table: &ActivityTable, k: usize) -> Vec<ActivityTable> {
    let tidx = table.schema().time_idx();
    let mut order: Vec<usize> = (0..table.num_rows()).collect();
    order.sort_by_key(|&r| table.rows()[r].get(tidx).as_int().unwrap());
    let per = table.num_rows().div_ceil(k).max(1);
    order
        .chunks(per)
        .map(|rows| {
            let mut b = TableBuilder::new(table.schema().clone());
            for &r in rows {
                b.push(table.rows()[r].values().to_vec()).unwrap();
            }
            b.finish().unwrap()
        })
        .collect()
}

/// Split per user block (no user spans batches: appends never rewrite).
fn user_slices(table: &ActivityTable, k: usize) -> Vec<ActivityTable> {
    let mut builders: Vec<TableBuilder> =
        (0..k).map(|_| TableBuilder::new(table.schema().clone())).collect();
    for (bi, block) in table.user_blocks().enumerate() {
        for row in block.range() {
            builders[bi % k].push(table.rows()[row].values().to_vec()).unwrap();
        }
    }
    builders.into_iter().map(|b| b.finish().unwrap()).collect()
}

fn bench_append(c: &mut Criterion) {
    // Cohort-clustered arrival: the realistic live-traffic shape (new users
    // dominate late batches).
    let table = generate(&GeneratorConfig::cohort_clustered(300));
    let chunk = CompressionOptions::with_chunk_size(4 * 1024);
    let dir = bench_dir();

    let mut g = c.benchmark_group("ingest");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for (name, slices) in [
        ("append_new_users", user_slices(&table, 2)),
        ("append_time_slice", time_slices(&table, 2)),
    ] {
        let path = dir.join(format!("{name}.cohana"));
        let first = CompressedTable::build(&slices[0], chunk).unwrap();
        let image = persist::to_bytes(&first);
        g.bench_function(name, |b| {
            b.iter_batched(
                // Reset the file to the pre-append image each iteration.
                || std::fs::write(&path, &image).unwrap(),
                |()| persist::append(&path, &slices[1]).unwrap(),
                BatchSize::PerIteration,
            )
        });
        std::fs::remove_file(&path).ok();
    }
    g.finish();
}

fn bench_query_after_ingest(c: &mut Criterion) {
    let table = generate(&GeneratorConfig::cohort_clustered(300));
    let chunk = CompressionOptions::with_chunk_size(4 * 1024);
    let dir = bench_dir();
    let slices = time_slices(&table, 4);

    let appended = dir.join("q1-appended.cohana");
    persist::write_file(&CompressedTable::build(&slices[0], chunk).unwrap(), &appended).unwrap();
    for s in &slices[1..] {
        persist::append(&appended, s).unwrap();
    }
    let compacted = dir.join("q1-compacted.cohana");
    std::fs::copy(&appended, &compacted).unwrap();
    persist::compact(&compacted).unwrap();

    let schema = table.schema();
    let plan = plan_query(&paper::q1(), schema, PlannerOptions::default()).unwrap();
    let mut g = c.benchmark_group("ingest_q1");
    g.sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for (name, path) in [("post_append", &appended), ("post_compact", &compacted)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let src = FileSource::open(path).unwrap();
                Statement::with_plan(Arc::new(src), plan.clone(), 1).unwrap().execute().unwrap()
            })
        });
    }
    g.finish();

    // One cold report of what each image costs to read (not timed).
    for (name, path) in [("post_append", &appended), ("post_compact", &compacted)] {
        let src = Arc::new(FileSource::open(path).unwrap());
        Statement::with_plan(src.clone(), plan.clone(), 1).unwrap().execute().unwrap();
        let io = src.io_stats();
        eprintln!(
            "# ingest_q1/{name} io: decoded {} of {} chunks, read {} of {} file bytes",
            io.chunks_decoded,
            src.num_chunks(),
            io.bytes_read,
            std::fs::metadata(path).unwrap().len(),
        );
    }
    std::fs::remove_file(&appended).ok();
    std::fs::remove_file(&compacted).ok();
}

criterion_group!(benches, bench_append, bench_query_after_ingest);
criterion_main!(benches);
