//! Cold-scan cost of the v4 per-blob codecs versus the raw v3 layout.
//!
//! The v4 format compresses each column blob with whichever of
//! raw / delta-then-bit-pack / range-ANS is smallest, so a cold scan reads
//! fewer disk bytes but pays a decode step per compressed blob. This bench
//! writes the same default-generator dataset as a v3 and a v4 file and
//! measures the trade both ways:
//!
//! - `lazy_io/q1_cold_{v3,v4}`: Q1 against a freshly opened `FileSource`
//!   every iteration — the cold-open latency the acceptance bar guards
//!   ("cold-open Q1 no worse than v3").
//! - `lazy_io/q1_budget_{v3,v4}`: the same cold scan through a cache budget
//!   of 1/8 of the v3 file, where the smaller v4 reads show up as fewer
//!   evictions and less re-read traffic.
//!
//! After the timed groups it appends plain JSON lines to the
//! `COHANA_BENCH_REPORT` file (the same one the criterion shim writes):
//! one `lazy_io/compression` line per column plus a `total` line with the
//! v3/v4 file sizes and ratio, and one `lazy_io/decode` line per codec
//! with blob counts and decode nanoseconds, both backed by
//! `persist::inspect`. CI greps for these lines in the smoke report.
//!
//! Full mode uses a ~560K-row table; smoke mode (`COHANA_BENCH_SMOKE=1`,
//! CI) shrinks it to a bit-rot check.

use cohana_activity::{generate, GeneratorConfig};
use cohana_core::{paper, PlannerOptions, Statement};
use cohana_storage::{
    persist, ChunkSource, Codec, CompressedTable, CompressionOptions, FileSource,
};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn bench_lazy_io(c: &mut Criterion) {
    let smoke = std::env::var_os("COHANA_BENCH_SMOKE").is_some();
    let users = if smoke { 200 } else { 6_000 };
    let table = generate(&GeneratorConfig::new(users));
    let rows = table.num_rows() as u64;
    let compressed =
        CompressedTable::build(&table, CompressionOptions::with_chunk_size(16 * 1024)).unwrap();

    let dir = std::env::temp_dir().join("cohana-bench-lazy-io-files");
    std::fs::create_dir_all(&dir).unwrap();
    let v3_path = dir.join("lazy-io-v3.cohana");
    let v4_path = dir.join("lazy-io-v4.cohana");
    std::fs::write(&v3_path, persist::to_bytes_v3(&compressed)).unwrap();
    persist::write_file(&compressed, &v4_path).unwrap();
    let v3_len = std::fs::metadata(&v3_path).unwrap().len();
    let v4_len = std::fs::metadata(&v4_path).unwrap().len();
    eprintln!(
        "# lazy_io dataset: {rows} rows, v3 file {v3_len} bytes, v4 file {v4_len} bytes \
         ({:.2}x smaller)",
        v3_len as f64 / v4_len as f64
    );

    let q1 = paper::q1();
    let files: [(&str, &PathBuf); 2] = [("v3", &v3_path), ("v4", &v4_path)];

    let mut g = c.benchmark_group("lazy_io");
    g.throughput(Throughput::Elements(rows));
    g.sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    // Cold-open: a fresh FileSource per iteration, so every read hits the
    // file and every compressed blob pays its decode.
    for (name, path) in files {
        g.bench_function(format!("q1_cold_{name}"), |b| {
            b.iter(|| {
                let src = Arc::new(FileSource::open(path).unwrap());
                Statement::over(src, &q1, PlannerOptions::default(), 1).unwrap().execute().unwrap()
            })
        });
    }
    // Constrained budget: cache holds 1/8 of the v3 image (same byte budget
    // for both versions — v4's smaller blobs fit more of the working set).
    let budget = (v3_len as usize / 8).max(1);
    for (name, path) in files {
        g.bench_function(format!("q1_budget_{name}"), |b| {
            b.iter(|| {
                let src = Arc::new(FileSource::open_with_budget(path, budget).unwrap());
                Statement::over(src, &q1, PlannerOptions::default(), 1).unwrap().execute().unwrap()
            })
        });
    }
    g.finish();

    // One untimed cold Q1 per version for the byte-accounting line: disk
    // bytes read vs bytes decoded is the direct measure of codec savings on
    // the query's working set.
    for (name, path) in files {
        let src = Arc::new(FileSource::open(path).unwrap());
        Statement::over(src.clone(), &q1, PlannerOptions::default(), 1).unwrap().execute().unwrap();
        let io = src.io_stats();
        eprintln!(
            "# lazy_io/q1 {name}: {} bytes read from disk, {} bytes decoded",
            io.bytes_read, io.bytes_decompressed
        );
        record_line(&format!(
            "{{\"bench\": \"lazy_io/q1_io\", \"version\": \"{name}\", \"bytes_read\": {}, \
             \"bytes_decompressed\": {}}}",
            io.bytes_read, io.bytes_decompressed
        ));
    }

    // Constrained-budget sweep, untimed: Q1–Q8 through one shared cache of
    // 1/8 the v3 image. Evictions force re-reads, so the disk traffic gap
    // (not wall time, which page-cache-warm runs hide) is the cold-scan win
    // the smaller v4 blobs buy.
    for (name, path) in files {
        let src = Arc::new(FileSource::open_with_budget(path, budget).unwrap());
        for q in [paper::q1(), paper::q2(), paper::q3(), paper::q4(), paper::q7(7), paper::q8(7)] {
            Statement::over(src.clone(), &q, PlannerOptions::default(), 1)
                .unwrap()
                .execute()
                .unwrap();
        }
        let io = src.io_stats();
        eprintln!(
            "# lazy_io/budget {name}: {} bytes read from disk over Q1-Q4+Q7-Q8, {} evictions",
            io.bytes_read, io.cache_evictions
        );
        record_line(&format!(
            "{{\"bench\": \"lazy_io/budget_io\", \"version\": \"{name}\", \"budget\": {budget}, \
             \"bytes_read\": {}, \"bytes_decompressed\": {}, \"evictions\": {}}}",
            io.bytes_read, io.bytes_decompressed, io.cache_evictions
        ));
    }

    record_compression(&v4_path, v3_len, v4_len);
    std::fs::remove_file(&v3_path).ok();
    std::fs::remove_file(&v4_path).ok();
}

/// Walk the v4 file with `persist::inspect` and append the per-column and
/// per-codec evidence lines. A v4 blob's uncompressed size is exactly its
/// v3 serialization, so `uncompressed_bytes` doubles as the v3 baseline.
fn record_compression(v4_path: &Path, v3_len: u64, v4_len: u64) {
    let info = persist::inspect(v4_path).expect("inspect v4 file");
    for col in &info.columns {
        record_line(&format!(
            "{{\"bench\": \"lazy_io/compression\", \"column\": \"{}\", \"v3_bytes\": {}, \
             \"v4_bytes\": {}, \"ratio\": {:.3}}}",
            col.name,
            col.uncompressed_bytes,
            col.compressed_bytes,
            col.ratio()
        ));
        eprintln!(
            "# lazy_io/compression {}: {} -> {} bytes ({:.2}x)",
            col.name,
            col.uncompressed_bytes,
            col.compressed_bytes,
            col.ratio()
        );
    }
    record_line(&format!(
        "{{\"bench\": \"lazy_io/compression\", \"column\": \"total\", \"v3_bytes\": {}, \
         \"v4_bytes\": {}, \"ratio\": {:.3}, \"v3_file_bytes\": {v3_len}, \
         \"v4_file_bytes\": {v4_len}, \"file_ratio\": {:.3}}}",
        info.uncompressed_bytes(),
        info.compressed_bytes(),
        info.ratio(),
        v3_len as f64 / v4_len as f64
    ));
    for (tag, stats) in info.codecs.iter().enumerate() {
        let name = Codec::from_tag(tag as u8).expect("codec tag").name();
        record_line(&format!(
            "{{\"bench\": \"lazy_io/decode\", \"codec\": \"{name}\", \"blobs\": {}, \
             \"compressed_bytes\": {}, \"uncompressed_bytes\": {}, \"decode_ns\": {}, \
             \"mbps_out\": {:.1}}}",
            stats.blobs,
            stats.compressed_bytes,
            stats.uncompressed_bytes,
            stats.decode_nanos,
            stats.decode_mbps()
        ));
    }
}

/// Append one extra JSON line to the same report file the criterion shim
/// writes (bench binaries run sequentially, so appending is race-free).
fn record_line(line: &str) {
    let Some(path) = std::env::var_os("COHANA_BENCH_REPORT") else { return };
    if let Ok(mut f) =
        std::fs::OpenOptions::new().create(true).append(true).open(std::path::Path::new(&path))
    {
        use std::io::Write;
        let _ = writeln!(f, "{line}");
    }
}

criterion_group!(benches, bench_lazy_io);
criterion_main!(benches);
