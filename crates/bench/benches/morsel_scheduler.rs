//! Morsel-driven work-stealing under a skewed chunk-size distribution.
//!
//! The static per-chunk worker stride this scheduler replaced degrades
//! exactly here: one whale chunk holding ~half the table serializes on
//! whichever worker draws it, so adding workers stops helping and query
//! latency grows a fat tail. Morsel scheduling splits the whale into
//! ~16K-row user-block morsels that idle workers steal, so parallel latency
//! should stay tight — the acceptance bar is p99 ≤ 1.3× p50 at
//! parallelism 4, and both percentiles land in the JSON-lines report
//! (`COHANA_BENCH_REPORT`) on every `morsel_scheduler/...` line.
//!
//! After the timed benches, one streamed parallel execution reports the
//! per-worker busy-time split (`QueryStream::worker_busy`) and appends it to
//! the report as a `morsel_scheduler/worker_busy` line: with stealing, no
//! worker's share should dwarf the others' even though one chunk holds half
//! the rows.
//!
//! Full mode scans a ~1.1M-row skewed table; smoke mode
//! (`COHANA_BENCH_SMOKE=1`, CI) shrinks it to a bit-rot check.

use cohana_activity::{generate, GeneratorConfig};
use cohana_core::{paper, CohortQuery, PlannerOptions, Statement};
use cohana_storage::{CompressedTable, CompressionOptions};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;
use std::time::Duration;

fn bench_morsel_scheduler(c: &mut Criterion) {
    let smoke = std::env::var_os("COHANA_BENCH_SMOKE").is_some();
    // `skewed` doubles the normal users' rows into one whale user, so
    // 6_000 users ≈ 560K normal rows + a single ~560K-row whale chunk.
    let users = if smoke { 60 } else { 6_000 };
    let table = generate(&GeneratorConfig::skewed(users));
    let rows = table.num_rows() as u64;
    let compressed = Arc::new(
        CompressedTable::build(&table, CompressionOptions::with_chunk_size(16 * 1024)).unwrap(),
    );
    let whale_rows =
        compressed.chunks().iter().map(|ch| ch.num_rows()).max().unwrap_or(0) as f64 / rows as f64;
    eprintln!(
        "# morsel_scheduler dataset: {rows} rows, {} chunks, largest chunk {:.0}% of table",
        compressed.chunks().len(),
        whale_rows * 100.0
    );

    let queries: Vec<(&str, CohortQuery)> = vec![("q1", paper::q1()), ("q3", paper::q3())];

    let mut g = c.benchmark_group("morsel_scheduler");
    g.throughput(Throughput::Elements(rows));
    g.sample_size(20)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for (name, query) in &queries {
        for workers in [1usize, 4] {
            let stmt =
                Statement::over(compressed.clone(), query, PlannerOptions::default(), workers)
                    .unwrap();
            g.bench_function(format!("{name}_skewed_p{workers}"), |b| {
                b.iter(|| stmt.execute().unwrap())
            });
        }
    }
    g.finish();

    // One untimed streamed run at parallelism 4: the per-worker busy split
    // is the direct evidence of stealing (a static stride would put the
    // whole whale chunk on one worker).
    let stmt = Statement::over(compressed, &paper::q3(), PlannerOptions::default(), 4).unwrap();
    let mut stream = stmt.stream();
    for batch in &mut stream {
        batch.unwrap();
    }
    let busy = stream.worker_busy();
    let stats = stream.stats();
    drop(stream);
    eprintln!(
        "# morsel_scheduler/q3 p4: {} morsels, per-worker busy ms {:?}",
        stats.morsels_executed,
        busy.iter().map(|ns| ns / 1_000_000).collect::<Vec<_>>()
    );
    record_worker_busy(&busy, stats.morsels_executed);
}

/// Append the per-worker busy split as one extra JSON line to the same
/// report file the criterion shim writes (bench binaries run sequentially,
/// so appending is race-free).
fn record_worker_busy(busy_ns: &[u64], morsels: u64) {
    let Some(path) = std::env::var_os("COHANA_BENCH_REPORT") else { return };
    let joined = busy_ns.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(", ");
    let line = format!(
        "{{\"bench\": \"morsel_scheduler/worker_busy\", \"workers\": {}, \"morsels\": {morsels}, \
         \"worker_busy_ns\": [{joined}]}}",
        busy_ns.len()
    );
    if let Ok(mut f) =
        std::fs::OpenOptions::new().create(true).append(true).open(std::path::Path::new(&path))
    {
        use std::io::Write;
        let _ = writeln!(f, "{line}");
    }
}

criterion_group!(benches, bench_morsel_scheduler);
criterion_main!(benches);
