//! Figure 10 (criterion form): the cost of preparing each system for cohort
//! queries — materialized-view construction on the row/columnar baselines
//! vs COHANA's table compression. The paper reports MV generation orders of
//! magnitude more expensive than compression.

use cohana_activity::{generate, GeneratorConfig};
use cohana_relational::{ColEngine, RowEngine};
use cohana_storage::{CompressedTable, CompressionOptions};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::time::Duration;

fn bench_preparation(c: &mut Criterion) {
    let table = generate(&GeneratorConfig::new(400));

    let mut g = c.benchmark_group("fig10_preparation");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    g.bench_function("cohana_compress", |b| {
        b.iter(|| {
            CompressedTable::build(std::hint::black_box(&table), CompressionOptions::default())
                .unwrap()
        })
    });
    g.bench_function("monet_create_mv", |b| {
        b.iter_batched(
            || ColEngine::load(&table),
            |mut e| {
                e.create_mv("launch");
                e
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("pg_create_mv", |b| {
        b.iter_batched(
            || RowEngine::load(&table),
            |mut e| {
                e.create_mv("launch");
                e
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_preparation);
criterion_main!(benches);
