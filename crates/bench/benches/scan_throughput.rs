//! End-to-end scan throughput of the vectorized chunk executor.
//!
//! The per-chunk pipeline (block time decode, per-chunk predicate
//! specialization, allocation-free inner loop — see `docs/PERF.md`) exists
//! to raise rows/sec on exactly these shapes: an unselective full scan
//! (Q1), a predicate-heavy scan (Q4: birth + correlated age selection),
//! and an integer aggregate (Q3). Each bench executes one prepared
//! statement end to end; the group's `Throughput::Elements` is the table's
//! row count, so the JSON-lines report (`COHANA_BENCH_REPORT`) records
//! rows/sec for every entry — the speedup is a recorded number, not a
//! claim.
//!
//! Full mode scans a generated ~1M-row table; smoke mode
//! (`COHANA_BENCH_SMOKE=1`, CI) shrinks the dataset so the bench stays a
//! bit-rot check. Sources: the resident [`CompressedTable`] and a v3
//! [`FileSource`] whose segment cache is warmed first (decode cost without
//! disk I/O in the timed region).

use cohana_activity::{generate, GeneratorConfig};
use cohana_core::{paper, CohortQuery, PlannerOptions, Statement};
use cohana_storage::{persist, ChunkSource, CompressedTable, CompressionOptions, FileSource};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;
use std::time::Duration;

fn bench_scan_throughput(c: &mut Criterion) {
    let smoke = std::env::var_os("COHANA_BENCH_SMOKE").is_some();
    // ~94 rows/user under the default generator: 11_000 users ≈ 1M rows.
    let users = if smoke { 200 } else { 11_000 };
    let table = generate(&GeneratorConfig::new(users));
    let rows = table.num_rows() as u64;
    let compressed = Arc::new(
        CompressedTable::build(&table, CompressionOptions::with_chunk_size(64 * 1024)).unwrap(),
    );
    eprintln!(
        "# scan_throughput dataset: {rows} rows, {} users, {} chunks",
        table.num_users(),
        compressed.chunks().len()
    );

    let dir = std::env::temp_dir().join("cohana-scan-throughput-bench");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("scan-throughput.cohana");
    persist::write_file(&compressed, &path).unwrap();
    let v3 = Arc::new(FileSource::open(&path).unwrap());

    let queries: Vec<(&str, CohortQuery)> =
        vec![("q1", paper::q1()), ("q3", paper::q3()), ("q4", paper::q4())];

    let mut g = c.benchmark_group("scan_throughput");
    g.throughput(Throughput::Elements(rows));
    g.sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for (name, query) in &queries {
        for (src_name, src) in [
            ("resident", Arc::clone(&compressed) as Arc<dyn ChunkSource>),
            ("v3_warm", Arc::clone(&v3) as Arc<dyn ChunkSource>),
        ] {
            let stmt = Statement::over(src, query, PlannerOptions::default(), 1).unwrap();
            stmt.execute().unwrap(); // warm the segment cache
            g.bench_function(format!("{name}_{src_name}"), |b| b.iter(|| stmt.execute().unwrap()));
        }
    }
    g.finish();

    // One untimed run's own accounting: the executor-attributed rows/sec.
    let stmt = Statement::over(compressed, &paper::q1(), PlannerOptions::default(), 1).unwrap();
    let report = stmt.execute().unwrap();
    if let Some(stats) = report.stats {
        eprintln!("# scan_throughput/q1 stats: {stats}");
    }
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench_scan_throughput);
criterion_main!(benches);
