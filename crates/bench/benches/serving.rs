//! Serving-layer load generator: N concurrent clients fire the paper's
//! Q1–Q8 mix over the wire at an in-process `cohana-serve`, measuring
//! end-to-end (network + admission + engine) latency percentiles and
//! aggregate scan throughput under real connection concurrency.
//!
//! This is a custom harness (`harness = false`, no criterion): the subject
//! is the *distribution* of per-query latencies under contention and the
//! admission queue's behaviour, not a single hot loop. Results go to
//! stderr and — when `COHANA_BENCH_REPORT` is set — as JSON lines to the
//! shared report file: one `serving/<query>` line per query kind and one
//! `serving/mix` aggregate carrying `p50_seconds`, `p99_seconds`,
//! `rows_per_sec` (rows scanned server-side per wall second), and the
//! admission high-water marks. CI smoke-runs this (`COHANA_BENCH_SMOKE=1`,
//! 8 clients × 1 pass — still ≥ 8 live concurrent connections) and greps
//! the report for the `serving/` lines.

use cohana_activity::{generate, GeneratorConfig, Timestamp};
use cohana_core::{paper, Cohana, CohortQuery, EngineOptions};
use cohana_server::{Client, Server, ServerConfig};
use cohana_storage::{CompressedTable, CompressionOptions};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn queries() -> Vec<(&'static str, CohortQuery)> {
    let d1 = Timestamp::parse("2013-05-21").unwrap().secs();
    let d2 = Timestamp::parse("2013-05-27").unwrap().secs();
    vec![
        ("q1", paper::q1()),
        ("q2", paper::q2()),
        ("q3", paper::q3()),
        ("q4", paper::q4()),
        ("q5", paper::q5(d1, d2)),
        ("q6", paper::q6(d1, d2)),
        ("q7", paper::q7(7)),
        ("q8", paper::q8(7)),
    ]
}

/// Nearest-rank percentile over unsorted samples.
fn percentile(samples: &mut [Duration], p: f64) -> Duration {
    samples.sort_unstable();
    let rank = ((p / 100.0) * samples.len() as f64).ceil().max(1.0) as usize;
    samples[rank.min(samples.len()) - 1]
}

fn main() {
    let smoke = std::env::var_os("COHANA_BENCH_SMOKE").is_some();
    let (users, clients, passes) = if smoke { (300, 8, 1) } else { (3_000, 16, 4) };
    let cap = 4;

    eprintln!("# serving: generating {users} users…");
    let table = generate(&GeneratorConfig::new(users));
    let rows = table.num_rows();
    let compressed =
        CompressedTable::build(&table, CompressionOptions::with_chunk_size(16 * 1024)).unwrap();
    let engine = Cohana::new(EngineOptions::default());
    engine.register("GameActions", compressed);

    let mut server = Server::start(
        Arc::new(engine),
        ServerConfig { admission_cap: cap, queue_bound: 1024, ..ServerConfig::default() },
    )
    .expect("server binds");
    let addr = server.local_addr();
    eprintln!("# serving: {rows} rows at {addr}, {clients} clients x {passes} passes of Q1-Q8");

    /// (query name, latency, rows the server scanned for it)
    type Sample = (&'static str, Duration, u64);
    let samples: Arc<Mutex<Vec<Sample>>> = Arc::new(Mutex::new(Vec::new()));
    let sql: Arc<Vec<(&'static str, String)>> =
        Arc::new(queries().into_iter().map(|(n, q)| (n, q.to_sql())).collect());

    let wall_start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|i| {
            let samples = samples.clone();
            let sql = sql.clone();
            std::thread::spawn(move || {
                let mut client =
                    Client::connect(addr, &format!("bench-{i}")).expect("client connects");
                let prepared: Vec<_> = sql
                    .iter()
                    .map(|(name, text)| (*name, client.prepare(text).expect("prepares")))
                    .collect();
                for pass in 0..passes {
                    for k in 0..prepared.len() {
                        // Offset per client and pass so the in-flight mix
                        // overlaps different queries, not eight copies of Q1.
                        let (name, p) = &prepared[(i + pass + k) % prepared.len()];
                        let started = Instant::now();
                        let report = client
                            .execute(p)
                            .expect("execute starts")
                            .collect()
                            .expect("remote query runs");
                        let latency = started.elapsed();
                        let scanned = report.stats.expect("server stats attached").rows_scanned;
                        samples.lock().unwrap().push((name, latency, scanned));
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread succeeds");
    }
    let wall = wall_start.elapsed();
    let admission = server.admission_stats();
    server.shutdown();

    let all = samples.lock().unwrap().clone();
    let total_queries = all.len();
    let total_scanned: u64 = all.iter().map(|(_, _, r)| r).sum();
    let rows_per_sec = total_scanned as f64 / wall.as_secs_f64().max(1e-9);

    let mut by_query: BTreeMap<&'static str, Vec<Duration>> = BTreeMap::new();
    for (name, latency, _) in &all {
        by_query.entry(name).or_default().push(*latency);
    }
    for (name, mut lat) in by_query {
        let p50 = percentile(&mut lat, 50.0);
        let p99 = percentile(&mut lat, 99.0);
        eprintln!("# serving/{name}: {} runs, p50 {p50:.1?}, p99 {p99:.1?}", lat.len());
        record_line(&format!(
            "{{\"bench\": \"serving/{name}\", \"runs\": {}, \"p50_seconds\": {:.6}, \
             \"p99_seconds\": {:.6}}}",
            lat.len(),
            p50.as_secs_f64(),
            p99.as_secs_f64()
        ));
    }

    let mut lat: Vec<Duration> = all.iter().map(|(_, d, _)| *d).collect();
    let p50 = percentile(&mut lat, 50.0);
    let p99 = percentile(&mut lat, 99.0);
    eprintln!(
        "# serving/mix: {total_queries} queries over {wall:.1?}, p50 {p50:.1?}, p99 {p99:.1?}, \
         {rows_per_sec:.0} rows/s, peak {}/{} active, queue depth max {}, total queue wait {:.1?}",
        admission.peak_active, admission.cap, admission.max_queue_depth, admission.total_queue_wait
    );
    assert!(admission.peak_active <= cap, "admission cap violated under load");
    record_line(&format!(
        "{{\"bench\": \"serving/mix\", \"clients\": {clients}, \"queries\": {total_queries}, \
         \"p50_seconds\": {:.6}, \"p99_seconds\": {:.6}, \"rows_per_sec\": {:.0}, \
         \"cap\": {}, \"peak_active\": {}, \"max_queue_depth\": {}, \
         \"total_queue_wait_seconds\": {:.6}}}",
        p50.as_secs_f64(),
        p99.as_secs_f64(),
        rows_per_sec,
        admission.cap,
        admission.peak_active,
        admission.max_queue_depth,
        admission.total_queue_wait.as_secs_f64()
    ));
}

/// Append one JSON line to the shared report file (bench binaries run
/// sequentially, so appending is race-free).
fn record_line(line: &str) {
    let Some(path) = std::env::var_os("COHANA_BENCH_REPORT") else { return };
    if let Ok(mut f) =
        std::fs::OpenOptions::new().create(true).append(true).open(std::path::Path::new(&path))
    {
        use std::io::Write;
        let _ = writeln!(f, "{line}");
    }
}
