//! Sharded-ingest write path: parallel per-shard appends against the serial
//! single-file append they replace, shard compaction reclamation, and Q1
//! latency while background compaction runs.
//!
//! Three timed groups plus three recorded JSON lines:
//!
//! - `sharded_ingest/append_parallel_sharded` vs
//!   `sharded_ingest/append_serial_single_file`: the same time-sliced batch
//!   (returning users force chunk rewrites) appended to a 4-shard directory
//!   (per-shard appends run on their own threads under per-shard locks) and
//!   to one flat file. The untimed `sharded_ingest/append` line records both
//!   rows/sec rates and the speedup — the acceptance evidence that routing
//!   by user-id range buys write parallelism.
//! - `sharded_ingest/q1_during_compaction`: Q1 as a prepared statement on a
//!   live sharded table while an ingest thread keeps feeding batches and the
//!   maintenance thread auto-compacts shards past the dead-byte threshold.
//!   The recorded line carries the latency percentiles plus how many
//!   compaction passes actually fired during the window.
//! - `sharded_ingest/compaction`: dead/reclaimed byte accounting for a full
//!   compaction sweep after the appends.
//!
//! Full mode uses a ~40K-row cohort-clustered table; smoke mode
//! (`COHANA_BENCH_SMOKE=1`, CI) shrinks it to a bit-rot check.

use cohana_activity::{generate, ActivityTable, GeneratorConfig, TableBuilder};
use cohana_core::{paper, MaintenanceConfig};
use cohana_storage::{persist, shard, CompressedTable, CompressionOptions};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const SHARDS: usize = 4;

fn bench_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("cohana-sharded-ingest-bench");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Contiguous time slices (returning users in every later slice, so appends
/// rewrite chunks and leave dead bytes — the shape compaction exists for).
fn time_slices(table: &ActivityTable, k: usize) -> Vec<ActivityTable> {
    let tidx = table.schema().time_idx();
    let mut order: Vec<usize> = (0..table.num_rows()).collect();
    order.sort_by_key(|&r| table.rows()[r].get(tidx).as_int().unwrap());
    let per = table.num_rows().div_ceil(k).max(1);
    order
        .chunks(per)
        .map(|rows| {
            let mut b = TableBuilder::new(table.schema().clone());
            for &r in rows {
                b.push(table.rows()[r].values().to_vec()).unwrap();
            }
            b.finish().unwrap()
        })
        .collect()
}

/// Copy a batch with every timestamp shifted forward: repeated ingests of
/// the same slice then never collide with rows already in the table (the
/// format enforces a (user, action, time) primary key), while the returning
/// users still force the chunk rewrites that feed compaction.
fn shift_times(batch: &ActivityTable, offset: i64) -> ActivityTable {
    let tidx = batch.schema().time_idx();
    let mut b = TableBuilder::new(batch.schema().clone());
    for row in batch.rows() {
        let mut vals = row.values().to_vec();
        let t = vals[tidx].as_int().unwrap();
        vals[tidx] = cohana_activity::Value::Int(t + offset);
        b.push(vals).unwrap();
    }
    b.finish().unwrap()
}

/// Reset a sharded directory to the image built from `base`.
fn reset_sharded(dir: &Path, base: &ActivityTable, chunk: CompressionOptions) {
    std::fs::remove_dir_all(dir).ok();
    shard::create_sharded(dir, base, SHARDS, chunk).unwrap();
}

fn bench_append(c: &mut Criterion) {
    let smoke = std::env::var_os("COHANA_BENCH_SMOKE").is_some();
    let users = if smoke { 200 } else { 3_000 };
    // Uniform arrival, not cohort-clustered: every time slice then spans the
    // whole user-id range, so a batch routes to all shards (the parallel
    // case this bench exists to measure) instead of piling into the last.
    let table = generate(&GeneratorConfig::new(users));
    let chunk = CompressionOptions::with_chunk_size(4 * 1024);
    let slices = time_slices(&table, 2);
    let dir = bench_dir();

    // Serial reference: one flat file, reset to the pre-append image each
    // iteration (identical shape to the `ingest` bench's time-slice case).
    let file = dir.join("serial.cohana");
    let first = CompressedTable::build(&slices[0], chunk).unwrap();
    let image = persist::to_bytes(&first);

    // Parallel path: a 4-shard directory rebuilt from the same first slice.
    let sharded = dir.join("sharded");

    let mut g = c.benchmark_group("sharded_ingest");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    g.bench_function("append_serial_single_file", |b| {
        b.iter_batched(
            || std::fs::write(&file, &image).unwrap(),
            |()| persist::append(&file, &slices[1]).unwrap(),
            BatchSize::PerIteration,
        )
    });
    g.bench_function("append_parallel_sharded", |b| {
        b.iter_batched(
            || reset_sharded(&sharded, &slices[0], chunk),
            |()| shard::append_sharded(&sharded, &slices[1]).unwrap(),
            BatchSize::PerIteration,
        )
    });
    g.finish();

    // Untimed head-to-head for the recorded speedup line: best-of-N of each
    // path on identical inputs, reported as rows/sec.
    let reps = if smoke { 2 } else { 5 };
    let rows = slices[1].num_rows() as f64;
    let mut serial = Duration::MAX;
    let mut parallel = Duration::MAX;
    let mut shards_touched = 0;
    for _ in 0..reps {
        std::fs::write(&file, &image).unwrap();
        let t = Instant::now();
        persist::append(&file, &slices[1]).unwrap();
        serial = serial.min(t.elapsed());

        reset_sharded(&sharded, &slices[0], chunk);
        let t = Instant::now();
        let stats = shard::append_sharded(&sharded, &slices[1]).unwrap();
        parallel = parallel.min(t.elapsed());
        shards_touched = stats.shards_touched();
    }
    let serial_rate = rows / serial.as_secs_f64().max(1e-9);
    let parallel_rate = rows / parallel.as_secs_f64().max(1e-9);
    eprintln!(
        "# sharded_ingest/append: serial {serial_rate:.0} rows/s, parallel {parallel_rate:.0} \
         rows/s across {shards_touched} shards ({:.2}x)",
        parallel_rate / serial_rate
    );
    record_line(&format!(
        "{{\"bench\": \"sharded_ingest/append\", \"rows\": {}, \"shards\": {shards_touched}, \
         \"serial_rows_per_sec\": {serial_rate:.0}, \"parallel_rows_per_sec\": \
         {parallel_rate:.0}, \"speedup\": {:.3}}}",
        slices[1].num_rows(),
        parallel_rate / serial_rate
    ));

    // Compaction accounting: append every later slice serially into the
    // shard set, then sweep — the reclaimed bytes are the dead bytes the
    // returning-user rewrites left behind.
    reset_sharded(&sharded, &slices[0], chunk);
    shard::append_sharded(&sharded, &slices[1]).unwrap();
    let dead_before: u64 =
        shard::shard_space_stats(&sharded).unwrap().iter().map(|s| s.dead_bytes).sum();
    let mut reclaimed = 0u64;
    for i in 0..SHARDS {
        reclaimed += shard::compact_shard(&sharded, i).unwrap().reclaimed_bytes;
    }
    eprintln!("# sharded_ingest/compaction: {dead_before} dead bytes, {reclaimed} reclaimed");
    record_line(&format!(
        "{{\"bench\": \"sharded_ingest/compaction\", \"shards\": {SHARDS}, \"dead_bytes\": \
         {dead_before}, \"reclaimed_bytes\": {reclaimed}}}"
    ));

    std::fs::remove_dir_all(&dir).ok();
}

fn bench_query_during_compaction(c: &mut Criterion) {
    let smoke = std::env::var_os("COHANA_BENCH_SMOKE").is_some();
    let users = if smoke { 200 } else { 3_000 };
    let table = generate(&GeneratorConfig::new(users));
    let chunk = CompressionOptions::with_chunk_size(4 * 1024);
    let slices = time_slices(&table, 6);
    let dir = bench_dir().join("live");
    shard::create_sharded(&dir, &slices[0], SHARDS, chunk).unwrap();

    // An eager maintenance config so compactions actually fire inside the
    // measurement window instead of after it.
    let engine = cohana_core::Cohana::new(Default::default());
    let handle = engine
        .open(&dir)
        .maintenance(MaintenanceConfig {
            auto_compact: true,
            dead_ratio: 0.01,
            interval: Duration::from_millis(5),
        })
        .open()
        .unwrap();
    let stmt = handle.prepare(&paper::q1()).unwrap();

    // Feed the remaining slices from a writer thread with small gaps, so
    // dead bytes accumulate and the maintenance thread compacts while the
    // timed Q1 group below is running.
    let sharded = handle.sharded_table().unwrap();
    let feed: Vec<ActivityTable> = slices[1..].to_vec();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let sharded = sharded.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut cycle = 0i64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                for batch in &feed {
                    if stop.load(std::sync::atomic::Ordering::Relaxed) {
                        break;
                    }
                    // Later cycles shift timestamps so rows stay unique.
                    let fresh =
                        if cycle == 0 { batch.clone() } else { shift_times(batch, cycle << 32) };
                    sharded.ingest(&fresh).unwrap();
                    std::thread::sleep(Duration::from_millis(2));
                }
                cycle += 1;
            }
        })
    };

    let mut g = c.benchmark_group("sharded_ingest");
    g.sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    g.bench_function("q1_during_compaction", |b| b.iter(|| stmt.execute().unwrap()));
    g.finish();

    // Smoke mode runs the group for a single iteration — too short for the
    // 5ms maintenance interval to tick — so hold the writer open until at
    // least one background compaction lands (bounded; full mode's 2s
    // measurement window normally gets there on its own).
    let deadline = Instant::now() + Duration::from_secs(5);
    while sharded.maintenance_stats().auto_compactions == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    writer.join().unwrap();
    let maint = sharded.maintenance_stats();
    eprintln!(
        "# sharded_ingest/q1_during_compaction: {} maintenance passes, {} auto-compactions, \
         {} bytes reclaimed in the background",
        maint.passes, maint.auto_compactions, maint.reclaimed_bytes
    );
    record_line(&format!(
        "{{\"bench\": \"sharded_ingest/maintenance\", \"passes\": {}, \"auto_compactions\": {}, \
         \"reclaimed_bytes\": {}}}",
        maint.passes, maint.auto_compactions, maint.reclaimed_bytes
    ));
    drop(stmt);
    drop(handle);
    drop(engine);
    std::fs::remove_dir_all(dir.parent().unwrap()).ok();
}

/// Append one extra JSON line to the same report file the criterion shim
/// writes (bench binaries run sequentially, so appending is race-free).
fn record_line(line: &str) {
    let Some(path) = std::env::var_os("COHANA_BENCH_REPORT") else { return };
    if let Ok(mut f) =
        std::fs::OpenOptions::new().create(true).append(true).open(std::path::Path::new(&path))
    {
        use std::io::Write;
        let _ = writeln!(f, "{line}");
    }
}

criterion_group!(benches, bench_append, bench_query_during_compaction);
criterion_main!(benches);
