//! Storage-layer microbenchmarks: bit-packing random access, dictionary
//! lookups, table compression and decompression — the primitives behind
//! Figure 7 and the TableScan — plus the footer-indexed formats' headline
//! trade-offs: eager whole-file loading vs. O(footer) lazy opening with
//! on-demand decode on a Q2-style selective query, §4.2 chunk pruning made
//! visible by cohort-clustered arrival, and v3 projection pushdown vs. the
//! v2 whole-chunk fetch.
//!
//! CI runs this bench in smoke mode (`COHANA_BENCH_SMOKE=1`, one iteration
//! per bench) so format or harness bit-rot fails the workflow.

use cohana_activity::{generate, GeneratorConfig, SECONDS_PER_DAY};
use cohana_core::{paper, plan_query, PlannerOptions, Statement};
use cohana_storage::{
    bitpack::BitPacked, persist, ChunkSource, CompressedTable, CompressionOptions, FileSource,
    GlobalDict,
};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn bench_bitpack(c: &mut Criterion) {
    let values: Vec<u64> = (0..65_536u64).map(|i| (i * 2_654_435_761) % 1_000).collect();
    let packed = BitPacked::from_slice(&values);

    let mut g = c.benchmark_group("bitpack");
    g.measurement_time(Duration::from_millis(900)).warm_up_time(Duration::from_millis(200));
    g.bench_function("pack_64k", |b| {
        b.iter(|| BitPacked::from_slice(std::hint::black_box(&values)))
    });
    g.bench_function("random_get_64k", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i * 16_807 + 7) % values.len();
            std::hint::black_box(packed.get(i))
        })
    });
    g.bench_function("sequential_decode_64k", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for v in packed.iter() {
                sum = sum.wrapping_add(v);
            }
            std::hint::black_box(sum)
        })
    });
    g.finish();
}

fn bench_dict(c: &mut Criterion) {
    let words: Vec<String> = (0..4_096).map(|i| format!("value-{i:05}")).collect();
    let dict = GlobalDict::build(words.iter().map(|s| s.as_str()));

    let mut g = c.benchmark_group("dict");
    g.measurement_time(Duration::from_millis(900)).warm_up_time(Duration::from_millis(200));
    g.bench_function("lookup_hit", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 997) % words.len();
            std::hint::black_box(dict.lookup(&words[i]))
        })
    });
    g.bench_function("lookup_miss_rank", |b| {
        b.iter(|| std::hint::black_box(dict.rank("value-99999x")))
    });
    g.finish();
}

fn bench_compress(c: &mut Criterion) {
    let table = generate(&GeneratorConfig::new(300));
    let compressed =
        CompressedTable::build(&table, CompressionOptions::with_chunk_size(16 * 1024)).unwrap();

    let mut g = c.benchmark_group("table");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    g.bench_function("compress_300u", |b| {
        b.iter(|| {
            CompressedTable::build(
                std::hint::black_box(&table),
                CompressionOptions::with_chunk_size(16 * 1024),
            )
            .unwrap()
        })
    });
    g.bench_function("decompress_300u", |b| {
        b.iter_batched(|| compressed.clone(), |ct| ct.decompress().unwrap(), BatchSize::SmallInput)
    });
    g.bench_function("persist_roundtrip_300u", |b| {
        b.iter(|| {
            let bytes = cohana_storage::persist::to_bytes(std::hint::black_box(&compressed));
            cohana_storage::persist::from_bytes(&bytes).unwrap()
        })
    });
    g.finish();
}

/// Eager vs. lazy access to a persisted table: cold open alone, and cold
/// open followed by a selective Q2 query (birth date range). The lazy path
/// reads only the footer at open and, thanks to index-entry pruning and
/// projection pushdown, reads and decodes only the chunk columns the query
/// touches.
///
/// On the default generator every chunk's time range overlaps the Q2 birth
/// window (chunks are user-clustered and users span the whole observation
/// period), so the structural wins here are the O(footer) open and the
/// per-column fetch; [`bench_pruning_cohort_clustered`] shows chunk pruning
/// proper on time-clustered data.
fn bench_lazy_vs_eager(c: &mut Criterion) {
    let table = generate(&GeneratorConfig::new(300));
    let compressed =
        CompressedTable::build(&table, CompressionOptions::with_chunk_size(4 * 1024)).unwrap();
    let dir = std::env::temp_dir().join("cohana-storage-bench");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench-table.cohana");
    persist::write_file(&compressed, &path).unwrap();
    let query = paper::q2();
    let plan = plan_query(&query, compressed.schema(), PlannerOptions::default()).unwrap();

    let mut g = c.benchmark_group("v3_open");
    g.sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    g.bench_function("eager_open", |b| {
        b.iter(|| persist::read_file(std::hint::black_box(&path)).unwrap())
    });
    g.bench_function("lazy_open", |b| {
        b.iter(|| FileSource::open(std::hint::black_box(&path)).unwrap())
    });
    g.bench_function("eager_open_plus_q2", |b| {
        b.iter(|| {
            let t = persist::read_file(&path).unwrap();
            Statement::with_plan(Arc::new(t), plan.clone(), 1).unwrap().execute().unwrap()
        })
    });
    g.bench_function("lazy_open_plus_q2", |b| {
        b.iter(|| {
            let src = FileSource::open(&path).unwrap();
            Statement::with_plan(Arc::new(src), plan.clone(), 1).unwrap().execute().unwrap()
        })
    });
    g.finish();
    std::fs::remove_file(&path).ok();
}

/// v3 projection pushdown vs. the v2 whole-chunk fetch: the same Q1 (which
/// projects 4 of the 8 game-schema attributes) against the same table
/// persisted in both formats. The v3 run reads strictly fewer bytes; the
/// per-source I/O counters are printed once after the timed runs.
fn bench_projection_v3_vs_v2(c: &mut Criterion) {
    let table = generate(&GeneratorConfig::new(300));
    let compressed =
        CompressedTable::build(&table, CompressionOptions::with_chunk_size(4 * 1024)).unwrap();
    let dir = std::env::temp_dir().join("cohana-storage-bench");
    std::fs::create_dir_all(&dir).unwrap();
    let v2_path = dir.join("bench-proj-v2.cohana");
    let v3_path = dir.join("bench-proj-v3.cohana");
    std::fs::write(&v2_path, persist::to_bytes_v2(&compressed)).unwrap();
    persist::write_file(&compressed, &v3_path).unwrap();
    let plan = plan_query(&paper::q1(), compressed.schema(), PlannerOptions::default()).unwrap();

    let mut g = c.benchmark_group("projection");
    g.sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    g.bench_function("q1_v2_whole_chunks", |b| {
        b.iter(|| {
            let src = FileSource::open(&v2_path).unwrap();
            Statement::with_plan(Arc::new(src), plan.clone(), 1).unwrap().execute().unwrap()
        })
    });
    g.bench_function("q1_v3_projected_columns", |b| {
        b.iter(|| {
            let src = FileSource::open(&v3_path).unwrap();
            Statement::with_plan(Arc::new(src), plan.clone(), 1).unwrap().execute().unwrap()
        })
    });
    g.finish();

    // One cold report of what each path actually did (not timed).
    let v2 = Arc::new(FileSource::open(&v2_path).unwrap());
    let v3 = Arc::new(FileSource::open(&v3_path).unwrap());
    Statement::with_plan(v2.clone(), plan.clone(), 1).unwrap().execute().unwrap();
    Statement::with_plan(v3.clone(), plan.clone(), 1).unwrap().execute().unwrap();
    let (a, b) = (v2.io_stats(), v3.io_stats());
    eprintln!(
        "# projection/q1 io: v2 read {} bytes ({} chunks); v3 read {} bytes ({} chunks, {} \
         columns)",
        a.bytes_read, a.chunks_decoded, b.bytes_read, b.chunks_decoded, b.columns_decoded
    );
    std::fs::remove_file(&v2_path).ok();
    std::fs::remove_file(&v3_path).ok();
}

/// §4.2 chunk pruning made visible (the ROADMAP item): cohort-clustered
/// arrival gives chunks disjoint time bounds, so a birth date-range query
/// (Q5 over the first five days) skips most chunks entirely — no I/O, no
/// decode — while the same query on the default early-skew data touches
/// every chunk.
fn bench_pruning_cohort_clustered(c: &mut Criterion) {
    let cfg = GeneratorConfig::cohort_clustered(300);
    let table = generate(&cfg);
    let compressed =
        CompressedTable::build(&table, CompressionOptions::with_chunk_size(4 * 1024)).unwrap();
    let dir = std::env::temp_dir().join("cohana-storage-bench");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench-clustered.cohana");
    persist::write_file(&compressed, &path).unwrap();
    let start = cfg.start.secs();
    let query = paper::q5(start, start + 5 * SECONDS_PER_DAY);
    let plan = plan_query(&query, compressed.schema(), PlannerOptions::default()).unwrap();

    let mut g = c.benchmark_group("pruning_clustered");
    g.sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    g.bench_function("eager_open_plus_q5_early", |b| {
        b.iter(|| {
            let t = persist::read_file(&path).unwrap();
            Statement::with_plan(Arc::new(t), plan.clone(), 1).unwrap().execute().unwrap()
        })
    });
    g.bench_function("lazy_open_plus_q5_early", |b| {
        b.iter(|| {
            let src = FileSource::open(&path).unwrap();
            Statement::with_plan(Arc::new(src), plan.clone(), 1).unwrap().execute().unwrap()
        })
    });
    g.finish();

    let src = Arc::new(FileSource::open(&path).unwrap());
    Statement::with_plan(src.clone(), plan.clone(), 1).unwrap().execute().unwrap();
    let io = src.io_stats();
    eprintln!(
        "# pruning_clustered/q5 io: decoded {} of {} chunks, read {} bytes",
        io.chunks_decoded,
        src.num_chunks(),
        io.bytes_read
    );
    std::fs::remove_file(&path).ok();
}

criterion_group!(
    benches,
    bench_bitpack,
    bench_dict,
    bench_compress,
    bench_lazy_vs_eager,
    bench_projection_v3_vs_v2,
    bench_pruning_cohort_clustered
);
criterion_main!(benches);
