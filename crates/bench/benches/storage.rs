//! Storage-layer microbenchmarks: bit-packing random access, dictionary
//! lookups, table compression and decompression — the primitives behind
//! Figure 7 and the TableScan — plus the v2 footer-indexed format's
//! headline trade-off: eager whole-file loading vs. O(footer) lazy opening
//! with on-demand chunk decode on a Q2-style selective query.

use cohana_activity::{generate, GeneratorConfig};
use cohana_core::{execute_plan, execute_source, paper, plan_query, PlannerOptions};
use cohana_storage::{
    bitpack::BitPacked, persist, CompressedTable, CompressionOptions, FileSource, GlobalDict,
};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::time::Duration;

fn bench_bitpack(c: &mut Criterion) {
    let values: Vec<u64> = (0..65_536u64).map(|i| (i * 2_654_435_761) % 1_000).collect();
    let packed = BitPacked::from_slice(&values);

    let mut g = c.benchmark_group("bitpack");
    g.measurement_time(Duration::from_millis(900)).warm_up_time(Duration::from_millis(200));
    g.bench_function("pack_64k", |b| {
        b.iter(|| BitPacked::from_slice(std::hint::black_box(&values)))
    });
    g.bench_function("random_get_64k", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i * 16_807 + 7) % values.len();
            std::hint::black_box(packed.get(i))
        })
    });
    g.bench_function("sequential_decode_64k", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for v in packed.iter() {
                sum = sum.wrapping_add(v);
            }
            std::hint::black_box(sum)
        })
    });
    g.finish();
}

fn bench_dict(c: &mut Criterion) {
    let words: Vec<String> = (0..4_096).map(|i| format!("value-{i:05}")).collect();
    let dict = GlobalDict::build(words.iter().map(|s| s.as_str()));

    let mut g = c.benchmark_group("dict");
    g.measurement_time(Duration::from_millis(900)).warm_up_time(Duration::from_millis(200));
    g.bench_function("lookup_hit", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 997) % words.len();
            std::hint::black_box(dict.lookup(&words[i]))
        })
    });
    g.bench_function("lookup_miss_rank", |b| {
        b.iter(|| std::hint::black_box(dict.rank("value-99999x")))
    });
    g.finish();
}

fn bench_compress(c: &mut Criterion) {
    let table = generate(&GeneratorConfig::new(300));
    let compressed =
        CompressedTable::build(&table, CompressionOptions::with_chunk_size(16 * 1024)).unwrap();

    let mut g = c.benchmark_group("table");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    g.bench_function("compress_300u", |b| {
        b.iter(|| {
            CompressedTable::build(
                std::hint::black_box(&table),
                CompressionOptions::with_chunk_size(16 * 1024),
            )
            .unwrap()
        })
    });
    g.bench_function("decompress_300u", |b| {
        b.iter_batched(|| compressed.clone(), |ct| ct.decompress().unwrap(), BatchSize::SmallInput)
    });
    g.bench_function("persist_roundtrip_300u", |b| {
        b.iter(|| {
            let bytes = cohana_storage::persist::to_bytes(std::hint::black_box(&compressed));
            cohana_storage::persist::from_bytes(&bytes).unwrap()
        })
    });
    g.finish();
}

/// Eager vs. lazy access to a persisted v2 table: cold open alone, and cold
/// open followed by a selective Q2 query (birth date range). The lazy path
/// reads only the footer at open and, thanks to index-entry pruning, decodes
/// only the chunks the query's birth window touches.
///
/// On the synthetic generator every chunk's time range overlaps the Q2 birth
/// window (chunks are user-clustered and users span the whole observation
/// period), so open+query converges for both paths; the structural win here
/// is the O(footer) open. On time-clustered data the lazy path also skips
/// whole chunks — see the decode-counting tests in
/// `cohana-core/tests/lazy_storage.rs`.
fn bench_lazy_vs_eager(c: &mut Criterion) {
    let table = generate(&GeneratorConfig::new(300));
    let compressed =
        CompressedTable::build(&table, CompressionOptions::with_chunk_size(4 * 1024)).unwrap();
    let dir = std::env::temp_dir().join("cohana-storage-bench");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench-table.cohana");
    persist::write_file(&compressed, &path).unwrap();
    let query = paper::q2();
    let plan = plan_query(&query, compressed.schema(), PlannerOptions::default()).unwrap();

    let mut g = c.benchmark_group("v2_open");
    g.sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    g.bench_function("eager_open", |b| {
        b.iter(|| persist::read_file(std::hint::black_box(&path)).unwrap())
    });
    g.bench_function("lazy_open", |b| {
        b.iter(|| FileSource::open(std::hint::black_box(&path)).unwrap())
    });
    g.bench_function("eager_open_plus_q2", |b| {
        b.iter(|| {
            let t = persist::read_file(&path).unwrap();
            execute_plan(&t, &plan, 1).unwrap()
        })
    });
    g.bench_function("lazy_open_plus_q2", |b| {
        b.iter(|| {
            let src = FileSource::open(&path).unwrap();
            execute_source(&src, &plan, 1).unwrap()
        })
    });
    g.finish();
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench_bitpack, bench_dict, bench_compress, bench_lazy_vs_eager);
criterion_main!(benches);
