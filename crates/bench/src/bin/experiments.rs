//! `cohana-bench` — regenerate the paper's tables and figures.
//!
//! ```text
//! cohana-bench --exp all                 # every experiment, default config
//! cohana-bench --exp fig11 --scales 1,2,4,8
//! cohana-bench --exp fig6 --users 2000 --full
//! cohana-bench --exp table3 --quick --out results/
//! ```
//!
//! Results print as aligned tables and are written as CSV + JSON into the
//! output directory (default `results/`).

use cohana_bench::datasets::{BenchConfig, DatasetCache};
use cohana_bench::experiments;
use cohana_bench::report::ExperimentResult;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
cohana-bench — regenerate the tables and figures of 'Cohort Query Processing'

USAGE:
    cohana-bench [OPTIONS]

OPTIONS:
    --exp <id>        experiment to run: table2, table3, fig6, fig7, fig8,
                      fig9, fig10, fig11, ablation, parallel, lazy-io,
                      scan-throughput, morsel-scheduler,
                      ingest, sharded-ingest, serving, all [default: all]
    --users <n>       users in the scale-1 dataset        [default: 1000]
    --scales <list>   comma-separated scale factors       [default: 1,2,4,8]
    --chunks <list>   comma-separated chunk sizes         [default: 16384,65536,262144,1048576]
    --runs <n>        measured runs per point             [default: 5]
    --quick           tiny configuration for smoke tests
    --full            the paper's full scale sweep (1..64); slow
    --out <dir>       output directory for CSV/JSON       [default: results]
    --help            show this help
";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut exp = "all".to_string();
    let mut config = BenchConfig::default();
    let mut out_dir = PathBuf::from("results");

    let mut i = 0;
    while i < args.len() {
        let next = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("missing value for {}", args[*i - 1]))
        };
        match args[i].as_str() {
            "--exp" => exp = next(&mut i)?,
            "--users" => {
                config.base_users =
                    next(&mut i)?.parse().map_err(|_| "bad --users value".to_string())?
            }
            "--scales" => {
                config.scales = parse_list(&next(&mut i)?)?;
            }
            "--chunks" => {
                config.chunk_sizes = parse_list(&next(&mut i)?)?;
            }
            "--runs" => {
                config.runs = next(&mut i)?.parse().map_err(|_| "bad --runs value".to_string())?
            }
            "--quick" => {
                config = BenchConfig::quick();
            }
            "--full" => {
                config.scales = vec![1, 2, 4, 8, 16, 32, 64];
            }
            "--out" => out_dir = PathBuf::from(next(&mut i)?),
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 1;
    }

    eprintln!(
        "# dataset: {} users at scale 1, scales {:?}, {} runs/point",
        config.base_users, config.scales, config.runs
    );
    let mut cache = DatasetCache::new(config);
    eprintln!(
        "# scale-1 table: {} tuples, {} users",
        cache.base().num_rows(),
        cache.base().num_users()
    );

    let results: Vec<ExperimentResult> = match exp.as_str() {
        "table2" => vec![experiments::table2(&mut cache)],
        "table3" => vec![experiments::table3(&mut cache)],
        "fig6" => vec![experiments::fig6(&mut cache)],
        "fig7" => vec![experiments::fig7(&mut cache)],
        "fig8" => vec![experiments::fig8(&mut cache)],
        "fig9" => vec![experiments::fig9(&mut cache)],
        "fig10" => vec![experiments::fig10(&mut cache)],
        "fig11" => vec![experiments::fig11(&mut cache)],
        "ablation" => vec![experiments::ablation(&mut cache)],
        "parallel" => vec![experiments::parallel(&mut cache)],
        "lazy-io" => vec![experiments::lazy_io(&mut cache)],
        "scan-throughput" => vec![experiments::scan_throughput(&mut cache)],
        "morsel-scheduler" => vec![experiments::morsel_scheduler(&mut cache)],
        "ingest" => vec![experiments::ingest(&mut cache)],
        "sharded-ingest" => vec![experiments::sharded_ingest(&mut cache)],
        "serving" => vec![experiments::serving(&mut cache)],
        "all" => experiments::all(&mut cache),
        other => return Err(format!("unknown experiment {other:?}")),
    };

    for r in &results {
        println!("{}", r.pretty());
        r.write_to(&out_dir).map_err(|e| format!("writing results: {e}"))?;
    }
    eprintln!("# wrote {} result file pair(s) to {}", results.len(), out_dir.display());
    Ok(())
}

fn parse_list(s: &str) -> Result<Vec<usize>, String> {
    s.split(',')
        .map(|p| p.trim().parse::<usize>().map_err(|_| format!("bad list element {p:?}")))
        .collect()
}
