//! Dataset construction and caching for benchmarks.
//!
//! All experiments share one scale-1 base dataset (deterministic seed) and
//! derive scaled variants with the paper's scale-factor semantics. Building
//! and compressing large tables is expensive, so everything is cached.

use cohana_activity::{generate, scale_table, ActivityTable, GeneratorConfig};
use cohana_storage::{CompressedTable, CompressionOptions};
use std::collections::HashMap;
use std::sync::Arc;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Users in the scale-1 dataset. The paper's dataset has 57,077 users
    /// and 30 M tuples; the default here (1,000 users, ≈100 K tuples) keeps
    /// every figure laptop-runnable. Override with `--users` or
    /// `COHANA_BENCH_USERS`.
    pub base_users: usize,
    /// Scale factors to sweep (paper: 1–64; default here 1–8).
    pub scales: Vec<usize>,
    /// Chunk sizes for the Figure 6/7 sweeps (paper: 16K–1M tuples).
    pub chunk_sizes: Vec<usize>,
    /// Measured runs per point (paper: 5).
    pub runs: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            base_users: env_or("COHANA_BENCH_USERS", 1_000),
            scales: vec![1, 2, 4, 8],
            chunk_sizes: vec![16 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024],
            runs: 5,
        }
    }
}

impl BenchConfig {
    /// The paper's full sweep (scales to 64). Expect long runtimes.
    pub fn full() -> Self {
        BenchConfig { scales: vec![1, 2, 4, 8, 16, 32, 64], ..Default::default() }
    }

    /// A quick configuration for CI / smoke tests.
    pub fn quick() -> Self {
        BenchConfig {
            base_users: 200,
            scales: vec![1, 2],
            chunk_sizes: vec![4 * 1024, 64 * 1024],
            runs: 2,
        }
    }
}

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Caches base/scaled/compressed datasets across experiments.
pub struct DatasetCache {
    config: BenchConfig,
    base: Arc<ActivityTable>,
    scaled: HashMap<usize, Arc<ActivityTable>>,
    compressed: HashMap<(usize, usize), Arc<CompressedTable>>,
}

impl DatasetCache {
    /// Build the scale-1 dataset for a configuration.
    pub fn new(config: BenchConfig) -> Self {
        let base = Arc::new(generate(&GeneratorConfig::new(config.base_users)));
        DatasetCache { config, base, scaled: HashMap::new(), compressed: HashMap::new() }
    }

    /// The configuration.
    pub fn config(&self) -> &BenchConfig {
        &self.config
    }

    /// The scale-1 activity table.
    pub fn base(&self) -> Arc<ActivityTable> {
        self.base.clone()
    }

    /// The activity table at a scale factor.
    pub fn at_scale(&mut self, scale: usize) -> Arc<ActivityTable> {
        if scale == 1 {
            return self.base.clone();
        }
        self.scaled.entry(scale).or_insert_with(|| Arc::new(scale_table(&self.base, scale))).clone()
    }

    /// The compressed table at `(scale, chunk_size)`.
    pub fn compressed(&mut self, scale: usize, chunk_size: usize) -> Arc<CompressedTable> {
        if let Some(c) = self.compressed.get(&(scale, chunk_size)) {
            return c.clone();
        }
        let table = self.at_scale(scale);
        let compressed = Arc::new(
            CompressedTable::build(&table, CompressionOptions::with_chunk_size(chunk_size))
                .expect("compression succeeds"),
        );
        self.compressed.insert((scale, chunk_size), compressed.clone());
        compressed
    }

    /// Drop cached scaled tables (frees memory between experiments).
    pub fn evict_scaled(&mut self) {
        self.scaled.clear();
        self.compressed.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_reuses_instances() {
        let mut c = DatasetCache::new(BenchConfig::quick());
        let a = c.at_scale(2);
        let b = c.at_scale(2);
        assert!(Arc::ptr_eq(&a, &b));
        let x = c.compressed(1, 4096);
        let y = c.compressed(1, 4096);
        assert!(Arc::ptr_eq(&x, &y));
        assert_eq!(a.num_rows(), c.base().num_rows() * 2);
    }

    #[test]
    fn quick_config_is_small() {
        let q = BenchConfig::quick();
        assert!(q.base_users <= 500);
        assert!(q.scales.iter().all(|s| *s <= 4));
    }
}
