//! The experiments regenerating the paper's tables and figures.
//!
//! Each function returns an [`ExperimentResult`] whose rows mirror the data
//! series of the corresponding paper artifact. Absolute numbers depend on
//! hardware and the synthetic dataset size; the comparisons and trends are
//! the reproduction target (see EXPERIMENTS.md).

use crate::datasets::DatasetCache;
use crate::report::ExperimentResult;
use crate::timing::{fmt_secs, time_avg};
use cohana_activity::{ActivityTable, TimeBin, Timestamp, SECONDS_PER_DAY};
use cohana_core::{paper, CohortQuery, PlannerOptions, Statement};
use cohana_relational::{ColEngine, RowEngine};
use cohana_storage::{
    persist, ChunkSource, Codec, CompressedTable, CompressionOptions, FileSource, StorageStats,
};
use std::sync::Arc;
use std::time::Duration;

/// Average execution time of a cohort query on COHANA: prepare the
/// statement once, execute it `runs` times.
fn time_cohana(
    table: &Arc<CompressedTable>,
    query: &CohortQuery,
    runs: usize,
    options: PlannerOptions,
) -> Duration {
    let stmt =
        Statement::over(table.clone(), query, options, 1).expect("benchmark queries prepare");
    time_avg(runs, || stmt.execute().expect("benchmark queries execute"))
}

/// The four §5.2 benchmark queries.
fn q1_to_q4() -> Vec<(&'static str, CohortQuery)> {
    vec![("Q1", paper::q1()), ("Q2", paper::q2()), ("Q3", paper::q3()), ("Q4", paper::q4())]
}

// ------------------------------------------------------------------ Table 2

/// Table 2: the plain-SQL weekly shopping trend (query `Qs` of §1) — the
/// OLAP-style aggregate the paper contrasts with cohort analysis.
pub fn table2(cache: &mut DatasetCache) -> ExperimentResult {
    let table = cache.base();
    let schema = table.schema();
    let (tidx, aidx) = (schema.time_idx(), schema.action_idx());
    let gidx = schema.index_of("gold").expect("gold measure");
    let mut weeks: std::collections::BTreeMap<i64, (i64, u64)> = std::collections::BTreeMap::new();
    for row in table.rows() {
        if row.get(aidx).as_str() == Some("shop") {
            let t = row.get(tidx).as_int().expect("time");
            let week = TimeBin::Week.bin_start(Timestamp(t)).secs();
            let e = weeks.entry(week).or_insert((0, 0));
            e.0 += row.get(gidx).as_int().expect("gold");
            e.1 += 1;
        }
    }
    let mut out = ExperimentResult::new(
        "table2",
        "plain GROUP BY weekly avg gold (query Qs) — aging and social change conflated",
        vec!["week".into(), "avgSpent".into()],
    );
    for (week, (sum, count)) in weeks {
        out.push_row(vec![
            Timestamp(week).render_date(),
            format!("{:.1}", sum as f64 / count as f64),
        ]);
    }
    out
}

// ------------------------------------------------------------------ Table 3

/// Table 3 / Figure 1: weekly launch cohorts × weekly age, average gold
/// spent shopping — the cohort matrix that separates aging from social
/// change.
pub fn table3(cache: &mut DatasetCache) -> ExperimentResult {
    let compressed = cache.compressed(1, 256 * 1024);
    let q = paper::shopping_trend();
    let report = Statement::over(compressed, &q, PlannerOptions::default(), 1)
        .expect("shopping trend plans")
        .execute()
        .unwrap();

    let ages: Vec<i64> = {
        let mut a: Vec<i64> = report.rows.iter().map(|r| r.age).collect();
        a.sort_unstable();
        a.dedup();
        a
    };
    let mut headers = vec!["cohort".to_string(), "size".to_string()];
    headers.extend(ages.iter().map(|a| format!("age{a}")));
    let mut out = ExperimentResult::new(
        "table3",
        "weekly launch cohorts, Avg(gold) on shopping by age week (Table 3 / Figure 1)",
        headers,
    );
    for cohort in report.cohorts() {
        let size = report.cohort_sizes.get(cohort).copied().unwrap_or(0);
        let mut row = vec![cohort[0].to_string(), size.to_string()];
        for age in &ages {
            row.push(match report.find(cohort, *age) {
                Some(r) => {
                    r.measures[0].as_f64().map(|v| format!("{v:.0}")).unwrap_or_else(|| "-".into())
                }
                None => "-".into(),
            });
        }
        out.push_row(row);
    }
    out
}

// ------------------------------------------------------------------ Fig 6

/// Figure 6: COHANA's Q1–Q4 latency under varying chunk size and scale.
pub fn fig6(cache: &mut DatasetCache) -> ExperimentResult {
    let config = cache.config().clone();
    let mut out = ExperimentResult::new(
        "fig6",
        "COHANA query time (s) vs chunk size and scale (Figure 6)",
        vec!["query".into(), "chunk".into(), "scale".into(), "seconds".into()],
    );
    for (name, q) in q1_to_q4() {
        for &chunk in &config.chunk_sizes {
            for &scale in &config.scales {
                let table = cache.compressed(scale, chunk);
                let d = time_cohana(&table, &q, config.runs, PlannerOptions::default());
                out.push_row(vec![name.into(), chunk_label(chunk), scale.to_string(), fmt_secs(d)]);
            }
        }
    }
    out
}

fn chunk_label(chunk: usize) -> String {
    if chunk.is_multiple_of(1024) {
        let k = chunk / 1024;
        if k.is_multiple_of(1024) {
            format!("{}M", k / 1024)
        } else {
            format!("{k}K")
        }
    } else {
        chunk.to_string()
    }
}

// ------------------------------------------------------------------ Fig 7

/// Figure 7: storage footprint vs chunk size and scale.
pub fn fig7(cache: &mut DatasetCache) -> ExperimentResult {
    let config = cache.config().clone();
    let mut out = ExperimentResult::new(
        "fig7",
        "compressed size (MB) vs chunk size and scale (Figure 7)",
        vec!["chunk".into(), "scale".into(), "MB".into(), "bytes/tuple".into()],
    );
    for &chunk in &config.chunk_sizes {
        for &scale in &config.scales {
            let table = cache.compressed(scale, chunk);
            let stats = StorageStats::of(&table);
            out.push_row(vec![
                chunk_label(chunk),
                scale.to_string(),
                format!("{:.2}", stats.total_bytes() as f64 / (1024.0 * 1024.0)),
                format!("{:.2}", stats.bytes_per_tuple()),
            ]);
        }
    }
    out
}

// ------------------------------------------------------------------ Fig 8

/// Figure 8: effect of birth-selection selectivity. Q5/Q6 with `d1` fixed
/// to the first day and `d2` swept across the window, normalized by the
/// unfiltered Q1/Q3 time, alongside the birth CDF.
pub fn fig8(cache: &mut DatasetCache) -> ExperimentResult {
    let runs = cache.config().runs;
    let table = cache.base();
    // Several chunks so user skipping has structure to work with.
    let compressed = cache.compressed(1, 16 * 1024);

    let start = dataset_start(&table);
    let num_days = 38i64;
    let q1_time = time_cohana(&compressed, &paper::q1(), runs, PlannerOptions::default());
    let q3_time = time_cohana(&compressed, &paper::q3(), runs, PlannerOptions::default());

    // Birth CDF (launch births; the paper notes shop births distribute
    // similarly).
    let births = birth_days(&table, start);

    let mut out = ExperimentResult::new(
        "fig8",
        "birth-selection effect: normalized Q5/Q6 time and birth CDF vs d2 (Figure 8)",
        vec!["day".into(), "birthCDF".into(), "Q5/Q1".into(), "Q6/Q3".into()],
    );
    for day in (1..=num_days).step_by(2) {
        let d1 = start;
        let d2 = start + day * SECONDS_PER_DAY;
        let t5 = time_cohana(&compressed, &paper::q5(d1, d2), runs, PlannerOptions::default());
        let t6 = time_cohana(&compressed, &paper::q6(d1, d2), runs, PlannerOptions::default());
        let cdf = births.iter().filter(|&&b| b <= day).count() as f64 / births.len() as f64;
        out.push_row(vec![
            day.to_string(),
            format!("{cdf:.3}"),
            format!("{:.3}", t5.as_secs_f64() / q1_time.as_secs_f64()),
            format!("{:.3}", t6.as_secs_f64() / q3_time.as_secs_f64()),
        ]);
    }
    out
}

fn dataset_start(table: &ActivityTable) -> i64 {
    let tidx = table.schema().time_idx();
    let min = table.int_range(tidx).map(|(lo, _)| lo).unwrap_or(0);
    TimeBin::Day.bin_start(Timestamp(min)).secs()
}

fn birth_days(table: &ActivityTable, start: i64) -> Vec<i64> {
    let tidx = table.schema().time_idx();
    table
        .user_blocks()
        .map(|b| {
            let t = table.rows()[b.start].get(tidx).as_int().expect("time");
            (t - start) / SECONDS_PER_DAY
        })
        .collect()
}

// ------------------------------------------------------------------ Fig 9

/// Figure 9: effect of age-selection selectivity. Q7/Q8 with `g` swept from
/// 1 to 14 days, normalized by Q1/Q3.
pub fn fig9(cache: &mut DatasetCache) -> ExperimentResult {
    let runs = cache.config().runs;
    let compressed = cache.compressed(1, 16 * 1024);
    let q1_time = time_cohana(&compressed, &paper::q1(), runs, PlannerOptions::default());
    let q3_time = time_cohana(&compressed, &paper::q3(), runs, PlannerOptions::default());

    let mut out = ExperimentResult::new(
        "fig9",
        "age-selection effect: normalized Q7/Q8 time vs age bound g (Figure 9)",
        vec!["g".into(), "Q7/Q1".into(), "Q8/Q3".into()],
    );
    for g in 1..=14 {
        let t7 = time_cohana(&compressed, &paper::q7(g), runs, PlannerOptions::default());
        let t8 = time_cohana(&compressed, &paper::q8(g), runs, PlannerOptions::default());
        out.push_row(vec![
            g.to_string(),
            format!("{:.3}", t7.as_secs_f64() / q1_time.as_secs_f64()),
            format!("{:.3}", t8.as_secs_f64() / q3_time.as_secs_f64()),
        ]);
    }
    out
}

// ------------------------------------------------------------------ Fig 10

/// Figure 10: time to generate (and write out) the launch materialized view
/// on the row and columnar engines vs COHANA's time to compress (and write
/// out) the activity table. The paper's `CREATE TABLE AS` persists the
/// ~double-width uncompressed view; COHANA persists the compressed table —
/// both sides include their serialization, so the asymmetry in bytes
/// written is part of the measurement, as in the paper.
pub fn fig10(cache: &mut DatasetCache) -> ExperimentResult {
    let config = cache.config().clone();
    let mut out = ExperimentResult::new(
        "fig10",
        "MV generation+write vs COHANA compression+write, seconds by scale (Figure 10); \
         MV/compressed sizes in MB",
        vec![
            "scale".into(),
            "COHANA".into(),
            "MONET".into(),
            "PG".into(),
            "cohanaMB".into(),
            "mvMB".into(),
        ],
    );
    for &scale in &config.scales {
        let table = cache.at_scale(scale);
        let (cohana_bytes, compress_t) = crate::timing::time_once(|| {
            let c = CompressedTable::build(&table, CompressionOptions::default()).unwrap();
            cohana_storage::persist::to_bytes(&c).len()
        });

        let mut col = ColEngine::load(&table);
        let (mv_bytes, col_t) = crate::timing::time_once(|| {
            col.create_mv("launch");
            col.serialize_mv("launch").expect("view exists").len()
        });

        let mut row = RowEngine::load(&table);
        let (_, row_t) = crate::timing::time_once(|| {
            row.create_mv("launch");
            row.serialize_mv("launch").expect("view exists").len()
        });

        out.push_row(vec![
            scale.to_string(),
            fmt_secs(compress_t),
            fmt_secs(col_t),
            fmt_secs(row_t),
            format!("{:.2}", cohana_bytes as f64 / (1024.0 * 1024.0)),
            format!("{:.2}", mv_bytes as f64 / (1024.0 * 1024.0)),
        ]);
    }
    out
}

// ------------------------------------------------------------------ Fig 11

/// Figure 11: Q1–Q4 across the five evaluation schemes (COHANA, MONET-M,
/// MONET-S, PG-M, PG-S) by scale.
pub fn fig11(cache: &mut DatasetCache) -> ExperimentResult {
    let config = cache.config().clone();
    let mut out = ExperimentResult::new(
        "fig11",
        "query time (s): COHANA vs MonetDB/Postgres stand-ins, SQL and MV approaches (Figure 11)",
        vec![
            "query".into(),
            "scale".into(),
            "COHANA".into(),
            "MONET-M".into(),
            "MONET-S".into(),
            "PG-M".into(),
            "PG-S".into(),
        ],
    );
    for &scale in &config.scales {
        let table = cache.at_scale(scale);
        let compressed = cache.compressed(scale, 256 * 1024);
        let mut col = ColEngine::load(&table);
        let mut row = RowEngine::load(&table);
        for action in ["launch", "shop"] {
            col.create_mv(action);
            row.create_mv(action);
        }
        for (name, q) in q1_to_q4() {
            let cohana = time_cohana(&compressed, &q, config.runs, PlannerOptions::default());
            let monet_m = time_avg(config.runs, || col.execute_mv(&q).unwrap());
            let monet_s = time_avg(config.runs, || col.execute_sql(&q).unwrap());
            let pg_m = time_avg(config.runs, || row.execute_mv(&q).unwrap());
            let pg_s = time_avg(config.runs, || row.execute_sql(&q).unwrap());
            out.push_row(vec![
                name.into(),
                scale.to_string(),
                fmt_secs(cohana),
                fmt_secs(monet_m),
                fmt_secs(monet_s),
                fmt_secs(pg_m),
                fmt_secs(pg_s),
            ]);
        }
    }
    out
}

// ------------------------------------------------------------------ Ablation

/// Ablation of COHANA's individual optimizations (DESIGN.md D1–D4):
/// Q1–Q4 with each planner flag disabled in turn, plus the fully naive
/// configuration.
pub fn ablation(cache: &mut DatasetCache) -> ExperimentResult {
    let config = cache.config().clone();
    // The smallest configured scale keeps the six-variant sweep fast.
    let scale = config.scales.iter().copied().min().unwrap_or(1).max(1);
    let compressed = cache.compressed(scale, 16 * 1024);
    let variants: Vec<(&str, PlannerOptions)> = vec![
        ("full", PlannerOptions::default()),
        ("no-pushdown", PlannerOptions { push_down_birth_selection: false, ..Default::default() }),
        ("no-skip", PlannerOptions { skip_unqualified_users: false, ..Default::default() }),
        ("no-prune", PlannerOptions { prune_chunks: false, ..Default::default() }),
        ("no-array", PlannerOptions { array_aggregation: false, ..Default::default() }),
        ("naive", PlannerOptions::naive()),
    ];
    let mut headers = vec!["query".to_string()];
    headers.extend(variants.iter().map(|(n, _)| n.to_string()));
    let mut out = ExperimentResult::new(
        "ablation",
        "COHANA optimizations toggled off, time in seconds (DESIGN.md D1–D4)",
        headers,
    );
    for (name, q) in q1_to_q4() {
        let mut row = vec![name.to_string()];
        for (_, opts) in &variants {
            row.push(fmt_secs(time_cohana(&compressed, &q, config.runs, *opts)));
        }
        out.push_row(row);
    }
    out
}

// ------------------------------------------------------------------ Parallel

/// Extension experiment (not in the paper): chunk-parallel execution
/// speedup. Chunks never split users, so COHANA parallelizes across chunks
/// with a trivial merge; this measures Q1/Q3 under 1–8 worker threads.
pub fn parallel(cache: &mut DatasetCache) -> ExperimentResult {
    let config = cache.config().clone();
    let scale = config.scales.iter().copied().max().unwrap_or(1);
    let compressed = cache.compressed(scale, 16 * 1024);
    let mut out = ExperimentResult::new(
        "parallel",
        format!(
            "chunk-parallel execution at scale {scale} ({} chunks): seconds by worker count",
            compressed.chunks().len()
        ),
        vec!["query".into(), "1".into(), "2".into(), "4".into(), "8".into()],
    );
    for (name, q) in [("Q1", paper::q1()), ("Q3", paper::q3())] {
        let mut row = vec![name.to_string()];
        for workers in [1usize, 2, 4, 8] {
            let stmt = Statement::over(compressed.clone(), &q, PlannerOptions::default(), workers)
                .expect("plans");
            let d = time_avg(config.runs, || stmt.execute().expect("executes"));
            row.push(fmt_secs(d));
        }
        out.push_row(row);
    }
    out
}

// ------------------------------------------------------------------ Lazy IO

/// Extension experiment (not in the paper): what the column-addressable
/// lazy path actually reads. Q1–Q8 each run against a cold `FileSource`
/// over a v4 file of the scale-1 dataset, reporting chunks touched, columns
/// decoded, and bytes read vs. the file size — the observable effect of
/// §4.2 pruning plus projection pushdown plus the v4 per-blob codecs, with
/// a bounded-budget pass recording cache evictions and a note comparing
/// the v4 image against its raw v3 equivalent.
pub fn lazy_io(cache: &mut DatasetCache) -> ExperimentResult {
    let compressed = cache.compressed(1, 16 * 1024);
    let dir = std::env::temp_dir().join("cohana-bench-lazy-io");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("lazy-io.cohana");
    persist::write_file(&compressed, &path).expect("write v4 file");
    let file_len = std::fs::metadata(&path).expect("stat v4 file").len();
    let v3_len = persist::to_bytes_v3(&compressed).len() as u64;
    let arity = compressed.schema().arity();

    let start = dataset_start(&cache.base());
    let (d1, d2) = (start + SECONDS_PER_DAY, start + 7 * SECONDS_PER_DAY);
    let queries: Vec<(&str, CohortQuery)> = vec![
        ("Q1", paper::q1()),
        ("Q2", paper::q2()),
        ("Q3", paper::q3()),
        ("Q4", paper::q4()),
        ("Q5", paper::q5(d1, d2)),
        ("Q6", paper::q6(d1, d2)),
        ("Q7", paper::q7(7)),
        ("Q8", paper::q8(7)),
    ];

    let mut out = ExperimentResult::new(
        "lazy-io",
        "v4 lazy path I/O per query: chunks touched, columns decoded, disk bytes vs decoded bytes",
        vec![
            "query".into(),
            "chunks".into(),
            "chunksTotal".into(),
            "columns".into(),
            "columnsMax".into(),
            "bytesRead".into(),
            "bytesDecoded".into(),
            "fileBytes".into(),
        ],
    );
    for (name, q) in &queries {
        let src = Arc::new(FileSource::open(&path).expect("open v4 file"));
        let stmt = Statement::over(src.clone(), q, PlannerOptions::default(), 1).expect("plans");
        stmt.execute().expect("query executes");
        let io = src.io_stats();
        out.push_row(vec![
            name.to_string(),
            io.chunks_decoded.to_string(),
            src.num_chunks().to_string(),
            io.columns_decoded.to_string(),
            (arity * src.num_chunks()).to_string(),
            io.bytes_read.to_string(),
            io.bytes_decompressed.to_string(),
            file_len.to_string(),
        ]);
    }

    // Bounded-budget pass: all eight queries through one small shared
    // cache; the eviction counter shows the budget doing its job.
    let budget = (file_len as usize / 8).max(1);
    let src = Arc::new(FileSource::open_with_budget(&path, budget).expect("open v3 file"));
    for (_, q) in &queries {
        Statement::over(src.clone(), q, PlannerOptions::default(), 1)
            .expect("plans")
            .execute()
            .expect("query executes");
    }
    let io = src.io_stats();
    out.push_note(format!(
        "bounded pass: budget {budget} bytes, resident {} bytes, {} evictions over Q1-Q8",
        io.cache_resident_bytes, io.cache_evictions
    ));
    let info = persist::inspect(&path).expect("inspect v4 file");
    out.push_note(format!(
        "v4 codecs: payload {} -> {} bytes ({:.2}x), file {v3_len} -> {file_len} bytes as v3 -> v4",
        info.uncompressed_bytes(),
        info.compressed_bytes(),
        info.ratio()
    ));
    let best = info
        .columns
        .iter()
        .max_by(|a, b| a.ratio().total_cmp(&b.ratio()))
        .expect("schema has columns");
    out.push_note(format!(
        "best-compressed column: {} at {:.2}x ({} -> {} bytes)",
        best.name,
        best.ratio(),
        best.uncompressed_bytes,
        best.compressed_bytes
    ));
    // Single-pass (cold) decode rate per codec, the input to the
    // storage-speed crossover recorded in docs/PERF.md: below roughly
    // `bytes_saved / extra_decode_time` of storage bandwidth, v4's
    // smaller reads beat v3 outright. With the interleaved-rANS decoders
    // that crossover re-measures at ~140 MB/s (was ~100 MB/s
    // single-state); `benches/decode.rs` holds the warm best-of rates.
    let decode: Vec<String> = info
        .codecs
        .iter()
        .enumerate()
        .filter(|(_, s)| s.blobs > 0 && s.decode_nanos > 0)
        .map(|(tag, s)| {
            let name = Codec::from_tag(tag as u8).expect("inspect codec tag").name();
            format!("{name} {:.0} MB/s over {} blobs", s.decode_mbps(), s.blobs)
        })
        .collect();
    out.push_note(format!("cold decode rates: {}", decode.join(", ")));
    std::fs::remove_file(&path).ok();
    out
}

// ------------------------------------------------------------------ Ingest

/// Extension experiment (not in the paper): the incremental-ingest write
/// path. The cohort-clustered dataset (births ramp with user id — the
/// realistic live-traffic shape) is split into contiguous time slices; the
/// first becomes a fresh v3 file and the rest are appended one by one,
/// measuring append throughput, chunk-count growth, rewrites forced by
/// returning users, and dead bytes. Afterwards Q1 latency is compared on
/// the appended file vs the same file compacted — the §4.2 pruning quality
/// compaction restores.
pub fn ingest(cache: &mut DatasetCache) -> ExperimentResult {
    let runs = cache.config().runs;
    let users = cache.config().base_users;
    let cfg = cohana_activity::GeneratorConfig::cohort_clustered(users);
    let table = cohana_activity::generate(&cfg);
    let batches = time_slices(&table, 5);

    let dir = std::env::temp_dir().join("cohana-bench-ingest");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ingest.cohana");
    let chunk = 16 * 1024;
    let first = CompressedTable::build(&batches[0], CompressionOptions::with_chunk_size(chunk))
        .expect("first batch compresses");
    persist::write_file(&first, &path).expect("initial file writes");

    let mut out = ExperimentResult::new(
        "ingest",
        "append throughput per batch, then Q1 latency post-append vs post-compact",
        vec![
            "batch".into(),
            "rows".into(),
            "seconds".into(),
            "rowsPerSec".into(),
            "chunks".into(),
            "rewritten".into(),
            "deadBytes".into(),
            "fileBytes".into(),
        ],
    );
    out.push_row(vec![
        "0 (build)".into(),
        batches[0].num_rows().to_string(),
        "-".into(),
        "-".into(),
        first.chunks().len().to_string(),
        "0".into(),
        "0".into(),
        std::fs::metadata(&path).expect("stat").len().to_string(),
    ]);
    for (i, batch) in batches[1..].iter().enumerate() {
        let (stats, d) =
            crate::timing::time_once(|| persist::append(&path, batch).expect("append succeeds"));
        out.push_row(vec![
            (i + 1).to_string(),
            stats.rows_appended.to_string(),
            fmt_secs(d),
            format!("{:.0}", stats.rows_appended as f64 / d.as_secs_f64().max(1e-9)),
            stats.chunks_after.to_string(),
            stats.chunks_rewritten.to_string(),
            stats.dead_bytes.to_string(),
            stats.file_bytes.to_string(),
        ]);
    }

    let time_q1 = |path: &std::path::Path| {
        let src = Arc::new(FileSource::open(path).expect("open"));
        let stmt = Statement::over(src, &paper::q1(), PlannerOptions::default(), 1).expect("plans");
        time_avg(runs, || stmt.execute().expect("q1 executes"))
    };
    let appended = time_q1(&path);
    let cstats = persist::compact(&path).expect("compact succeeds");
    let compacted = time_q1(&path);
    out.push_note(format!(
        "Q1 post-append {} vs post-compact {} (x{:.2}); compact reclaimed {} bytes, {} -> {} \
         chunks",
        fmt_secs(appended),
        fmt_secs(compacted),
        appended.as_secs_f64() / compacted.as_secs_f64().max(1e-9),
        cstats.reclaimed_bytes,
        cstats.chunks_before,
        cstats.chunks_after,
    ));
    std::fs::remove_file(&path).ok();
    out
}

// ----------------------------------------------------------- Sharded ingest

/// Extension experiment (not in the paper): the sharded write path. Each
/// time-sliced batch is appended twice — serially to one flat file and in
/// parallel to a user-id-range sharded directory (one append thread per
/// touched shard, under per-shard locks) — so every row compares the two
/// paths on identical input. The notes record what a full compaction sweep
/// of the shard set reclaimed and the prepared-Q1 latency measured while an
/// eager maintenance thread auto-compacted shards in the background.
pub fn sharded_ingest(cache: &mut DatasetCache) -> ExperimentResult {
    use cohana_storage::shard;

    let runs = cache.config().runs;
    // Uniform arrival (the default generator, i.e. `cache.base()`): every
    // time slice spans the whole user-id range, so each batch fans out
    // across all shards — the parallel case this experiment measures.
    let table = cache.base();
    let batches = time_slices(&table, 5);
    let shards = 4usize;
    let chunk = CompressionOptions::with_chunk_size(16 * 1024);

    let dir = std::env::temp_dir().join("cohana-bench-sharded-ingest");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let flat = dir.join("flat.cohana");
    let sharded = dir.join("sharded");
    let first = CompressedTable::build(&batches[0], chunk).expect("first batch compresses");
    persist::write_file(&first, &flat).expect("initial file writes");
    shard::create_sharded(&sharded, &batches[0], shards, chunk).expect("initial shards write");

    let mut out = ExperimentResult::new(
        "sharded-ingest",
        format!(
            "per-batch append: serial single file vs parallel {shards}-shard directory \
             (same time-sliced input)"
        ),
        vec![
            "batch".into(),
            "rows".into(),
            "serialSec".into(),
            "parallelSec".into(),
            "speedup".into(),
            "shardsTouched".into(),
        ],
    );
    for (i, batch) in batches[1..].iter().enumerate() {
        let (_, serial) = crate::timing::time_once(|| {
            persist::append(&flat, batch).expect("serial append succeeds")
        });
        let (stats, parallel) = crate::timing::time_once(|| {
            shard::append_sharded(&sharded, batch).expect("sharded append succeeds")
        });
        out.push_row(vec![
            (i + 1).to_string(),
            batch.num_rows().to_string(),
            fmt_secs(serial),
            fmt_secs(parallel),
            format!("{:.2}", serial.as_secs_f64() / parallel.as_secs_f64().max(1e-9)),
            stats.shards_touched().to_string(),
        ]);
    }

    // Full compaction sweep of the shard set: the reclaimed bytes are what
    // the returning-user rewrites above left dead.
    let dead: u64 =
        shard::shard_space_stats(&sharded).expect("space stats").iter().map(|s| s.dead_bytes).sum();
    let mut reclaimed = 0u64;
    for i in 0..shards {
        reclaimed += shard::compact_shard(&sharded, i).expect("shard compacts").reclaimed_bytes;
    }
    out.push_note(format!(
        "compaction sweep over {shards} shards: {dead} dead bytes, {reclaimed} reclaimed"
    ));

    // Q1 on the live sharded table while an eager maintenance thread
    // auto-compacts behind more ingests.
    let engine = cohana_core::Cohana::new(Default::default());
    let handle = engine
        .open(&sharded)
        .maintenance(cohana_core::MaintenanceConfig {
            auto_compact: true,
            dead_ratio: 0.01,
            interval: Duration::from_millis(5),
        })
        .open()
        .expect("sharded table opens");
    let stmt = handle.prepare(&paper::q1()).expect("q1 prepares");
    let live = handle.sharded_table().expect("handle is sharded");
    // Each cycle shifts the batch's timestamps so repeated ingests never
    // collide with rows already in the table (the format enforces a
    // (user, action, time) primary key), while the returning users still
    // force the rewrites that feed the compactor.
    let tidx = table.schema().time_idx();
    let mut cycle = 0i64;
    let d = time_avg(runs.max(2), || {
        cycle += 1;
        let mut b = cohana_activity::TableBuilder::new(batches[1].schema().clone());
        for row in batches[1].rows() {
            let mut vals = row.values().to_vec();
            let t = vals[tidx].as_int().expect("time");
            vals[tidx] = cohana_activity::Value::Int(t + (cycle << 32));
            b.push(vals).expect("row pushes");
        }
        live.ingest(&b.finish().expect("batch sorts")).expect("live ingest succeeds");
        stmt.execute().expect("q1 executes during compaction");
    });
    let maint = live.maintenance_stats();
    out.push_note(format!(
        "ingest+Q1 cycle avg {} with background compaction ({} passes, {} auto-compactions, \
         {} bytes reclaimed)",
        fmt_secs(d),
        maint.passes,
        maint.auto_compactions,
        maint.reclaimed_bytes
    ));
    drop(stmt);
    drop(handle);
    drop(engine);
    std::fs::remove_dir_all(&dir).ok();
    out
}

// ------------------------------------------------------- Scan throughput

/// Extension experiment (not in the paper): end-to-end rows/sec of the
/// vectorized chunk executor (block time decode, per-chunk predicate
/// specialization, allocation-free inner loop — `docs/PERF.md`). Q1–Q4 run
/// as prepared statements on the resident compressed table and on a warmed
/// v3 `FileSource`; each row records the executor-attributed `rows_scanned`
/// and the derived rows/sec straight from `QueryStats`, so scan-rate
/// regressions show up in the recorded numbers, not just in criterion
/// timings.
pub fn scan_throughput(cache: &mut DatasetCache) -> ExperimentResult {
    let runs = cache.config().runs;
    let compressed = cache.compressed(1, 64 * 1024);
    let dir = std::env::temp_dir().join("cohana-bench-scan-throughput");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("scan-throughput.cohana");
    persist::write_file(&compressed, &path).expect("write v3 file");
    let v3 = Arc::new(FileSource::open(&path).expect("open v3 file"));

    let mut out = ExperimentResult::new(
        "scan-throughput",
        "vectorized executor scan rate: rows scanned and rows/sec per query and source",
        vec!["query".into(), "source".into(), "rows".into(), "seconds".into(), "rowsPerSec".into()],
    );
    for (name, q) in q1_to_q4() {
        for (src_name, src) in [
            ("resident", Arc::clone(&compressed) as Arc<dyn ChunkSource>),
            ("v3-warm", Arc::clone(&v3) as Arc<dyn ChunkSource>),
        ] {
            let stmt = Statement::over(src, &q, PlannerOptions::default(), 1).expect("query plans");
            stmt.execute().expect("warm-up executes"); // warm the segment cache
            let mut last_stats = None;
            let d = time_avg(runs, || {
                last_stats = stmt.execute().expect("query executes").stats;
            });
            let stats = last_stats.expect("executor attaches stats");
            out.push_row(vec![
                name.into(),
                src_name.into(),
                stats.rows_scanned.to_string(),
                fmt_secs(d),
                format!("{:.0}", stats.rows_scanned as f64 / d.as_secs_f64().max(1e-9)),
            ]);
        }
    }
    std::fs::remove_file(&path).ok();
    out
}

// ------------------------------------------------------ Morsel scheduler

/// Extension experiment (not in the paper): morsel-driven work stealing on
/// a skewed chunk-size distribution. `GeneratorConfig::skewed` plants one
/// whale user holding ~half the table's rows — since chunks never split
/// users, that is one chunk with ~50% of the data, the worst case for the
/// static per-chunk worker stride this scheduler replaced. Q1/Q3 run at
/// parallelism 1 and 4, reporting p50/p99 latency (tight tails mean the
/// whale was stolen morsel by morsel, not serialized on one worker) and
/// the per-worker busy-time split of a parallel-4 streamed run.
pub fn morsel_scheduler(cache: &mut DatasetCache) -> ExperimentResult {
    let config = cache.config().clone();
    // Enough runs for the p99 of a *distribution*, not just a max of 5.
    let runs = config.runs.max(10);
    let table = cohana_activity::generate(&cohana_activity::GeneratorConfig::skewed(
        config.base_users.max(8),
    ));
    let compressed = Arc::new(
        CompressedTable::build(&table, CompressionOptions::with_chunk_size(16 * 1024))
            .expect("skewed table compresses"),
    );
    let whale_share = compressed.chunks().iter().map(|c| c.num_rows()).max().unwrap_or(0) as f64
        / table.num_rows() as f64;

    let mut out = ExperimentResult::new(
        "morsel-scheduler",
        format!(
            "work-stealing on a skewed table ({} chunks, largest {:.0}% of rows): latency \
             percentiles by worker count",
            compressed.chunks().len(),
            whale_share * 100.0
        ),
        vec![
            "query".into(),
            "workers".into(),
            "p50".into(),
            "p99".into(),
            "p99/p50".into(),
            "morsels".into(),
        ],
    );
    for (name, q) in [("Q1", paper::q1()), ("Q3", paper::q3())] {
        for workers in [1usize, 4] {
            let stmt = Statement::over(compressed.clone(), &q, PlannerOptions::default(), workers)
                .expect("plans");
            let mut last_stats = None;
            let samples = crate::timing::time_samples(runs, || {
                last_stats = stmt.execute().expect("executes").stats;
            });
            let p50 = crate::timing::percentile(&samples, 50.0).expect("runs > 0");
            let p99 = crate::timing::percentile(&samples, 99.0).expect("runs > 0");
            out.push_row(vec![
                name.into(),
                workers.to_string(),
                fmt_secs(p50),
                fmt_secs(p99),
                format!("{:.2}", p99.as_secs_f64() / p50.as_secs_f64().max(1e-9)),
                last_stats.expect("executor attaches stats").morsels_executed.to_string(),
            ]);
        }
    }

    // Busy-time split of one parallel-4 streamed run: stealing spreads the
    // whale chunk's morsels, a static stride would pile them on one worker.
    let stmt =
        Statement::over(compressed, &paper::q3(), PlannerOptions::default(), 4).expect("plans");
    let mut stream = stmt.stream();
    for batch in &mut stream {
        batch.expect("batch executes");
    }
    let busy = stream.worker_busy();
    let stats = stream.stats();
    let total: u64 = busy.iter().sum::<u64>().max(1);
    out.push_note(format!(
        "Q3 workers=4: {} morsels, per-worker busy ms {:?} (shares {:?}%)",
        stats.morsels_executed,
        busy.iter().map(|ns| ns / 1_000_000).collect::<Vec<_>>(),
        busy.iter().map(|ns| 100 * ns / total).collect::<Vec<_>>(),
    ));
    out
}

// --------------------------------------------------------------- Serving

/// Extension experiment (not in the paper): the network serving layer under
/// concurrent clients. An in-process `cohana-server` wraps the shared
/// compressed table; 8 client connections each run the Q1–Q4 mix over the
/// wire. Reported per query: p50/p99 end-to-end latency (TCP + admission +
/// engine + result assembly) and server-side scan rate; plus one admission
/// row proving the concurrency cap held (peak active ≤ cap) and how much
/// time queries spent queued rather than executing.
pub fn serving(cache: &mut DatasetCache) -> ExperimentResult {
    use cohana_server::{Client, Server, ServerConfig};

    /// (query, end-to-end latency, rows the server scanned for it)
    type Sample = (&'static str, Duration, u64);

    let passes = cache.config().runs.max(2);
    let clients = 8usize;
    let cap = 4usize;
    let compressed = cache.compressed(1, 16 * 1024);
    let engine = cohana_core::Cohana::new(cohana_core::EngineOptions::default());
    engine.register_source("GameActions", compressed as Arc<dyn ChunkSource>);

    let mut server = Server::start(
        Arc::new(engine),
        ServerConfig { admission_cap: cap, queue_bound: 1024, ..ServerConfig::default() },
    )
    .expect("server binds");
    let addr = server.local_addr();

    let samples: Arc<std::sync::Mutex<Vec<Sample>>> = Arc::new(std::sync::Mutex::new(Vec::new()));
    let sql: Arc<Vec<(&'static str, String)>> =
        Arc::new(q1_to_q4().into_iter().map(|(n, q)| (n, q.to_sql())).collect());
    let wall_start = std::time::Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|i| {
            let samples = samples.clone();
            let sql = sql.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr, "bench").expect("client connects");
                let prepared: Vec<_> = sql
                    .iter()
                    .map(|(name, text)| (*name, client.prepare(text).expect("prepares")))
                    .collect();
                for pass in 0..passes {
                    for k in 0..prepared.len() {
                        // Offset per client and pass so the in-flight mix
                        // overlaps different queries.
                        let (name, p) = &prepared[(i + pass + k) % prepared.len()];
                        let started = std::time::Instant::now();
                        let report = client
                            .execute(p)
                            .expect("execute starts")
                            .collect()
                            .expect("remote query runs");
                        let latency = started.elapsed();
                        let scanned = report.stats.expect("server stats attached").rows_scanned;
                        samples.lock().unwrap().push((name, latency, scanned));
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread succeeds");
    }
    let wall = wall_start.elapsed();
    let admission = server.admission_stats();
    server.shutdown();

    let all = samples.lock().unwrap().clone();
    let mut out = ExperimentResult::new(
        "serving",
        format!(
            "{clients} concurrent wire clients x Q1-Q4, admission cap {cap}: end-to-end \
             latency percentiles and server-side scan rate"
        ),
        vec!["query".into(), "runs".into(), "p50".into(), "p99".into(), "rowsPerSec".into()],
    );
    for (name, _) in q1_to_q4() {
        let lat: Vec<Duration> =
            all.iter().filter(|(n, _, _)| *n == name).map(|(_, d, _)| *d).collect();
        let scanned: u64 = all.iter().filter(|(n, _, _)| *n == name).map(|(_, _, r)| r).sum();
        let busy: f64 = lat.iter().map(Duration::as_secs_f64).sum();
        let mut sorted = lat.clone();
        sorted.sort_unstable();
        let p50 = crate::timing::percentile(&sorted, 50.0).expect("runs > 0");
        let p99 = crate::timing::percentile(&sorted, 99.0).expect("runs > 0");
        out.push_row(vec![
            name.into(),
            lat.len().to_string(),
            fmt_secs(p50),
            fmt_secs(p99),
            format!("{:.0}", scanned as f64 / busy.max(1e-9)),
        ]);
    }
    let total_scanned: u64 = all.iter().map(|(_, _, r)| r).sum();
    out.push_note(format!(
        "{} queries in {}, aggregate {:.0} rows/s; peak {}/{} active (cap held: {}), \
         queue depth max {}, total queue wait {}",
        all.len(),
        fmt_secs(wall),
        total_scanned as f64 / wall.as_secs_f64().max(1e-9),
        admission.peak_active,
        admission.cap,
        admission.peak_active <= admission.cap,
        admission.max_queue_depth,
        fmt_secs(admission.total_queue_wait),
    ));
    out
}

/// Contiguous time slices of a table (the streaming-arrival shape).
fn time_slices(table: &ActivityTable, k: usize) -> Vec<ActivityTable> {
    let tidx = table.schema().time_idx();
    let mut order: Vec<usize> = (0..table.num_rows()).collect();
    order.sort_by_key(|&r| table.rows()[r].get(tidx).as_int().expect("time"));
    let per = table.num_rows().div_ceil(k).max(1);
    order
        .chunks(per)
        .map(|rows| {
            let mut b = cohana_activity::TableBuilder::new(table.schema().clone());
            for &r in rows {
                b.push(table.rows()[r].values().to_vec()).expect("row pushes");
            }
            b.finish().expect("slice sorts")
        })
        .collect()
}

/// Run every experiment in paper order.
pub fn all(cache: &mut DatasetCache) -> Vec<ExperimentResult> {
    vec![
        table2(cache),
        table3(cache),
        fig6(cache),
        fig7(cache),
        fig8(cache),
        fig9(cache),
        fig10(cache),
        fig11(cache),
        ablation(cache),
        parallel(cache),
        lazy_io(cache),
        scan_throughput(cache),
        morsel_scheduler(cache),
        ingest(cache),
        sharded_ingest(cache),
        serving(cache),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::BenchConfig;

    fn quick_cache() -> DatasetCache {
        DatasetCache::new(BenchConfig::quick())
    }

    #[test]
    fn table2_has_weeks() {
        let r = table2(&mut quick_cache());
        assert!(!r.rows.is_empty());
        assert!(r.rows.len() <= 7); // 38 days ≈ 6 weeks
    }

    #[test]
    fn table3_matrix_shape() {
        let r = table3(&mut quick_cache());
        assert!(!r.rows.is_empty());
        assert!(r.headers.len() >= 3); // cohort, size, >=1 age
    }

    #[test]
    fn fig7_rows_cover_sweep() {
        let mut cache = quick_cache();
        let r = fig7(&mut cache);
        let cfg = cache.config();
        assert_eq!(r.rows.len(), cfg.chunk_sizes.len() * cfg.scales.len());
    }

    #[test]
    fn fig9_normalized_increases() {
        let r = fig9(&mut quick_cache());
        assert_eq!(r.rows.len(), 14);
        // Normalized times are positive.
        for row in &r.rows {
            assert!(row[1].parse::<f64>().unwrap() > 0.0);
        }
    }

    #[test]
    fn ablation_has_all_variants() {
        let r = ablation(&mut quick_cache());
        assert_eq!(r.headers.len(), 7);
        assert_eq!(r.rows.len(), 4);
    }

    #[test]
    fn scan_throughput_records_rows_per_sec() {
        let r = scan_throughput(&mut quick_cache());
        assert_eq!(r.rows.len(), 8, "Q1-Q4 x resident/v3-warm");
        for row in &r.rows {
            let rows: u64 = row[2].parse().unwrap();
            let rate: f64 = row[4].parse().unwrap();
            assert!(rows > 0, "{}: no rows attributed", row[0]);
            assert!(rate > 0.0, "{}: no rate recorded", row[0]);
        }
    }

    #[test]
    fn morsel_scheduler_reports_percentiles_and_busy_split() {
        let r = morsel_scheduler(&mut quick_cache());
        assert_eq!(r.rows.len(), 4, "Q1/Q3 x workers 1/4");
        for row in &r.rows {
            assert!(row[2].parse::<f64>().unwrap() > 0.0, "{}: no p50", row[0]);
            assert!(row[3].parse::<f64>().unwrap() > 0.0, "{}: no p99", row[0]);
            assert!(row[5].parse::<u64>().unwrap() > 0, "{}: no morsels", row[0]);
        }
        assert_eq!(r.notes.len(), 1);
        assert!(r.notes[0].contains("per-worker busy"));
    }

    #[test]
    fn ingest_reports_appends_and_compaction() {
        let r = ingest(&mut quick_cache());
        assert_eq!(r.rows.len(), 5, "one build row + four append rows");
        assert_eq!(r.notes.len(), 1);
        let last = r.rows.last().unwrap();
        let dead: u64 = last[6].parse().unwrap();
        assert!(dead > 0, "appends leave dead bytes for compaction to reclaim");
        assert!(r.notes[0].contains("reclaimed"));
    }

    #[test]
    fn sharded_ingest_compares_both_paths_per_batch() {
        let r = sharded_ingest(&mut quick_cache());
        assert_eq!(r.rows.len(), 4, "one row per appended batch");
        for row in &r.rows {
            assert!(row[1].parse::<u64>().unwrap() > 0, "batch {}: no rows", row[0]);
            assert!(row[4].parse::<f64>().unwrap() > 0.0, "batch {}: no speedup", row[0]);
            assert!(row[5].parse::<u64>().unwrap() >= 1, "batch {}: no shards", row[0]);
        }
        assert_eq!(r.notes.len(), 2);
        assert!(r.notes[0].contains("reclaimed"));
        assert!(r.notes[1].contains("background compaction"));
    }

    #[test]
    fn lazy_io_reports_projection_savings() {
        let r = lazy_io(&mut quick_cache());
        assert_eq!(r.rows.len(), 8);
        assert_eq!(r.notes.len(), 4);
        assert!(r.notes[1].contains("v4 codecs"), "missing compression note: {}", r.notes[1]);
        assert!(r.notes[3].contains("cold decode rates"), "missing decode note: {}", r.notes[3]);
        assert!(r.notes[3].contains("MB/s"), "decode note carries no rate: {}", r.notes[3]);
        for row in &r.rows {
            let columns: usize = row[3].parse().unwrap();
            let columns_max: usize = row[4].parse().unwrap();
            let bytes_read: u64 = row[5].parse().unwrap();
            let bytes_decoded: u64 = row[6].parse().unwrap();
            let file_bytes: u64 = row[7].parse().unwrap();
            assert!(columns < columns_max, "{}: projection pushdown never fired", row[0]);
            assert!(bytes_read < file_bytes, "{}: read the whole file", row[0]);
            assert!(bytes_read <= bytes_decoded, "{}: decoded fewer bytes than it read", row[0]);
        }
    }
}
