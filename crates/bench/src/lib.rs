//! # cohana-bench
//!
//! The benchmark harness regenerating **every table and figure** of the
//! paper's evaluation (§5):
//!
//! | Experiment | Paper artifact | Function |
//! |------------|----------------|----------|
//! | `table2`   | Table 2 (plain GROUP BY weekly trend) | [`experiments::table2`] |
//! | `table3`   | Table 3 / Figure 1 (cohort matrix) | [`experiments::table3`] |
//! | `fig6`     | Figure 6 (COHANA vs chunk size, Q1–Q4, scales) | [`experiments::fig6`] |
//! | `fig7`     | Figure 7 (storage vs chunk size) | [`experiments::fig7`] |
//! | `fig8`     | Figure 8 (birth-selection selectivity) | [`experiments::fig8`] |
//! | `fig9`     | Figure 9 (age-selection selectivity) | [`experiments::fig9`] |
//! | `fig10`    | Figure 10 (MV generation vs compression time) | [`experiments::fig10`] |
//! | `fig11`    | Figure 11 (five evaluation schemes, Q1–Q4, scales) | [`experiments::fig11`] |
//! | `ablation` | DESIGN.md D1–D4 optimization ablations | [`experiments::ablation`] |
//!
//! The `cohana-bench` binary drives them (`cohana-bench --exp fig11`), and
//! the `benches/` directory holds criterion microbenchmark versions of the
//! same measurements at fixed small scales.
//!
//! Absolute times differ from the paper's testbed; the harness is about
//! reproducing the *shape*: who wins, by how many orders of magnitude, and
//! how costs move with scale, chunk size, and selectivity.

pub mod datasets;
pub mod experiments;
pub mod report;
pub mod timing;

pub use datasets::{BenchConfig, DatasetCache};
pub use report::ExperimentResult;
pub use timing::time_once;
