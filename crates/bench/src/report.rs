//! Experiment result tables: aligned text for the terminal, CSV and JSON
//! for further analysis.

use std::path::Path;

/// One experiment's output table.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment id (e.g. `fig11-q1`).
    pub name: String,
    /// Free-text description shown above the table.
    pub description: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-text footnotes rendered below the table (e.g. I/O counter
    /// summaries that don't fit the row grid).
    pub notes: Vec<String>,
}

impl ExperimentResult {
    /// Create an empty result table.
    pub fn new(
        name: impl Into<String>,
        description: impl Into<String>,
        headers: Vec<String>,
    ) -> Self {
        ExperimentResult {
            name: name.into(),
            description: description.into(),
            headers,
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push_row(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.headers.len());
        self.rows.push(row);
    }

    /// Append a footnote rendered below the table.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Aligned text rendering.
    pub fn pretty(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = format!("## {} — {}\n", self.name, self.description);
        for (i, h) in self.headers.iter().enumerate() {
            out.push_str(&format!("{:>w$}  ", h, w = widths[i]));
        }
        out.push('\n');
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                out.push_str(&format!("{:>w$}  ", c, w = widths[i]));
            }
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    /// CSV rendering.
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// JSON rendering (hand-rolled; the environment builds without serde).
    pub fn to_json(&self) -> String {
        fn quote(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        fn string_array(items: &[String], indent: &str) -> String {
            let body: Vec<String> = items.iter().map(|s| quote(s)).collect();
            format!("{indent}[{}]", body.join(", "))
        }
        let rows: Vec<String> = self.rows.iter().map(|r| string_array(r, "    ")).collect();
        format!(
            "{{\n  \"name\": {},\n  \"description\": {},\n  \"headers\": {},\n  \"rows\": [\n{}\n  ],\n  \"notes\": {}\n}}\n",
            quote(&self.name),
            quote(&self.description),
            string_array(&self.headers, "").trim_start(),
            rows.join(",\n"),
            string_array(&self.notes, "").trim_start()
        )
    }

    /// Write `name.csv` and `name.json` into a directory.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{}.csv", self.name)), self.to_csv())?;
        std::fs::write(dir.join(format!("{}.json", self.name)), self.to_json())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentResult {
        let mut r = ExperimentResult::new("fig0", "demo", vec!["scale".into(), "time".into()]);
        r.push_row(vec!["1".into(), "0.5".into()]);
        r.push_row(vec!["2".into(), "1.1".into()]);
        r
    }

    #[test]
    fn pretty_and_csv() {
        let r = sample();
        assert!(r.pretty().contains("## fig0"));
        assert_eq!(r.to_csv(), "scale,time\n1,0.5\n2,1.1\n");
    }

    #[test]
    fn notes_render_in_pretty_and_json() {
        let mut r = sample();
        r.push_note("cache budget 4096 bytes");
        assert!(r.pretty().contains("note: cache budget 4096 bytes"));
        assert!(r.to_json().contains("\"cache budget 4096 bytes\""));
        // CSV stays a plain data grid.
        assert!(!r.to_csv().contains("cache budget"));
    }

    #[test]
    fn writes_files() {
        let dir = std::env::temp_dir().join("cohana-bench-report-test");
        let r = sample();
        r.write_to(&dir).unwrap();
        assert!(dir.join("fig0.csv").exists());
        assert!(dir.join("fig0.json").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
