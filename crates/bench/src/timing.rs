//! Simple wall-clock measurement used by the experiment harness (the
//! criterion benches use criterion's own statistics instead).

use std::time::{Duration, Instant};

/// Time a single execution.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Run `f` once to warm up, then `runs` times, returning the mean duration.
/// The paper reports "the average execution time of five runs".
pub fn time_avg<T>(runs: usize, mut f: impl FnMut() -> T) -> Duration {
    assert!(runs > 0);
    let _ = f(); // warm-up
    let mut total = Duration::ZERO;
    for _ in 0..runs {
        let start = Instant::now();
        let out = f();
        total += start.elapsed();
        std::hint::black_box(out);
    }
    total / runs as u32
}

/// Render a duration in the paper's seconds-with-3-significant-digits style.
pub fn fmt_secs(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else if s >= 0.001 {
        format!("{:.3}", s)
    } else {
        format!("{:.6}", s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_once_measures() {
        let (v, d) = time_once(|| (0..10_000).sum::<u64>());
        assert_eq!(v, 49_995_000);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn time_avg_runs_n_plus_one_times() {
        let mut count = 0;
        let _ = time_avg(5, || count += 1);
        assert_eq!(count, 6); // 1 warm-up + 5 measured
    }

    #[test]
    fn fmt_secs_styles() {
        assert_eq!(fmt_secs(Duration::from_secs(200)), "200");
        assert_eq!(fmt_secs(Duration::from_millis(1500)), "1.50");
        assert_eq!(fmt_secs(Duration::from_millis(12)), "0.012");
        assert_eq!(fmt_secs(Duration::from_micros(5)), "0.000005");
    }
}
