//! Simple wall-clock measurement used by the experiment harness (the
//! criterion benches use criterion's own statistics instead).

use std::time::{Duration, Instant};

/// Time a single execution.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Run `f` once to warm up, then `runs` times, returning the mean duration.
/// The paper reports "the average execution time of five runs".
pub fn time_avg<T>(runs: usize, mut f: impl FnMut() -> T) -> Duration {
    assert!(runs > 0);
    let _ = f(); // warm-up
    let mut total = Duration::ZERO;
    for _ in 0..runs {
        let start = Instant::now();
        let out = f();
        total += start.elapsed();
        std::hint::black_box(out);
    }
    total / runs as u32
}

/// Run `f` once to warm up, then `runs` times, returning every measured
/// duration in execution order. The latency-distribution experiments
/// (morsel scheduler) need the samples, not just [`time_avg`]'s mean.
pub fn time_samples<T>(runs: usize, mut f: impl FnMut() -> T) -> Vec<Duration> {
    assert!(runs > 0);
    let _ = f(); // warm-up
    (0..runs)
        .map(|_| {
            let start = Instant::now();
            let out = f();
            let d = start.elapsed();
            std::hint::black_box(out);
            d
        })
        .collect()
}

/// Nearest-rank percentile (`p` in 0..=100) of unsorted duration samples.
/// A single sample is every percentile, so smoke-sized runs stay defined.
pub fn percentile(samples: &[Duration], p: f64) -> Option<Duration> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

/// Render a duration in the paper's seconds-with-3-significant-digits style.
pub fn fmt_secs(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else if s >= 0.001 {
        format!("{:.3}", s)
    } else {
        format!("{:.6}", s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_once_measures() {
        let (v, d) = time_once(|| (0..10_000).sum::<u64>());
        assert_eq!(v, 49_995_000);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn time_avg_runs_n_plus_one_times() {
        let mut count = 0;
        let _ = time_avg(5, || count += 1);
        assert_eq!(count, 6); // 1 warm-up + 5 measured
    }

    #[test]
    fn time_samples_returns_one_duration_per_run() {
        let mut count = 0;
        let samples = time_samples(4, || count += 1);
        assert_eq!(samples.len(), 4);
        assert_eq!(count, 5); // 1 warm-up + 4 measured
    }

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile(&[], 50.0), None);
        let one = vec![Duration::from_millis(7)];
        assert_eq!(percentile(&one, 50.0), Some(Duration::from_millis(7)));
        assert_eq!(percentile(&one, 99.0), Some(Duration::from_millis(7)));
        let samples: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&samples, 50.0), Some(Duration::from_millis(50)));
        assert_eq!(percentile(&samples, 99.0), Some(Duration::from_millis(99)));
    }

    #[test]
    fn fmt_secs_styles() {
        assert_eq!(fmt_secs(Duration::from_secs(200)), "200");
        assert_eq!(fmt_secs(Duration::from_millis(1500)), "1.50");
        assert_eq!(fmt_secs(Duration::from_millis(12)), "0.012");
        assert_eq!(fmt_secs(Duration::from_micros(5)), "0.000005");
    }
}
