//! Aggregate functions for cohort aggregation (`fA` of γᶜ).
//!
//! Besides the standard SQL aggregates the paper's §4.5 adds `UserCount()`,
//! a distinct-user count per `(cohort, age)` that exploits the storage
//! property that each user's tuples live in exactly one chunk: counting per
//! chunk and summing the per-chunk counts is exact, with no cross-chunk
//! distinct set needed.

use crate::error::EngineError;
use std::fmt;

/// An aggregate function over a measure attribute (or over users, for
/// `UserCount`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggFunc {
    /// `Sum(attr)`
    Sum(String),
    /// `Avg(attr)`
    Avg(String),
    /// `Min(attr)`
    Min(String),
    /// `Max(attr)`
    Max(String),
    /// `Count()` — number of qualifying age activity tuples.
    Count,
    /// `UserCount()` — distinct users with at least one qualifying age
    /// activity tuple at the given age (§4.5).
    UserCount,
}

impl AggFunc {
    /// `Sum(attr)`
    pub fn sum(attr: impl Into<String>) -> Self {
        AggFunc::Sum(attr.into())
    }

    /// `Avg(attr)`
    pub fn avg(attr: impl Into<String>) -> Self {
        AggFunc::Avg(attr.into())
    }

    /// `Min(attr)`
    pub fn min(attr: impl Into<String>) -> Self {
        AggFunc::Min(attr.into())
    }

    /// `Max(attr)`
    pub fn max(attr: impl Into<String>) -> Self {
        AggFunc::Max(attr.into())
    }

    /// `Count()`
    pub fn count() -> Self {
        AggFunc::Count
    }

    /// `UserCount()`
    pub fn user_count() -> Self {
        AggFunc::UserCount
    }

    /// The measure attribute the aggregate reads, if any.
    pub fn attr(&self) -> Option<&str> {
        match self {
            AggFunc::Sum(a) | AggFunc::Avg(a) | AggFunc::Min(a) | AggFunc::Max(a) => Some(a),
            AggFunc::Count | AggFunc::UserCount => None,
        }
    }

    /// Whether this aggregate is updated once per `(user, age)` rather than
    /// once per tuple.
    pub fn per_user(&self) -> bool {
        matches!(self, AggFunc::UserCount)
    }

    /// Fresh accumulator state.
    pub fn init(&self) -> AggState {
        match self {
            AggFunc::Sum(_) => AggState::Sum(0),
            AggFunc::Avg(_) => AggState::Avg { sum: 0, count: 0 },
            AggFunc::Min(_) => AggState::Min(None),
            AggFunc::Max(_) => AggState::Max(None),
            AggFunc::Count => AggState::Count(0),
            AggFunc::UserCount => AggState::UserCount(0),
        }
    }

    /// Column header for reports, matching the paper's SELECT list style.
    pub fn header(&self) -> String {
        match self {
            AggFunc::Sum(a) => format!("Sum({a})"),
            AggFunc::Avg(a) => format!("Avg({a})"),
            AggFunc::Min(a) => format!("Min({a})"),
            AggFunc::Max(a) => format!("Max({a})"),
            AggFunc::Count => "Count()".to_string(),
            AggFunc::UserCount => "UserCount()".to_string(),
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.header())
    }
}

/// Accumulator state of one aggregate in one `(cohort, age)` bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggState {
    /// Running sum.
    Sum(i64),
    /// Running sum and count for averages.
    Avg {
        /// Sum of values.
        sum: i64,
        /// Number of values.
        count: u64,
    },
    /// Running minimum.
    Min(Option<i64>),
    /// Running maximum.
    Max(Option<i64>),
    /// Tuple count.
    Count(u64),
    /// Distinct-user count.
    UserCount(u64),
}

impl AggState {
    /// Fold in one measure value (per qualifying tuple). For `UserCount`
    /// use [`AggState::update_user`] instead.
    #[inline]
    pub fn update(&mut self, v: i64) {
        match self {
            AggState::Sum(s) => *s += v,
            AggState::Avg { sum, count } => {
                *sum += v;
                *count += 1;
            }
            AggState::Min(m) => *m = Some(m.map_or(v, |cur| cur.min(v))),
            AggState::Max(m) => *m = Some(m.map_or(v, |cur| cur.max(v))),
            AggState::Count(c) => *c += 1,
            AggState::UserCount(_) => unreachable!("UserCount updates once per user"),
        }
    }

    /// Fold in one distinct user (per `(user, age)` pair).
    #[inline]
    pub fn update_user(&mut self) {
        match self {
            AggState::UserCount(c) => *c += 1,
            _ => unreachable!("update_user only applies to UserCount"),
        }
    }

    /// Merge a partial state from another chunk. Correct for `UserCount`
    /// because a user's tuples are confined to a single chunk.
    pub fn merge(&mut self, other: &AggState) -> Result<(), EngineError> {
        match (self, other) {
            (AggState::Sum(a), AggState::Sum(b)) => *a += b,
            (AggState::Avg { sum, count }, AggState::Avg { sum: s2, count: c2 }) => {
                *sum += s2;
                *count += c2;
            }
            (AggState::Min(a), AggState::Min(b)) => {
                *a = match (*a, *b) {
                    (Some(x), Some(y)) => Some(x.min(y)),
                    (x, y) => x.or(y),
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                *a = match (*a, *b) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    (x, y) => x.or(y),
                }
            }
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::UserCount(a), AggState::UserCount(b)) => *a += b,
            (a, b) => {
                return Err(EngineError::TypeError(format!(
                    "cannot merge aggregate states {a:?} and {b:?}"
                )))
            }
        }
        Ok(())
    }

    /// Produce the final reported value.
    pub fn finalize(&self) -> AggValue {
        match self {
            AggState::Sum(s) => AggValue::Int(*s),
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    AggValue::Null
                } else {
                    AggValue::Float(*sum as f64 / *count as f64)
                }
            }
            AggState::Min(m) => m.map_or(AggValue::Null, AggValue::Int),
            AggState::Max(m) => m.map_or(AggValue::Null, AggValue::Int),
            AggState::Count(c) => AggValue::Int(*c as i64),
            AggState::UserCount(c) => AggValue::Int(*c as i64),
        }
    }
}

/// A finalized aggregate value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggValue {
    /// Exact integer result.
    Int(i64),
    /// Fractional result (averages).
    Float(f64),
    /// No qualifying tuples.
    Null,
}

impl AggValue {
    /// Numeric view (NULL is `None`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AggValue::Int(v) => Some(*v as f64),
            AggValue::Float(v) => Some(*v),
            AggValue::Null => None,
        }
    }

    /// Exact integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            AggValue::Int(v) => Some(*v),
            AggValue::Float(v) => Some(v.round() as i64),
            AggValue::Null => None,
        }
    }

    /// Approximate equality for differential tests (float tolerance 1e-9
    /// relative).
    pub fn approx_eq(&self, other: &AggValue) -> bool {
        match (self, other) {
            (AggValue::Null, AggValue::Null) => true,
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    (x - y).abs() <= 1e-9 * scale
                }
                _ => false,
            },
        }
    }
}

impl fmt::Display for AggValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggValue::Int(v) => write!(f, "{v}"),
            AggValue::Float(v) => write!(f, "{v:.2}"),
            AggValue::Null => write!(f, "NULL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_update_merge_finalize() {
        let f = AggFunc::sum("gold");
        let mut a = f.init();
        a.update(10);
        a.update(5);
        let mut b = f.init();
        b.update(7);
        a.merge(&b).unwrap();
        assert_eq!(a.finalize(), AggValue::Int(22));
    }

    #[test]
    fn avg_finalize() {
        let mut s = AggFunc::avg("gold").init();
        s.update(10);
        s.update(20);
        s.update(33);
        assert_eq!(s.finalize(), AggValue::Float(21.0));
        assert_eq!(AggFunc::avg("gold").init().finalize(), AggValue::Null);
    }

    #[test]
    fn min_max_with_empty_partials() {
        let f = AggFunc::min("gold");
        let mut a = f.init();
        let b = f.init();
        a.merge(&b).unwrap();
        assert_eq!(a.finalize(), AggValue::Null);
        a.update(5);
        a.update(-2);
        assert_eq!(a.finalize(), AggValue::Int(-2));

        let mut m = AggFunc::max("gold").init();
        m.update(5);
        let mut m2 = AggFunc::max("gold").init();
        m2.update(9);
        m.merge(&m2).unwrap();
        assert_eq!(m.finalize(), AggValue::Int(9));
    }

    #[test]
    fn user_count_updates_per_user() {
        let mut s = AggFunc::user_count().init();
        s.update_user();
        s.update_user();
        assert_eq!(s.finalize(), AggValue::Int(2));
        assert!(AggFunc::user_count().per_user());
        assert!(!AggFunc::count().per_user());
    }

    #[test]
    fn merge_type_mismatch_errors() {
        let mut a = AggFunc::sum("gold").init();
        let b = AggFunc::count().init();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn approx_eq() {
        assert!(AggValue::Int(3).approx_eq(&AggValue::Float(3.0)));
        assert!(AggValue::Float(1.0 / 3.0).approx_eq(&AggValue::Float(0.3333333333333333)));
        assert!(!AggValue::Int(3).approx_eq(&AggValue::Null));
        assert!(AggValue::Null.approx_eq(&AggValue::Null));
    }

    #[test]
    fn headers() {
        assert_eq!(AggFunc::sum("gold").header(), "Sum(gold)");
        assert_eq!(AggFunc::user_count().header(), "UserCount()");
        assert_eq!(AggFunc::avg("gold").attr(), Some("gold"));
        assert_eq!(AggFunc::count().attr(), None);
    }
}
