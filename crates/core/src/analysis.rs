//! Post-processing analytics over cohort reports.
//!
//! The paper's application sections (retention analysis in §4.5, the
//! Table 3 reading guide in §1) interpret the raw `(cohort, age, size,
//! measure)` table in standard ways; this module packages those readings as
//! reusable operations over a [`CohortReport`]:
//!
//! * [`retention_matrix`] — measures divided by cohort size (Q1's
//!   "retained users" as rates);
//! * [`aging_trend`] — each cohort's measure as a function of age (read a
//!   Table 3 row);
//! * [`social_change_trend`] — the measure at a fixed age across cohorts
//!   (read a Table 3 column);
//! * [`diagonal`] — the anti-diagonal of the cohort matrix: what every
//!   cohort did in the same calendar period, which is exactly the
//!   information a plain GROUP BY (Table 2) collapses.

use crate::report::CohortReport;
use cohana_activity::Value;
use std::collections::BTreeMap;

/// A cohort's measure series by age.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Cohort identifier.
    pub cohort: Vec<Value>,
    /// Cohort size.
    pub size: u64,
    /// `(age, value)` points, age-ascending; `None` marks empty buckets.
    pub points: Vec<(i64, Option<f64>)>,
}

/// Retention rates: measure `measure_idx` divided by cohort size, per
/// cohort and age. For a `UserCount()` measure this is the classic
/// retention curve (fraction of the cohort active at each age).
pub fn retention_matrix(report: &CohortReport, measure_idx: usize) -> Vec<Series> {
    report
        .cohorts()
        .into_iter()
        .map(|cohort| {
            let size = report.cohort_sizes.get(cohort).copied().unwrap_or(0);
            let points = ages_of(report)
                .into_iter()
                .map(|age| {
                    let v = report.find(cohort, age).and_then(|r| {
                        r.measures[measure_idx].as_f64().map(|m| {
                            if size == 0 {
                                0.0
                            } else {
                                m / size as f64
                            }
                        })
                    });
                    (age, v)
                })
                .collect();
            Series { cohort: cohort.clone(), size, points }
        })
        .collect()
}

/// One cohort's measure as a function of age (a Table 3 row: the aging
/// effect).
pub fn aging_trend(report: &CohortReport, cohort: &[Value], measure_idx: usize) -> Vec<(i64, f64)> {
    report
        .rows
        .iter()
        .filter(|r| r.cohort == cohort)
        .filter_map(|r| r.measures[measure_idx].as_f64().map(|v| (r.age, v)))
        .collect()
}

/// The measure at a fixed age across cohorts (a Table 3 column: the
/// social-change effect).
pub fn social_change_trend(
    report: &CohortReport,
    age: i64,
    measure_idx: usize,
) -> Vec<(Vec<Value>, f64)> {
    report
        .rows
        .iter()
        .filter(|r| r.age == age)
        .filter_map(|r| r.measures[measure_idx].as_f64().map(|v| (r.cohort.clone(), v)))
        .collect()
}

/// Calendar view: aggregate each `(cohort, age)` cell into the calendar
/// bucket `cohort_start + age` (in age units). Only meaningful for
/// time-binned cohorts whose labels are `YYYY-MM-DD` bin starts; returns
/// per-calendar-bucket sums of the measure — the anti-diagonal view a plain
/// GROUP BY reports.
pub fn diagonal(report: &CohortReport, measure_idx: usize) -> BTreeMap<i64, f64> {
    let mut out: BTreeMap<i64, f64> = BTreeMap::new();
    for r in &report.rows {
        let Some(label) = r.cohort.first().and_then(|v| v.as_str()) else { continue };
        let Ok(start) = cohana_activity::Timestamp::parse(label) else { continue };
        if let Some(v) = r.measures[measure_idx].as_f64() {
            // Calendar bucket index: bin start plus age units.
            *out.entry(start.secs() / cohana_activity::SECONDS_PER_DAY + r.age).or_insert(0.0) += v;
        }
    }
    out
}

/// Summary statistics of one measure across all `(cohort, age)` buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasureSummary {
    /// Non-NULL buckets.
    pub buckets: usize,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Mean value.
    pub mean: f64,
}

/// Summarize a measure column. Returns `None` when every bucket is NULL.
pub fn summarize(report: &CohortReport, measure_idx: usize) -> Option<MeasureSummary> {
    let values: Vec<f64> =
        report.rows.iter().filter_map(|r| r.measures[measure_idx].as_f64()).collect();
    if values.is_empty() {
        return None;
    }
    let (mut min, mut max, mut sum) = (f64::INFINITY, f64::NEG_INFINITY, 0.0);
    for v in &values {
        min = min.min(*v);
        max = max.max(*v);
        sum += v;
    }
    Some(MeasureSummary { buckets: values.len(), min, max, mean: sum / values.len() as f64 })
}

fn ages_of(report: &CohortReport) -> Vec<i64> {
    let mut ages: Vec<i64> = report.rows.iter().map(|r| r.age).collect();
    ages.sort_unstable();
    ages.dedup();
    ages
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggValue;
    use crate::report::ReportRow;

    fn report() -> CohortReport {
        let cohort = |c: &str| vec![Value::str(c)];
        CohortReport {
            cohort_attrs: vec!["time(week)".into()],
            agg_names: vec!["UserCount()".into()],
            rows: vec![
                ReportRow {
                    cohort: cohort("2013-05-16"),
                    size: 10,
                    age: 1,
                    measures: vec![AggValue::Int(8)],
                },
                ReportRow {
                    cohort: cohort("2013-05-16"),
                    size: 10,
                    age: 2,
                    measures: vec![AggValue::Int(5)],
                },
                ReportRow {
                    cohort: cohort("2013-05-23"),
                    size: 4,
                    age: 1,
                    measures: vec![AggValue::Int(4)],
                },
            ],
            cohort_sizes: BTreeMap::from([(cohort("2013-05-16"), 10), (cohort("2013-05-23"), 4)]),
            stats: None,
        }
    }

    #[test]
    fn retention_rates() {
        let m = retention_matrix(&report(), 0);
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].points, vec![(1, Some(0.8)), (2, Some(0.5))]);
        // Second cohort has no age-2 bucket.
        assert_eq!(m[1].points, vec![(1, Some(1.0)), (2, None)]);
    }

    #[test]
    fn trends() {
        let r = report();
        let aging = aging_trend(&r, &[Value::str("2013-05-16")], 0);
        assert_eq!(aging, vec![(1, 8.0), (2, 5.0)]);
        let social = social_change_trend(&r, 1, 0);
        assert_eq!(social.len(), 2);
        assert_eq!(social[0].1, 8.0);
        assert_eq!(social[1].1, 4.0);
    }

    #[test]
    fn diagonal_buckets_by_calendar() {
        let r = report();
        let d = diagonal(&r, 0);
        // 2013-05-16+2 and 2013-05-23+1 land on different days; 3 buckets.
        assert_eq!(d.len(), 3);
        assert_eq!(d.values().sum::<f64>(), 17.0);
    }

    #[test]
    fn summarize_measure() {
        let s = summarize(&report(), 0).unwrap();
        assert_eq!(s.buckets, 3);
        assert_eq!(s.min, 4.0);
        assert_eq!(s.max, 8.0);
        assert!((s.mean - 17.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn summarize_empty_is_none() {
        let mut r = report();
        r.rows.clear();
        assert!(summarize(&r, 0).is_none());
    }
}
