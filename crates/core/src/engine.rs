//! The COHANA engine facade: catalog + storage manager + query executor
//! (Figure 4; the parser module lives in the `cohana-sql` crate).

use crate::error::EngineError;
use crate::handle::{OpenOptions, TableHandle};
use crate::plan::{plan_query, PhysicalPlan, PlannerOptions};
use crate::query::CohortQuery;
use crate::report::CohortReport;
use crate::session::Session;
use crate::sharded::ShardedTable;
use cohana_activity::{ActivityTable, Schema};
use cohana_storage::{ChunkSource, CompressedTable, CompressionOptions, FileSource};
use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, RwLock};

/// Default target rows per work-stealing morsel: large enough that decode
/// and scheduling amortize, small enough that a skewed chunk splits across
/// workers.
pub const DEFAULT_MORSEL_ROWS: usize = 16 * 1024;

/// Engine-level options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// Planner/optimizer flags.
    pub planner: PlannerOptions,
    /// Worker threads for chunk-parallel execution (1 = serial, matching the
    /// paper's single-stream measurements).
    pub parallelism: usize,
    /// Target rows per morsel — the unit of work the morsel-driven scheduler
    /// hands to (and steals between) workers.
    pub morsel_rows: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            planner: PlannerOptions::default(),
            parallelism: 1,
            morsel_rows: DEFAULT_MORSEL_ROWS,
        }
    }
}

/// The default table name used by [`Cohana::from_activity_table`].
pub const DEFAULT_TABLE: &str = "GameActions";

/// One catalog slot: a fully resident table, an engine-opened file, a
/// sharded table directory, or an arbitrary (caller-provided) chunk source.
/// Resident tables, files, and sharded tables keep their concrete types so
/// the engine knows how to grow / compact / maintain them; all four kinds
/// execute through [`ChunkSource`].
#[derive(Clone)]
enum CatalogEntry {
    Memory(Arc<CompressedTable>),
    File(Arc<FileSource>),
    Sharded(Arc<ShardedTable>),
    Source(Arc<dyn ChunkSource>),
}

impl CatalogEntry {
    fn as_source(&self) -> Arc<dyn ChunkSource> {
        match self {
            CatalogEntry::Memory(table) => table.clone(),
            CatalogEntry::File(source) => source.clone(),
            CatalogEntry::Sharded(table) => table.source(),
            CatalogEntry::Source(source) => source.clone(),
        }
    }
}

/// The COHANA cohort query engine.
///
/// Holds a catalog of activity tables and executes [`CohortQuery`]s against
/// them. Tables are attached with the builder-style [`Cohana::open`] —
/// lazily file-backed by default, fully resident with `.resident(true)`,
/// sharded when the path names a shard directory — or registered directly
/// ([`Cohana::register`], [`Cohana::register_source`]). Per-table lifecycle
/// (ingest, compaction, deletion, maintenance) lives on the
/// [`TableHandle`] returned by [`Cohana::open`] / [`Cohana::table`].
/// Cloning entries is cheap (tables are shared).
pub struct Cohana {
    catalog: RwLock<HashMap<String, CatalogEntry>>,
    default_table: RwLock<Option<String>>,
    /// Serializes [`Cohana::ingest`] / [`Cohana::compact`]: both are
    /// read-modify-write sequences (read entry → grow file or rebuild table
    /// → swap entry), and two of them interleaving on the same table would
    /// corrupt a file-backed table (overlapping tail writes) or silently
    /// drop one batch on a resident one. Queries are unaffected — they go
    /// through `catalog`'s own lock.
    write_lock: std::sync::Mutex<()>,
    options: EngineOptions,
}

impl Cohana {
    /// An empty engine with the given options.
    pub fn new(options: EngineOptions) -> Self {
        Cohana {
            catalog: RwLock::new(HashMap::new()),
            default_table: RwLock::new(None),
            write_lock: std::sync::Mutex::new(()),
            options,
        }
    }

    /// Compress an activity table and register it as [`DEFAULT_TABLE`].
    pub fn from_activity_table(
        table: &ActivityTable,
        compression: CompressionOptions,
    ) -> Result<Self, EngineError> {
        Self::from_activity_table_with(table, compression, EngineOptions::default())
    }

    /// Like [`Cohana::from_activity_table`] with explicit engine options.
    pub fn from_activity_table_with(
        table: &ActivityTable,
        compression: CompressionOptions,
        options: EngineOptions,
    ) -> Result<Self, EngineError> {
        let engine = Cohana::new(options);
        let compressed = CompressedTable::build(table, compression)?;
        engine.register(DEFAULT_TABLE, compressed);
        Ok(engine)
    }

    /// Wrap an already-compressed table as the default.
    pub fn from_compressed(table: CompressedTable, options: EngineOptions) -> Self {
        let engine = Cohana::new(options);
        engine.register(DEFAULT_TABLE, table);
        engine
    }

    /// Engine options.
    pub fn options(&self) -> EngineOptions {
        self.options
    }

    fn insert(&self, name: String, entry: CatalogEntry) {
        self.catalog.write().unwrap().insert(name.clone(), entry);
        let mut default = self.default_table.write().unwrap();
        if default.is_none() {
            *default = Some(name);
        }
    }

    /// Start attaching (or creating) a table at `path`: returns an
    /// [`OpenOptions`] builder carrying the defaults — lazy attachment,
    /// default cache budget, name [`DEFAULT_TABLE`], no background
    /// maintenance. Finish with [`OpenOptions::open`] for existing data
    /// (single file or shard directory, sniffed automatically) or
    /// [`OpenOptions::create_from`] to build a new table from rows.
    ///
    /// ```no_run
    /// # use cohana_core::{Cohana, EngineOptions};
    /// # fn main() -> Result<(), cohana_core::EngineError> {
    /// let engine = Cohana::new(EngineOptions::default());
    /// let table = engine.open("activity.cohana").cache_bytes(64 << 20).open()?;
    /// # Ok(()) }
    /// ```
    pub fn open(&self, path: impl AsRef<Path>) -> OpenOptions<'_> {
        OpenOptions::new(self, path.as_ref())
    }

    /// A [`TableHandle`] on a registered table — the one place per-table
    /// lifecycle (ingest / compact / delete_users / maintenance) lives.
    pub fn table(&self, name: &str) -> Result<TableHandle<'_>, EngineError> {
        if self.catalog.read().unwrap().contains_key(name) {
            Ok(TableHandle::new(self, name.to_string()))
        } else {
            Err(EngineError::UnknownTable(name.to_string()))
        }
    }

    /// A [`TableHandle`] on the default table (the first one registered).
    pub fn default_table(&self) -> Result<TableHandle<'_>, EngineError> {
        let name = self
            .default_table_name()
            .ok_or_else(|| EngineError::UnknownTable("<no tables registered>".into()))?;
        self.table(&name)
    }

    /// Register a fully resident compressed table under a name; the first
    /// registered table becomes the default.
    pub fn register(
        &self,
        name: impl Into<String>,
        table: CompressedTable,
    ) -> Arc<CompressedTable> {
        let arc = Arc::new(table);
        self.insert(name.into(), CatalogEntry::Memory(arc.clone()));
        arc
    }

    /// Register any chunk source (e.g. a shared [`FileSource`]) under a
    /// name; the first registered table becomes the default.
    pub fn register_source(&self, name: impl Into<String>, source: Arc<dyn ChunkSource>) {
        self.insert(name.into(), CatalogEntry::Source(source));
    }

    /// Register an already-opened lazy file source (used by
    /// [`OpenOptions::open`] and the deprecated shims).
    pub(crate) fn register_file(&self, name: &str, source: Arc<FileSource>) {
        self.insert(name.to_string(), CatalogEntry::File(source));
    }

    /// Register an opened sharded table (used by [`OpenOptions::open`] /
    /// [`OpenOptions::create_from`]).
    pub(crate) fn register_sharded(&self, name: &str, table: Arc<ShardedTable>) {
        self.insert(name.to_string(), CatalogEntry::Sharded(table));
    }

    /// The sharded table registered under `name`, if that's what it is.
    pub(crate) fn sharded(&self, name: &str) -> Option<Arc<ShardedTable>> {
        match self.catalog.read().unwrap().get(name)? {
            CatalogEntry::Sharded(table) => Some(table.clone()),
            _ => None,
        }
    }

    /// Load a persisted table file **eagerly** (materializing every chunk)
    /// and register it.
    #[deprecated(since = "0.9.0", note = "use `engine.open(path).resident(true).open()`")]
    pub fn load_file(
        &self,
        name: impl Into<String>,
        path: &Path,
    ) -> Result<Arc<CompressedTable>, EngineError> {
        let table = cohana_storage::persist::read_file(path)?;
        Ok(self.register(name, table))
    }

    /// Open a v2–v4 persisted table file **lazily** and register it.
    #[deprecated(since = "0.9.0", note = "use `engine.open(path).open()`")]
    pub fn open_file(
        &self,
        name: impl Into<String>,
        path: &Path,
    ) -> Result<Arc<FileSource>, EngineError> {
        let source =
            Arc::new(FileSource::open_with_budget(path, cohana_storage::DEFAULT_CACHE_BUDGET)?);
        self.insert(name.into(), CatalogEntry::File(source.clone()));
        Ok(source)
    }

    /// Like `open_file` with an explicit segment-cache byte budget.
    #[deprecated(since = "0.9.0", note = "use `engine.open(path).cache_bytes(n).open()`")]
    pub fn open_file_with_budget(
        &self,
        name: impl Into<String>,
        path: &Path,
        cache_bytes: usize,
    ) -> Result<Arc<FileSource>, EngineError> {
        let source = Arc::new(FileSource::open_with_budget(path, cache_bytes)?);
        self.insert(name.into(), CatalogEntry::File(source.clone()));
        Ok(source)
    }

    /// Fetch a registered **resident** table's concrete form (`None` for
    /// names registered as non-resident sources; use [`Cohana::source`] for
    /// the execution view of any table).
    pub fn resident(&self, name: &str) -> Option<Arc<CompressedTable>> {
        match self.catalog.read().unwrap().get(name)? {
            CatalogEntry::Memory(table) => Some(table.clone()),
            _ => None,
        }
    }

    /// Ingest a batch of activity tuples into a registered table, making it
    /// queryable by everything prepared *after* this call.
    ///
    /// * A file-backed table (registered via [`Cohana::open_file`]) grows via
    ///   [`persist::append`](cohana_storage::persist::append): new chunks are
    ///   appended to the file, chunks holding returning users are rewritten
    ///   at the tail, and the catalog entry is swapped for a freshly opened
    ///   source (same cache budget) describing the grown file.
    /// * A resident table is rebuilt in memory from its rows plus the batch
    ///   and swapped.
    /// * Generic sources registered with [`Cohana::register_source`] are not
    ///   ingestable — the engine does not know what backs them.
    ///
    /// **Snapshot semantics:** prepared [`Statement`]s pin the chunk source
    /// they were planned against, and both growth paths leave that source's
    /// view of its bytes intact, so existing statements keep answering from
    /// the pre-ingest snapshot; re-prepare to see the new data.
    ///
    /// [`Statement`]: crate::Statement
    #[deprecated(since = "0.9.0", note = "use `engine.table(name)?.ingest(batch)`")]
    pub fn ingest(
        &self,
        name: &str,
        batch: &cohana_activity::ActivityTable,
    ) -> Result<cohana_storage::AppendStats, EngineError> {
        self.ingest_inner(name, batch)
    }

    /// The implementation behind [`TableHandle::ingest`] (and the deprecated
    /// [`Cohana::ingest`] shim).
    pub(crate) fn ingest_inner(
        &self,
        name: &str,
        batch: &cohana_activity::ActivityTable,
    ) -> Result<cohana_storage::AppendStats, EngineError> {
        let _write = self.write_lock.lock().expect("write lock poisoned");
        let entry = self
            .catalog
            .read()
            .unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::UnknownTable(name.into()))?;
        match entry {
            CatalogEntry::File(source) => {
                let stats = cohana_storage::persist::append(source.path(), batch)?;
                let reopened = Arc::new(FileSource::open_with_budget(
                    source.path(),
                    source.cache_budget_bytes(),
                )?);
                self.insert(name.to_string(), CatalogEntry::File(reopened));
                Ok(stats)
            }
            CatalogEntry::Sharded(table) => {
                // The sharded table manages its own snapshot swap; the
                // catalog entry keeps pointing at the same ShardedTable.
                Ok(table.ingest(batch)?.total())
            }
            CatalogEntry::Memory(table) => {
                if table.schema() != batch.schema() {
                    return Err(EngineError::Unsupported(
                        "ingest batch schema differs from the table's schema".into(),
                    ));
                }
                let chunks_before = table.chunks().len();
                let mut rows = table.decompress()?;
                let mut builder = cohana_activity::TableBuilder::with_capacity(
                    table.schema().clone(),
                    rows.num_rows() + batch.num_rows(),
                );
                for row in rows.rows().iter().chain(batch.rows()) {
                    builder.push(row.values().to_vec())?;
                }
                rows = builder.finish().map_err(|e| {
                    EngineError::Unsupported(format!(
                        "ingest batch conflicts with existing data: {e}"
                    ))
                })?;
                let rebuilt = CompressedTable::build(&rows, table.options())?;
                let chunks_after = rebuilt.chunks().len();
                self.register(name, rebuilt);
                Ok(cohana_storage::AppendStats {
                    rows_appended: batch.num_rows(),
                    chunks_before,
                    chunks_after,
                    // The in-memory path re-sorts globally, so every chunk is
                    // effectively rewritten and nothing goes dead.
                    chunks_rewritten: chunks_before,
                    ..Default::default()
                })
            }
            CatalogEntry::Source(_) => Err(EngineError::Unsupported(format!(
                "table {name:?} is a generic registered source; only resident tables and \
                 engine-opened files can be ingested into"
            ))),
        }
    }

    /// Compact a registered table: merge the under-filled chunks appends
    /// leave behind, restore the `(user, time)` primary ordering (and with
    /// it the §4.2 pruning quality), and reclaim dead bytes.
    ///
    /// File-backed tables are compacted on disk via
    /// [`persist::compact`](cohana_storage::persist::compact) (atomic
    /// temp-file + rename) and the catalog entry swapped; resident tables
    /// are rebuilt in memory. Prepared statements keep their pre-compact
    /// snapshot, exactly as with ingest.
    #[deprecated(since = "0.9.0", note = "use `engine.table(name)?.compact()`")]
    pub fn compact(&self, name: &str) -> Result<cohana_storage::CompactStats, EngineError> {
        self.compact_inner(name)
    }

    /// The implementation behind [`TableHandle::compact`] (and the
    /// deprecated [`Cohana::compact`] shim).
    pub(crate) fn compact_inner(
        &self,
        name: &str,
    ) -> Result<cohana_storage::CompactStats, EngineError> {
        let _write = self.write_lock.lock().expect("write lock poisoned");
        let entry = self
            .catalog
            .read()
            .unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::UnknownTable(name.into()))?;
        match entry {
            CatalogEntry::File(source) => {
                let stats = cohana_storage::persist::compact(source.path())?;
                let reopened = Arc::new(FileSource::open_with_budget(
                    source.path(),
                    source.cache_budget_bytes(),
                )?);
                self.insert(name.to_string(), CatalogEntry::File(reopened));
                Ok(stats)
            }
            CatalogEntry::Sharded(table) => Ok(table.compact()?),
            CatalogEntry::Memory(table) => {
                let chunks_before = table.chunks().len();
                let rebuilt = CompressedTable::build(&table.decompress()?, table.options())?;
                let chunks_after = rebuilt.chunks().len();
                let rows = rebuilt.num_rows();
                self.register(name, rebuilt);
                Ok(cohana_storage::CompactStats {
                    chunks_before,
                    chunks_after,
                    rows,
                    ..Default::default()
                })
            }
            CatalogEntry::Source(_) => Err(EngineError::Unsupported(format!(
                "table {name:?} is a generic registered source and cannot be compacted"
            ))),
        }
    }

    /// The implementation behind [`TableHandle::space_stats`]: per-shard
    /// stats for sharded tables, one entry for plain files.
    pub(crate) fn space_stats_inner(
        &self,
        name: &str,
    ) -> Result<Vec<cohana_storage::FileSpaceStats>, EngineError> {
        let entry = self
            .catalog
            .read()
            .unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::UnknownTable(name.into()))?;
        match entry {
            CatalogEntry::Sharded(table) => table.shard_space(),
            CatalogEntry::File(source) => {
                Ok(vec![cohana_storage::persist::file_space_stats(source.path())?])
            }
            CatalogEntry::Memory(_) | CatalogEntry::Source(_) => Err(EngineError::Unsupported(
                format!("table {name:?} has no backing file to measure"),
            )),
        }
    }

    /// Fetch a registered table as a chunk source (resident or lazy).
    pub fn source(&self, name: &str) -> Option<Arc<dyn ChunkSource>> {
        Some(self.catalog.read().unwrap().get(name)?.as_source())
    }

    /// The schema of a registered table, resident or lazy.
    pub fn schema_of(&self, name: &str) -> Option<Schema> {
        Some(self.source(name)?.table_meta().schema().clone())
    }

    /// Names of registered tables (sorted).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.catalog.read().unwrap().keys().cloned().collect();
        names.sort();
        names
    }

    /// The engine's default table (the first table registered), if any.
    pub fn default_table_name(&self) -> Option<String> {
        self.default_table.read().unwrap().clone()
    }

    /// Open a [`Session`]: a cheap per-caller handle carrying option
    /// overrides (parallelism, planner flags, default table) that never
    /// touch the shared engine. Sessions prepare [`Statement`]s; statements
    /// execute eagerly or stream per-chunk batches.
    ///
    /// [`Statement`]: crate::Statement
    pub fn session(&self) -> Session<'_> {
        Session::new(self)
    }

    /// Plan a query against the default table (planning only — predicate
    /// compilation happens when a [`Statement`] is prepared).
    ///
    /// [`Statement`]: crate::Statement
    pub fn plan(&self, query: &CohortQuery) -> Result<PhysicalPlan, EngineError> {
        plan_query(query, &self.session().schema()?, self.options.planner)
    }

    /// EXPLAIN: the optimized Figure-5 style plan plus scan projection,
    /// pruning predicate, and parallelism.
    pub fn explain(&self, query: &CohortQuery) -> Result<String, EngineError> {
        self.session().explain(query)
    }

    /// Execute a cohort query against the default table. Convenience for
    /// `self.session().execute(query)` — one-shot callers that don't need
    /// prepared statements or streaming.
    pub fn execute(&self, query: &CohortQuery) -> Result<CohortReport, EngineError> {
        self.session().execute(query)
    }

    /// Execute a cohort query against a named table. Convenience for
    /// `self.session().on_table(name).execute(query)`.
    pub fn execute_on(&self, name: &str, query: &CohortQuery) -> Result<CohortReport, EngineError> {
        self.session().on_table(name).execute(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggFunc;
    use cohana_activity::{generate, GeneratorConfig};

    fn engine() -> Cohana {
        let t = generate(&GeneratorConfig::small());
        Cohana::from_activity_table(&t, CompressionOptions::with_chunk_size(256)).unwrap()
    }

    fn q1() -> CohortQuery {
        CohortQuery::builder("launch")
            .cohort_by(["country"])
            .aggregate(AggFunc::user_count())
            .build()
            .unwrap()
    }

    #[test]
    fn execute_q1_nonempty() {
        let report = engine().execute(&q1()).unwrap();
        assert!(report.num_rows() > 0);
        // Sizes over cohorts equal the number of users (everyone launches).
        let total: u64 = report.cohort_sizes.values().sum();
        assert_eq!(total as usize, generate(&GeneratorConfig::small()).num_users());
    }

    #[test]
    fn unknown_table_errors() {
        let e = engine();
        assert!(matches!(e.execute_on("nope", &q1()).unwrap_err(), EngineError::UnknownTable(_)));
        let empty = Cohana::new(EngineOptions::default());
        assert!(empty.execute(&q1()).is_err());
    }

    #[test]
    fn explain_contains_operators() {
        let text = engine().explain(&q1()).unwrap();
        assert!(text.contains("γc"));
        assert!(text.contains("TableScan"));
    }

    #[test]
    fn register_and_list() {
        let e = engine();
        assert_eq!(e.table_names(), vec![DEFAULT_TABLE.to_string()]);
        assert!(e.resident(DEFAULT_TABLE).is_some());
        let handle = e.table(DEFAULT_TABLE).unwrap();
        assert_eq!(handle.name(), DEFAULT_TABLE);
        assert!(!handle.is_sharded());
        assert!(matches!(e.table("nope").unwrap_err(), EngineError::UnknownTable(_)));
    }

    #[test]
    fn parallel_matches_serial() {
        let t = generate(&GeneratorConfig::small());
        let serial = Cohana::from_activity_table_with(
            &t,
            CompressionOptions::with_chunk_size(128),
            EngineOptions { parallelism: 1, ..Default::default() },
        )
        .unwrap();
        let parallel = Cohana::from_activity_table_with(
            &t,
            CompressionOptions::with_chunk_size(128),
            EngineOptions { parallelism: 4, ..Default::default() },
        )
        .unwrap();
        let q = q1();
        let a = serial.execute(&q).unwrap();
        let b = parallel.execute(&q).unwrap();
        assert_eq!(a.rows, b.rows);
    }
}
