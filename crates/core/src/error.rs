//! Error type for the cohort query engine.

use std::fmt;

/// Errors raised during planning or executing cohort queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A referenced attribute does not exist in the activity table's schema.
    UnknownAttribute(String),
    /// A referenced table is not registered in the catalog.
    UnknownTable(String),
    /// An expression is ill-typed (e.g. comparing a string column with an
    /// integer literal).
    TypeError(String),
    /// The query is structurally invalid (e.g. no aggregates, cohort
    /// attributes including the user or action attribute).
    InvalidQuery(String),
    /// Propagated storage failure.
    Storage(String),
    /// Decoded data contradicts a format invariant the executor relies on
    /// (e.g. a chunk whose action column is not dictionary-encoded).
    Corrupt(String),
    /// Propagated activity-model failure.
    Activity(String),
    /// The operation is not supported on this catalog entry or input (e.g.
    /// ingesting into a generic registered source, or a batch whose schema
    /// differs from the table's).
    Unsupported(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownAttribute(a) => write!(f, "unknown attribute {a:?}"),
            EngineError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            EngineError::TypeError(m) => write!(f, "type error: {m}"),
            EngineError::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            EngineError::Storage(m) => write!(f, "storage error: {m}"),
            EngineError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            EngineError::Activity(m) => write!(f, "activity error: {m}"),
            EngineError::Unsupported(m) => write!(f, "unsupported operation: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<cohana_storage::StorageError> for EngineError {
    fn from(e: cohana_storage::StorageError) -> Self {
        EngineError::Storage(e.to_string())
    }
}

impl From<cohana_activity::ActivityError> for EngineError {
    fn from(e: cohana_activity::ActivityError) -> Self {
        match e {
            cohana_activity::ActivityError::UnknownAttribute(a) => EngineError::UnknownAttribute(a),
            other => EngineError::Activity(other.to_string()),
        }
    }
}
