//! The chunk pipeline: physical execution of cohort query plans (§4.2–§4.5).
//!
//! The optimized plan is executed **against each data chunk** independently
//! and the per-chunk partial results are merged — valid because chunking
//! never splits a user. This module is organised as a pull-based pipeline:
//! `QueryCore` owns everything resolved once per statement (the source,
//! the plan, the compiled `ExecContext`) and turns one chunk into one
//! [`ResultBatch`] on demand; the public [`QueryStream`](crate::QueryStream)
//! drives it either serially (one chunk per pull — a consumer that stops
//! pulling stops chunk decode) or with worker threads feeding a bounded
//! channel. Per chunk the executor fuses Algorithm 1 (birth selection), the
//! age selection, and Algorithm 2 (cohort aggregation) into a single pass
//! over user blocks:
//!
//! 1. **chunk pruning** — skip the chunk if the birth action is absent from
//!    its action chunk-dictionary, or if the birth predicate's time bounds
//!    are disjoint from the chunk's time range;
//! 2. per user: **GetBirthTuple**, evaluate the birth condition on that one
//!    tuple, and **SkipCurUser** on failure — so the pass touches only
//!    `O(l·m)` tuples for `l` qualified users;
//! 3. for qualified users: assign the cohort from the birth tuple, bump the
//!    cohort size, then fold every positive-age tuple that passes the age
//!    condition into the `(cohort, age)` aggregates;
//! 4. **array-based aggregation** (§4.4): when the cohort key is a single
//!    dictionary attribute with a small domain, the `(cohort, age)` table is
//!    a dense array indexed by `gid × age`, not a hash map;
//! 5. **UserCount** (§4.5): within a user block ages are non-decreasing
//!    (time-ordering property), so "distinct users at age g" needs only a
//!    last-age check per user, and per-chunk counts sum exactly because no
//!    user spans chunks.
//!
//! The per-chunk pass is **vectorized** (see `docs/PERF.md`): columns are
//! resolved once per chunk into [`ChunkCursors`],
//! predicates are re-specialized against each chunk's dictionaries and
//! ranges ([`CompiledExpr::specialize`]), each user block's time column is
//! block-decoded into scratch buffers reused across users, and the inner
//! loop performs no column lookups, no hardware divisions, and no
//! allocations.

use crate::agg::{AggFunc, AggState};
use crate::error::EngineError;
use crate::plan::PhysicalPlan;
use crate::query::CohortAttr;
use crate::report::{CohortReport, ReportRow};
use crate::scan::{compile_predicate, ChunkScan, CompiledExpr, EvalCtx};
use cohana_activity::{TimeBin, Timestamp, Value, ValueType};
use cohana_storage::rle::{UserRle, UserRun};
use cohana_storage::{
    with_recorder, Chunk, ChunkCursors, ChunkIndexEntry, ChunkSource, ColumnMeta, IoRecorder,
    TableMeta,
};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Upper bound on dense-array cells (`cohorts × ages × aggregates`); beyond
/// this the executor falls back to hash aggregation.
const DENSE_CELL_LIMIT: usize = 1 << 22;

/// Encoded cohort key: one `u64` per cohort attribute (global id for
/// strings, bit-cast `i64` for integers and binned birth times).
type Key = Vec<u64>;

/// Return bundle of [`ExecCore::spawn_workers`]: the result receiver, the
/// worker join handles, and one busy-nanoseconds counter per worker.
pub(crate) type SpawnedWorkers =
    (mpsc::Receiver<Result<ResultBatch, EngineError>>, Vec<JoinHandle<()>>, Arc<Vec<AtomicU64>>);

/// How one cohort attribute is extracted from a birth tuple.
#[derive(Debug, Clone, Copy)]
enum KeyPart {
    /// Global id of a string attribute.
    Str(usize),
    /// Raw integer attribute (bit-cast).
    Int(usize),
    /// Birth time binned to the granularity, bit-cast seconds.
    TimeBin(TimeBin),
}

/// Per-chunk (and merged) partial aggregation result.
#[derive(Debug, Default)]
pub(crate) struct Partial {
    /// Cohort → number of qualified users.
    sizes: HashMap<Key, u64>,
    /// Cohort → age → one state per aggregate.
    cells: HashMap<Key, BTreeMap<i64, Vec<AggState>>>,
}

impl Partial {
    pub(crate) fn merge(&mut self, other: Partial) -> Result<(), EngineError> {
        for (k, s) in other.sizes {
            *self.sizes.entry(k).or_insert(0) += s;
        }
        for (k, ages) in other.cells {
            // One hash lookup per cohort; the per-age loop below works on
            // the resolved tree, never re-hashing the cohort key.
            let into = self.cells.entry(k).or_default();
            if into.is_empty() {
                // Common case (each cohort usually first seen whole): adopt
                // the other side's tree instead of inserting age by age.
                *into = ages;
                continue;
            }
            for (age, states) in ages {
                match into.entry(age) {
                    std::collections::btree_map::Entry::Vacant(v) => {
                        v.insert(states);
                    }
                    std::collections::btree_map::Entry::Occupied(mut o) => {
                        for (a, b) in o.get_mut().iter_mut().zip(states.iter()) {
                            a.merge(b)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Total `(cohort, age)` cells across all cohorts.
    pub(crate) fn num_cells(&self) -> usize {
        self.cells.values().map(BTreeMap::len).sum()
    }
}

/// One per-chunk batch of partial results, as yielded by a
/// [`QueryStream`](crate::QueryStream).
///
/// A batch is a *partial* cohort aggregation: the same `(cohort, age)` cell
/// may appear in many batches and their contributions add (chunking never
/// splits a user, so cohort sizes and aggregate states are additive across
/// chunks). Merge batches back into a full report with
/// [`Statement::report_from_batches`](crate::Statement::report_from_batches)
/// or let [`QueryStream::collect`](crate::QueryStream::collect) do it.
#[derive(Debug)]
pub struct ResultBatch {
    pub(crate) chunk_index: usize,
    pub(crate) rows_scanned: usize,
    pub(crate) morsels: u64,
    pub(crate) partial: Partial,
}

impl ResultBatch {
    /// Index of the source chunk that produced this batch.
    pub fn chunk_index(&self) -> usize {
        self.chunk_index
    }

    /// Rows of the source chunk this batch's scan covered.
    pub fn rows_scanned(&self) -> usize {
        self.rows_scanned
    }

    /// User-block morsels executed to produce this batch (0 when the chunk
    /// was skipped without touching a row).
    pub fn morsels(&self) -> u64 {
        self.morsels
    }

    /// Cohorts with at least one qualified user in this chunk.
    pub fn num_cohorts(&self) -> usize {
        self.partial.sizes.len()
    }

    /// `(cohort, age)` cells this chunk contributed to.
    pub fn num_cells(&self) -> usize {
        self.partial.num_cells()
    }

    /// Qualified users this chunk contributed (summed over cohorts).
    pub fn num_users(&self) -> u64 {
        self.partial.sizes.values().sum()
    }
}

/// Everything resolved once per statement before touching chunks.
pub(crate) struct ExecContext {
    birth_gid: Option<u32>,
    birth_pred: Option<CompiledExpr>,
    age_pred: Option<CompiledExpr>,
    key_parts: Vec<KeyPart>,
    aggs: Vec<AggFunc>,
    agg_attrs: Vec<Option<usize>>,
    /// Whether any aggregate folds tuple values (vs. per-user counting
    /// only); when false, repeated-age tuples cannot change any state and
    /// the inner loop skips cell resolution for them.
    has_value_aggs: bool,
    age_bin: TimeBin,
    /// Dense path: `(dict_len, age_domain)` when enabled.
    dense: Option<(usize, usize)>,
}

impl ExecContext {
    fn new(table: &TableMeta, plan: &PhysicalPlan) -> Result<ExecContext, EngineError> {
        let schema = table.schema();
        let query = &plan.query;

        let birth_gid = table.lookup_gid(schema.action_idx(), &query.birth_action);
        let birth_pred = query
            .birth_predicate
            .as_ref()
            .map(|p| compile_predicate(p, schema, table))
            .transpose()?;
        let age_pred = query
            .age_predicate
            .as_ref()
            .map(|p| compile_predicate(p, schema, table))
            .transpose()?;

        let mut key_parts = Vec::with_capacity(query.cohort_by.len());
        for c in &query.cohort_by {
            key_parts.push(match c {
                CohortAttr::Attr(a) => {
                    let idx = schema.require(a)?;
                    match schema.attribute(idx).vtype {
                        ValueType::Str => KeyPart::Str(idx),
                        ValueType::Int => KeyPart::Int(idx),
                    }
                }
                CohortAttr::TimeBin(bin) => KeyPart::TimeBin(*bin),
            });
        }

        let agg_attrs: Vec<Option<usize>> = query
            .aggregates
            .iter()
            .map(|a| a.attr().map(|n| schema.require(n)).transpose())
            .collect::<Result<_, _>>()?;

        // Dense path: single string cohort attribute with a small domain.
        let dense = if plan.options.array_aggregation && key_parts.len() == 1 {
            if let KeyPart::Str(idx) = key_parts[0] {
                let dict_len = table.global_dict(idx).map(|d| d.len()).unwrap_or(0);
                let age_domain = match table.meta(schema.time_idx()) {
                    ColumnMeta::Int { min, max } => query.age_bin.age_units(max - min) as usize + 2,
                    _ => 0,
                };
                let cells = dict_len
                    .saturating_mul(age_domain)
                    .saturating_mul(query.aggregates.len().max(1));
                if dict_len > 0 && age_domain > 0 && cells <= DENSE_CELL_LIMIT {
                    Some((dict_len, age_domain))
                } else {
                    None
                }
            } else {
                None
            }
        } else {
            None
        };

        Ok(ExecContext {
            birth_gid,
            birth_pred,
            age_pred,
            key_parts,
            aggs: query.aggregates.clone(),
            agg_attrs,
            has_value_aggs: query.aggregates.iter().any(|a| !a.per_user()),
            age_bin: query.age_bin,
            dense,
        })
    }
}

/// The shared, thread-safe heart of one prepared statement: the chunk
/// source, the physical plan, and the per-statement [`ExecContext`]. All
/// three sit behind `Arc`s so serial pulls, parallel workers, and the
/// statement itself can share them freely; cloning a `QueryCore` is three
/// reference-count bumps.
#[derive(Clone)]
pub(crate) struct QueryCore {
    pub(crate) source: Arc<dyn ChunkSource>,
    pub(crate) plan: Arc<PhysicalPlan>,
    ctx: Arc<ExecContext>,
}

impl QueryCore {
    pub(crate) fn new(
        source: Arc<dyn ChunkSource>,
        plan: Arc<PhysicalPlan>,
    ) -> Result<QueryCore, EngineError> {
        let ctx = Arc::new(ExecContext::new(source.table_meta(), &plan)?);
        Ok(QueryCore { source, plan, ctx })
    }

    /// The hoisted §4.2 chunk-pruning pass: decide from index metadata
    /// alone — before any chunk I/O — which chunks can contribute. For a
    /// lazy file-backed source, pruned chunks are never read from disk, let
    /// alone decoded.
    pub(crate) fn live_chunks(&self) -> Vec<usize> {
        (0..self.source.num_chunks())
            .filter(|&i| !prune_chunk(self.source.index_entry(i), &self.plan, &self.ctx))
            .collect()
    }

    /// Run the fused per-chunk pass over one chunk, fetching it through the
    /// projection-aware [`ChunkSource::chunk_columns`] so a
    /// column-addressable (v3) source reads and decodes only the columns the
    /// query names. The chunk is processed morsel by morsel (same ranges the
    /// parallel scheduler would hand out), which both bounds the scratch
    /// buffers and makes `morsels_executed` meaningful on the serial path.
    pub(crate) fn run_chunk(
        &self,
        idx: usize,
        morsel_rows: usize,
    ) -> Result<ResultBatch, EngineError> {
        let chunk = self.source.chunk_columns(idx, &self.plan.projected_idxs)?;
        let mut proc = RunProcessor::new(self.source.table_meta(), &chunk, &self.plan, &self.ctx)?;
        if proc.skip_chunk {
            // No user in this chunk can qualify; nothing to scan.
            return Ok(ResultBatch {
                chunk_index: idx,
                rows_scanned: 0,
                morsels: 0,
                partial: Partial::default(),
            });
        }
        let morsels = chunk.morsel_run_ranges(morsel_rows);
        for &(lo, hi) in &morsels {
            proc.process_runs(lo, hi);
        }
        Ok(ResultBatch {
            chunk_index: idx,
            rows_scanned: chunk.num_rows(),
            morsels: morsels.len() as u64,
            partial: proc.finish(),
        })
    }

    /// Spawn `workers` threads running the **morsel-driven work-stealing
    /// scheduler**: chunks are claimed dynamically (not strided), each
    /// claimer decodes its chunk and publishes a list of ~`morsel_rows`-row
    /// user-block morsels, and workers — including workers whose own chunks
    /// ran dry — pull morsels from any published chunk through a shared
    /// atomic claim counter. Each worker accumulates into a thread-local
    /// [`Partial`]; per-chunk locals are merged under the chunk's slot lock
    /// and the worker whose flush completes a chunk emits its single
    /// [`ResultBatch`], so consumers still see one batch per chunk.
    ///
    /// The bounded channel keeps the backpressure of the old static-stride
    /// path, and cancellation stays pull-based: a dropped receiver fails the
    /// next send, which raises the shared `cancelled` flag every worker
    /// checks at each morsel claim — early termination now stops at the next
    /// **morsel** boundary, not the next whole chunk.
    ///
    /// Returns the receiver, the worker handles, and one busy-time counter
    /// (nanoseconds of decode + morsel execution, excluding send blocking
    /// and steal polling) per worker.
    ///
    /// Every worker installs `recorder` as its thread's active
    /// [`IoRecorder`] for its whole lifetime, so all storage I/O of this
    /// execution — including decodes that finish after the consumer dropped
    /// the stream — is credited to exactly this query, no matter how many
    /// queries share the source.
    pub(crate) fn spawn_workers(
        &self,
        live: Vec<usize>,
        workers: usize,
        morsel_rows: usize,
        recorder: Arc<IoRecorder>,
    ) -> SpawnedWorkers {
        let (tx, rx) = mpsc::sync_channel::<Result<ResultBatch, EngineError>>(workers);
        let sched = Arc::new(MorselScheduler {
            core: self.clone(),
            slots: live.iter().map(|_| ChunkSlot::default()).collect(),
            live,
            morsel_rows: morsel_rows.max(1),
            next_chunk: AtomicUsize::new(0),
            cancelled: AtomicBool::new(false),
        });
        let busy: Arc<Vec<AtomicU64>> = Arc::new((0..workers).map(|_| AtomicU64::new(0)).collect());
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let sched = sched.clone();
            let tx = tx.clone();
            let busy = busy.clone();
            let recorder = recorder.clone();
            handles.push(std::thread::spawn(move || {
                // A worker that panics can no longer flush or claim; cancel
                // the whole query so its peers don't wait on the chunk it
                // held forever.
                struct PanicCancel<'a>(&'a MorselScheduler);
                impl Drop for PanicCancel<'_> {
                    fn drop(&mut self) {
                        if std::thread::panicking() {
                            self.0.cancel();
                        }
                    }
                }
                let _guard = PanicCancel(&sched);
                with_recorder(&recorder, || worker_loop(&sched, &tx, &busy[w]));
            }));
        }
        (rx, handles, busy)
    }

    /// Decode merged partials into the final report.
    pub(crate) fn build_report(&self, merged: Partial) -> Result<CohortReport, EngineError> {
        build_report(self.source.table_meta(), &self.plan, &self.ctx, merged)
    }

    /// Convert a batch into its network-portable form: every encoded cohort
    /// key is decoded to [`Value`]s using this statement's table metadata,
    /// so the receiver needs no dictionaries to merge batches.
    pub(crate) fn wire_batch(&self, batch: &ResultBatch) -> crate::wire::WireBatch {
        let table = self.source.table_meta();
        crate::wire::WireBatch {
            chunk_index: batch.chunk_index as u64,
            rows_scanned: batch.rows_scanned as u64,
            morsels: batch.morsels,
            sizes: batch
                .partial
                .sizes
                .iter()
                .map(|(k, s)| (decode_key(table, &self.ctx, k), *s))
                .collect(),
            cells: batch
                .partial
                .cells
                .iter()
                .flat_map(|(k, ages)| {
                    let cohort = decode_key(table, &self.ctx, k);
                    ages.iter().map(move |(age, states)| (cohort.clone(), *age, states.clone()))
                })
                .collect(),
        }
    }
}

/// The §4.2 chunk-pruning decision, computed purely from a chunk's index
/// entry (no chunk I/O): the chunk is skipped when the birth action is
/// absent from its action dictionary, when the birth predicate's time bounds
/// are disjoint from its time range, or when the compiled birth predicate is
/// constant-false. With `prune_chunks` disabled (ablations) every chunk is
/// processed.
fn prune_chunk(entry: &ChunkIndexEntry, plan: &PhysicalPlan, ctx: &ExecContext) -> bool {
    if !plan.options.prune_chunks {
        return false;
    }
    // Birth action absent from the table (None) or from this chunk's action
    // dictionary: no user can be born here, and chunking never splits a
    // user, so the whole chunk is irrelevant.
    match ctx.birth_gid {
        None => return true,
        Some(gid) if !entry.has_action(gid) => return true,
        Some(_) => {}
    }
    if let Some((lo, hi)) = plan.birth_time_bounds {
        if entry.time_disjoint(lo, hi) {
            return true;
        }
    }
    ctx.birth_pred.as_ref().is_some_and(|p| p.is_const_false())
}

/// The fused per-chunk operator pipeline, restructured around **morsels**:
/// instead of one monolithic pass over the whole chunk, the executor
/// processes half-open run ranges (user-block morsels, see
/// [`Chunk::morsel_run_ranges`]) so the same machinery serves both the
/// serial path (one processor walks every morsel) and the work-stealing
/// scheduler (many workers each hold their own processor over the shared
/// decoded chunk and claim morsels from an atomic counter).
///
/// This is the vectorized path: columns are resolved **once** into
/// [`ChunkCursors`], predicates are specialized against this chunk's
/// dictionaries and ranges ([`CompiledExpr::specialize`]), each user block's
/// time column — and, for value aggregates, its value columns — are
/// block-decoded into scratch buffers reused across users through
/// [`cohana_storage::BitPacked::unpack_range`] (the SIMD lane path when
/// compiled in), and birth rows are located for a whole morsel at once with
/// [`ChunkScan::find_birth_rows_batch`]. The inner loop performs no column
/// lookups, no per-element div/mod, and no allocations.
pub(crate) struct RunProcessor<'a> {
    scan: ChunkScan<'a>,
    cursors: ChunkCursors<'a>,
    rle: &'a UserRle,
    plan: &'a PhysicalPlan,
    ctx: &'a ExecContext,
    time_deltas: &'a cohana_storage::BitPacked,
    time_min: i64,
    /// §4.3 "compile once per chunk": predicates folded against this chunk's
    /// metadata, gid comparisons rewritten to raw chunk codes.
    birth_pred: Option<CompiledExpr>,
    age_pred: Option<CompiledExpr>,
    /// A constant-false age predicate still lets users qualify (their cohort
    /// sizes count), but no tuple ever reaches the aggregates.
    age_dead: bool,
    /// The age predicate with every current-row column read bound to a
    /// block-decoded slot ([`CompiledExpr::bind_slots`]); `None` when there
    /// is no age predicate or it cannot be bound (the mask loop then falls
    /// back to per-row [`CompiledExpr::eval`]).
    age_block_pred: Option<CompiledExpr>,
    /// Columns the bound age predicate reads, decoded per user block into
    /// `pbufs` (slot order).
    age_slot_cols: Vec<usize>,
    /// The specialized birth predicate proved no user in this chunk can
    /// qualify: callers should not run any morsel.
    pub(crate) skip_chunk: bool,
    n_aggs: usize,
    dense: Option<DenseAgg>,
    partial: Partial,
    /// Deduplicated attribute indexes of the value columns the aggregates
    /// read, the per-aggregate slot into them, and their chunk minima.
    vattrs: Vec<usize>,
    agg_vslots: Vec<Option<usize>>,
    vmins: Vec<i64>,
    // Scratch reused across users and morsels: one growth to the largest
    // block, then allocation-free. `tbuf` holds a block's decoded time
    // deltas, `abuf` the normalized age of every tuple, `vbufs` the decoded
    // value columns of a contributing user's block.
    tbuf: Vec<u64>,
    abuf: Vec<i64>,
    key_buf: Key,
    runs_buf: Vec<UserRun>,
    birth_rows: Vec<Option<usize>>,
    vbufs: Vec<Vec<u64>>,
    pbufs: Vec<Vec<u64>>,
    /// Per-row age-selection outcome of the current user block (`age > 0`
    /// AND the age predicate), computed in one pass before any accumulator
    /// or value-column work.
    mbuf: Vec<bool>,
}

impl<'a> RunProcessor<'a> {
    pub(crate) fn new(
        table: &'a TableMeta,
        chunk: &'a Chunk,
        plan: &'a PhysicalPlan,
        ctx: &'a ExecContext,
    ) -> Result<RunProcessor<'a>, EngineError> {
        let scan = ChunkScan::open(table, chunk, ctx.birth_gid)?;
        let cursors = chunk.cursors();
        let birth_pred = ctx.birth_pred.as_ref().map(|p| p.specialize(chunk));
        let age_pred = ctx.age_pred.as_ref().map(|p| p.specialize(chunk));
        let skip_chunk = plan.options.skip_unqualified_users
            && birth_pred.as_ref().is_some_and(CompiledExpr::is_const_false);
        let age_dead = age_pred.as_ref().is_some_and(CompiledExpr::is_const_false);

        // Bind the age predicate's current-row reads to block-decoded
        // slots: the per-block mask loop then reads flat buffers instead of
        // random-accessing packed bits per row.
        let mut age_slot_cols = Vec::new();
        let age_block_pred = match &age_pred {
            Some(p) if !age_dead => p.bind_slots(&cursors, &mut age_slot_cols),
            _ => None,
        };
        if age_block_pred.is_none() {
            age_slot_cols.clear();
        }
        let pbufs = vec![Vec::new(); age_slot_cols.len()];

        // Dense or hash accumulators.
        let n_aggs = ctx.aggs.len();
        let dense = ctx.dense.map(|(cohorts, ages)| DenseAgg {
            ages,
            sizes: vec![0u64; cohorts],
            states: vec![AggState::Count(0); cohorts * ages * n_aggs],
            touched: vec![false; cohorts * ages],
            inits: ctx.aggs.iter().map(|a| a.init()).collect(),
        });

        // Resolve which value columns the aggregates read, deduplicated so
        // two aggregates over the same attribute share one decoded buffer.
        let mut vattrs: Vec<usize> = Vec::new();
        let mut agg_vslots: Vec<Option<usize>> = Vec::with_capacity(n_aggs);
        for (agg, attr) in ctx.aggs.iter().zip(&ctx.agg_attrs) {
            agg_vslots.push(match (agg.per_user(), attr) {
                (false, Some(idx)) => Some(match vattrs.iter().position(|v| v == idx) {
                    Some(s) => s,
                    None => {
                        vattrs.push(*idx);
                        vattrs.len() - 1
                    }
                }),
                _ => None,
            });
        }
        let vmins: Vec<i64> = vattrs.iter().map(|&i| cursors.int_min(i)).collect();
        let vbufs = vec![Vec::new(); vattrs.len()];

        let time_deltas = scan.time_deltas();
        let time_min = scan.time_min();
        Ok(RunProcessor {
            scan,
            cursors,
            rle: chunk.user_rle(),
            plan,
            ctx,
            time_deltas,
            time_min,
            birth_pred,
            age_pred,
            age_dead,
            age_block_pred,
            age_slot_cols,
            skip_chunk,
            n_aggs,
            dense,
            partial: Partial::default(),
            vattrs,
            agg_vslots,
            vmins,
            tbuf: Vec::new(),
            abuf: Vec::new(),
            key_buf: Vec::with_capacity(ctx.key_parts.len()),
            runs_buf: Vec::new(),
            birth_rows: Vec::new(),
            vbufs,
            pbufs,
            mbuf: Vec::new(),
        })
    }

    /// Run the fused birth-selection / age-selection / aggregation pass over
    /// the user runs `lo..hi` (one morsel), accumulating into this
    /// processor's partial. Correct for any tiling of the chunk's runs
    /// because every per-user operator is local to the user's block.
    pub(crate) fn process_runs(&mut self, lo: usize, hi: usize) {
        // Copy-out references so the per-user body borrows only the fields
        // it mutates.
        let ctx = self.ctx;
        let plan = self.plan;
        let time_deltas = self.time_deltas;
        let time_min = self.time_min;
        let n_aggs = self.n_aggs;
        let age_dead = self.age_dead;
        let birth_pred = self.birth_pred.as_ref();
        let age_pred = self.age_pred.as_ref();
        let cursors = &self.cursors;

        self.runs_buf.clear();
        for i in lo..hi {
            self.runs_buf.push(self.rle.run(i));
        }
        // Batch birth search: locate every user's birth row (early-exit
        // word-walking scan per run) before any per-user work.
        self.scan.find_birth_rows_batch(&self.runs_buf, &mut self.birth_rows);

        for j in 0..self.runs_buf.len() {
            let run = self.runs_buf[j];
            let Some(birth_row) = self.birth_rows[j] else {
                continue; // user never performed the birth action
            };
            let birth_ctx = EvalCtx { row: birth_row, birth_row, age_units: 0 };
            let qualified = birth_pred.map(|p| p.eval(cursors, &birth_ctx)).unwrap_or(true);
            let start = run.first as usize;
            let count = run.count as usize;
            let birth_delta = time_deltas.get(birth_row) as i64;

            if !qualified {
                if plan.options.skip_unqualified_users {
                    // SkipCurUser(): do not touch this user's remaining tuples.
                    continue;
                }
                // Ablation mode: perform the per-tuple scan work the skip
                // would have avoided, discarding results. black_box prevents
                // the optimizer from deleting the loop.
                self.tbuf.resize(count, 0);
                time_deltas.unpack_range(start, start + count, &mut self.tbuf);
                self.abuf.resize(count, 0);
                fill_age_units(ctx.age_bin, &self.tbuf, birth_delta, &mut self.abuf);
                for (off, &age_units) in self.abuf.iter().enumerate() {
                    let tctx = EvalCtx { row: start + off, birth_row, age_units };
                    let keep =
                        age_units > 0 && age_pred.map(|p| p.eval(cursors, &tctx)).unwrap_or(true);
                    std::hint::black_box(keep);
                }
                continue;
            }

            let birth_time = time_min + birth_delta;

            // Cohort assignment from the birth tuple (Definition 6).
            self.key_buf.clear();
            for part in &ctx.key_parts {
                self.key_buf.push(match part {
                    KeyPart::Str(idx) => cursors.gid(*idx, birth_row) as u64,
                    KeyPart::Int(idx) => cursors.int(*idx, birth_row) as u64,
                    KeyPart::TimeBin(bin) => bin.bin_start(Timestamp(birth_time)).secs() as u64,
                });
            }

            // Cohort size counts every qualified user exactly once. The hash
            // path gets then inserts: the key is cloned only the first time
            // a cohort appears, not per user.
            let dense_cohort = self.dense.as_ref().map(|_| self.key_buf[0] as usize);
            match (&mut self.dense, dense_cohort) {
                (Some(d), Some(c)) => d.sizes[c] += 1,
                _ => match self.partial.sizes.get_mut(&self.key_buf) {
                    Some(size) => *size += 1,
                    None => {
                        self.partial.sizes.insert(self.key_buf.clone(), 1);
                    }
                },
            }
            if age_dead || count == 1 {
                continue; // no tuple of this user can reach the aggregates
            }

            // Block-decode this user's time deltas once and normalize every
            // tuple's age in one pass; ages fall out as delta differences
            // (the chunk minimum cancels) and the per-bin division is by a
            // compile-time constant.
            self.tbuf.resize(count, 0);
            time_deltas.unpack_range(start, start + count, &mut self.tbuf);
            self.abuf.resize(count, 0);
            fill_age_units(ctx.age_bin, &self.tbuf, birth_delta, &mut self.abuf);

            // Ages within a user block are non-decreasing (time-ordering),
            // so `age > 0` splits the block at a partition point: binary-
            // search the first post-birth tuple instead of scanning — and
            // masking — the pre-birth prefix.
            let pos0 = self.abuf.partition_point(|&a| a <= 0);
            if pos0 == count {
                continue; // every tuple is at or before the birth tuple
            }
            let mlen = count - pos0;

            // Evaluate the whole post-birth span's age predicate into a
            // mask *before* resolving any accumulator state or decoding
            // value columns: a user whose every tuple fails the age
            // selection leaves no trace (no hash traffic, no value decode),
            // and each tuple's predicate is evaluated exactly once. The
            // slot-bound form runs vectorized lane loops over block-decoded
            // columns (`CompiledExpr::and_into_mask`); without an age
            // predicate no mask is materialized at all.
            self.mbuf.clear();
            if let Some(bp) = self.age_block_pred.as_ref() {
                self.mbuf.resize(mlen, true);
                for s in 0..self.age_slot_cols.len() {
                    self.pbufs[s].resize(mlen, 0);
                    cursors.unpack(
                        self.age_slot_cols[s],
                        start + pos0,
                        start + count,
                        &mut self.pbufs[s],
                    );
                }
                bp.and_into_mask(
                    cursors,
                    birth_row,
                    start + pos0,
                    &self.pbufs,
                    &self.abuf[pos0..],
                    &mut self.mbuf,
                );
            } else if let Some(p) = age_pred {
                self.mbuf.resize(mlen, false);
                for i in 0..mlen {
                    let age_units = self.abuf[pos0 + i];
                    self.mbuf[i] =
                        p.eval(cursors, &EvalCtx { row: start + pos0 + i, birth_row, age_units });
                }
            }
            // The first masked tuple always contributes (its age is
            // trivially fresh); with no age predicate that is offset 0.
            let first_i = if self.mbuf.is_empty() {
                0
            } else {
                match self.mbuf.iter().position(|&m| m) {
                    Some(i) => i,
                    None => continue, // every tuple failed the age selection
                }
            };

            // Block-decode the value columns of this contributing user's
            // post-birth span through the same (SIMD when enabled) path as
            // the time column; the inner loop then reads a flat local
            // buffer instead of re-extracting bits per row.
            for s in 0..self.vattrs.len() {
                self.vbufs[s].resize(mlen, 0);
                cursors.unpack(self.vattrs[s], start + pos0, start + count, &mut self.vbufs[s]);
            }

            // Resolve the cohort's age table once per contributing user
            // (hash path); the inner loop then updates it without hashing or
            // cloning the key.
            let mut user_cells: Option<&mut BTreeMap<i64, Vec<AggState>>> = match dense_cohort {
                Some(_) => None,
                None => {
                    if !self.partial.cells.contains_key(&self.key_buf) {
                        self.partial.cells.insert(self.key_buf.clone(), BTreeMap::new());
                    }
                    self.partial.cells.get_mut(&self.key_buf)
                }
            };

            // Fold this user's age activity tuples in a tight loop over the
            // precomputed mask and decoded age buffer.
            let mut last_age_contributed = i64::MIN;
            let masked = !self.mbuf.is_empty();
            for off in first_i..mlen {
                if masked && !self.mbuf[off] {
                    continue; // failed the age selection
                }
                let age_units = self.abuf[pos0 + off];
                let fresh_age = age_units != last_age_contributed;
                last_age_contributed = age_units;
                if !fresh_age && !ctx.has_value_aggs {
                    // Every aggregate is per-user (e.g. USER_COUNT) and this
                    // age was already credited: nothing can change.
                    continue;
                }

                let states: &mut [AggState] = match (&mut self.dense, dense_cohort) {
                    (Some(d), Some(c)) => d.cell(c, age_units as usize, n_aggs),
                    _ => user_cells
                        .as_deref_mut()
                        .expect("hash path resolved the cohort's age table")
                        .entry(age_units)
                        .or_insert_with(|| ctx.aggs.iter().map(|a| a.init()).collect()),
                };
                for (i, agg) in ctx.aggs.iter().enumerate() {
                    if agg.per_user() {
                        // Ages within a user block are non-decreasing
                        // (time-ordering), so this counts each user once per
                        // age.
                        if fresh_age {
                            states[i].update_user();
                        }
                    } else {
                        let v = match self.agg_vslots[i] {
                            Some(s) => self.vmins[s] + self.vbufs[s][off] as i64,
                            None => 0,
                        };
                        states[i].update(v);
                    }
                }
            }
        }
    }

    /// Drain the dense accumulator (if any) and yield the accumulated
    /// partial.
    pub(crate) fn finish(mut self) -> Partial {
        if let Some(d) = self.dense.take() {
            d.drain_into(&mut self.partial, self.n_aggs);
        }
        self.partial
    }
}

/// One decoded chunk published to the work-stealing pool: the materialized
/// columns plus the morsel tiling every worker claims from.
struct DecodedChunk {
    chunk: Chunk,
    morsels: Vec<(usize, usize)>,
}

/// Per-live-chunk scheduler state.
#[derive(Default)]
struct ChunkSlot {
    /// `None` until the chunk's claimer has decoded it. `Some(None)` means
    /// there is nothing to drain — the chunk was skipped, empty, or errored,
    /// and its batch (or error) has already been sent. `Some(Some(_))` holds
    /// the decoded chunk stealers execute against.
    decoded: OnceLock<Option<Arc<DecodedChunk>>>,
    /// Next morsel index to claim; claims past `morsels.len()` are no-ops.
    next_morsel: AtomicUsize,
    /// Morsels claimed-and-flushed accounting: starts at `morsels.len()`,
    /// decremented by each worker's flush; the worker whose flush brings it
    /// to zero emits the chunk's single [`ResultBatch`]. Published *before*
    /// `decoded` (release/acquire pair via the `OnceLock`).
    pending: AtomicUsize,
    /// Merged per-worker partials for this chunk.
    partial: Mutex<Partial>,
}

/// Shared state of one parallel query execution: the morsel-driven
/// work-stealing scheduler of `spawn_workers`.
struct MorselScheduler {
    core: QueryCore,
    live: Vec<usize>,
    morsel_rows: usize,
    next_chunk: AtomicUsize,
    slots: Vec<ChunkSlot>,
    cancelled: AtomicBool,
}

impl MorselScheduler {
    /// Stop every worker at its next morsel boundary. Raised when the
    /// consumer drops the receiver (pull-based early termination), on the
    /// first execution error, and by a panicking worker's drop guard.
    fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

type BatchSender = mpsc::SyncSender<Result<ResultBatch, EngineError>>;

/// One worker thread's life: claim-and-decode chunks while any remain, then
/// steal morsels from chunks other workers are still draining, until every
/// slot is finished or the query is cancelled.
fn worker_loop(sched: &MorselScheduler, tx: &BatchSender, busy: &AtomicU64) {
    // Phase 1: claim undecoded chunks round-robin; decode, publish, then
    // drain own morsels (stealers may already be helping).
    loop {
        if sched.is_cancelled() {
            return;
        }
        let k = sched.next_chunk.fetch_add(1, Ordering::Relaxed);
        if k >= sched.live.len() {
            break;
        }
        decode_slot(sched, k, tx, busy);
        if drain_slot(sched, k, tx, busy).is_err() {
            return;
        }
    }
    // Phase 2: no chunks left to claim — steal from published chunks with
    // unclaimed or in-flight morsels until the whole query has drained.
    loop {
        if sched.is_cancelled() {
            return;
        }
        let mut unfinished = false;
        for k in 0..sched.slots.len() {
            match sched.slots[k].decoded.get() {
                None => unfinished = true, // claimer still decoding
                Some(None) => {}           // skipped/empty/errored: done
                Some(Some(_)) => {
                    if sched.slots[k].pending.load(Ordering::Acquire) > 0 {
                        unfinished = true;
                        if drain_slot(sched, k, tx, busy).is_err() {
                            return;
                        }
                    }
                }
            }
        }
        if !unfinished {
            return;
        }
        std::thread::yield_now();
    }
}

/// Decode slot `k`'s chunk and publish its morsels, or — for chunks with
/// nothing to execute (specialized-predicate skip, empty chunk, fetch
/// error) — emit the batch/error directly and publish "nothing to drain".
fn decode_slot(sched: &MorselScheduler, k: usize, tx: &BatchSender, busy: &AtomicU64) {
    let slot = &sched.slots[k];
    let idx = sched.live[k];
    let core = &sched.core;
    let t = Instant::now();
    match core.source.chunk_columns(idx, &core.plan.projected_idxs) {
        Ok(chunk) => {
            // Same skip decision as `RunProcessor::skip_chunk`, taken before
            // publishing so stealers never see a skippable chunk.
            let skip = core.plan.options.skip_unqualified_users
                && core
                    .ctx
                    .birth_pred
                    .as_ref()
                    .map(|p| p.specialize(&chunk))
                    .is_some_and(|p| p.is_const_false());
            let morsels =
                if skip { Vec::new() } else { chunk.morsel_run_ranges(sched.morsel_rows) };
            busy.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
            if morsels.is_empty() {
                slot.pending.store(0, Ordering::Release);
                let batch = ResultBatch {
                    chunk_index: idx,
                    rows_scanned: if skip { 0 } else { chunk.num_rows() },
                    morsels: 0,
                    partial: Partial::default(),
                };
                if tx.send(Ok(batch)).is_err() {
                    sched.cancel();
                }
                let _ = slot.decoded.set(None);
            } else {
                slot.pending.store(morsels.len(), Ordering::Release);
                // Detach the chunk from the source borrow: segments are
                // Arc-shared, so this clone is reference-count bumps.
                let chunk = Chunk::clone(&chunk);
                let _ = slot.decoded.set(Some(Arc::new(DecodedChunk { chunk, morsels })));
            }
        }
        Err(e) => {
            busy.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
            slot.pending.store(0, Ordering::Release);
            sched.cancel();
            let _ = tx.send(Err(e.into()));
            let _ = slot.decoded.set(None);
        }
    }
}

/// Claim and execute morsels from slot `k` into a worker-local
/// [`RunProcessor`] (constructed lazily on the first claim), flush the local
/// partial into the slot, and emit the chunk's single batch if this flush
/// completed it. `Err(())` means the query is cancelled and the worker
/// should exit.
fn drain_slot(
    sched: &MorselScheduler,
    k: usize,
    tx: &BatchSender,
    busy: &AtomicU64,
) -> Result<(), ()> {
    let slot = &sched.slots[k];
    let Some(Some(dc)) = slot.decoded.get() else { return Ok(()) };
    if slot.next_morsel.load(Ordering::Relaxed) >= dc.morsels.len() {
        return Ok(()); // every morsel already claimed (possibly in flight)
    }
    let core = &sched.core;
    let mut proc: Option<RunProcessor<'_>> = None;
    let mut claimed = 0usize;
    let t = Instant::now();
    loop {
        if sched.is_cancelled() {
            busy.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
            return Err(());
        }
        let m = slot.next_morsel.fetch_add(1, Ordering::Relaxed);
        if m >= dc.morsels.len() {
            break;
        }
        if proc.is_none() {
            match RunProcessor::new(core.source.table_meta(), &dc.chunk, &core.plan, &core.ctx) {
                Ok(p) => proc = Some(p),
                Err(e) => {
                    busy.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    sched.cancel();
                    let _ = tx.send(Err(e));
                    return Err(());
                }
            }
        }
        let (lo, hi) = dc.morsels[m];
        proc.as_mut().expect("processor constructed on first claim").process_runs(lo, hi);
        claimed += 1;
    }
    busy.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
    let Some(proc) = proc else { return Ok(()) };

    // Flush this worker's thread-local accumulation into the chunk slot.
    let local = proc.finish();
    {
        let mut merged = slot.partial.lock().expect("chunk partial lock");
        if let Err(e) = merged.merge(local) {
            drop(merged);
            sched.cancel();
            let _ = tx.send(Err(e));
            return Err(());
        }
    }
    // The worker whose flush retires the last claimed morsel emits the
    // chunk's batch — consumers still see exactly one batch per live chunk.
    if slot.pending.fetch_sub(claimed, Ordering::AcqRel) == claimed {
        let partial = std::mem::take(&mut *slot.partial.lock().expect("chunk partial lock"));
        let batch = ResultBatch {
            chunk_index: sched.live[k],
            rows_scanned: dc.chunk.num_rows(),
            morsels: dc.morsels.len() as u64,
            partial,
        };
        if tx.send(Ok(batch)).is_err() {
            sched.cancel();
            return Err(());
        }
    }
    Ok(())
}

/// Normalize one user block's ages into `out`, dispatching once per block so
/// the per-row division inside is by a **compile-time constant** (the
/// optimizer strength-reduces it to a multiply — no hardware division in the
/// loop). Semantics are exactly [`TimeBin::age_units`] of
/// `delta - birth_delta`: 0 for non-positive ages, else whole units counted
/// from 1.
fn fill_age_units(bin: TimeBin, deltas: &[u64], birth_delta: i64, out: &mut [i64]) {
    use cohana_activity::{SECONDS_PER_DAY, SECONDS_PER_WEEK};
    const MONTH: i64 = 30 * SECONDS_PER_DAY;
    match bin {
        TimeBin::Day => fill_age_units_const::<{ SECONDS_PER_DAY }>(deltas, birth_delta, out),
        TimeBin::Week => fill_age_units_const::<{ SECONDS_PER_WEEK }>(deltas, birth_delta, out),
        TimeBin::Month => fill_age_units_const::<MONTH>(deltas, birth_delta, out),
    }
}

#[inline(always)]
fn fill_age_units_const<const UNIT: i64>(deltas: &[u64], birth_delta: i64, out: &mut [i64]) {
    for (slot, &d) in out.iter_mut().zip(deltas) {
        let age_secs = d as i64 - birth_delta;
        *slot = if age_secs <= 0 { 0 } else { (age_secs - 1).div_euclid(UNIT) + 1 };
    }
}

/// Dense `(cohort gid × age)` aggregation table (§4.4).
struct DenseAgg {
    ages: usize,
    sizes: Vec<u64>,
    states: Vec<AggState>,
    touched: Vec<bool>,
    inits: Vec<AggState>,
}

impl DenseAgg {
    #[inline]
    fn cell(&mut self, cohort: usize, age: usize, n_aggs: usize) -> &mut [AggState] {
        let slot = cohort * self.ages + age;
        if !self.touched[slot] {
            self.touched[slot] = true;
            let base = slot * n_aggs;
            self.states[base..base + n_aggs].copy_from_slice(&self.inits);
        }
        let base = slot * n_aggs;
        &mut self.states[base..base + n_aggs]
    }

    fn drain_into(self, partial: &mut Partial, n_aggs: usize) {
        for (gid, size) in self.sizes.iter().enumerate() {
            if *size > 0 {
                *partial.sizes.entry(vec![gid as u64]).or_insert(0) += size;
            }
        }
        for (slot, touched) in self.touched.iter().enumerate() {
            if !touched {
                continue;
            }
            let cohort = slot / self.ages;
            let age = (slot % self.ages) as i64;
            let base = slot * n_aggs;
            partial
                .cells
                .entry(vec![cohort as u64])
                .or_default()
                .insert(age, self.states[base..base + n_aggs].to_vec());
        }
    }
}

/// Decode an encoded cohort key into its reported [`Value`]s. Injective for
/// keys of one statement: distinct global ids map to distinct dictionary
/// strings, the integer bit-cast is the identity, and distinct bin starts
/// render distinct dates — so decoded keys collide iff the encoded ones did.
fn decode_key(table: &TableMeta, ctx: &ExecContext, key: &Key) -> Vec<Value> {
    key.iter()
        .zip(ctx.key_parts.iter())
        .map(|(v, part)| match part {
            KeyPart::Str(idx) => Value::Str(table.gid_value(*idx, *v as u32).clone()),
            KeyPart::Int(_) => Value::Int(*v as i64),
            KeyPart::TimeBin(_) => Value::from(Timestamp(*v as i64).render_date()),
        })
        .collect()
}

/// Decode merged partials into the final report, sorted by cohort then age.
fn build_report(
    table: &TableMeta,
    plan: &PhysicalPlan,
    ctx: &ExecContext,
    merged: Partial,
) -> Result<CohortReport, EngineError> {
    let decode_key = |key: &Key| -> Vec<Value> { decode_key(table, ctx, key) };

    // One row per (cohort, age) cell: size the vector once up front.
    let mut rows = Vec::with_capacity(merged.num_cells());
    for (key, ages) in &merged.cells {
        let cohort = decode_key(key);
        let size = merged.sizes.get(key).copied().unwrap_or(0);
        for (age, states) in ages {
            rows.push(ReportRow {
                cohort: cohort.clone(),
                size,
                age: *age,
                measures: states.iter().map(|s| s.finalize()).collect(),
            });
        }
    }
    // Cohorts with a size but no qualifying age tuples still appear in the
    // size map; they contribute no rows (no (cohort, age) bucket exists),
    // matching Definition 6's output.
    rows.sort_by(|a, b| a.cohort.cmp(&b.cohort).then(a.age.cmp(&b.age)));

    Ok(CohortReport {
        cohort_attrs: plan.query.cohort_by.iter().map(|c| c.to_string()).collect(),
        agg_names: plan.query.aggregates.iter().map(|a| a.header()).collect(),
        rows,
        cohort_sizes: merged
            .sizes
            .iter()
            .map(|(k, s)| (decode_key(k), *s))
            .collect::<BTreeMap<_, _>>(),
        stats: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_age_units_matches_timebin_age_units() {
        let deltas: Vec<u64> = vec![0, 1, 86_399, 86_400, 86_401, 604_800, 2_591_999, 2_592_001];
        for bin in [TimeBin::Day, TimeBin::Week, TimeBin::Month] {
            for birth_delta in [0i64, 1, 86_400, 700_000] {
                let mut out = vec![i64::MAX; deltas.len()];
                fill_age_units(bin, &deltas, birth_delta, &mut out);
                for (i, &d) in deltas.iter().enumerate() {
                    let age_secs = d as i64 - birth_delta;
                    let expect = if age_secs <= 0 { 0 } else { bin.age_units(age_secs) };
                    assert_eq!(out[i], expect, "{bin:?} delta {d} birth {birth_delta}");
                }
            }
        }
    }
}
