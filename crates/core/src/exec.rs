//! The chunk pipeline: physical execution of cohort query plans (§4.2–§4.5).
//!
//! The optimized plan is executed **against each data chunk** independently
//! and the per-chunk partial results are merged — valid because chunking
//! never splits a user. This module is organised as a pull-based pipeline:
//! `QueryCore` owns everything resolved once per statement (the source,
//! the plan, the compiled `ExecContext`) and turns one chunk into one
//! [`ResultBatch`] on demand; the public [`QueryStream`](crate::QueryStream)
//! drives it either serially (one chunk per pull — a consumer that stops
//! pulling stops chunk decode) or with worker threads feeding a bounded
//! channel. Per chunk the executor fuses Algorithm 1 (birth selection), the
//! age selection, and Algorithm 2 (cohort aggregation) into a single pass
//! over user blocks:
//!
//! 1. **chunk pruning** — skip the chunk if the birth action is absent from
//!    its action chunk-dictionary, or if the birth predicate's time bounds
//!    are disjoint from the chunk's time range;
//! 2. per user: **GetBirthTuple**, evaluate the birth condition on that one
//!    tuple, and **SkipCurUser** on failure — so the pass touches only
//!    `O(l·m)` tuples for `l` qualified users;
//! 3. for qualified users: assign the cohort from the birth tuple, bump the
//!    cohort size, then fold every positive-age tuple that passes the age
//!    condition into the `(cohort, age)` aggregates;
//! 4. **array-based aggregation** (§4.4): when the cohort key is a single
//!    dictionary attribute with a small domain, the `(cohort, age)` table is
//!    a dense array indexed by `gid × age`, not a hash map;
//! 5. **UserCount** (§4.5): within a user block ages are non-decreasing
//!    (time-ordering property), so "distinct users at age g" needs only a
//!    last-age check per user, and per-chunk counts sum exactly because no
//!    user spans chunks.
//!
//! The per-chunk pass is **vectorized** (see `docs/PERF.md`): columns are
//! resolved once per chunk into [`ChunkCursors`](cohana_storage::ChunkCursors),
//! predicates are re-specialized against each chunk's dictionaries and
//! ranges ([`CompiledExpr::specialize`]), each user block's time column is
//! block-decoded into scratch buffers reused across users, and the inner
//! loop performs no column lookups, no hardware divisions, and no
//! allocations.

use crate::agg::{AggFunc, AggState};
use crate::error::EngineError;
use crate::plan::PhysicalPlan;
use crate::query::CohortAttr;
use crate::report::{CohortReport, ReportRow};
use crate::scan::{compile_predicate, ChunkScan, CompiledExpr, EvalCtx};
use cohana_activity::{TimeBin, Timestamp, Value, ValueType};
use cohana_storage::{Chunk, ChunkIndexEntry, ChunkSource, ColumnMeta, TableMeta};
use std::collections::{BTreeMap, HashMap};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Upper bound on dense-array cells (`cohorts × ages × aggregates`); beyond
/// this the executor falls back to hash aggregation.
const DENSE_CELL_LIMIT: usize = 1 << 22;

/// Encoded cohort key: one `u64` per cohort attribute (global id for
/// strings, bit-cast `i64` for integers and binned birth times).
type Key = Vec<u64>;

/// How one cohort attribute is extracted from a birth tuple.
#[derive(Debug, Clone, Copy)]
enum KeyPart {
    /// Global id of a string attribute.
    Str(usize),
    /// Raw integer attribute (bit-cast).
    Int(usize),
    /// Birth time binned to the granularity, bit-cast seconds.
    TimeBin(TimeBin),
}

/// Per-chunk (and merged) partial aggregation result.
#[derive(Debug, Default)]
pub(crate) struct Partial {
    /// Cohort → number of qualified users.
    sizes: HashMap<Key, u64>,
    /// Cohort → age → one state per aggregate.
    cells: HashMap<Key, BTreeMap<i64, Vec<AggState>>>,
}

impl Partial {
    pub(crate) fn merge(&mut self, other: Partial) -> Result<(), EngineError> {
        for (k, s) in other.sizes {
            *self.sizes.entry(k).or_insert(0) += s;
        }
        for (k, ages) in other.cells {
            // One hash lookup per cohort; the per-age loop below works on
            // the resolved tree, never re-hashing the cohort key.
            let into = self.cells.entry(k).or_default();
            if into.is_empty() {
                // Common case (each cohort usually first seen whole): adopt
                // the other side's tree instead of inserting age by age.
                *into = ages;
                continue;
            }
            for (age, states) in ages {
                match into.entry(age) {
                    std::collections::btree_map::Entry::Vacant(v) => {
                        v.insert(states);
                    }
                    std::collections::btree_map::Entry::Occupied(mut o) => {
                        for (a, b) in o.get_mut().iter_mut().zip(states.iter()) {
                            a.merge(b)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Total `(cohort, age)` cells across all cohorts.
    pub(crate) fn num_cells(&self) -> usize {
        self.cells.values().map(BTreeMap::len).sum()
    }
}

/// One per-chunk batch of partial results, as yielded by a
/// [`QueryStream`](crate::QueryStream).
///
/// A batch is a *partial* cohort aggregation: the same `(cohort, age)` cell
/// may appear in many batches and their contributions add (chunking never
/// splits a user, so cohort sizes and aggregate states are additive across
/// chunks). Merge batches back into a full report with
/// [`Statement::report_from_batches`](crate::Statement::report_from_batches)
/// or let [`QueryStream::collect`](crate::QueryStream::collect) do it.
#[derive(Debug)]
pub struct ResultBatch {
    pub(crate) chunk_index: usize,
    pub(crate) rows_scanned: usize,
    pub(crate) partial: Partial,
}

impl ResultBatch {
    /// Index of the source chunk that produced this batch.
    pub fn chunk_index(&self) -> usize {
        self.chunk_index
    }

    /// Rows of the source chunk this batch's scan covered.
    pub fn rows_scanned(&self) -> usize {
        self.rows_scanned
    }

    /// Cohorts with at least one qualified user in this chunk.
    pub fn num_cohorts(&self) -> usize {
        self.partial.sizes.len()
    }

    /// `(cohort, age)` cells this chunk contributed to.
    pub fn num_cells(&self) -> usize {
        self.partial.num_cells()
    }

    /// Qualified users this chunk contributed (summed over cohorts).
    pub fn num_users(&self) -> u64 {
        self.partial.sizes.values().sum()
    }
}

/// Everything resolved once per statement before touching chunks.
pub(crate) struct ExecContext {
    birth_gid: Option<u32>,
    birth_pred: Option<CompiledExpr>,
    age_pred: Option<CompiledExpr>,
    key_parts: Vec<KeyPart>,
    aggs: Vec<AggFunc>,
    agg_attrs: Vec<Option<usize>>,
    /// Whether any aggregate folds tuple values (vs. per-user counting
    /// only); when false, repeated-age tuples cannot change any state and
    /// the inner loop skips cell resolution for them.
    has_value_aggs: bool,
    age_bin: TimeBin,
    /// Dense path: `(dict_len, age_domain)` when enabled.
    dense: Option<(usize, usize)>,
}

impl ExecContext {
    fn new(table: &TableMeta, plan: &PhysicalPlan) -> Result<ExecContext, EngineError> {
        let schema = table.schema();
        let query = &plan.query;

        let birth_gid = table.lookup_gid(schema.action_idx(), &query.birth_action);
        let birth_pred = query
            .birth_predicate
            .as_ref()
            .map(|p| compile_predicate(p, schema, table))
            .transpose()?;
        let age_pred = query
            .age_predicate
            .as_ref()
            .map(|p| compile_predicate(p, schema, table))
            .transpose()?;

        let mut key_parts = Vec::with_capacity(query.cohort_by.len());
        for c in &query.cohort_by {
            key_parts.push(match c {
                CohortAttr::Attr(a) => {
                    let idx = schema.require(a)?;
                    match schema.attribute(idx).vtype {
                        ValueType::Str => KeyPart::Str(idx),
                        ValueType::Int => KeyPart::Int(idx),
                    }
                }
                CohortAttr::TimeBin(bin) => KeyPart::TimeBin(*bin),
            });
        }

        let agg_attrs: Vec<Option<usize>> = query
            .aggregates
            .iter()
            .map(|a| a.attr().map(|n| schema.require(n)).transpose())
            .collect::<Result<_, _>>()?;

        // Dense path: single string cohort attribute with a small domain.
        let dense = if plan.options.array_aggregation && key_parts.len() == 1 {
            if let KeyPart::Str(idx) = key_parts[0] {
                let dict_len = table.global_dict(idx).map(|d| d.len()).unwrap_or(0);
                let age_domain = match table.meta(schema.time_idx()) {
                    ColumnMeta::Int { min, max } => query.age_bin.age_units(max - min) as usize + 2,
                    _ => 0,
                };
                let cells = dict_len
                    .saturating_mul(age_domain)
                    .saturating_mul(query.aggregates.len().max(1));
                if dict_len > 0 && age_domain > 0 && cells <= DENSE_CELL_LIMIT {
                    Some((dict_len, age_domain))
                } else {
                    None
                }
            } else {
                None
            }
        } else {
            None
        };

        Ok(ExecContext {
            birth_gid,
            birth_pred,
            age_pred,
            key_parts,
            aggs: query.aggregates.clone(),
            agg_attrs,
            has_value_aggs: query.aggregates.iter().any(|a| !a.per_user()),
            age_bin: query.age_bin,
            dense,
        })
    }
}

/// The shared, thread-safe heart of one prepared statement: the chunk
/// source, the physical plan, and the per-statement [`ExecContext`]. All
/// three sit behind `Arc`s so serial pulls, parallel workers, and the
/// statement itself can share them freely; cloning a `QueryCore` is three
/// reference-count bumps.
#[derive(Clone)]
pub(crate) struct QueryCore {
    pub(crate) source: Arc<dyn ChunkSource>,
    pub(crate) plan: Arc<PhysicalPlan>,
    ctx: Arc<ExecContext>,
}

impl QueryCore {
    pub(crate) fn new(
        source: Arc<dyn ChunkSource>,
        plan: Arc<PhysicalPlan>,
    ) -> Result<QueryCore, EngineError> {
        let ctx = Arc::new(ExecContext::new(source.table_meta(), &plan)?);
        Ok(QueryCore { source, plan, ctx })
    }

    /// The hoisted §4.2 chunk-pruning pass: decide from index metadata
    /// alone — before any chunk I/O — which chunks can contribute. For a
    /// lazy file-backed source, pruned chunks are never read from disk, let
    /// alone decoded.
    pub(crate) fn live_chunks(&self) -> Vec<usize> {
        (0..self.source.num_chunks())
            .filter(|&i| !prune_chunk(self.source.index_entry(i), &self.plan, &self.ctx))
            .collect()
    }

    /// Run the fused per-chunk pass over one chunk, fetching it through the
    /// projection-aware [`ChunkSource::chunk_columns`] so a
    /// column-addressable (v3) source reads and decodes only the columns the
    /// query names.
    pub(crate) fn run_chunk(&self, idx: usize) -> Result<ResultBatch, EngineError> {
        let chunk = self.source.chunk_columns(idx, &self.plan.projected_idxs)?;
        let (partial, rows_scanned) =
            process_chunk(self.source.table_meta(), &chunk, &self.plan, &self.ctx)?;
        Ok(ResultBatch { chunk_index: idx, rows_scanned, partial })
    }

    /// Spawn `workers` threads that stride over `live` and feed batches into
    /// a bounded channel. The bound gives backpressure: workers run at most
    /// one chunk (plus one buffered batch each) ahead of the consumer, and a
    /// dropped receiver stops every worker at its next send — the parallel
    /// form of early termination.
    pub(crate) fn spawn_workers(
        &self,
        live: &[usize],
        workers: usize,
    ) -> (mpsc::Receiver<Result<ResultBatch, EngineError>>, Vec<JoinHandle<()>>) {
        let (tx, rx) = mpsc::sync_channel::<Result<ResultBatch, EngineError>>(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let core = self.clone();
            let tx = tx.clone();
            let assigned: Vec<usize> = live.iter().skip(w).step_by(workers).copied().collect();
            handles.push(std::thread::spawn(move || {
                for idx in assigned {
                    let out = core.run_chunk(idx);
                    let stop = out.is_err();
                    if tx.send(out).is_err() || stop {
                        return;
                    }
                }
            }));
        }
        (rx, handles)
    }

    /// Decode merged partials into the final report.
    pub(crate) fn build_report(&self, merged: Partial) -> Result<CohortReport, EngineError> {
        build_report(self.source.table_meta(), &self.plan, &self.ctx, merged)
    }
}

/// The §4.2 chunk-pruning decision, computed purely from a chunk's index
/// entry (no chunk I/O): the chunk is skipped when the birth action is
/// absent from its action dictionary, when the birth predicate's time bounds
/// are disjoint from its time range, or when the compiled birth predicate is
/// constant-false. With `prune_chunks` disabled (ablations) every chunk is
/// processed.
fn prune_chunk(entry: &ChunkIndexEntry, plan: &PhysicalPlan, ctx: &ExecContext) -> bool {
    if !plan.options.prune_chunks {
        return false;
    }
    // Birth action absent from the table (None) or from this chunk's action
    // dictionary: no user can be born here, and chunking never splits a
    // user, so the whole chunk is irrelevant.
    match ctx.birth_gid {
        None => return true,
        Some(gid) if !entry.has_action(gid) => return true,
        Some(_) => {}
    }
    if let Some((lo, hi)) = plan.birth_time_bounds {
        if entry.time_disjoint(lo, hi) {
            return true;
        }
    }
    ctx.birth_pred.as_ref().is_some_and(|p| p.is_const_false())
}

/// Run the fused operators over one chunk. Chunk pruning has already been
/// decided by [`prune_chunk`] from the chunk's index entry.
///
/// This is the vectorized path: columns are resolved **once** into
/// [`ChunkCursors`], predicates are specialized against this chunk's
/// dictionaries and ranges ([`CompiledExpr::specialize`]), and each user
/// block's time column is block-decoded into a scratch buffer reused across
/// users — the inner loop performs no column lookups, no per-element
/// div/mod, and no allocations.
///
/// Returns the partial plus the rows the pass actually covered:
/// `chunk.num_rows()` normally, 0 when the specialized birth predicate
/// proved the whole chunk irrelevant without touching a row — so
/// `rows_scanned`-derived scan rates never credit work that never ran.
fn process_chunk(
    table: &TableMeta,
    chunk: &Chunk,
    plan: &PhysicalPlan,
    ctx: &ExecContext,
) -> Result<(Partial, usize), EngineError> {
    let mut partial = Partial::default();
    let mut scan = ChunkScan::open(table, chunk, ctx.birth_gid)?;
    let cursors = chunk.cursors();

    // §4.3 "compile once per chunk": fold against this chunk's metadata and
    // rewrite gid comparisons to raw chunk codes.
    let birth_pred = ctx.birth_pred.as_ref().map(|p| p.specialize(chunk));
    let age_pred = ctx.age_pred.as_ref().map(|p| p.specialize(chunk));
    if plan.options.skip_unqualified_users
        && birth_pred.as_ref().is_some_and(CompiledExpr::is_const_false)
    {
        // No user in this chunk can qualify; nothing to scan.
        return Ok((partial, 0));
    }
    // A constant-false age predicate still lets users qualify (their cohort
    // sizes count), but no tuple ever reaches the aggregates.
    let age_dead = age_pred.as_ref().is_some_and(CompiledExpr::is_const_false);

    // Dense or hash accumulators.
    let n_aggs = ctx.aggs.len();
    let mut dense_state: Option<DenseAgg> = ctx.dense.map(|(cohorts, ages)| DenseAgg {
        ages,
        sizes: vec![0u64; cohorts],
        states: vec![AggState::Count(0); cohorts * ages * n_aggs],
        touched: vec![false; cohorts * ages],
        inits: ctx.aggs.iter().map(|a| a.init()).collect(),
    });

    // Scratch reused across users: one growth to the largest block, then
    // allocation-free. `tbuf` holds the block's decoded time deltas, `abuf`
    // the normalized age of every tuple.
    let time_deltas = scan.time_deltas();
    let time_min = scan.time_min();
    let mut tbuf: Vec<u64> = Vec::new();
    let mut abuf: Vec<i64> = Vec::new();
    let mut key_buf: Key = Vec::with_capacity(ctx.key_parts.len());

    while let Some(run) = scan.next_user() {
        let birth_row = match scan.find_birth_row(&run) {
            Some(r) => r,
            None => continue, // user never performed the birth action
        };
        let birth_ctx = EvalCtx { row: birth_row, birth_row, age_units: 0 };
        let qualified = birth_pred.as_ref().map(|p| p.eval(&cursors, &birth_ctx)).unwrap_or(true);
        let start = run.first as usize;
        let count = run.count as usize;
        let birth_delta = time_deltas.get(birth_row) as i64;

        if !qualified {
            if plan.options.skip_unqualified_users {
                // SkipCurUser(): do not touch this user's remaining tuples.
                continue;
            }
            // Ablation mode: perform the per-tuple scan work the skip would
            // have avoided, discarding results. black_box prevents the
            // optimizer from deleting the loop.
            tbuf.resize(count, 0);
            time_deltas.unpack_range(start, start + count, &mut tbuf);
            abuf.resize(count, 0);
            fill_age_units(ctx.age_bin, &tbuf, birth_delta, &mut abuf);
            for (off, &age_units) in abuf.iter().enumerate() {
                let tctx = EvalCtx { row: start + off, birth_row, age_units };
                let keep = age_units > 0
                    && age_pred.as_ref().map(|p| p.eval(&cursors, &tctx)).unwrap_or(true);
                std::hint::black_box(keep);
            }
            continue;
        }

        let birth_time = time_min + birth_delta;

        // Cohort assignment from the birth tuple (Definition 6).
        key_buf.clear();
        for part in &ctx.key_parts {
            key_buf.push(match part {
                KeyPart::Str(idx) => cursors.gid(*idx, birth_row) as u64,
                KeyPart::Int(idx) => cursors.int(*idx, birth_row) as u64,
                KeyPart::TimeBin(bin) => bin.bin_start(Timestamp(birth_time)).secs() as u64,
            });
        }

        // Cohort size counts every qualified user exactly once. The hash
        // path gets then inserts: the key is cloned only the first time a
        // cohort appears, not per user.
        let dense_cohort = dense_state.as_ref().map(|_| key_buf[0] as usize);
        match (&mut dense_state, dense_cohort) {
            (Some(d), Some(c)) => d.sizes[c] += 1,
            _ => match partial.sizes.get_mut(&key_buf) {
                Some(size) => *size += 1,
                None => {
                    partial.sizes.insert(key_buf.clone(), 1);
                }
            },
        }
        if age_dead || count == 1 {
            continue; // no tuple of this user can reach the aggregates
        }

        // Block-decode this user's time deltas once and normalize every
        // tuple's age in one pass; ages fall out as delta differences (the
        // chunk minimum cancels) and the per-bin division is by a
        // compile-time constant.
        tbuf.resize(count, 0);
        time_deltas.unpack_range(start, start + count, &mut tbuf);
        abuf.resize(count, 0);
        fill_age_units(ctx.age_bin, &tbuf, birth_delta, &mut abuf);

        // Locate the first tuple the aggregation will touch *before*
        // resolving any accumulator state: a user whose every tuple fails
        // the age selection leaves no trace (and costs no hash traffic).
        // The first positive-age tuple that passes the predicate always
        // contributes (its age is trivially fresh).
        let first_contrib = abuf.iter().enumerate().position(|(off, &age_units)| {
            age_units > 0
                && age_pred
                    .as_ref()
                    .map(|p| p.eval(&cursors, &EvalCtx { row: start + off, birth_row, age_units }))
                    .unwrap_or(true)
        });
        let Some(first_off) = first_contrib else { continue };

        // Resolve the cohort's age table once per contributing user (hash
        // path); the inner loop then updates it without hashing or cloning
        // the key.
        let mut user_cells: Option<&mut BTreeMap<i64, Vec<AggState>>> = match dense_cohort {
            Some(_) => None,
            None => {
                if !partial.cells.contains_key(&key_buf) {
                    partial.cells.insert(key_buf.clone(), BTreeMap::new());
                }
                partial.cells.get_mut(&key_buf)
            }
        };

        // Fold this user's age activity tuples in a tight loop over the
        // decoded age buffer.
        let mut last_age_contributed = i64::MIN;
        for (off, &age_units) in abuf.iter().enumerate().skip(first_off) {
            if age_units <= 0 {
                continue; // birth tuple or pre-birth tuple: g ≤ 0 excluded
            }
            let row = start + off;
            if let Some(p) = &age_pred {
                let tctx = EvalCtx { row, birth_row, age_units };
                if !p.eval(&cursors, &tctx) {
                    continue;
                }
            }
            let fresh_age = age_units != last_age_contributed;
            last_age_contributed = age_units;
            if !fresh_age && !ctx.has_value_aggs {
                // Every aggregate is per-user (e.g. USER_COUNT) and this age
                // was already credited: nothing can change.
                continue;
            }

            let states: &mut [AggState] = match (&mut dense_state, dense_cohort) {
                (Some(d), Some(c)) => d.cell(c, age_units as usize, n_aggs),
                _ => user_cells
                    .as_deref_mut()
                    .expect("hash path resolved the cohort's age table")
                    .entry(age_units)
                    .or_insert_with(|| ctx.aggs.iter().map(|a| a.init()).collect()),
            };
            for (i, agg) in ctx.aggs.iter().enumerate() {
                if agg.per_user() {
                    // Ages within a user block are non-decreasing
                    // (time-ordering), so this counts each user once per age.
                    if fresh_age {
                        states[i].update_user();
                    }
                } else {
                    let v = match ctx.agg_attrs[i] {
                        Some(idx) => cursors.int(idx, row),
                        None => 0,
                    };
                    states[i].update(v);
                }
            }
        }
    }

    if let Some(d) = dense_state {
        d.drain_into(&mut partial, n_aggs);
    }
    Ok((partial, chunk.num_rows()))
}

/// Normalize one user block's ages into `out`, dispatching once per block so
/// the per-row division inside is by a **compile-time constant** (the
/// optimizer strength-reduces it to a multiply — no hardware division in the
/// loop). Semantics are exactly [`TimeBin::age_units`] of
/// `delta - birth_delta`: 0 for non-positive ages, else whole units counted
/// from 1.
fn fill_age_units(bin: TimeBin, deltas: &[u64], birth_delta: i64, out: &mut [i64]) {
    use cohana_activity::{SECONDS_PER_DAY, SECONDS_PER_WEEK};
    const MONTH: i64 = 30 * SECONDS_PER_DAY;
    match bin {
        TimeBin::Day => fill_age_units_const::<{ SECONDS_PER_DAY }>(deltas, birth_delta, out),
        TimeBin::Week => fill_age_units_const::<{ SECONDS_PER_WEEK }>(deltas, birth_delta, out),
        TimeBin::Month => fill_age_units_const::<MONTH>(deltas, birth_delta, out),
    }
}

#[inline(always)]
fn fill_age_units_const<const UNIT: i64>(deltas: &[u64], birth_delta: i64, out: &mut [i64]) {
    for (slot, &d) in out.iter_mut().zip(deltas) {
        let age_secs = d as i64 - birth_delta;
        *slot = if age_secs <= 0 { 0 } else { (age_secs - 1).div_euclid(UNIT) + 1 };
    }
}

/// Dense `(cohort gid × age)` aggregation table (§4.4).
struct DenseAgg {
    ages: usize,
    sizes: Vec<u64>,
    states: Vec<AggState>,
    touched: Vec<bool>,
    inits: Vec<AggState>,
}

impl DenseAgg {
    #[inline]
    fn cell(&mut self, cohort: usize, age: usize, n_aggs: usize) -> &mut [AggState] {
        let slot = cohort * self.ages + age;
        if !self.touched[slot] {
            self.touched[slot] = true;
            let base = slot * n_aggs;
            self.states[base..base + n_aggs].copy_from_slice(&self.inits);
        }
        let base = slot * n_aggs;
        &mut self.states[base..base + n_aggs]
    }

    fn drain_into(self, partial: &mut Partial, n_aggs: usize) {
        for (gid, size) in self.sizes.iter().enumerate() {
            if *size > 0 {
                *partial.sizes.entry(vec![gid as u64]).or_insert(0) += size;
            }
        }
        for (slot, touched) in self.touched.iter().enumerate() {
            if !touched {
                continue;
            }
            let cohort = slot / self.ages;
            let age = (slot % self.ages) as i64;
            let base = slot * n_aggs;
            partial
                .cells
                .entry(vec![cohort as u64])
                .or_default()
                .insert(age, self.states[base..base + n_aggs].to_vec());
        }
    }
}

/// Decode merged partials into the final report, sorted by cohort then age.
fn build_report(
    table: &TableMeta,
    plan: &PhysicalPlan,
    ctx: &ExecContext,
    merged: Partial,
) -> Result<CohortReport, EngineError> {
    let decode_key = |key: &Key| -> Vec<Value> {
        key.iter()
            .zip(ctx.key_parts.iter())
            .map(|(v, part)| match part {
                KeyPart::Str(idx) => Value::Str(table.gid_value(*idx, *v as u32).clone()),
                KeyPart::Int(_) => Value::Int(*v as i64),
                KeyPart::TimeBin(_) => Value::from(Timestamp(*v as i64).render_date()),
            })
            .collect()
    };

    // One row per (cohort, age) cell: size the vector once up front.
    let mut rows = Vec::with_capacity(merged.num_cells());
    for (key, ages) in &merged.cells {
        let cohort = decode_key(key);
        let size = merged.sizes.get(key).copied().unwrap_or(0);
        for (age, states) in ages {
            rows.push(ReportRow {
                cohort: cohort.clone(),
                size,
                age: *age,
                measures: states.iter().map(|s| s.finalize()).collect(),
            });
        }
    }
    // Cohorts with a size but no qualifying age tuples still appear in the
    // size map; they contribute no rows (no (cohort, age) bucket exists),
    // matching Definition 6's output.
    rows.sort_by(|a, b| a.cohort.cmp(&b.cohort).then(a.age.cmp(&b.age)));

    Ok(CohortReport {
        cohort_attrs: plan.query.cohort_by.iter().map(|c| c.to_string()).collect(),
        agg_names: plan.query.aggregates.iter().map(|a| a.header()).collect(),
        rows,
        cohort_sizes: merged
            .sizes
            .iter()
            .map(|(k, s)| (decode_key(k), *s))
            .collect::<BTreeMap<_, _>>(),
        stats: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_age_units_matches_timebin_age_units() {
        let deltas: Vec<u64> = vec![0, 1, 86_399, 86_400, 86_401, 604_800, 2_591_999, 2_592_001];
        for bin in [TimeBin::Day, TimeBin::Week, TimeBin::Month] {
            for birth_delta in [0i64, 1, 86_400, 700_000] {
                let mut out = vec![i64::MAX; deltas.len()];
                fill_age_units(bin, &deltas, birth_delta, &mut out);
                for (i, &d) in deltas.iter().enumerate() {
                    let age_secs = d as i64 - birth_delta;
                    let expect = if age_secs <= 0 { 0 } else { bin.age_units(age_secs) };
                    assert_eq!(out[i], expect, "{bin:?} delta {d} birth {birth_delta}");
                }
            }
        }
    }
}
