//! Predicate expressions for birth and age selection conditions.
//!
//! An [`Expr`] is the propositional formula `C` of the σᵇ and σᵍ operators.
//! Besides ordinary attribute references it supports the paper's two special
//! terms:
//!
//! * [`Expr::Birth`] — `Birth(A)`: the value of attribute `A` in the current
//!   user's *birth activity tuple* (§3.3.2), and
//! * [`Expr::Age`] — the derived `AGE` of the current tuple in normalized
//!   units, enabling `AGE < g` age selections (Q7/Q8).
//!
//! Expressions are built with a small combinator API:
//!
//! ```
//! use cohana_core::Expr;
//!
//! // role = "dwarf" AND time BETWEEN t1 AND t2
//! let c = Expr::attr("role").eq(Expr::lit_str("dwarf"))
//!     .and(Expr::attr("time").between_int(100, 200));
//! assert!(format!("{c}").contains("role = \"dwarf\""));
//! ```

use cohana_activity::Value;
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluate on a pre-ordered pair.
    #[inline]
    pub fn test(&self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less)
                | (CmpOp::Ne, Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less)
                | (CmpOp::Le, Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater)
                | (CmpOp::Ge, Equal)
        )
    }

    /// The operator with its operands swapped: `a op b` ⇔ `b op.swapped() a`.
    pub(crate) fn swapped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// SQL rendering.
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A predicate / scalar expression over activity tuples.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Value of an attribute in the current tuple.
    Attr(String),
    /// `Birth(A)`: value of attribute `A` in the user's birth tuple.
    Birth(String),
    /// The derived `AGE` of the current tuple, in normalized age units.
    Age,
    /// A literal value.
    Lit(Value),
    /// Binary comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// `expr IN [v1, v2, …]`.
    InList(Box<Expr>, Vec<Value>),
    /// `expr BETWEEN lo AND hi` (inclusive).
    Between(Box<Expr>, Value, Value),
}

impl Expr {
    /// Reference an attribute of the current tuple.
    pub fn attr(name: impl Into<String>) -> Expr {
        Expr::Attr(name.into())
    }

    /// Reference an attribute of the user's birth tuple (`Birth(A)`).
    pub fn birth(name: impl Into<String>) -> Expr {
        Expr::Birth(name.into())
    }

    /// The `AGE` term.
    pub fn age() -> Expr {
        Expr::Age
    }

    /// A string literal.
    pub fn lit_str(s: impl Into<std::sync::Arc<str>>) -> Expr {
        Expr::Lit(Value::Str(s.into()))
    }

    /// An integer literal.
    pub fn lit_int(v: i64) -> Expr {
        Expr::Lit(Value::Int(v))
    }

    /// `self = rhs`
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(rhs))
    }

    /// `self != rhs`
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(rhs))
    }

    /// `self < rhs`
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(rhs))
    }

    /// `self <= rhs`
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(rhs))
    }

    /// `self > rhs`
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(rhs))
    }

    /// `self >= rhs`
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(rhs))
    }

    /// `self AND rhs`
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }

    /// `self OR rhs`
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }

    /// `NOT self`
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// `self IN [values…]`
    pub fn in_list(self, values: impl IntoIterator<Item = Value>) -> Expr {
        Expr::InList(Box::new(self), values.into_iter().collect())
    }

    /// `self BETWEEN lo AND hi` on integers (inclusive).
    pub fn between_int(self, lo: i64, hi: i64) -> Expr {
        Expr::Between(Box::new(self), Value::Int(lo), Value::Int(hi))
    }

    /// Conjoin optional predicates.
    pub fn conjoin(exprs: impl IntoIterator<Item = Expr>) -> Option<Expr> {
        exprs.into_iter().reduce(Expr::and)
    }

    /// Walk the expression, yielding every node (pre-order).
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Cmp(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Not(a) | Expr::InList(a, _) | Expr::Between(a, _, _) => a.visit(f),
            Expr::Attr(_) | Expr::Birth(_) | Expr::Age | Expr::Lit(_) => {}
        }
    }

    /// Whether the expression references `Birth(...)` or `AGE` (such
    /// predicates can appear only in age selections).
    pub fn references_birth_or_age(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, Expr::Birth(_) | Expr::Age) {
                found = true;
            }
        });
        found
    }

    /// All attribute names referenced (both current-tuple and birth refs).
    pub fn referenced_attrs(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit(&mut |e| match e {
            Expr::Attr(a) | Expr::Birth(a) if !out.contains(a) => {
                out.push(a.clone());
            }
            _ => {}
        });
        out
    }

    /// Split a conjunction into its top-level conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            if let Expr::And(a, b) = e {
                walk(a, out);
                walk(b, out);
            } else {
                out.push(e);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Extract `[lo, hi]` bounds this predicate implies for an integer
    /// attribute, if any conjunct constrains it with a literal comparison or
    /// BETWEEN. Used for chunk-range pruning.
    pub fn int_bounds(&self, attr: &str) -> Option<(i64, i64)> {
        let mut lo = i64::MIN;
        let mut hi = i64::MAX;
        let mut constrained = false;
        for c in self.conjuncts() {
            match c {
                Expr::Between(e, Value::Int(a), Value::Int(b)) => {
                    if matches!(e.as_ref(), Expr::Attr(n) if n == attr) {
                        lo = lo.max(*a);
                        hi = hi.min(*b);
                        constrained = true;
                    }
                }
                Expr::Cmp(op, l, r) => {
                    let (name_lit, flipped) = match (l.as_ref(), r.as_ref()) {
                        (Expr::Attr(n), Expr::Lit(Value::Int(v))) if n == attr => ((n, *v), false),
                        (Expr::Lit(Value::Int(v)), Expr::Attr(n)) if n == attr => ((n, *v), true),
                        _ => continue,
                    };
                    let v = name_lit.1;
                    let op = if flipped {
                        match op {
                            CmpOp::Lt => CmpOp::Gt,
                            CmpOp::Le => CmpOp::Ge,
                            CmpOp::Gt => CmpOp::Lt,
                            CmpOp::Ge => CmpOp::Le,
                            other => *other,
                        }
                    } else {
                        *op
                    };
                    match op {
                        CmpOp::Eq => {
                            lo = lo.max(v);
                            hi = hi.min(v);
                            constrained = true;
                        }
                        CmpOp::Lt => {
                            hi = hi.min(v - 1);
                            constrained = true;
                        }
                        CmpOp::Le => {
                            hi = hi.min(v);
                            constrained = true;
                        }
                        CmpOp::Gt => {
                            lo = lo.max(v + 1);
                            constrained = true;
                        }
                        CmpOp::Ge => {
                            lo = lo.max(v);
                            constrained = true;
                        }
                        CmpOp::Ne => {}
                    }
                }
                _ => {}
            }
        }
        if constrained {
            Some((lo, hi))
        } else {
            None
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Attr(a) => write!(f, "{a}"),
            Expr::Birth(a) => write!(f, "Birth({a})"),
            Expr::Age => write!(f, "AGE"),
            Expr::Lit(Value::Str(s)) => write!(f, "\"{s}\""),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Cmp(op, a, b) => write!(f, "{a} {} {b}", op.symbol()),
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(a) => write!(f, "NOT ({a})"),
            Expr::InList(a, vs) => {
                write!(f, "{a} IN [")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match v {
                        Value::Str(s) => write!(f, "\"{s}\"")?,
                        other => write!(f, "{other}")?,
                    }
                }
                write!(f, "]")
            }
            Expr::Between(a, lo, hi) => write!(f, "{a} BETWEEN {lo} AND {hi}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_test() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.test(Equal));
        assert!(!CmpOp::Eq.test(Less));
        assert!(CmpOp::Ne.test(Less));
        assert!(CmpOp::Le.test(Equal));
        assert!(CmpOp::Lt.test(Less));
        assert!(!CmpOp::Lt.test(Equal));
        assert!(CmpOp::Ge.test(Greater));
    }

    #[test]
    fn display_matches_paper_style() {
        let e = Expr::attr("action")
            .eq(Expr::lit_str("shop"))
            .and(Expr::attr("country").eq(Expr::birth("country")));
        assert_eq!(e.to_string(), "(action = \"shop\" AND country = Birth(country))");
    }

    #[test]
    fn references_birth_or_age() {
        assert!(!Expr::attr("role").eq(Expr::lit_str("dwarf")).references_birth_or_age());
        assert!(Expr::attr("country").eq(Expr::birth("country")).references_birth_or_age());
        assert!(Expr::age().lt(Expr::lit_int(7)).references_birth_or_age());
    }

    #[test]
    fn conjuncts_flatten() {
        let e = Expr::attr("a")
            .eq(Expr::lit_int(1))
            .and(Expr::attr("b").eq(Expr::lit_int(2)))
            .and(Expr::attr("c").eq(Expr::lit_int(3)));
        assert_eq!(e.conjuncts().len(), 3);
    }

    #[test]
    fn int_bounds_between() {
        let e = Expr::attr("time").between_int(100, 200).and(Expr::attr("x").eq(Expr::lit_int(1)));
        assert_eq!(e.int_bounds("time"), Some((100, 200)));
        assert_eq!(e.int_bounds("x"), Some((1, 1)));
        assert_eq!(e.int_bounds("y"), None);
    }

    #[test]
    fn int_bounds_inequalities() {
        let e =
            Expr::attr("time").ge(Expr::lit_int(50)).and(Expr::attr("time").lt(Expr::lit_int(80)));
        assert_eq!(e.int_bounds("time"), Some((50, 79)));
        // Flipped operand order.
        let e2 = Expr::lit_int(50).le(Expr::attr("time"));
        assert_eq!(e2.int_bounds("time"), Some((50, i64::MAX)));
    }

    #[test]
    fn int_bounds_ignores_disjunctions() {
        let e =
            Expr::attr("time").ge(Expr::lit_int(50)).or(Expr::attr("time").lt(Expr::lit_int(10)));
        assert_eq!(e.int_bounds("time"), None);
    }

    #[test]
    fn referenced_attrs_dedup() {
        let e = Expr::attr("role")
            .eq(Expr::lit_str("dwarf"))
            .and(Expr::attr("role").ne(Expr::birth("country")));
        assert_eq!(e.referenced_attrs(), vec!["role".to_string(), "country".to_string()]);
    }
}
