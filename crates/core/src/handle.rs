//! The table-management surface: [`OpenOptions`] (one builder-style entry
//! point for attaching any kind of table to the engine) and [`TableHandle`]
//! (a typed handle carrying the table's lifecycle operations).
//!
//! Before this module, table management sprawled flat across the engine:
//! `open_file` / `open_file_with_budget` / `load_file` to attach,
//! stringly-named `ingest(name, ..)` / `compact(name)` to mutate. Those
//! remain as thin deprecated shims; the one current surface is
//!
//! ```no_run
//! # use cohana_core::{Cohana, EngineOptions};
//! # fn main() -> Result<(), cohana_core::EngineError> {
//! # let batch = cohana_activity::generate(&cohana_activity::GeneratorConfig::small());
//! let engine = Cohana::new(EngineOptions::default());
//! let table = engine
//!     .open("activity.cohana")     // file, directory, or shard manifest
//!     .cache_bytes(64 << 20)       // segment-cache budget
//!     .open()?;                    // -> TableHandle
//! table.ingest(&batch)?;           // lifecycle lives on the handle
//! # Ok(()) }
//! ```
//!
//! `OpenOptions::open` sniffs what the path names: a shard-manifest
//! directory (or the manifest file itself) attaches a sharded table with
//! optional background maintenance; anything else is a single v2–v4 file,
//! attached lazily by default or fully resident with
//! [`OpenOptions::resident`]. `OpenOptions::create_from` builds a **new**
//! table (single-file, or range-sharded with [`OpenOptions::shards`]) from
//! an [`ActivityTable`] and attaches it.

use crate::engine::{Cohana, DEFAULT_TABLE};
use crate::error::EngineError;
use crate::query::CohortQuery;
use crate::report::CohortReport;
use crate::session::{Session, Statement};
use crate::sharded::{MaintenanceConfig, MaintenanceStats, ShardedTable};
use cohana_activity::{ActivityTable, Schema};
use cohana_storage::shard;
use cohana_storage::{
    persist, AppendStats, ChunkSource, CompactStats, CompressedTable, CompressionOptions,
    DeleteStats, FileSource, FileSpaceStats,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Builder for attaching (or creating) one table. Obtain with
/// [`Cohana::open`]; finish with [`OpenOptions::open`] (existing data) or
/// [`OpenOptions::create_from`] (build from rows). See the module docs.
#[must_use = "OpenOptions does nothing until .open() or .create_from(..) is called"]
pub struct OpenOptions<'e> {
    engine: &'e Cohana,
    path: PathBuf,
    name: String,
    cache_bytes: usize,
    resident: bool,
    shards: Option<usize>,
    chunk_size: usize,
    maintenance: MaintenanceConfig,
}

impl<'e> OpenOptions<'e> {
    pub(crate) fn new(engine: &'e Cohana, path: &Path) -> OpenOptions<'e> {
        OpenOptions {
            engine,
            path: path.to_path_buf(),
            name: DEFAULT_TABLE.to_string(),
            cache_bytes: cohana_storage::DEFAULT_CACHE_BUDGET,
            resident: false,
            shards: None,
            chunk_size: CompressionOptions::default().chunk_size,
            maintenance: MaintenanceConfig::default(),
        }
    }

    /// Catalog name to register under (default: [`DEFAULT_TABLE`]).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Segment-cache byte budget for lazily attached tables (default:
    /// [`cohana_storage::DEFAULT_CACHE_BUDGET`]). A sharded table shares one
    /// budget across all its shards.
    pub fn cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Load the table fully into memory instead of lazily (single-file
    /// tables only; replaces the old `load_file`).
    pub fn resident(mut self, resident: bool) -> Self {
        self.resident = resident;
        self
    }

    /// For [`OpenOptions::create_from`]: partition the new table into up to
    /// `n` user-id-range shards (fewer when the table has fewer distinct
    /// users). Without this, `create_from` writes one file.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = Some(n);
        self
    }

    /// For [`OpenOptions::create_from`]: target rows per chunk (default:
    /// the paper's 256 Ki).
    pub fn chunk_size(mut self, rows: usize) -> Self {
        self.chunk_size = rows;
        self
    }

    /// Maintenance policy for sharded tables: enable background
    /// auto-compaction, set the dead-byte threshold and poll interval.
    /// Ignored for single-file tables.
    pub fn maintenance(mut self, config: MaintenanceConfig) -> Self {
        self.maintenance = config;
        self
    }

    /// Attach the existing table the path names: a sharded table (the
    /// directory or its manifest file — sniffed by magic), or a single
    /// v2–v4 file (lazy by default, eager with [`OpenOptions::resident`]).
    pub fn open(self) -> Result<TableHandle<'e>, EngineError> {
        if shard::is_sharded(&self.path) {
            if self.resident {
                return Err(EngineError::Unsupported(
                    "sharded tables are always lazily attached; drop .resident(true)".into(),
                ));
            }
            let table = ShardedTable::open(&self.path, self.cache_bytes, self.maintenance)?;
            self.engine.register_sharded(&self.name, table);
        } else if self.path.is_dir() {
            // Don't let FileSource report a bare "is a directory" io error:
            // the only directories we open are sharded tables.
            return Err(EngineError::Storage(format!(
                "{} is a directory but not a sharded table (no valid {} inside)",
                self.path.display(),
                cohana_storage::MANIFEST_FILE,
            )));
        } else if self.resident {
            let table = persist::read_file(&self.path)?;
            self.engine.register(&self.name, table);
        } else {
            let source = Arc::new(FileSource::open_with_budget(&self.path, self.cache_bytes)?);
            self.engine.register_file(&self.name, source);
        }
        self.engine.table(&self.name)
    }

    /// Create a **new** table at the path from an activity table, then
    /// attach it: one v4 file by default, or a shard directory with
    /// [`OpenOptions::shards`].
    pub fn create_from(self, table: &ActivityTable) -> Result<TableHandle<'e>, EngineError> {
        let options = CompressionOptions::with_chunk_size(self.chunk_size);
        if let Some(n) = self.shards {
            if self.resident {
                return Err(EngineError::Unsupported(
                    "sharded tables are always lazily attached; drop .resident(true)".into(),
                ));
            }
            shard::create_sharded(&self.path, table, n, options)?;
            let sharded = ShardedTable::open(&self.path, self.cache_bytes, self.maintenance)?;
            self.engine.register_sharded(&self.name, sharded);
        } else {
            let compressed = CompressedTable::build(table, options)?;
            persist::write_file(&compressed, &self.path)?;
            if self.resident {
                self.engine.register(&self.name, compressed);
            } else {
                let source = Arc::new(FileSource::open_with_budget(&self.path, self.cache_bytes)?);
                self.engine.register_file(&self.name, source);
            }
        }
        self.engine.table(&self.name)
    }
}

/// A typed handle on one catalog table: the table's lifecycle — ingest,
/// compaction, deletion, maintenance introspection — lives here instead of
/// on stringly-named engine methods. Handles are cheap name + engine-borrow
/// pairs; hold as many as you like. Obtain with [`Cohana::table`] or from
/// [`OpenOptions::open`] / [`OpenOptions::create_from`].
#[derive(Clone)]
pub struct TableHandle<'e> {
    engine: &'e Cohana,
    name: String,
}

impl<'e> TableHandle<'e> {
    pub(crate) fn new(engine: &'e Cohana, name: String) -> TableHandle<'e> {
        TableHandle { engine, name }
    }

    /// The catalog name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The engine the handle points into.
    pub fn engine(&self) -> &'e Cohana {
        self.engine
    }

    /// The table's schema.
    pub fn schema(&self) -> Result<Schema, EngineError> {
        self.engine
            .schema_of(&self.name)
            .ok_or_else(|| EngineError::UnknownTable(self.name.clone()))
    }

    /// The table's current chunk source (what a statement prepared now
    /// would pin).
    pub fn source(&self) -> Result<Arc<dyn ChunkSource>, EngineError> {
        self.engine.source(&self.name).ok_or_else(|| EngineError::UnknownTable(self.name.clone()))
    }

    /// Whether this table is sharded.
    pub fn is_sharded(&self) -> bool {
        self.engine.sharded(&self.name).is_some()
    }

    /// The underlying [`ShardedTable`] when this table is sharded (for
    /// per-shard stats like [`cohana_storage::ShardedAppendStats`] that the
    /// aggregated handle methods fold away).
    pub fn sharded_table(&self) -> Option<Arc<ShardedTable>> {
        self.engine.sharded(&self.name)
    }

    /// A session defaulting to this table.
    pub fn session(&self) -> Session<'e> {
        self.engine.session().on_table(self.name.clone())
    }

    /// Prepare a statement against this table (equivalent to
    /// `handle.session().prepare(query)`; see also [`Session::prepare_on`]
    /// to combine a configured session with a handle).
    pub fn prepare(&self, query: &CohortQuery) -> Result<Statement, EngineError> {
        self.session().prepare(query)
    }

    /// Prepare and execute in one call.
    pub fn execute(&self, query: &CohortQuery) -> Result<CohortReport, EngineError> {
        self.session().execute(query)
    }

    /// Ingest a batch of activity tuples. Sharded tables route the batch by
    /// user range and append all touched shards in parallel; single-file
    /// tables append in place; resident tables rebuild. Statements prepared
    /// before this call keep their snapshot.
    pub fn ingest(&self, batch: &ActivityTable) -> Result<AppendStats, EngineError> {
        self.engine.ingest_inner(&self.name, batch)
    }

    /// Compact the table: merge under-filled chunks, restore primary
    /// ordering, reclaim dead bytes. Sharded tables compact every shard
    /// that has dead bytes.
    pub fn compact(&self) -> Result<CompactStats, EngineError> {
        self.engine.compact_inner(&self.name)
    }

    /// Delete every tuple of the given users (sharded tables only —
    /// tombstone-durable, crash-recoverable; see
    /// [`ShardedTable::delete_users`]).
    pub fn delete_users(&self, users: &[&str]) -> Result<DeleteStats, EngineError> {
        match self.engine.sharded(&self.name) {
            Some(table) => table.delete_users(users),
            None => Err(EngineError::Unsupported(format!(
                "table {:?} is not sharded; user deletion requires a sharded table (open with \
                 .shards(n))",
                self.name
            ))),
        }
    }

    /// Lifetime maintenance counters (sharded tables only).
    pub fn maintenance_stats(&self) -> Result<MaintenanceStats, EngineError> {
        match self.engine.sharded(&self.name) {
            Some(table) => Ok(table.maintenance_stats()),
            None => Err(EngineError::Unsupported(format!(
                "table {:?} is not sharded and has no maintenance thread",
                self.name
            ))),
        }
    }

    /// Run one synchronous maintenance pass now (sharded tables only):
    /// pending tombstones are applied, shards over the dead-ratio threshold
    /// compacted.
    pub fn maintenance_pass(&self) -> Result<MaintenanceStats, EngineError> {
        match self.engine.sharded(&self.name) {
            Some(table) => table.maintenance_pass(),
            None => Err(EngineError::Unsupported(format!(
                "table {:?} is not sharded and has no maintenance pass",
                self.name
            ))),
        }
    }

    /// Per-shard (or single-file) space accounting: file bytes, dead bytes,
    /// dead ratio. Resident tables have no backing file and report
    /// `Unsupported`.
    pub fn space_stats(&self) -> Result<Vec<FileSpaceStats>, EngineError> {
        self.engine.space_stats_inner(&self.name)
    }

    /// Number of shards (1 for single-file and resident tables).
    pub fn num_shards(&self) -> usize {
        self.engine.sharded(&self.name).map(|t| t.num_shards()).unwrap_or(1)
    }
}

impl std::fmt::Debug for TableHandle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableHandle").field("name", &self.name).finish()
    }
}
