//! # cohana-core
//!
//! The COHANA cohort query engine (§3–§4 of "Cohort Query Processing",
//! Jiang et al., VLDB 2016): the cohort algebra, a query planner with
//! birth-selection push-down and chunk pruning, and physical operators over
//! the compressed columnar storage of [`cohana_storage`].
//!
//! ## The cohort algebra
//!
//! Given an activity table `D` and a *birth action* `e`:
//!
//! * **birth selection** `σᵇ(C,e)(D)` keeps all tuples of users whose *birth
//!   activity tuple* (the tuple of their first `e`) satisfies `C`;
//! * **age selection** `σᵍ(C,e)(D)` keeps every birth activity tuple and the
//!   *age activity tuples* satisfying `C` (which may reference birth
//!   attributes via `Birth(A)` and the derived `AGE`);
//! * **cohort aggregation** `γᶜ(L,e,fA)(D)` assigns each user to the cohort
//!   identified by the projection of their birth tuple onto `L`, then
//!   reports, per `(cohort, age)`, the cohort size and the aggregate `fA`
//!   over age tuples with positive age.
//!
//! The two selections commute when they share a birth action (Equation 1),
//! which the planner exploits to always evaluate birth selections first and
//! skip all tuples of unqualified users.
//!
//! ## Example
//!
//! The query surface is session-based: open a cheap [`Session`] on a shared
//! engine, [`Session::prepare`] a [`Statement`] once, then execute it
//! eagerly or stream per-chunk batches — each execution reports its own
//! [`QueryStats`].
//!
//! ```
//! use cohana_activity::{generate, GeneratorConfig};
//! use cohana_core::{AggFunc, Cohana, CohortQuery};
//! use cohana_storage::CompressionOptions;
//!
//! let table = generate(&GeneratorConfig::small());
//! let engine = Cohana::from_activity_table(&table, CompressionOptions::default()).unwrap();
//!
//! // Q1: per-country launch cohorts, retained users by age.
//! let q1 = CohortQuery::builder("launch")
//!     .cohort_by(["country"])
//!     .aggregate(AggFunc::user_count())
//!     .build()
//!     .unwrap();
//! let stmt = engine.session().prepare(&q1).unwrap();
//! let report = stmt.execute().unwrap();
//! assert!(report.num_rows() > 0);
//! assert!(report.stats.unwrap().chunks_scanned > 0);
//! ```

pub mod agg;
pub mod analysis;
pub mod engine;
pub mod error;
pub mod exec;
pub mod expr;
pub mod handle;
pub mod naive;
pub mod paper;
pub mod plan;
pub mod query;
pub mod report;
pub mod scan;
pub mod session;
pub mod sharded;
pub mod stats;
pub mod wire;

pub use agg::{AggFunc, AggState, AggValue};
pub use engine::{Cohana, EngineOptions, DEFAULT_MORSEL_ROWS};
pub use error::EngineError;
pub use exec::ResultBatch;
pub use expr::{CmpOp, Expr};
pub use handle::{OpenOptions, TableHandle};
pub use plan::{plan_query, PhysicalPlan, PlanNode, PlannerOptions};
pub use query::{CohortAttr, CohortQuery, CohortQueryBuilder};
pub use report::{CohortReport, ReportRow};
pub use session::{QueryStream, Session, Statement};
pub use sharded::{MaintenanceConfig, MaintenanceStats, ShardedTable};
pub use stats::QueryStats;
pub use wire::{ReportAssembler, WireBatch};

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, EngineError>;
