//! A naive reference evaluator for cohort queries.
//!
//! This module is the **executable specification** of the cohort algebra: it
//! evaluates a [`CohortQuery`] directly over an uncompressed
//! [`ActivityTable`] by interpreting Definitions 1–6 literally, with no
//! storage tricks, no push-down, and no skipping. The optimized COHANA
//! executor and the relational baselines are differentially tested against
//! it.

use crate::agg::AggState;
use crate::error::EngineError;
use crate::expr::{CmpOp, Expr};
use crate::query::{CohortAttr, CohortQuery};
use crate::report::{CohortReport, ReportRow};
use cohana_activity::{ActivityTable, Timestamp, Tuple, Value};
use std::collections::BTreeMap;

/// Interpret a scalar expression for one tuple.
fn eval_scalar(
    expr: &Expr,
    table: &ActivityTable,
    row: &Tuple,
    birth: &Tuple,
    age_units: i64,
) -> Result<Value, EngineError> {
    match expr {
        Expr::Attr(a) => Ok(row.get(table.schema().require(a)?).clone()),
        Expr::Birth(a) => Ok(birth.get(table.schema().require(a)?).clone()),
        Expr::Age => Ok(Value::Int(age_units)),
        Expr::Lit(v) => Ok(v.clone()),
        other => Err(EngineError::TypeError(format!("`{other}` is not a scalar"))),
    }
}

/// Interpret a predicate for one tuple.
pub fn eval_predicate(
    expr: &Expr,
    table: &ActivityTable,
    row: &Tuple,
    birth: &Tuple,
    age_units: i64,
) -> Result<bool, EngineError> {
    match expr {
        Expr::Cmp(op, a, b) => {
            let va = eval_scalar(a, table, row, birth, age_units)?;
            let vb = eval_scalar(b, table, row, birth, age_units)?;
            cmp_values(*op, &va, &vb)
        }
        Expr::And(a, b) => Ok(eval_predicate(a, table, row, birth, age_units)?
            && eval_predicate(b, table, row, birth, age_units)?),
        Expr::Or(a, b) => Ok(eval_predicate(a, table, row, birth, age_units)?
            || eval_predicate(b, table, row, birth, age_units)?),
        Expr::Not(a) => Ok(!eval_predicate(a, table, row, birth, age_units)?),
        Expr::InList(a, vs) => {
            let va = eval_scalar(a, table, row, birth, age_units)?;
            Ok(vs.contains(&va))
        }
        Expr::Between(a, lo, hi) => {
            let va = eval_scalar(a, table, row, birth, age_units)?;
            Ok(cmp_values(CmpOp::Ge, &va, lo)? && cmp_values(CmpOp::Le, &va, hi)?)
        }
        other => Err(EngineError::TypeError(format!("`{other}` is not a predicate"))),
    }
}

fn cmp_values(op: CmpOp, a: &Value, b: &Value) -> Result<bool, EngineError> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Ok(op.test(x.cmp(y))),
        (Value::Str(x), Value::Str(y)) => Ok(op.test(x.as_ref().cmp(y.as_ref()))),
        _ => Err(EngineError::TypeError(format!("comparing {a} with {b}"))),
    }
}

/// Evaluate a cohort query over an uncompressed activity table.
pub fn naive_execute(
    table: &ActivityTable,
    query: &CohortQuery,
) -> Result<CohortReport, EngineError> {
    let schema = table.schema();
    let time_idx = schema.time_idx();
    let action_idx = schema.action_idx();
    let agg_attrs: Vec<Option<usize>> = query
        .aggregates
        .iter()
        .map(|a| a.attr().map(|n| schema.require(n)).transpose())
        .collect::<Result<_, _>>()?;

    let mut sizes: BTreeMap<Vec<Value>, u64> = BTreeMap::new();
    let mut cells: BTreeMap<Vec<Value>, BTreeMap<i64, Vec<AggState>>> = BTreeMap::new();

    for block in table.user_blocks() {
        // Definition 1/2: birth tuple = first tuple with the birth action
        // (time-ordered storage makes "first" the minimum time).
        let birth_row = block
            .range()
            .find(|&r| table.rows()[r].get(action_idx).as_str() == Some(&query.birth_action));
        let birth_row = match birth_row {
            Some(r) => r,
            None => continue,
        };
        let birth = &table.rows()[birth_row];
        let birth_time = birth.get(time_idx).as_int().expect("time is int");

        // σb: the birth condition inspects only the birth tuple.
        if let Some(p) = &query.birth_predicate {
            if !eval_predicate(p, table, birth, birth, 0)? {
                continue;
            }
        }

        // Cohort assignment (Definition 6): project the birth tuple on L.
        let cohort: Vec<Value> = query
            .cohort_by
            .iter()
            .map(|c| -> Result<Value, EngineError> {
                Ok(match c {
                    CohortAttr::Attr(a) => birth.get(schema.require(a)?).clone(),
                    CohortAttr::TimeBin(bin) => {
                        Value::from(bin.bin_start(Timestamp(birth_time)).render_date())
                    }
                })
            })
            .collect::<Result<_, _>>()?;

        *sizes.entry(cohort.clone()).or_insert(0) += 1;

        // γ over positive-age tuples that pass σg.
        let mut last_age_per_user: i64 = i64::MIN;
        for r in block.range() {
            let row = &table.rows()[r];
            let age_secs = row.get(time_idx).as_int().expect("time is int") - birth_time;
            if age_secs <= 0 {
                continue;
            }
            let age_units = query.age_bin.age_units(age_secs);
            if let Some(p) = &query.age_predicate {
                if !eval_predicate(p, table, row, birth, age_units)? {
                    continue;
                }
            }
            let states = cells
                .entry(cohort.clone())
                .or_default()
                .entry(age_units)
                .or_insert_with(|| query.aggregates.iter().map(|a| a.init()).collect());
            let fresh_age = age_units != last_age_per_user;
            last_age_per_user = age_units;
            for (i, agg) in query.aggregates.iter().enumerate() {
                if agg.per_user() {
                    if fresh_age {
                        states[i].update_user();
                    }
                } else {
                    let v = match agg_attrs[i] {
                        Some(idx) => row.get(idx).as_int().ok_or_else(|| {
                            EngineError::TypeError("aggregate over non-int".into())
                        })?,
                        None => 0,
                    };
                    states[i].update(v);
                }
            }
        }
    }

    let mut rows = Vec::new();
    for (cohort, ages) in &cells {
        for (age, states) in ages {
            rows.push(ReportRow {
                cohort: cohort.clone(),
                size: sizes.get(cohort).copied().unwrap_or(0),
                age: *age,
                measures: states.iter().map(|s| s.finalize()).collect(),
            });
        }
    }
    rows.sort_by(|a, b| a.cohort.cmp(&b.cohort).then(a.age.cmp(&b.age)));
    Ok(CohortReport {
        cohort_attrs: query.cohort_by.iter().map(|c| c.to_string()).collect(),
        agg_names: query.aggregates.iter().map(|a| a.header()).collect(),
        rows,
        cohort_sizes: sizes,
        stats: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggFunc;
    use cohana_activity::{generate, GeneratorConfig};

    #[test]
    fn naive_q1_counts_all_users() {
        let t = generate(&GeneratorConfig::small());
        let q = CohortQuery::builder("launch")
            .cohort_by(["country"])
            .aggregate(AggFunc::user_count())
            .build()
            .unwrap();
        let r = naive_execute(&t, &q).unwrap();
        let total: u64 = r.cohort_sizes.values().sum();
        assert_eq!(total as usize, t.num_users());
    }

    #[test]
    fn naive_respects_birth_predicate() {
        let t = generate(&GeneratorConfig::small());
        let q = CohortQuery::builder("launch")
            .birth_where(Expr::attr("country").eq(Expr::lit_str("China")))
            .cohort_by(["country"])
            .aggregate(AggFunc::count())
            .build()
            .unwrap();
        let r = naive_execute(&t, &q).unwrap();
        for c in r.cohort_sizes.keys() {
            assert_eq!(c[0].as_str(), Some("China"));
        }
    }

    #[test]
    fn naive_age_zero_excluded() {
        // A user whose only tuples share the birth timestamp yields size 1
        // and no rows.
        use cohana_activity::{Schema, TableBuilder};
        let mut b = TableBuilder::new(Schema::game_actions());
        for action in ["launch", "fight"] {
            b.push(vec![
                Value::str("u1"),
                Value::int(1000),
                Value::str(action),
                Value::str("China"),
                Value::str("Beijing"),
                Value::str("dwarf"),
                Value::int(5),
                Value::int(0),
            ])
            .unwrap();
        }
        let t = b.finish().unwrap();
        let q = CohortQuery::builder("launch")
            .cohort_by(["country"])
            .aggregate(AggFunc::count())
            .build()
            .unwrap();
        let r = naive_execute(&t, &q).unwrap();
        assert_eq!(r.num_rows(), 0);
        assert_eq!(r.cohort_sizes[&vec![Value::str("China")]], 1);
    }
}
