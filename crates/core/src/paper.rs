//! The benchmark queries of the paper's evaluation (§5.2).
//!
//! Q1–Q4 exercise the cohort operators incrementally; Q5–Q8 are the
//! selectivity-sweep variants of Q1/Q3 used for Figures 8 and 9. All are
//! expressed against the `GameActions` schema of
//! [`cohana_activity::Schema::game_actions`].

use crate::agg::AggFunc;
use crate::expr::Expr;
use crate::query::CohortQuery;
use cohana_activity::{Timestamp, Value};

/// Parse a `YYYY-MM-DD` date into epoch seconds (panics on bad input; these
/// are compile-time-style constants in benchmarks).
fn date(s: &str) -> i64 {
    Timestamp::parse(s).expect("valid benchmark date").secs()
}

/// Q1: *For each country launch cohort, report the number of retained users
/// who did at least one action since they first launched the game.*
pub fn q1() -> CohortQuery {
    CohortQuery::builder("launch")
        .cohort_by(["country"])
        .aggregate(AggFunc::user_count())
        .build()
        .expect("Q1 is valid")
}

/// Q2: Q1 restricted to cohorts born in `2013-05-21 … 2013-05-27`.
pub fn q2() -> CohortQuery {
    CohortQuery::builder("launch")
        .birth_where(Expr::attr("time").between_int(date("2013-05-21"), date("2013-05-27")))
        .cohort_by(["country"])
        .aggregate(AggFunc::user_count())
        .build()
        .expect("Q2 is valid")
}

/// Q3: *For each country shop cohort, report the average gold spent in
/// shopping since the first shop.*
pub fn q3() -> CohortQuery {
    CohortQuery::builder("shop")
        .age_where(Expr::attr("action").eq(Expr::lit_str("shop")))
        .cohort_by(["country"])
        .aggregate(AggFunc::avg("gold"))
        .build()
        .expect("Q3 is valid")
}

/// Q4: Q3 with a composite birth selection (date range, dwarf role, country
/// in {China, Australia, United States}) and a `Birth(country)` age
/// selection.
pub fn q4() -> CohortQuery {
    CohortQuery::builder("shop")
        .birth_where(
            Expr::attr("time")
                .between_int(date("2013-05-21"), date("2013-05-27"))
                .and(Expr::attr("role").eq(Expr::lit_str("dwarf")))
                .and(Expr::attr("country").in_list([
                    Value::str("China"),
                    Value::str("Australia"),
                    Value::str("United States"),
                ])),
        )
        .age_where(
            Expr::attr("action")
                .eq(Expr::lit_str("shop"))
                .and(Expr::attr("country").eq(Expr::birth("country"))),
        )
        .cohort_by(["country"])
        .aggregate(AggFunc::avg("gold"))
        .build()
        .expect("Q4 is valid")
}

/// Q5: Q1 with a birth date range `[d1, d2]` (Figure 8 sweep).
pub fn q5(d1: i64, d2: i64) -> CohortQuery {
    CohortQuery::builder("launch")
        .birth_where(Expr::attr("time").between_int(d1, d2))
        .cohort_by(["country"])
        .aggregate(AggFunc::user_count())
        .build()
        .expect("Q5 is valid")
}

/// Q6: Q3 with a birth date range `[d1, d2]` (Figure 8 sweep).
pub fn q6(d1: i64, d2: i64) -> CohortQuery {
    CohortQuery::builder("shop")
        .birth_where(Expr::attr("time").between_int(d1, d2))
        .age_where(Expr::attr("action").eq(Expr::lit_str("shop")))
        .cohort_by(["country"])
        .aggregate(AggFunc::avg("gold"))
        .build()
        .expect("Q6 is valid")
}

/// Q7: Q1 with `AGE < g` (Figure 9 sweep).
pub fn q7(g: i64) -> CohortQuery {
    CohortQuery::builder("launch")
        .age_where(Expr::age().lt(Expr::lit_int(g)))
        .cohort_by(["country"])
        .aggregate(AggFunc::user_count())
        .build()
        .expect("Q7 is valid")
}

/// Q8: Q3 with `AGE < g` (Figure 9 sweep).
pub fn q8(g: i64) -> CohortQuery {
    CohortQuery::builder("shop")
        .age_where(
            Expr::attr("action").eq(Expr::lit_str("shop")).and(Expr::age().lt(Expr::lit_int(g))),
        )
        .cohort_by(["country"])
        .aggregate(AggFunc::avg("gold"))
        .build()
        .expect("Q8 is valid")
}

/// The Example-1 query of the paper (country launch cohorts of dwarf-born
/// players, total gold spent on shopping).
pub fn example1() -> CohortQuery {
    CohortQuery::builder("launch")
        .birth_where(Expr::attr("role").eq(Expr::lit_str("dwarf")))
        .age_where(Expr::attr("action").eq(Expr::lit_str("shop")))
        .cohort_by(["country"])
        .aggregate(AggFunc::sum("gold"))
        .build()
        .expect("example 1 is valid")
}

/// The Table-3 / Figure-1 analysis: weekly launch cohorts, average gold
/// spent on shopping, weekly ages.
pub fn shopping_trend() -> CohortQuery {
    CohortQuery::builder("launch")
        .age_where(Expr::attr("action").eq(Expr::lit_str("shop")))
        .cohort_by_time(cohana_activity::TimeBin::Week)
        .age_bin(cohana_activity::TimeBin::Week)
        .aggregate(AggFunc::avg("gold"))
        .build()
        .expect("shopping trend query is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queries_build() {
        let _ = (q1(), q2(), q3(), q4(), example1(), shopping_trend());
        let _ = (q5(0, 100), q6(0, 100), q7(7), q8(7));
    }

    #[test]
    fn q4_has_composite_predicates() {
        let q = q4();
        assert!(q.birth_predicate.as_ref().unwrap().conjuncts().len() >= 3);
        assert!(q.age_predicate.as_ref().unwrap().references_birth_or_age());
    }
}
