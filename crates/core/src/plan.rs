//! Query planning (§4.2).
//!
//! A cohort query plan is a chain
//! `TableScan → (selections…) → CohortAgg`. The planner builds the plan with
//! age selections evaluated first (as the query is written) and then applies
//! the **push-down optimization**: by the commutativity of σᵇ and σᵍ under a
//! shared birth action (Equation 1), birth selections are sunk below age
//! selections so the TableScan can skip all activity tuples of unqualified
//! users.
//!
//! [`PlannerOptions`] exposes the paper's individual optimizations as flags
//! so ablation benchmarks can toggle them:
//!
//! * `push_down_birth_selection` — Equation 1 push-down (§4.2);
//! * `skip_unqualified_users` — `SkipCurUser` in the TableScan (§4.3);
//! * `prune_chunks` — two-level dictionary / range chunk skipping (§4.1);
//! * `array_aggregation` — array-based hash tables in γᶜ (§4.4).

use crate::error::EngineError;
use crate::expr::Expr;
use crate::query::{CohortAttr, CohortQuery};
use cohana_activity::{Schema, ValueType};
use std::fmt;

/// Toggles for COHANA's optimizations (all on by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannerOptions {
    /// Push birth selections below age selections (Equation 1).
    pub push_down_birth_selection: bool,
    /// Skip remaining tuples of users whose birth tuple fails the birth
    /// selection.
    pub skip_unqualified_users: bool,
    /// Skip chunks whose dictionaries/ranges prove no tuple can qualify.
    pub prune_chunks: bool,
    /// Use dense arrays instead of hash maps for aggregation when the
    /// cohort key domain is small.
    pub array_aggregation: bool,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        PlannerOptions {
            push_down_birth_selection: true,
            skip_unqualified_users: true,
            prune_chunks: true,
            array_aggregation: true,
        }
    }
}

impl PlannerOptions {
    /// Every optimization disabled — the naive evaluation baseline for
    /// ablation studies.
    pub fn naive() -> Self {
        PlannerOptions {
            push_down_birth_selection: false,
            skip_unqualified_users: false,
            prune_chunks: false,
            array_aggregation: false,
        }
    }
}

/// A node of the logical plan tree (rendered like the paper's Figure 5).
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Leaf: scan of the compressed activity table with a projection list.
    TableScan {
        /// Columns the query touches.
        projected: Vec<String>,
    },
    /// σᵇ(C,e)
    BirthSelect {
        /// The condition on birth tuples.
        predicate: Expr,
        /// Input node.
        input: Box<PlanNode>,
    },
    /// σᵍ(C,e)
    AgeSelect {
        /// The condition on age tuples.
        predicate: Expr,
        /// Input node.
        input: Box<PlanNode>,
    },
    /// γᶜ(L,e,fA) — always the root.
    CohortAgg {
        /// Rendered cohort attribute list.
        cohort_by: Vec<String>,
        /// Rendered aggregate list.
        aggregates: Vec<String>,
        /// Input node.
        input: Box<PlanNode>,
    },
}

impl PlanNode {
    fn render(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        match self {
            PlanNode::CohortAgg { cohort_by, aggregates, input } => {
                writeln!(f, "{pad}γc[{} ; {}]", cohort_by.join(", "), aggregates.join(", "))?;
                input.render(f, depth + 1)
            }
            PlanNode::AgeSelect { predicate, input } => {
                writeln!(f, "{pad}σg[{predicate}]")?;
                input.render(f, depth + 1)
            }
            PlanNode::BirthSelect { predicate, input } => {
                writeln!(f, "{pad}σb[{predicate}]")?;
                input.render(f, depth + 1)
            }
            PlanNode::TableScan { projected } => {
                writeln!(f, "{pad}TableScan[{}]", projected.join(", "))
            }
        }
    }

    /// Depth-first list of operator names, root first (for tests).
    pub fn operator_names(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        let mut cur = Some(self);
        while let Some(node) = cur {
            match node {
                PlanNode::CohortAgg { input, .. } => {
                    out.push("CohortAgg");
                    cur = Some(input);
                }
                PlanNode::AgeSelect { input, .. } => {
                    out.push("AgeSelect");
                    cur = Some(input);
                }
                PlanNode::BirthSelect { input, .. } => {
                    out.push("BirthSelect");
                    cur = Some(input);
                }
                PlanNode::TableScan { .. } => {
                    out.push("TableScan");
                    cur = None;
                }
            }
        }
        out
    }
}

impl fmt::Display for PlanNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.render(f, 0)
    }
}

/// The physical plan: the validated query, the (optimized) logical tree for
/// EXPLAIN, and the option flags the executor honours.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPlan {
    /// The validated query.
    pub query: CohortQuery,
    /// The logical operator tree after optimization.
    pub tree: PlanNode,
    /// Birth-time bounds extracted from the birth predicate, for range
    /// pruning (`None` when unconstrained).
    pub birth_time_bounds: Option<(i64, i64)>,
    /// Schema positions of the TableScan's projection list — every attribute
    /// the query touches (always includes user, time, and action). The
    /// executor hands this to [`ChunkSource::chunk_columns`] so a
    /// column-addressable source reads only these columns from disk.
    ///
    /// [`ChunkSource::chunk_columns`]: cohana_storage::ChunkSource::chunk_columns
    pub projected_idxs: Vec<usize>,
    /// Option flags.
    pub options: PlannerOptions,
}

impl PhysicalPlan {
    /// EXPLAIN-style rendering (Figure 5).
    pub fn explain(&self) -> String {
        self.tree.to_string()
    }
}

/// Validate a query against a schema and produce the optimized plan.
pub fn plan_query(
    query: &CohortQuery,
    schema: &Schema,
    options: PlannerOptions,
) -> Result<PhysicalPlan, EngineError> {
    validate(query, schema)?;

    let mut projected: Vec<String> = vec![
        schema.attribute(schema.user_idx()).name.clone(),
        schema.attribute(schema.time_idx()).name.clone(),
        schema.attribute(schema.action_idx()).name.clone(),
    ];
    let mut add = |name: &str| {
        if !projected.iter().any(|p| p == name) {
            projected.push(name.to_string());
        }
    };
    for c in &query.cohort_by {
        if let CohortAttr::Attr(a) = c {
            add(a);
        }
    }
    for p in [&query.birth_predicate, &query.age_predicate].into_iter().flatten() {
        for a in p.referenced_attrs() {
            add(&a);
        }
    }
    for agg in &query.aggregates {
        if let Some(a) = agg.attr() {
            add(a);
        }
    }

    // Resolve the projection to schema positions once; the executor passes
    // these to the source so column-addressable storage fetches only them.
    let projected_idxs: Vec<usize> =
        projected.iter().map(|n| schema.require(n)).collect::<Result<_, _>>()?;

    // Build the plan in query order: scan -> σg -> σb -> γ would be the
    // pushed-down form; the written form has σb above σg.
    let mut node = PlanNode::TableScan { projected };
    let time_attr = schema.attribute(schema.time_idx()).name.clone();

    if options.push_down_birth_selection {
        if let Some(p) = &query.birth_predicate {
            node = PlanNode::BirthSelect { predicate: p.clone(), input: Box::new(node) };
        }
        if let Some(p) = &query.age_predicate {
            node = PlanNode::AgeSelect { predicate: p.clone(), input: Box::new(node) };
        }
    } else {
        if let Some(p) = &query.age_predicate {
            node = PlanNode::AgeSelect { predicate: p.clone(), input: Box::new(node) };
        }
        if let Some(p) = &query.birth_predicate {
            node = PlanNode::BirthSelect { predicate: p.clone(), input: Box::new(node) };
        }
    }
    let tree = PlanNode::CohortAgg {
        cohort_by: query.cohort_by.iter().map(|c| c.to_string()).collect(),
        aggregates: query.aggregates.iter().map(|a| a.header()).collect(),
        input: Box::new(node),
    };

    let birth_time_bounds = query.birth_predicate.as_ref().and_then(|p| p.int_bounds(&time_attr));

    Ok(PhysicalPlan { query: query.clone(), tree, birth_time_bounds, projected_idxs, options })
}

fn validate(query: &CohortQuery, schema: &Schema) -> Result<(), EngineError> {
    // Cohort attributes: must exist, must not be the user or action
    // attribute (L ∩ {Au, Ae} = ∅ in Definition 6); the time attribute is
    // reachable only through the TimeBin form.
    for c in &query.cohort_by {
        if let CohortAttr::Attr(a) = c {
            let idx = schema.require(a)?;
            if idx == schema.user_idx() || idx == schema.action_idx() {
                return Err(EngineError::InvalidQuery(format!(
                    "cohort attribute {a:?} cannot be the user or action attribute"
                )));
            }
            if idx == schema.time_idx() {
                return Err(EngineError::InvalidQuery(
                    "cohort by raw time is not allowed; use a time bin (day/week/month)".into(),
                ));
            }
        }
    }
    // Aggregate attributes must exist and be integers.
    for agg in &query.aggregates {
        if let Some(a) = agg.attr() {
            let idx = schema.require(a)?;
            if schema.attribute(idx).vtype != ValueType::Int {
                return Err(EngineError::TypeError(format!(
                    "aggregate over non-integer attribute {a:?}"
                )));
            }
        }
    }
    // Predicate attributes must exist; type checks happen at compile time
    // per chunk, but literal/attribute type agreement is checked here.
    for p in [&query.birth_predicate, &query.age_predicate].into_iter().flatten() {
        for a in p.referenced_attrs() {
            schema.require(&a)?;
        }
        typecheck(p, schema)?;
    }
    Ok(())
}

/// Infer the type of a scalar sub-expression.
fn scalar_type(e: &Expr, schema: &Schema) -> Result<ValueType, EngineError> {
    match e {
        Expr::Attr(a) | Expr::Birth(a) => Ok(schema.attribute(schema.require(a)?).vtype),
        Expr::Age => Ok(ValueType::Int),
        Expr::Lit(v) => {
            v.value_type().ok_or_else(|| EngineError::TypeError("NULL literal in predicate".into()))
        }
        other => Err(EngineError::TypeError(format!("{other} is not a scalar"))),
    }
}

fn typecheck(e: &Expr, schema: &Schema) -> Result<(), EngineError> {
    match e {
        Expr::Cmp(_, a, b) => {
            let ta = scalar_type(a, schema)?;
            let tb = scalar_type(b, schema)?;
            if ta != tb {
                return Err(EngineError::TypeError(format!(
                    "comparing {} with {} in `{e}`",
                    ta.name(),
                    tb.name()
                )));
            }
            Ok(())
        }
        Expr::And(a, b) | Expr::Or(a, b) => {
            typecheck(a, schema)?;
            typecheck(b, schema)
        }
        Expr::Not(a) => typecheck(a, schema),
        Expr::InList(a, vs) => {
            let ta = scalar_type(a, schema)?;
            for v in vs {
                if v.value_type() != Some(ta) {
                    return Err(EngineError::TypeError(format!(
                        "IN list value {v} does not match {} in `{e}`",
                        ta.name()
                    )));
                }
            }
            Ok(())
        }
        Expr::Between(a, lo, hi) => {
            let ta = scalar_type(a, schema)?;
            if lo.value_type() != Some(ta) || hi.value_type() != Some(ta) {
                return Err(EngineError::TypeError(format!("BETWEEN bounds mismatch in `{e}`")));
            }
            Ok(())
        }
        Expr::Attr(_) | Expr::Birth(_) | Expr::Age | Expr::Lit(_) => Err(EngineError::TypeError(
            format!("`{e}` is a scalar where a boolean predicate is required"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggFunc;
    use cohana_activity::Schema;

    fn q4_like() -> CohortQuery {
        CohortQuery::builder("shop")
            .birth_where(
                Expr::attr("time")
                    .between_int(100, 200)
                    .and(Expr::attr("role").eq(Expr::lit_str("dwarf"))),
            )
            .age_where(
                Expr::attr("action")
                    .eq(Expr::lit_str("shop"))
                    .and(Expr::attr("country").eq(Expr::birth("country"))),
            )
            .cohort_by(["country"])
            .aggregate(AggFunc::avg("gold"))
            .build()
            .unwrap()
    }

    #[test]
    fn push_down_puts_birth_below_age() {
        let plan =
            plan_query(&q4_like(), &Schema::game_actions(), PlannerOptions::default()).unwrap();
        assert_eq!(
            plan.tree.operator_names(),
            vec!["CohortAgg", "AgeSelect", "BirthSelect", "TableScan"]
        );
    }

    #[test]
    fn no_push_down_keeps_query_order() {
        let opts = PlannerOptions { push_down_birth_selection: false, ..Default::default() };
        let plan = plan_query(&q4_like(), &Schema::game_actions(), opts).unwrap();
        assert_eq!(
            plan.tree.operator_names(),
            vec!["CohortAgg", "BirthSelect", "AgeSelect", "TableScan"]
        );
    }

    #[test]
    fn extracts_birth_time_bounds() {
        let plan =
            plan_query(&q4_like(), &Schema::game_actions(), PlannerOptions::default()).unwrap();
        assert_eq!(plan.birth_time_bounds, Some((100, 200)));
    }

    #[test]
    fn explain_shows_figure5_shape() {
        let plan =
            plan_query(&q4_like(), &Schema::game_actions(), PlannerOptions::default()).unwrap();
        let text = plan.explain();
        let gamma = text.find("γc").unwrap();
        let sigma_g = text.find("σg").unwrap();
        let sigma_b = text.find("σb").unwrap();
        let scan = text.find("TableScan").unwrap();
        assert!(gamma < sigma_g && sigma_g < sigma_b && sigma_b < scan);
    }

    #[test]
    fn projection_collects_referenced_columns() {
        let plan =
            plan_query(&q4_like(), &Schema::game_actions(), PlannerOptions::default()).unwrap();
        if let PlanNode::CohortAgg { input, .. } = &plan.tree {
            let mut node = input.as_ref();
            loop {
                match node {
                    PlanNode::TableScan { projected } => {
                        for col in ["player", "time", "action", "country", "role", "gold"] {
                            assert!(projected.iter().any(|p| p == col), "missing {col}");
                        }
                        // city and session are not referenced.
                        assert!(!projected.iter().any(|p| p == "city"));
                        assert!(!projected.iter().any(|p| p == "session"));
                        break;
                    }
                    PlanNode::AgeSelect { input, .. } | PlanNode::BirthSelect { input, .. } => {
                        node = input
                    }
                    _ => unreachable!(),
                }
            }
        } else {
            panic!("root must be CohortAgg");
        }
    }

    #[test]
    fn projected_idxs_mirror_projection_names() {
        let schema = Schema::game_actions();
        let plan = plan_query(&q4_like(), &schema, PlannerOptions::default()).unwrap();
        let names: Vec<&str> =
            plan.projected_idxs.iter().map(|&i| schema.attribute(i).name.as_str()).collect();
        for col in ["player", "time", "action", "country", "role", "gold"] {
            assert!(names.contains(&col), "missing {col}");
        }
        assert!(!names.contains(&"city"));
        assert!(!names.contains(&"session"));
        // User, time, and action are always projected (the executor's
        // ChunkScan needs them for every query).
        assert!(plan.projected_idxs.contains(&schema.user_idx()));
        assert!(plan.projected_idxs.contains(&schema.time_idx()));
        assert!(plan.projected_idxs.contains(&schema.action_idx()));
    }

    #[test]
    fn rejects_unknown_attributes() {
        let q = CohortQuery::builder("launch")
            .cohort_by(["nope"])
            .aggregate(AggFunc::count())
            .build()
            .unwrap();
        assert!(matches!(
            plan_query(&q, &Schema::game_actions(), PlannerOptions::default()).unwrap_err(),
            EngineError::UnknownAttribute(_)
        ));
    }

    #[test]
    fn rejects_cohort_by_user_or_action_or_time() {
        for attr in ["player", "action", "time"] {
            let q = CohortQuery::builder("launch")
                .cohort_by([attr])
                .aggregate(AggFunc::count())
                .build()
                .unwrap();
            assert!(
                plan_query(&q, &Schema::game_actions(), PlannerOptions::default()).is_err(),
                "cohort by {attr} must be rejected"
            );
        }
    }

    #[test]
    fn rejects_type_mismatches() {
        // String column compared to int literal.
        let q = CohortQuery::builder("launch")
            .birth_where(Expr::attr("role").eq(Expr::lit_int(7)))
            .cohort_by(["country"])
            .aggregate(AggFunc::count())
            .build()
            .unwrap();
        assert!(matches!(
            plan_query(&q, &Schema::game_actions(), PlannerOptions::default()).unwrap_err(),
            EngineError::TypeError(_)
        ));
        // Aggregate over string attribute.
        let q2 = CohortQuery::builder("launch")
            .cohort_by(["country"])
            .aggregate(AggFunc::sum("role"))
            .build()
            .unwrap();
        assert!(plan_query(&q2, &Schema::game_actions(), PlannerOptions::default()).is_err());
    }

    #[test]
    fn rejects_bare_scalar_predicate() {
        let q = CohortQuery::builder("launch")
            .birth_where(Expr::attr("role"))
            .cohort_by(["country"])
            .aggregate(AggFunc::count())
            .build()
            .unwrap();
        assert!(plan_query(&q, &Schema::game_actions(), PlannerOptions::default()).is_err());
    }
}
