//! The [`CohortQuery`] description (§3.4).
//!
//! A cohort query is the composition `γᶜ(L,e,fA) ∘ σᵍ(Cg,e) ∘ σᵇ(Cb,e)` over
//! one activity table, with the same birth action `e` throughout — the
//! constraint the paper places on basic cohort queries. The SQL-style
//! surface syntax is parsed by the `cohana-sql` crate into this structure.

use crate::agg::AggFunc;
use crate::error::EngineError;
use crate::expr::Expr;
use cohana_activity::TimeBin;
use std::fmt;

/// One element of the cohort attribute set `L`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CohortAttr {
    /// Cohort by a dimension attribute of the birth tuple (e.g. `country`).
    Attr(String),
    /// Cohort by the birth time, binned at a granularity — the classic
    /// social-science time cohort (e.g. weekly launch cohorts).
    TimeBin(TimeBin),
}

impl fmt::Display for CohortAttr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CohortAttr::Attr(a) => write!(f, "{a}"),
            CohortAttr::TimeBin(TimeBin::Day) => write!(f, "time(day)"),
            CohortAttr::TimeBin(TimeBin::Week) => write!(f, "time(week)"),
            CohortAttr::TimeBin(TimeBin::Month) => write!(f, "time(month)"),
        }
    }
}

/// A validated cohort query.
#[derive(Debug, Clone, PartialEq)]
pub struct CohortQuery {
    /// The birth action `e`, shared by all cohort operators in the query.
    pub birth_action: String,
    /// Birth selection condition `Cb` (on the birth tuple's attributes).
    pub birth_predicate: Option<Expr>,
    /// Age selection condition `Cg` (may use `Birth(A)` and `AGE`).
    pub age_predicate: Option<Expr>,
    /// The cohort attribute set `L`.
    pub cohort_by: Vec<CohortAttr>,
    /// Aggregates to report per `(cohort, age)`.
    pub aggregates: Vec<AggFunc>,
    /// Age normalization granularity (the paper defaults to days).
    pub age_bin: TimeBin,
}

impl CohortQuery {
    /// Start building a query for a birth action.
    pub fn builder(birth_action: impl Into<String>) -> CohortQueryBuilder {
        CohortQueryBuilder {
            birth_action: birth_action.into(),
            birth_predicate: None,
            age_predicate: None,
            cohort_by: Vec::new(),
            aggregates: Vec::new(),
            age_bin: TimeBin::Day,
        }
    }

    /// Render in the paper's extended-SQL style (used by `Display` and the
    /// planner's EXPLAIN output).
    pub fn to_sql(&self) -> String {
        let mut select: Vec<String> = self.cohort_by.iter().map(|c| c.to_string()).collect();
        select.push("COHORTSIZE".into());
        select.push("AGE".into());
        select.extend(self.aggregates.iter().map(|a| a.header()));
        let mut s = format!(
            "SELECT {}\nFROM D\nBIRTH FROM action = \"{}\"",
            select.join(", "),
            self.birth_action
        );
        if let Some(p) = &self.birth_predicate {
            s.push_str(&format!(" AND {p}"));
        }
        if let Some(p) = &self.age_predicate {
            s.push_str(&format!("\nAGE ACTIVITIES IN {p}"));
        }
        s.push_str(&format!(
            "\nCOHORT BY {}",
            self.cohort_by.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(", ")
        ));
        match self.age_bin {
            TimeBin::Day => {}
            TimeBin::Week => s.push_str("\nAGE UNIT week"),
            TimeBin::Month => s.push_str("\nAGE UNIT month"),
        }
        s
    }
}

impl fmt::Display for CohortQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_sql())
    }
}

/// Builder for [`CohortQuery`] with validation at `build()`.
#[derive(Debug, Clone)]
pub struct CohortQueryBuilder {
    birth_action: String,
    birth_predicate: Option<Expr>,
    age_predicate: Option<Expr>,
    cohort_by: Vec<CohortAttr>,
    aggregates: Vec<AggFunc>,
    age_bin: TimeBin,
}

impl CohortQueryBuilder {
    /// Add a birth selection condition (conjoined with any existing one).
    pub fn birth_where(mut self, pred: Expr) -> Self {
        self.birth_predicate = Some(match self.birth_predicate {
            Some(p) => p.and(pred),
            None => pred,
        });
        self
    }

    /// Add an age selection condition (conjoined with any existing one).
    pub fn age_where(mut self, pred: Expr) -> Self {
        self.age_predicate = Some(match self.age_predicate {
            Some(p) => p.and(pred),
            None => pred,
        });
        self
    }

    /// Cohort by dimension attributes.
    pub fn cohort_by<I, S>(mut self, attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.cohort_by.extend(attrs.into_iter().map(|a| CohortAttr::Attr(a.into())));
        self
    }

    /// Cohort by binned birth time.
    pub fn cohort_by_time(mut self, bin: TimeBin) -> Self {
        self.cohort_by.push(CohortAttr::TimeBin(bin));
        self
    }

    /// Add an aggregate to report.
    pub fn aggregate(mut self, agg: AggFunc) -> Self {
        self.aggregates.push(agg);
        self
    }

    /// Set the age granularity (defaults to days).
    pub fn age_bin(mut self, bin: TimeBin) -> Self {
        self.age_bin = bin;
        self
    }

    /// Validate and build.
    pub fn build(self) -> Result<CohortQuery, EngineError> {
        if self.birth_action.is_empty() {
            return Err(EngineError::InvalidQuery("birth action must be non-empty".into()));
        }
        if self.cohort_by.is_empty() {
            return Err(EngineError::InvalidQuery(
                "COHORT BY must name at least one attribute".into(),
            ));
        }
        if self.aggregates.is_empty() {
            return Err(EngineError::InvalidQuery("at least one aggregate is required".into()));
        }
        if let Some(p) = &self.birth_predicate {
            if p.references_birth_or_age() {
                return Err(EngineError::InvalidQuery(
                    "birth selection cannot reference Birth()/AGE; its attributes already \
                     denote the birth tuple"
                        .into(),
                ));
            }
        }
        Ok(CohortQuery {
            birth_action: self.birth_action,
            birth_predicate: self.birth_predicate,
            age_predicate: self.age_predicate,
            cohort_by: self.cohort_by,
            aggregates: self.aggregates,
            age_bin: self.age_bin,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    /// The paper's Q1 from Example 1.
    fn q1() -> CohortQuery {
        CohortQuery::builder("launch")
            .birth_where(Expr::attr("role").eq(Expr::lit_str("dwarf")))
            .age_where(Expr::attr("action").eq(Expr::lit_str("shop")))
            .cohort_by(["country"])
            .aggregate(AggFunc::sum("gold"))
            .build()
            .unwrap()
    }

    #[test]
    fn builds_example_1() {
        let q = q1();
        assert_eq!(q.birth_action, "launch");
        assert!(q.birth_predicate.is_some());
        assert!(q.age_predicate.is_some());
        assert_eq!(q.cohort_by, vec![CohortAttr::Attr("country".into())]);
    }

    #[test]
    fn to_sql_round_style() {
        let sql = q1().to_sql();
        assert!(sql.contains("BIRTH FROM action = \"launch\" AND role = \"dwarf\""));
        assert!(sql.contains("AGE ACTIVITIES IN action = \"shop\""));
        assert!(sql.contains("COHORT BY country"));
        assert!(sql.contains("COHORTSIZE"));
    }

    #[test]
    fn rejects_empty_parts() {
        assert!(CohortQuery::builder("")
            .cohort_by(["country"])
            .aggregate(AggFunc::count())
            .build()
            .is_err());
        assert!(CohortQuery::builder("launch").aggregate(AggFunc::count()).build().is_err());
        assert!(CohortQuery::builder("launch").cohort_by(["country"]).build().is_err());
    }

    #[test]
    fn rejects_birth_pred_with_age_refs() {
        let res = CohortQuery::builder("launch")
            .birth_where(Expr::age().lt(Expr::lit_int(5)))
            .cohort_by(["country"])
            .aggregate(AggFunc::count())
            .build();
        assert!(res.is_err());
    }

    #[test]
    fn conjoining_builders() {
        let q = CohortQuery::builder("shop")
            .birth_where(Expr::attr("role").eq(Expr::lit_str("dwarf")))
            .birth_where(Expr::attr("country").eq(Expr::lit_str("China")))
            .build_partial_for_test();
        let p = q.unwrap();
        assert!(p.to_string().contains("AND"));
    }

    impl CohortQueryBuilder {
        fn build_partial_for_test(self) -> Option<Expr> {
            self.birth_predicate
        }
    }
}
