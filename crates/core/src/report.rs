//! Cohort query results.
//!
//! The cohort aggregation operator outputs a normal relational table whose
//! rows are `(dL, g, s, m)`: the cohort identifier, the age, the cohort
//! size, and the aggregated measures (Definition 6). [`CohortReport`] holds
//! those rows plus enough metadata to render the paper's Table 3 style
//! pivoted cohort matrix.

use crate::agg::AggValue;
use crate::stats::QueryStats;
use cohana_activity::Value;
use std::collections::BTreeMap;
use std::fmt;

/// One output row of γᶜ.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportRow {
    /// Cohort identifier `dL` (one value per cohort attribute).
    pub cohort: Vec<Value>,
    /// Cohort size `s` — distinct qualified users in the cohort.
    pub size: u64,
    /// Age `g` in normalized units (≥ 1).
    pub age: i64,
    /// Finalized aggregates `m`, one per aggregate in the query.
    pub measures: Vec<AggValue>,
}

/// The result of a cohort query.
#[derive(Debug, Clone)]
pub struct CohortReport {
    /// Header names of the cohort attributes.
    pub cohort_attrs: Vec<String>,
    /// Header names of the aggregates.
    pub agg_names: Vec<String>,
    /// Rows sorted by (cohort, age).
    pub rows: Vec<ReportRow>,
    /// Size of every cohort that had at least one qualified user, including
    /// cohorts that produced no (cohort, age) rows.
    pub cohort_sizes: BTreeMap<Vec<Value>, u64>,
    /// What the execution that produced this report cost (`None` for
    /// reports assembled outside the streaming executor, e.g. the naive
    /// reference evaluator or manually merged batches).
    pub stats: Option<QueryStats>,
}

/// Equality compares the query *result* — headers, rows, cohort sizes —
/// and deliberately ignores [`CohortReport::stats`]: two executions of the
/// same query are equal even though their wall times and cache hit rates
/// never are.
impl PartialEq for CohortReport {
    fn eq(&self, other: &Self) -> bool {
        self.cohort_attrs == other.cohort_attrs
            && self.agg_names == other.agg_names
            && self.rows == other.rows
            && self.cohort_sizes == other.cohort_sizes
    }
}

impl CohortReport {
    /// Number of `(cohort, age)` rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Whether the report is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Look up a row by cohort label and age.
    pub fn find(&self, cohort: &[Value], age: i64) -> Option<&ReportRow> {
        self.rows.iter().find(|r| r.cohort == cohort && r.age == age)
    }

    /// The distinct cohort labels, in order.
    pub fn cohorts(&self) -> Vec<&Vec<Value>> {
        let mut out: Vec<&Vec<Value>> = Vec::new();
        for r in &self.rows {
            if out.last().map(|c| **c != r.cohort).unwrap_or(true) {
                out.push(&r.cohort);
            }
        }
        out
    }

    /// Render as an aligned flat table:
    /// `cohort…, COHORTSIZE, AGE, aggregates…`.
    pub fn pretty(&self) -> String {
        let mut headers: Vec<String> = self.cohort_attrs.clone();
        headers.push("COHORTSIZE".into());
        headers.push("AGE".into());
        headers.extend(self.agg_names.iter().cloned());
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let mut row: Vec<String> = r.cohort.iter().map(|v| v.to_string()).collect();
                row.push(r.size.to_string());
                row.push(r.age.to_string());
                row.extend(r.measures.iter().map(|m| m.to_string()));
                for (i, c) in row.iter().enumerate() {
                    widths[i] = widths[i].max(c.len());
                }
                row
            })
            .collect();
        let mut out = String::new();
        for (i, h) in headers.iter().enumerate() {
            out.push_str(&format!("{:w$}  ", h, w = widths[i]));
        }
        out.push('\n');
        for row in cells {
            for (i, c) in row.iter().enumerate() {
                out.push_str(&format!("{:w$}  ", c, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }

    /// Render the paper's Table 3 style pivot: one row per cohort (with its
    /// size in parentheses), one column per age, showing measure
    /// `measure_idx`.
    pub fn pivot(&self, measure_idx: usize) -> String {
        let ages: Vec<i64> = {
            let mut a: Vec<i64> = self.rows.iter().map(|r| r.age).collect();
            a.sort_unstable();
            a.dedup();
            a
        };
        let mut by_cohort: BTreeMap<&Vec<Value>, BTreeMap<i64, &AggValue>> = BTreeMap::new();
        let mut sizes: BTreeMap<&Vec<Value>, u64> = BTreeMap::new();
        for r in &self.rows {
            by_cohort.entry(&r.cohort).or_default().insert(r.age, &r.measures[measure_idx]);
            sizes.insert(&r.cohort, r.size);
        }
        let label = |c: &Vec<Value>| -> String {
            c.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("/")
        };
        let mut label_w = "cohort".len();
        for c in by_cohort.keys() {
            label_w = label_w.max(label(c).len() + sizes[*c].to_string().len() + 3);
        }
        let col_w = 8usize;
        let mut out = format!("{:label_w$}  ", "cohort");
        for a in &ages {
            out.push_str(&format!("{:>col_w$}  ", a));
        }
        out.push('\n');
        for (c, cells) in &by_cohort {
            out.push_str(&format!("{:label_w$}  ", format!("{} ({})", label(c), sizes[*c])));
            for a in &ages {
                match cells.get(a) {
                    Some(v) => out.push_str(&format!("{:>col_w$}  ", v.to_string())),
                    None => out.push_str(&format!("{:>col_w$}  ", "")),
                }
            }
            out.push('\n');
        }
        out
    }

    /// CSV export (`cohort attrs…, cohortsize, age, aggregates…`).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let mut headers: Vec<String> = self.cohort_attrs.clone();
        headers.push("cohortsize".into());
        headers.push("age".into());
        headers.extend(self.agg_names.iter().cloned());
        out.push_str(&headers.join(","));
        out.push('\n');
        for r in &self.rows {
            let mut row: Vec<String> = r.cohort.iter().map(|v| v.to_string()).collect();
            row.push(r.size.to_string());
            row.push(r.age.to_string());
            row.extend(r.measures.iter().map(|m| m.to_string()));
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for CohortReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CohortReport {
        CohortReport {
            cohort_attrs: vec!["country".into()],
            agg_names: vec!["Sum(gold)".into()],
            rows: vec![
                ReportRow {
                    cohort: vec![Value::str("Australia")],
                    size: 3,
                    age: 1,
                    measures: vec![AggValue::Int(52)],
                },
                ReportRow {
                    cohort: vec![Value::str("Australia")],
                    size: 3,
                    age: 2,
                    measures: vec![AggValue::Int(31)],
                },
                ReportRow {
                    cohort: vec![Value::str("China")],
                    size: 5,
                    age: 1,
                    measures: vec![AggValue::Int(58)],
                },
            ],
            cohort_sizes: BTreeMap::from([
                (vec![Value::str("Australia")], 3),
                (vec![Value::str("China")], 5),
            ]),
            stats: None,
        }
    }

    #[test]
    fn find_and_cohorts() {
        let r = sample();
        assert_eq!(r.num_rows(), 3);
        assert_eq!(r.find(&[Value::str("Australia")], 2).unwrap().measures[0], AggValue::Int(31));
        assert!(r.find(&[Value::str("Australia")], 9).is_none());
        assert_eq!(r.cohorts().len(), 2);
    }

    #[test]
    fn pretty_has_headers_and_rows() {
        let p = sample().pretty();
        assert!(p.contains("COHORTSIZE"));
        assert!(p.contains("Australia"));
        assert!(p.contains("52"));
    }

    #[test]
    fn pivot_matrix_shape() {
        let p = sample().pivot(0);
        // One header line + two cohort lines.
        assert_eq!(p.lines().count(), 3);
        assert!(p.contains("Australia (3)"));
        assert!(p.contains("China (5)"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "country,cohortsize,age,Sum(gold)");
        assert_eq!(lines[1], "Australia,3,1,52");
    }
}
