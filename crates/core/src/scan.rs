//! The modified TableScan and per-chunk predicate compilation (§4.3).
//!
//! COHANA extends the standard columnar TableScan with `GetNextUser` and
//! `SkipCurUser`. Over the RLE user column this is simply iterating the
//! `(u, f, n)` triples ([`ChunkScan::next_user`]) and *not* touching the
//! rows of a skipped user — no file pointers need to move because the
//! bit-packed columns are randomly addressable.
//!
//! Predicates are compiled once per chunk into [`CompiledExpr`]s that
//! operate directly on compressed codes:
//!
//! * string equality/ordering is translated to integer comparisons on
//!   **global ids** (dictionary order equals value order);
//! * literals are resolved through the global dictionary *rank*, so a
//!   literal absent from the dictionary still compares correctly;
//! * integer columns decode as `chunk_min + delta` — one add per access;
//! * `Birth(A)` terms read the same columns at the user's birth row;
//! * `AGE` reads the pre-computed age of the current tuple.

use crate::error::EngineError;
use crate::expr::{CmpOp, Expr};
use cohana_activity::{Schema, Value, ValueType};
use cohana_storage::rle::UserRun;
use cohana_storage::{Chunk, TableMeta};

/// Evaluation context for one tuple of one user block.
#[derive(Debug, Clone, Copy)]
pub struct EvalCtx {
    /// Row index of the current tuple within the chunk.
    pub row: usize,
    /// Row index of the user's birth tuple within the chunk.
    pub birth_row: usize,
    /// Age of the current tuple in normalized units (0 for the birth tuple).
    pub age_units: i64,
}

/// Scan over one chunk with the two cohort extensions.
pub struct ChunkScan<'a> {
    chunk: &'a Chunk,
    /// Chunk code of the birth action in this chunk's action dictionary
    /// (`None` means no tuple in this chunk performs the birth action).
    birth_action_code: Option<u64>,
    action_idx: usize,
    time_idx: usize,
    next_run: usize,
}

impl<'a> ChunkScan<'a> {
    /// Open a scan. `birth_action_gid` is the global id of the birth action
    /// (`None` if the action occurs nowhere in the table).
    pub fn open(table: &'a TableMeta, chunk: &'a Chunk, birth_action_gid: Option<u32>) -> Self {
        let schema = table.schema();
        let action_idx = schema.action_idx();
        let birth_action_code = birth_action_gid.and_then(|gid| {
            chunk
                .column_required(action_idx)
                .dict()
                .expect("action column is dictionary-encoded")
                .find(gid)
                .map(|c| c as u64)
        });
        ChunkScan { chunk, birth_action_code, action_idx, time_idx: schema.time_idx(), next_run: 0 }
    }

    /// Whether any tuple in the chunk performs the birth action. When false
    /// the executor can skip the chunk entirely (two-level dictionary
    /// pruning, §4.1).
    pub fn chunk_has_birth_action(&self) -> bool {
        self.birth_action_code.is_some()
    }

    /// `GetNextUser()`: the next user's block of activity tuples. Not
    /// reading the previous user's remaining tuples *is* `SkipCurUser()` —
    /// random access makes skipping free.
    pub fn next_user(&mut self) -> Option<UserRun> {
        if self.next_run >= self.chunk.user_rle().num_users() {
            return None;
        }
        let run = self.chunk.user_rle().run(self.next_run);
        self.next_run += 1;
        Some(run)
    }

    /// Reset to the first user (used by multi-pass ablations).
    pub fn rewind(&mut self) {
        self.next_run = 0;
    }

    /// `GetBirthTuple`: find the row of the user's birth activity tuple —
    /// the first tuple of the block whose action is the birth action —
    /// exploiting the time-ordering property (Algorithm 1, lines 1–5).
    pub fn find_birth_row(&self, run: &UserRun) -> Option<usize> {
        let code = self.birth_action_code?;
        let col = self.chunk.column_required(self.action_idx);
        let start = run.first as usize;
        let end = start + run.count as usize;
        (start..end).find(|&row| col.code(row) == code)
    }

    /// Timestamp (seconds) of a row.
    #[inline]
    pub fn time_at(&self, row: usize) -> i64 {
        self.chunk.column_required(self.time_idx).int_value(row)
    }

    /// The underlying chunk.
    #[inline]
    pub fn chunk(&self) -> &'a Chunk {
        self.chunk
    }
}

/// A scalar operand of a compiled comparison, yielding an `i64`.
///
/// Strings evaluate to their global dictionary ids, whose order matches
/// value order.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// Global id of a string attribute at the current row.
    GidAttr(usize),
    /// Global id of a string attribute at the birth row.
    GidBirth(usize),
    /// Integer attribute at the current row.
    IntAttr(usize),
    /// Integer attribute at the birth row.
    IntBirth(usize),
    /// The tuple's age in normalized units.
    Age,
    /// A constant.
    Const(i64),
}

impl Scalar {
    #[inline]
    fn eval(&self, chunk: &Chunk, ctx: &EvalCtx) -> i64 {
        match self {
            Scalar::GidAttr(idx) => chunk.column_required(*idx).gid_at(ctx.row) as i64,
            Scalar::GidBirth(idx) => chunk.column_required(*idx).gid_at(ctx.birth_row) as i64,
            Scalar::IntAttr(idx) => chunk.column_required(*idx).int_value(ctx.row),
            Scalar::IntBirth(idx) => chunk.column_required(*idx).int_value(ctx.birth_row),
            Scalar::Age => ctx.age_units,
            Scalar::Const(v) => *v,
        }
    }
}

/// A predicate compiled against one chunk.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledExpr {
    /// Constant outcome (e.g. equality with a value absent from the global
    /// dictionary).
    Const(bool),
    /// Integer comparison of two scalars.
    Cmp(CmpOp, Scalar, Scalar),
    /// Conjunction.
    And(Box<CompiledExpr>, Box<CompiledExpr>),
    /// Disjunction.
    Or(Box<CompiledExpr>, Box<CompiledExpr>),
    /// Negation.
    Not(Box<CompiledExpr>),
    /// Sorted-set membership.
    InSet(Scalar, Vec<i64>),
}

impl CompiledExpr {
    /// Evaluate for one tuple.
    #[inline]
    pub fn eval(&self, chunk: &Chunk, ctx: &EvalCtx) -> bool {
        match self {
            CompiledExpr::Const(b) => *b,
            CompiledExpr::Cmp(op, a, b) => op.test(a.eval(chunk, ctx).cmp(&b.eval(chunk, ctx))),
            CompiledExpr::And(a, b) => a.eval(chunk, ctx) && b.eval(chunk, ctx),
            CompiledExpr::Or(a, b) => a.eval(chunk, ctx) || b.eval(chunk, ctx),
            CompiledExpr::Not(a) => !a.eval(chunk, ctx),
            CompiledExpr::InSet(s, set) => set.binary_search(&s.eval(chunk, ctx)).is_ok(),
        }
    }

    /// Whether the predicate is the constant `false` (lets the executor
    /// skip whole chunks or users without per-tuple work).
    pub fn is_const_false(&self) -> bool {
        matches!(self, CompiledExpr::Const(false))
    }
}

/// Compile an [`Expr`] against the table's global dictionaries. The result
/// is chunk-independent (global ids are table-global); only the evaluation
/// touches chunk data.
pub fn compile_predicate(
    expr: &Expr,
    schema: &Schema,
    table: &TableMeta,
) -> Result<CompiledExpr, EngineError> {
    match expr {
        Expr::And(a, b) => Ok(CompiledExpr::And(
            Box::new(compile_predicate(a, schema, table)?),
            Box::new(compile_predicate(b, schema, table)?),
        )),
        Expr::Or(a, b) => Ok(CompiledExpr::Or(
            Box::new(compile_predicate(a, schema, table)?),
            Box::new(compile_predicate(b, schema, table)?),
        )),
        Expr::Not(a) => Ok(CompiledExpr::Not(Box::new(compile_predicate(a, schema, table)?))),
        Expr::Cmp(op, a, b) => compile_cmp(*op, a, b, schema, table),
        Expr::Between(a, lo, hi) => {
            let ge = Expr::Cmp(CmpOp::Ge, a.clone(), Box::new(Expr::Lit(lo.clone())));
            let le = Expr::Cmp(CmpOp::Le, a.clone(), Box::new(Expr::Lit(hi.clone())));
            Ok(CompiledExpr::And(
                Box::new(compile_predicate(&ge, schema, table)?),
                Box::new(compile_predicate(&le, schema, table)?),
            ))
        }
        Expr::InList(a, values) => {
            let (scalar, vtype) = compile_scalar(a, schema)?;
            let mut set = Vec::with_capacity(values.len());
            for v in values {
                match (vtype, v) {
                    (ValueType::Int, Value::Int(i)) => set.push(*i),
                    (ValueType::Str, Value::Str(s)) => {
                        let attr_idx = scalar_attr_idx(&scalar)
                            .ok_or_else(|| EngineError::TypeError(format!("IN on {a}")))?;
                        // Absent values simply never match.
                        if let Some(gid) = table.lookup_gid(attr_idx, s) {
                            set.push(gid as i64);
                        }
                    }
                    _ => {
                        return Err(EngineError::TypeError(format!(
                            "IN list value {v} does not match operand type"
                        )))
                    }
                }
            }
            set.sort_unstable();
            set.dedup();
            if set.is_empty() {
                return Ok(CompiledExpr::Const(false));
            }
            Ok(CompiledExpr::InSet(scalar, set))
        }
        other => Err(EngineError::TypeError(format!("`{other}` is not a boolean predicate"))),
    }
}

fn scalar_attr_idx(s: &Scalar) -> Option<usize> {
    match s {
        Scalar::GidAttr(i) | Scalar::GidBirth(i) | Scalar::IntAttr(i) | Scalar::IntBirth(i) => {
            Some(*i)
        }
        _ => None,
    }
}

/// Compile a scalar term, returning its runtime representation and type.
fn compile_scalar(expr: &Expr, schema: &Schema) -> Result<(Scalar, ValueType), EngineError> {
    match expr {
        Expr::Attr(name) => {
            let idx = schema.require(name)?;
            match schema.attribute(idx).vtype {
                ValueType::Str => Ok((Scalar::GidAttr(idx), ValueType::Str)),
                ValueType::Int => Ok((Scalar::IntAttr(idx), ValueType::Int)),
            }
        }
        Expr::Birth(name) => {
            let idx = schema.require(name)?;
            match schema.attribute(idx).vtype {
                ValueType::Str => Ok((Scalar::GidBirth(idx), ValueType::Str)),
                ValueType::Int => Ok((Scalar::IntBirth(idx), ValueType::Int)),
            }
        }
        Expr::Age => Ok((Scalar::Age, ValueType::Int)),
        Expr::Lit(Value::Int(v)) => Ok((Scalar::Const(*v), ValueType::Int)),
        other => Err(EngineError::TypeError(format!("`{other}` is not a scalar term"))),
    }
}

fn compile_cmp(
    op: CmpOp,
    lhs: &Expr,
    rhs: &Expr,
    schema: &Schema,
    table: &TableMeta,
) -> Result<CompiledExpr, EngineError> {
    // Normalize literal-on-the-left by flipping the comparison.
    if matches!(lhs, Expr::Lit(_)) && !matches!(rhs, Expr::Lit(_)) {
        let flipped = match op {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        };
        return compile_cmp(flipped, rhs, lhs, schema, table);
    }

    match rhs {
        // column <op> string-literal: translate through the global
        // dictionary rank so absent literals still order correctly.
        Expr::Lit(Value::Str(s)) => {
            let (scalar, vtype) = compile_scalar(lhs, schema)?;
            if vtype != ValueType::Str {
                return Err(EngineError::TypeError(format!(
                    "comparing integer term with string literal \"{s}\""
                )));
            }
            let attr_idx = scalar_attr_idx(&scalar)
                .ok_or_else(|| EngineError::TypeError("string literal vs AGE".into()))?;
            let dict = table
                .global_dict(attr_idx)
                .ok_or_else(|| EngineError::TypeError("expected dictionary column".into()))?;
            let present = dict.lookup(s);
            let rank = dict.rank(s) as i64;
            Ok(match (op, present) {
                (CmpOp::Eq, Some(gid)) => {
                    CompiledExpr::Cmp(CmpOp::Eq, scalar, Scalar::Const(gid as i64))
                }
                (CmpOp::Eq, None) => CompiledExpr::Const(false),
                (CmpOp::Ne, Some(gid)) => {
                    CompiledExpr::Cmp(CmpOp::Ne, scalar, Scalar::Const(gid as i64))
                }
                (CmpOp::Ne, None) => CompiledExpr::Const(true),
                // gid < rank(v) <=> value < v ; see GlobalDict::rank.
                (CmpOp::Lt, _) => CompiledExpr::Cmp(CmpOp::Lt, scalar, Scalar::Const(rank)),
                (CmpOp::Ge, _) => CompiledExpr::Cmp(CmpOp::Ge, scalar, Scalar::Const(rank)),
                (CmpOp::Le, Some(gid)) => {
                    CompiledExpr::Cmp(CmpOp::Le, scalar, Scalar::Const(gid as i64))
                }
                (CmpOp::Le, None) => CompiledExpr::Cmp(CmpOp::Lt, scalar, Scalar::Const(rank)),
                (CmpOp::Gt, Some(gid)) => {
                    CompiledExpr::Cmp(CmpOp::Gt, scalar, Scalar::Const(gid as i64))
                }
                (CmpOp::Gt, None) => CompiledExpr::Cmp(CmpOp::Ge, scalar, Scalar::Const(rank)),
            })
        }
        _ => {
            let (ls, lt) = compile_scalar(lhs, schema)?;
            let (rs, rt) = compile_scalar(rhs, schema)?;
            if lt != rt {
                return Err(EngineError::TypeError(format!(
                    "comparing {} with {}",
                    lt.name(),
                    rt.name()
                )));
            }
            // Str vs Str compares global ids; dictionary order equals value
            // order, so every comparison operator is preserved.
            Ok(CompiledExpr::Cmp(op, ls, rs))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohana_activity::{generate, GeneratorConfig, Timestamp};
    use cohana_storage::{CompressedTable, CompressionOptions};

    fn setup() -> (cohana_activity::ActivityTable, CompressedTable) {
        let t = generate(&GeneratorConfig::small());
        let c = CompressedTable::build(&t, CompressionOptions::with_chunk_size(200)).unwrap();
        (t, c)
    }

    #[test]
    fn next_user_visits_every_user_once() {
        let (t, c) = setup();
        let gid = c.lookup_gid(t.schema().action_idx(), "launch");
        let mut total = 0usize;
        for chunk in c.chunks() {
            let mut scan = ChunkScan::open(c.table_meta(), chunk, gid);
            while let Some(run) = scan.next_user() {
                assert!(run.count > 0);
                total += 1;
            }
        }
        assert_eq!(total, t.num_users());
    }

    #[test]
    fn find_birth_row_is_first_matching_action() {
        let (t, c) = setup();
        let aidx = t.schema().action_idx();
        let gid = c.lookup_gid(aidx, "launch");
        for chunk in c.chunks() {
            let mut scan = ChunkScan::open(c.table_meta(), chunk, gid);
            while let Some(run) = scan.next_user() {
                // Every user's first action is launch, so the birth row is
                // the first row of the block.
                assert_eq!(scan.find_birth_row(&run), Some(run.first as usize));
            }
        }
    }

    #[test]
    fn find_birth_row_none_for_missing_action() {
        let (t, c) = setup();
        let gid = c.lookup_gid(t.schema().action_idx(), "no-such-action");
        assert_eq!(gid, None);
        for chunk in c.chunks() {
            let mut scan = ChunkScan::open(c.table_meta(), chunk, gid);
            assert!(!scan.chunk_has_birth_action());
            while let Some(run) = scan.next_user() {
                assert_eq!(scan.find_birth_row(&run), None);
            }
        }
    }

    #[test]
    fn compiled_string_equality_matches_decoded() {
        let (t, c) = setup();
        let schema = t.schema();
        let e = Expr::attr("action").eq(Expr::lit_str("shop"));
        let compiled = compile_predicate(&e, schema, c.table_meta()).unwrap();
        let aidx = schema.action_idx();
        for (ci, chunk) in c.chunks().iter().enumerate() {
            for row in 0..chunk.num_rows() {
                let ctx = EvalCtx { row, birth_row: row, age_units: 0 };
                let expect = c.decode_value(ci, row, aidx).as_str() == Some("shop");
                assert_eq!(compiled.eval(chunk, &ctx), expect);
            }
        }
    }

    #[test]
    fn compiled_absent_literal() {
        let (t, c) = setup();
        let schema = t.schema();
        let eq = compile_predicate(
            &Expr::attr("action").eq(Expr::lit_str("zzz-nope")),
            schema,
            c.table_meta(),
        )
        .unwrap();
        assert!(eq.is_const_false());
        let ne = compile_predicate(
            &Expr::attr("action").ne(Expr::lit_str("zzz-nope")),
            schema,
            c.table_meta(),
        )
        .unwrap();
        assert_eq!(ne, CompiledExpr::Const(true));
    }

    #[test]
    fn compiled_string_ordering_with_absent_literal() {
        let (t, c) = setup();
        let schema = t.schema();
        // "m" sits between action names; compare against decoded strings.
        let e = Expr::attr("action").lt(Expr::lit_str("m"));
        let compiled = compile_predicate(&e, schema, c.table_meta()).unwrap();
        let aidx = schema.action_idx();
        for (ci, chunk) in c.chunks().iter().enumerate() {
            for row in 0..chunk.num_rows().min(50) {
                let ctx = EvalCtx { row, birth_row: row, age_units: 0 };
                let decoded = c.decode_value(ci, row, aidx);
                let expect = decoded.as_str().unwrap() < "m";
                assert_eq!(compiled.eval(chunk, &ctx), expect, "row {row}: {decoded}");
            }
        }
    }

    #[test]
    fn compiled_time_between() {
        let (t, c) = setup();
        let schema = t.schema();
        let lo = Timestamp::parse("2013-05-21").unwrap().secs();
        let hi = Timestamp::parse("2013-05-27").unwrap().secs();
        let e = Expr::attr("time").between_int(lo, hi);
        let compiled = compile_predicate(&e, schema, c.table_meta()).unwrap();
        let tidx = schema.time_idx();
        for (ci, chunk) in c.chunks().iter().enumerate() {
            for row in 0..chunk.num_rows().min(50) {
                let ctx = EvalCtx { row, birth_row: row, age_units: 0 };
                let v = c.decode_value(ci, row, tidx).as_int().unwrap();
                assert_eq!(compiled.eval(chunk, &ctx), (lo..=hi).contains(&v));
            }
        }
    }

    #[test]
    fn compiled_birth_reference_and_age() {
        let (t, c) = setup();
        let schema = t.schema();
        let e =
            Expr::attr("country").eq(Expr::birth("country")).and(Expr::age().lt(Expr::lit_int(7)));
        let compiled = compile_predicate(&e, schema, c.table_meta()).unwrap();
        let chunk = &c.chunks()[0];
        // Same row as its own birth: country trivially equal; age gate decides.
        let ctx = EvalCtx { row: 0, birth_row: 0, age_units: 3 };
        assert!(compiled.eval(chunk, &ctx));
        let ctx = EvalCtx { row: 0, birth_row: 0, age_units: 9 };
        assert!(!compiled.eval(chunk, &ctx));
    }

    #[test]
    fn compiled_in_list_strings() {
        let (t, c) = setup();
        let schema = t.schema();
        let e = Expr::attr("country").in_list([
            Value::str("China"),
            Value::str("Australia"),
            Value::str("Atlantis"), // absent: ignored
        ]);
        let compiled = compile_predicate(&e, schema, c.table_meta()).unwrap();
        let cidx = schema.index_of("country").unwrap();
        for (ci, chunk) in c.chunks().iter().enumerate() {
            for row in 0..chunk.num_rows().min(80) {
                let ctx = EvalCtx { row, birth_row: row, age_units: 0 };
                let v = c.decode_value(ci, row, cidx);
                let expect = matches!(v.as_str(), Some("China") | Some("Australia"));
                assert_eq!(compiled.eval(chunk, &ctx), expect);
            }
        }
    }

    #[test]
    fn rewind_restarts_user_iteration() {
        let (t, c) = setup();
        let gid = c.lookup_gid(t.schema().action_idx(), "launch");
        let chunk = &c.chunks()[0];
        let mut scan = ChunkScan::open(c.table_meta(), chunk, gid);
        let first_pass: Vec<u32> =
            std::iter::from_fn(|| scan.next_user().map(|r| r.user_gid)).collect();
        assert!(!first_pass.is_empty());
        assert!(scan.next_user().is_none());
        scan.rewind();
        let second_pass: Vec<u32> =
            std::iter::from_fn(|| scan.next_user().map(|r| r.user_gid)).collect();
        assert_eq!(first_pass, second_pass);
    }

    #[test]
    fn compile_rejects_type_confusion() {
        let (t, c) = setup();
        let schema = t.schema();
        assert!(compile_predicate(
            &Expr::attr("gold").eq(Expr::lit_str("dwarf")),
            schema,
            c.table_meta()
        )
        .is_err());
        assert!(compile_predicate(&Expr::attr("role"), schema, c.table_meta()).is_err());
        assert!(compile_predicate(
            &Expr::attr("role").eq(Expr::attr("gold")),
            schema,
            c.table_meta()
        )
        .is_err());
    }
}
