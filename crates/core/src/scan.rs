//! The modified TableScan and per-chunk predicate compilation (§4.3).
//!
//! COHANA extends the standard columnar TableScan with `GetNextUser` and
//! `SkipCurUser`. Over the RLE user column this is simply iterating the
//! `(u, f, n)` triples ([`ChunkScan::next_user`]) and *not* touching the
//! rows of a skipped user — no file pointers need to move because the
//! bit-packed columns are randomly addressable.
//!
//! Predicates are compiled in two stages. [`compile_predicate`] runs once
//! per statement, translating values through the **global** dictionaries:
//!
//! * string equality/ordering is translated to integer comparisons on
//!   **global ids** (dictionary order equals value order);
//! * literals are resolved through the global dictionary *rank*, so a
//!   literal absent from the dictionary still compares correctly;
//! * integer columns decode as `chunk_min + delta` — one add per access;
//! * `Birth(A)` terms read the same columns at the user's birth row;
//! * `AGE` reads the pre-computed age of the current tuple.
//!
//! [`CompiledExpr::specialize`] then runs once per **chunk**, the paper's
//! "compile once per chunk" claim made literal: terms are const-folded
//! against the chunk's integer ranges and chunk-dictionary membership (a
//! `time BETWEEN` wholly containing the chunk's range becomes
//! `Const(true)`; a gid absent from the chunk dictionary becomes
//! `Const(false)`), and surviving gid comparisons are rewritten to **raw
//! chunk-code** comparisons — valid because each chunk dictionary is sorted
//! by gid, so code order equals gid order equals value order. Evaluation
//! reads columns through pre-resolved [`ChunkCursors`], never re-matching
//! the column enum per tuple.

use crate::error::EngineError;
use crate::expr::{CmpOp, Expr};
use cohana_activity::{Schema, Value, ValueType};
use cohana_storage::bitpack::BitPacked;
use cohana_storage::rle::UserRun;
use cohana_storage::{Chunk, ChunkCursors, ChunkDict, TableMeta};

/// Evaluation context for one tuple of one user block.
#[derive(Debug, Clone, Copy)]
pub struct EvalCtx {
    /// Row index of the current tuple within the chunk.
    pub row: usize,
    /// Row index of the user's birth tuple within the chunk.
    pub birth_row: usize,
    /// Age of the current tuple in normalized units (0 for the birth tuple).
    pub age_units: i64,
}

/// Scan over one chunk with the two cohort extensions. Opening resolves the
/// action and time columns into cursors once; every subsequent access is a
/// packed-word read with no column lookup.
#[derive(Debug)]
pub struct ChunkScan<'a> {
    chunk: &'a Chunk,
    /// Chunk code of the birth action in this chunk's action dictionary
    /// (`None` means no tuple in this chunk performs the birth action).
    birth_action_code: Option<u64>,
    /// Packed per-row action chunk-codes.
    action_codes: &'a BitPacked,
    /// Chunk minimum of the time column.
    time_min: i64,
    /// Packed per-row time deltas from `time_min`.
    time_deltas: &'a BitPacked,
    next_run: usize,
}

impl<'a> ChunkScan<'a> {
    /// Open a scan. `birth_action_gid` is the global id of the birth action
    /// (`None` if the action occurs nowhere in the table). Returns
    /// [`EngineError::Corrupt`] when the chunk's action column is not
    /// dictionary-encoded or its time column is not an integer segment —
    /// format invariants every valid file upholds.
    pub fn open(
        table: &'a TableMeta,
        chunk: &'a Chunk,
        birth_action_gid: Option<u32>,
    ) -> Result<Self, EngineError> {
        let schema = table.schema();
        let action_idx = schema.action_idx();
        let time_idx = schema.time_idx();
        let action_col = chunk.column(action_idx).ok_or_else(|| {
            EngineError::Corrupt("action column has no materialized segment".into())
        })?;
        let action_dict = action_col.dict().ok_or_else(|| {
            EngineError::Corrupt(
                "action column decodes as an integer segment; the format guarantees a \
                 dictionary-encoded action column"
                    .into(),
            )
        })?;
        let time_col = chunk.column(time_idx).ok_or_else(|| {
            EngineError::Corrupt("time column has no materialized segment".into())
        })?;
        let (time_min, _) = time_col.int_range().ok_or_else(|| {
            EngineError::Corrupt(
                "time column decodes as a string segment; the format guarantees an integer time \
                 column"
                    .into(),
            )
        })?;
        let birth_action_code =
            birth_action_gid.and_then(|gid| action_dict.find(gid).map(|c| c as u64));
        Ok(ChunkScan {
            chunk,
            birth_action_code,
            action_codes: action_col.packed(),
            time_min,
            time_deltas: time_col.packed(),
            next_run: 0,
        })
    }

    /// Whether any tuple in the chunk performs the birth action. When false
    /// the executor can skip the chunk entirely (two-level dictionary
    /// pruning, §4.1).
    pub fn chunk_has_birth_action(&self) -> bool {
        self.birth_action_code.is_some()
    }

    /// `GetNextUser()`: the next user's block of activity tuples. Not
    /// reading the previous user's remaining tuples *is* `SkipCurUser()` —
    /// random access makes skipping free.
    pub fn next_user(&mut self) -> Option<UserRun> {
        if self.next_run >= self.chunk.user_rle().num_users() {
            return None;
        }
        let run = self.chunk.user_rle().run(self.next_run);
        self.next_run += 1;
        Some(run)
    }

    /// Reset to the first user (used by multi-pass ablations).
    pub fn rewind(&mut self) {
        self.next_run = 0;
    }

    /// `GetBirthTuple`: find the row of the user's birth activity tuple —
    /// the first tuple of the block whose action is the birth action —
    /// exploiting the time-ordering property (Algorithm 1, lines 1–5).
    ///
    /// The birth-action chunk code was resolved **once** at scan open;
    /// scanning goes through [`BitPacked::find_first`], which walks packed
    /// words with a running shift instead of re-dividing the index per
    /// element — a win on the scalar path too.
    pub fn find_birth_row(&self, run: &UserRun) -> Option<usize> {
        let code = self.birth_action_code?;
        let start = run.first as usize;
        self.action_codes.find_first(start, start + run.count as usize, code)
    }

    /// Batch `GetBirthTuple` for all users of one morsel: the birth-action
    /// code is resolved once, then each run is searched with the
    /// word-walking early-exit scan ([`BitPacked::find_first`]). The
    /// time-ordering property puts a qualified user's birth at (or near)
    /// the front of their block, so the search typically touches a single
    /// packed word per user — which is why early exit beats block-decoding
    /// the morsel's whole action column and searching the decoded slice.
    /// `out` receives one entry per run, parallel to `runs`.
    pub fn find_birth_rows_batch(&self, runs: &[UserRun], out: &mut Vec<Option<usize>>) {
        out.clear();
        if self.birth_action_code.is_none() {
            out.resize(runs.len(), None);
            return;
        }
        for run in runs {
            out.push(self.find_birth_row(run));
        }
    }

    /// Timestamp (seconds) of a row.
    #[inline]
    pub fn time_at(&self, row: usize) -> i64 {
        self.time_min + self.time_deltas.get(row) as i64
    }

    /// Chunk minimum of the time column (`time == time_min + delta`).
    #[inline]
    pub fn time_min(&self) -> i64 {
        self.time_min
    }

    /// The packed per-row time deltas, for block decode via
    /// [`BitPacked::unpack_range`].
    #[inline]
    pub fn time_deltas(&self) -> &'a BitPacked {
        self.time_deltas
    }

    /// The underlying chunk.
    #[inline]
    pub fn chunk(&self) -> &'a Chunk {
        self.chunk
    }
}

/// A scalar operand of a compiled comparison, yielding an `i64`.
///
/// Strings evaluate to their global dictionary ids, whose order matches
/// value order. The `Code*` forms exist only in chunk-specialized
/// predicates (see [`CompiledExpr::specialize`]): they read the **raw chunk
/// code** without the code→gid translation, valid because the chunk
/// dictionary is sorted by gid.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// Global id of a string attribute at the current row.
    GidAttr(usize),
    /// Global id of a string attribute at the birth row.
    GidBirth(usize),
    /// Integer attribute at the current row.
    IntAttr(usize),
    /// Integer attribute at the birth row.
    IntBirth(usize),
    /// Raw chunk code of a string attribute at the current row
    /// (specialized form).
    CodeAttr(usize),
    /// Raw chunk code of a string attribute at the birth row
    /// (specialized form).
    CodeBirth(usize),
    /// The tuple's age in normalized units.
    Age,
    /// A constant.
    Const(i64),
    /// Raw chunk code of slot `s` of a block-decoded buffer set at the
    /// current row (block-bound form, see [`CompiledExpr::bind_slots`]).
    /// Only valid under [`CompiledExpr::eval_slots`].
    CodeSlot(usize),
    /// Integer attribute served as `min + raw` from slot `s` of a
    /// block-decoded buffer set (block-bound form).
    IntSlot(usize, i64),
}

impl Scalar {
    #[inline]
    fn eval(&self, cur: &ChunkCursors<'_>, ctx: &EvalCtx) -> i64 {
        match self {
            Scalar::GidAttr(idx) => cur.gid(*idx, ctx.row) as i64,
            Scalar::GidBirth(idx) => cur.gid(*idx, ctx.birth_row) as i64,
            Scalar::IntAttr(idx) => cur.int(*idx, ctx.row),
            Scalar::IntBirth(idx) => cur.int(*idx, ctx.birth_row),
            Scalar::CodeAttr(idx) => cur.code(*idx, ctx.row) as i64,
            Scalar::CodeBirth(idx) => cur.code(*idx, ctx.birth_row) as i64,
            Scalar::Age => ctx.age_units,
            Scalar::Const(v) => *v,
            Scalar::CodeSlot(_) | Scalar::IntSlot(..) => {
                unreachable!("slot-bound scalar evaluated without block buffers")
            }
        }
    }

    /// Evaluate under block-decoded buffers: slot scalars read offset `off`
    /// of their buffer, everything else falls back to the row path.
    #[inline]
    fn eval_slots(
        &self,
        cur: &ChunkCursors<'_>,
        ctx: &EvalCtx,
        bufs: &[Vec<u64>],
        off: usize,
    ) -> i64 {
        match self {
            Scalar::CodeSlot(s) => bufs[*s][off] as i64,
            Scalar::IntSlot(s, min) => min + bufs[*s][off] as i64,
            other => other.eval(cur, ctx),
        }
    }

    /// The attribute index this scalar reads, with the birth/current flag
    /// (`None` for `Age`, constants, and already-bound slot forms).
    fn column(&self) -> Option<(usize, bool)> {
        match self {
            Scalar::GidAttr(i) | Scalar::IntAttr(i) | Scalar::CodeAttr(i) => Some((*i, false)),
            Scalar::GidBirth(i) | Scalar::IntBirth(i) | Scalar::CodeBirth(i) => Some((*i, true)),
            Scalar::Age | Scalar::Const(_) | Scalar::CodeSlot(_) | Scalar::IntSlot(..) => None,
        }
    }
}

/// Rewrite a current-row column scalar to its slot-bound form, registering
/// the column in `cols` (deduplicated). Birth-row scalars, `Age`, and
/// constants pass through; `GidAttr` (a dictionary column the chunk holds
/// no dictionary for, so specialization could not rewrite it to codes)
/// aborts binding — the caller stays on the row path.
fn bind_scalar(s: &Scalar, cur: &ChunkCursors<'_>, cols: &mut Vec<usize>) -> Option<Scalar> {
    let mut slot = |idx: usize| match cols.iter().position(|c| *c == idx) {
        Some(s) => s,
        None => {
            cols.push(idx);
            cols.len() - 1
        }
    };
    match s {
        Scalar::CodeAttr(i) => Some(Scalar::CodeSlot(slot(*i))),
        Scalar::IntAttr(i) => Some(Scalar::IntSlot(slot(*i), cur.int_min(*i))),
        Scalar::GidAttr(_) => None,
        other => Some(other.clone()),
    }
}

/// A predicate compiled against the table's global dictionaries, and —
/// after [`CompiledExpr::specialize`] — against one chunk's.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledExpr {
    /// Constant outcome (e.g. equality with a value absent from the global
    /// dictionary).
    Const(bool),
    /// Integer comparison of two scalars.
    Cmp(CmpOp, Scalar, Scalar),
    /// Conjunction.
    And(Box<CompiledExpr>, Box<CompiledExpr>),
    /// Disjunction.
    Or(Box<CompiledExpr>, Box<CompiledExpr>),
    /// Negation.
    Not(Box<CompiledExpr>),
    /// Sorted-set membership.
    InSet(Scalar, Vec<i64>),
}

impl CompiledExpr {
    /// Evaluate for one tuple, reading columns through pre-resolved
    /// cursors.
    #[inline]
    pub fn eval(&self, cur: &ChunkCursors<'_>, ctx: &EvalCtx) -> bool {
        match self {
            CompiledExpr::Const(b) => *b,
            CompiledExpr::Cmp(op, a, b) => op.test(a.eval(cur, ctx).cmp(&b.eval(cur, ctx))),
            CompiledExpr::And(a, b) => a.eval(cur, ctx) && b.eval(cur, ctx),
            CompiledExpr::Or(a, b) => a.eval(cur, ctx) || b.eval(cur, ctx),
            CompiledExpr::Not(a) => !a.eval(cur, ctx),
            CompiledExpr::InSet(s, set) => set.binary_search(&s.eval(cur, ctx)).is_ok(),
        }
    }

    /// Whether the predicate is the constant `false` (lets the executor
    /// skip whole chunks or users without per-tuple work).
    pub fn is_const_false(&self) -> bool {
        matches!(self, CompiledExpr::Const(false))
    }

    /// Bind every current-row column read to a slot of a block-decoded
    /// buffer set (the executor decodes each registered column once per
    /// user block through `BitPacked::unpack_range` — the SIMD lane path
    /// when compiled in — instead of random-accessing packed bits per
    /// row). Returns `None` when the predicate holds a current-row scalar
    /// that cannot be served from raw decoded words (`GidAttr` on a
    /// dictionary-less chunk column); the caller then stays on the
    /// per-row [`CompiledExpr::eval`] path.
    pub fn bind_slots(
        &self,
        cur: &ChunkCursors<'_>,
        cols: &mut Vec<usize>,
    ) -> Option<CompiledExpr> {
        match self {
            CompiledExpr::Const(b) => Some(CompiledExpr::Const(*b)),
            CompiledExpr::Cmp(op, a, b) => {
                Some(CompiledExpr::Cmp(*op, bind_scalar(a, cur, cols)?, bind_scalar(b, cur, cols)?))
            }
            CompiledExpr::And(a, b) => Some(CompiledExpr::And(
                Box::new(a.bind_slots(cur, cols)?),
                Box::new(b.bind_slots(cur, cols)?),
            )),
            CompiledExpr::Or(a, b) => Some(CompiledExpr::Or(
                Box::new(a.bind_slots(cur, cols)?),
                Box::new(b.bind_slots(cur, cols)?),
            )),
            CompiledExpr::Not(a) => Some(CompiledExpr::Not(Box::new(a.bind_slots(cur, cols)?))),
            CompiledExpr::InSet(s, set) => {
                Some(CompiledExpr::InSet(bind_scalar(s, cur, cols)?, set.clone()))
            }
        }
    }

    /// Evaluate a slot-bound predicate (see [`CompiledExpr::bind_slots`])
    /// for the tuple at buffer offset `off`; `bufs` holds the decoded
    /// columns in registration order. Birth-row and `Age` terms still read
    /// through `cur` / `ctx`.
    #[inline]
    pub fn eval_slots(
        &self,
        cur: &ChunkCursors<'_>,
        ctx: &EvalCtx,
        bufs: &[Vec<u64>],
        off: usize,
    ) -> bool {
        match self {
            CompiledExpr::Const(b) => *b,
            CompiledExpr::Cmp(op, a, b) => {
                op.test(a.eval_slots(cur, ctx, bufs, off).cmp(&b.eval_slots(cur, ctx, bufs, off)))
            }
            CompiledExpr::And(a, b) => {
                a.eval_slots(cur, ctx, bufs, off) && b.eval_slots(cur, ctx, bufs, off)
            }
            CompiledExpr::Or(a, b) => {
                a.eval_slots(cur, ctx, bufs, off) || b.eval_slots(cur, ctx, bufs, off)
            }
            CompiledExpr::Not(a) => !a.eval_slots(cur, ctx, bufs, off),
            CompiledExpr::InSet(s, set) => {
                set.binary_search(&s.eval_slots(cur, ctx, bufs, off)).is_ok()
            }
        }
    }

    /// Whether every scalar the predicate reads is constant within one
    /// user block (birth-row reads and literals only — not current-row
    /// slots, not `Age`). Such a predicate has one outcome for the whole
    /// block and is evaluated once per user, not once per tuple.
    fn is_block_invariant(&self) -> bool {
        fn scalar_inv(s: &Scalar) -> bool {
            matches!(
                s,
                Scalar::GidBirth(_) | Scalar::IntBirth(_) | Scalar::CodeBirth(_) | Scalar::Const(_)
            )
        }
        match self {
            CompiledExpr::Const(_) => true,
            CompiledExpr::Cmp(_, a, b) => scalar_inv(a) && scalar_inv(b),
            CompiledExpr::And(a, b) | CompiledExpr::Or(a, b) => {
                a.is_block_invariant() && b.is_block_invariant()
            }
            CompiledExpr::Not(a) => a.is_block_invariant(),
            CompiledExpr::InSet(s, _) => scalar_inv(s),
        }
    }

    /// AND a slot-bound predicate (see [`CompiledExpr::bind_slots`]) into
    /// `mask` over one user block, vectorized where the shape allows:
    ///
    /// * slot-vs-constant comparisons run a branch-free lane loop over the
    ///   decoded buffer (the common §4.3-specialized shape — e.g. Q3's
    ///   `action = 'shop'` is `code == c` by this point);
    /// * conjunctions distribute, AND-ing each side into the mask in turn;
    /// * block-invariant subtrees (birth-row reads, constants) evaluate
    ///   **once per user** and either keep or clear the whole mask;
    /// * anything else falls back to per-offset
    ///   [`CompiledExpr::eval_slots`], guarded by the mask so each tuple is
    ///   tested at most once.
    ///
    /// `mask[i]` corresponds to row `base_row + i`, offset `i` of every
    /// buffer in `bufs`, and age `ages[i]`.
    pub fn and_into_mask(
        &self,
        cur: &ChunkCursors<'_>,
        birth_row: usize,
        base_row: usize,
        bufs: &[Vec<u64>],
        ages: &[i64],
        mask: &mut [bool],
    ) {
        match self {
            CompiledExpr::Const(true) => {}
            CompiledExpr::Const(false) => mask.fill(false),
            CompiledExpr::And(a, b) => {
                a.and_into_mask(cur, birth_row, base_row, bufs, ages, mask);
                b.and_into_mask(cur, birth_row, base_row, bufs, ages, mask);
            }
            CompiledExpr::Cmp(op, Scalar::CodeSlot(s), Scalar::Const(c)) => {
                and_cmp_mask(*op, &bufs[*s], 0, *c, mask);
            }
            CompiledExpr::Cmp(op, Scalar::IntSlot(s, min), Scalar::Const(c)) => {
                and_cmp_mask(*op, &bufs[*s], *min, *c, mask);
            }
            CompiledExpr::Cmp(op, Scalar::Const(c), Scalar::CodeSlot(s)) => {
                and_cmp_mask(op.swapped(), &bufs[*s], 0, *c, mask);
            }
            CompiledExpr::Cmp(op, Scalar::Const(c), Scalar::IntSlot(s, min)) => {
                and_cmp_mask(op.swapped(), &bufs[*s], *min, *c, mask);
            }
            inv if inv.is_block_invariant() => {
                let ctx = EvalCtx { row: birth_row, birth_row, age_units: 0 };
                if !inv.eval(cur, &ctx) {
                    mask.fill(false);
                }
            }
            other => {
                for (i, m) in mask.iter_mut().enumerate() {
                    if *m {
                        let ctx = EvalCtx { row: base_row + i, birth_row, age_units: ages[i] };
                        *m = other.eval_slots(cur, &ctx, bufs, i);
                    }
                }
            }
        }
    }

    /// The §4.3 per-chunk specialization pass: fold terms whose outcome the
    /// chunk metadata already decides and rewrite gid comparisons to raw
    /// chunk-code comparisons.
    ///
    /// * An integer comparison is folded to a constant when the chunk's
    ///   `[min, max]` range puts every row on one side (`time BETWEEN`
    ///   wholly containing the chunk's range becomes `Const(true)`; a
    ///   disjoint range becomes `Const(false)`).
    /// * A gid equality whose value is absent from the chunk dictionary
    ///   becomes `Const(false)`; gid comparisons that survive are rewritten
    ///   to chunk-code comparisons (the chunk dictionary is sorted by gid,
    ///   so code order ≡ gid order ≡ value order), skipping the code→gid
    ///   LUT per tuple.
    /// * `And`/`Or`/`Not` fold through constant sub-terms.
    ///
    /// Every rewrite is row-independent — sound for birth and age
    /// predicates alike, at any row of this chunk (including `Birth(A)`
    /// terms, which read other rows of the *same* chunk).
    pub fn specialize(&self, chunk: &Chunk) -> CompiledExpr {
        match self {
            CompiledExpr::Const(b) => CompiledExpr::Const(*b),
            CompiledExpr::And(a, b) => match (a.specialize(chunk), b.specialize(chunk)) {
                (CompiledExpr::Const(false), _) | (_, CompiledExpr::Const(false)) => {
                    CompiledExpr::Const(false)
                }
                (CompiledExpr::Const(true), x) | (x, CompiledExpr::Const(true)) => x,
                (a, b) => CompiledExpr::And(Box::new(a), Box::new(b)),
            },
            CompiledExpr::Or(a, b) => match (a.specialize(chunk), b.specialize(chunk)) {
                (CompiledExpr::Const(true), _) | (_, CompiledExpr::Const(true)) => {
                    CompiledExpr::Const(true)
                }
                (CompiledExpr::Const(false), x) | (x, CompiledExpr::Const(false)) => x,
                (a, b) => CompiledExpr::Or(Box::new(a), Box::new(b)),
            },
            CompiledExpr::Not(a) => match a.specialize(chunk) {
                CompiledExpr::Const(b) => CompiledExpr::Const(!b),
                x => CompiledExpr::Not(Box::new(x)),
            },
            CompiledExpr::Cmp(op, a, b) => specialize_cmp(*op, a, b, chunk),
            CompiledExpr::InSet(s, set) => specialize_in_set(s, set, chunk),
        }
    }
}

/// Branch-free lane loop ANDing `(min + raw) op c` into `mask`. The
/// operator match is hoisted out of the loop so every arm is a plain
/// compare-and-mask pass the autovectorizer can turn into SIMD compares.
fn and_cmp_mask(op: CmpOp, raw: &[u64], min: i64, c: i64, mask: &mut [bool]) {
    macro_rules! lanes {
        ($cmp:tt) => {
            for (m, &v) in mask.iter_mut().zip(raw) {
                *m &= (min + v as i64) $cmp c;
            }
        };
    }
    match op {
        CmpOp::Eq => lanes!(==),
        CmpOp::Ne => lanes!(!=),
        CmpOp::Lt => lanes!(<),
        CmpOp::Le => lanes!(<=),
        CmpOp::Gt => lanes!(>),
        CmpOp::Ge => lanes!(>=),
    }
}

/// The chunk dictionary of the column a gid scalar reads, if materialized.
fn scalar_chunk_dict<'c>(chunk: &'c Chunk, s: &Scalar) -> Option<&'c ChunkDict> {
    chunk.column(s.column()?.0)?.dict()
}

/// The chunk `[min, max]` of the column an integer scalar reads.
fn scalar_int_range(chunk: &Chunk, s: &Scalar) -> Option<(i64, i64)> {
    chunk.column(s.column()?.0)?.int_range()
}

/// Re-aim a gid scalar at the raw chunk codes of the same column.
fn to_code(s: &Scalar) -> Scalar {
    match s {
        Scalar::GidAttr(i) => Scalar::CodeAttr(*i),
        Scalar::GidBirth(i) => Scalar::CodeBirth(*i),
        other => other.clone(),
    }
}

/// Specialize one comparison against a chunk (see
/// [`CompiledExpr::specialize`]).
fn specialize_cmp(op: CmpOp, a: &Scalar, b: &Scalar, chunk: &Chunk) -> CompiledExpr {
    // Constant vs constant: decide now.
    if let (Scalar::Const(x), Scalar::Const(y)) = (a, b) {
        return CompiledExpr::Const(op.test(x.cmp(y)));
    }

    // gid-column vs constant: translate the gid constant to chunk-code
    // space and compare raw codes.
    if let (Scalar::GidAttr(_) | Scalar::GidBirth(_), Scalar::Const(k)) = (a, b) {
        if let Some(dict) = scalar_chunk_dict(chunk, a) {
            return specialize_gid_const_cmp(op, to_code(a), *k, dict);
        }
    }

    // Same string column at current and birth rows: the shared chunk
    // dictionary's code→gid map is strictly increasing, so comparing codes
    // is comparing gids.
    if let (Scalar::GidAttr(i) | Scalar::GidBirth(i), Scalar::GidAttr(j) | Scalar::GidBirth(j)) =
        (a, b)
    {
        if i == j && chunk.column(*i).is_some_and(|c| c.dict().is_some()) {
            return CompiledExpr::Cmp(op, to_code(a), to_code(b));
        }
    }

    // Integer column vs constant: fold when the chunk range decides the
    // outcome for every row.
    if let (Scalar::IntAttr(_) | Scalar::IntBirth(_), Scalar::Const(k)) = (a, b) {
        if let Some((mn, mx)) = scalar_int_range(chunk, a) {
            if let Some(v) = fold_int_range_cmp(op, mn, mx, *k) {
                return CompiledExpr::Const(v);
            }
        }
    }

    CompiledExpr::Cmp(op, a.clone(), b.clone())
}

/// Decide `value <op> k` from `value ∈ [mn, mx]` when every row agrees;
/// `None` when the chunk straddles the constant.
fn fold_int_range_cmp(op: CmpOp, mn: i64, mx: i64, k: i64) -> Option<bool> {
    match op {
        CmpOp::Lt => (mx < k).then_some(true).or((mn >= k).then_some(false)),
        CmpOp::Le => (mx <= k).then_some(true).or((mn > k).then_some(false)),
        CmpOp::Gt => (mn > k).then_some(true).or((mx <= k).then_some(false)),
        CmpOp::Ge => (mn >= k).then_some(true).or((mx < k).then_some(false)),
        CmpOp::Eq => {
            if k < mn || k > mx {
                Some(false)
            } else {
                (mn == mx).then_some(true)
            }
        }
        CmpOp::Ne => {
            if k < mn || k > mx {
                Some(true)
            } else {
                (mn == mx).then_some(false)
            }
        }
    }
}

/// Rewrite `gid_scalar <op> gid-constant` into chunk-code space.
///
/// `codes_below` = number of chunk-dictionary entries with gid < k, so
/// `gid < k ⟺ code < codes_below` — the chunk-level analogue of
/// [`cohana_storage::GlobalDict::rank`]. Comparisons decided for the whole
/// chunk (every code below / none below) fold to constants.
fn specialize_gid_const_cmp(
    op: CmpOp,
    code_scalar: Scalar,
    k: i64,
    dict: &ChunkDict,
) -> CompiledExpr {
    let gids = dict.global_ids();
    let len = gids.len() as i64;
    let codes_below = gids.partition_point(|&g| (g as i64) < k) as i64;
    let member_code = if k >= 0 && k <= u32::MAX as i64 { dict.find(k as u32) } else { None };
    match op {
        CmpOp::Eq => match member_code {
            // A single-entry chunk dictionary means every row holds k.
            Some(_) if len == 1 => CompiledExpr::Const(true),
            Some(c) => CompiledExpr::Cmp(CmpOp::Eq, code_scalar, Scalar::Const(c as i64)),
            None => CompiledExpr::Const(false),
        },
        CmpOp::Ne => match member_code {
            Some(c) if len == 1 => {
                debug_assert_eq!(c, 0);
                CompiledExpr::Const(false)
            }
            Some(c) => CompiledExpr::Cmp(CmpOp::Ne, code_scalar, Scalar::Const(c as i64)),
            None => CompiledExpr::Const(true),
        },
        // gid < k ⟺ code < codes_below; ≤ k ⟺ < (codes at or below).
        CmpOp::Lt | CmpOp::Ge => {
            let bound = codes_below;
            let fold = match bound {
                0 => Some(false),            // no code is below: `<` never holds
                b if b == len => Some(true), // every code is below
                _ => None,
            };
            match (op, fold) {
                (CmpOp::Lt, Some(v)) => CompiledExpr::Const(v),
                (CmpOp::Ge, Some(v)) => CompiledExpr::Const(!v),
                (CmpOp::Lt, None) => {
                    CompiledExpr::Cmp(CmpOp::Lt, code_scalar, Scalar::Const(bound))
                }
                _ => CompiledExpr::Cmp(CmpOp::Ge, code_scalar, Scalar::Const(bound)),
            }
        }
        CmpOp::Le | CmpOp::Gt => {
            let bound = gids.partition_point(|&g| (g as i64) <= k) as i64;
            let fold = match bound {
                0 => Some(false),
                b if b == len => Some(true),
                _ => None,
            };
            match (op, fold) {
                (CmpOp::Le, Some(v)) => CompiledExpr::Const(v),
                (CmpOp::Gt, Some(v)) => CompiledExpr::Const(!v),
                (CmpOp::Le, None) => {
                    CompiledExpr::Cmp(CmpOp::Lt, code_scalar, Scalar::Const(bound))
                }
                _ => CompiledExpr::Cmp(CmpOp::Ge, code_scalar, Scalar::Const(bound)),
            }
        }
    }
}

/// Specialize sorted-set membership: gid sets translate to chunk-code sets
/// (values absent from the chunk drop out — an empty intersection proves
/// `Const(false)`); integer sets are clipped to the chunk range.
fn specialize_in_set(s: &Scalar, set: &[i64], chunk: &Chunk) -> CompiledExpr {
    match s {
        Scalar::GidAttr(_) | Scalar::GidBirth(_) => {
            if let Some(dict) = scalar_chunk_dict(chunk, s) {
                let codes: Vec<i64> = set
                    .iter()
                    .filter_map(|&gid| {
                        u32::try_from(gid).ok().and_then(|g| dict.find(g)).map(|c| c as i64)
                    })
                    .collect();
                // `set` is sorted by gid and code order mirrors gid order,
                // so `codes` is already sorted for binary search.
                debug_assert!(codes.windows(2).all(|w| w[0] < w[1]));
                if codes.is_empty() {
                    return CompiledExpr::Const(false);
                }
                return CompiledExpr::InSet(to_code(s), codes);
            }
            CompiledExpr::InSet(s.clone(), set.to_vec())
        }
        Scalar::IntAttr(_) | Scalar::IntBirth(_) => {
            if let Some((mn, mx)) = scalar_int_range(chunk, s) {
                let clipped: Vec<i64> =
                    set.iter().copied().filter(|v| (mn..=mx).contains(v)).collect();
                if clipped.is_empty() {
                    return CompiledExpr::Const(false);
                }
                if mn == mx {
                    // Single-valued chunk: membership is already decided.
                    return CompiledExpr::Const(true);
                }
                return CompiledExpr::InSet(s.clone(), clipped);
            }
            CompiledExpr::InSet(s.clone(), set.to_vec())
        }
        Scalar::Const(v) => CompiledExpr::Const(set.binary_search(v).is_ok()),
        _ => CompiledExpr::InSet(s.clone(), set.to_vec()),
    }
}

/// Compile an [`Expr`] against the table's global dictionaries. The result
/// is chunk-independent (global ids are table-global); only the evaluation
/// touches chunk data.
pub fn compile_predicate(
    expr: &Expr,
    schema: &Schema,
    table: &TableMeta,
) -> Result<CompiledExpr, EngineError> {
    match expr {
        Expr::And(a, b) => Ok(CompiledExpr::And(
            Box::new(compile_predicate(a, schema, table)?),
            Box::new(compile_predicate(b, schema, table)?),
        )),
        Expr::Or(a, b) => Ok(CompiledExpr::Or(
            Box::new(compile_predicate(a, schema, table)?),
            Box::new(compile_predicate(b, schema, table)?),
        )),
        Expr::Not(a) => Ok(CompiledExpr::Not(Box::new(compile_predicate(a, schema, table)?))),
        Expr::Cmp(op, a, b) => compile_cmp(*op, a, b, schema, table),
        Expr::Between(a, lo, hi) => {
            let ge = Expr::Cmp(CmpOp::Ge, a.clone(), Box::new(Expr::Lit(lo.clone())));
            let le = Expr::Cmp(CmpOp::Le, a.clone(), Box::new(Expr::Lit(hi.clone())));
            Ok(CompiledExpr::And(
                Box::new(compile_predicate(&ge, schema, table)?),
                Box::new(compile_predicate(&le, schema, table)?),
            ))
        }
        Expr::InList(a, values) => {
            let (scalar, vtype) = compile_scalar(a, schema)?;
            let mut set = Vec::with_capacity(values.len());
            for v in values {
                match (vtype, v) {
                    (ValueType::Int, Value::Int(i)) => set.push(*i),
                    (ValueType::Str, Value::Str(s)) => {
                        let attr_idx = scalar_attr_idx(&scalar)
                            .ok_or_else(|| EngineError::TypeError(format!("IN on {a}")))?;
                        // Absent values simply never match.
                        if let Some(gid) = table.lookup_gid(attr_idx, s) {
                            set.push(gid as i64);
                        }
                    }
                    _ => {
                        return Err(EngineError::TypeError(format!(
                            "IN list value {v} does not match operand type"
                        )))
                    }
                }
            }
            set.sort_unstable();
            set.dedup();
            if set.is_empty() {
                return Ok(CompiledExpr::Const(false));
            }
            Ok(CompiledExpr::InSet(scalar, set))
        }
        other => Err(EngineError::TypeError(format!("`{other}` is not a boolean predicate"))),
    }
}

fn scalar_attr_idx(s: &Scalar) -> Option<usize> {
    match s {
        Scalar::GidAttr(i) | Scalar::GidBirth(i) | Scalar::IntAttr(i) | Scalar::IntBirth(i) => {
            Some(*i)
        }
        _ => None,
    }
}

/// Compile a scalar term, returning its runtime representation and type.
fn compile_scalar(expr: &Expr, schema: &Schema) -> Result<(Scalar, ValueType), EngineError> {
    match expr {
        Expr::Attr(name) => {
            let idx = schema.require(name)?;
            match schema.attribute(idx).vtype {
                ValueType::Str => Ok((Scalar::GidAttr(idx), ValueType::Str)),
                ValueType::Int => Ok((Scalar::IntAttr(idx), ValueType::Int)),
            }
        }
        Expr::Birth(name) => {
            let idx = schema.require(name)?;
            match schema.attribute(idx).vtype {
                ValueType::Str => Ok((Scalar::GidBirth(idx), ValueType::Str)),
                ValueType::Int => Ok((Scalar::IntBirth(idx), ValueType::Int)),
            }
        }
        Expr::Age => Ok((Scalar::Age, ValueType::Int)),
        Expr::Lit(Value::Int(v)) => Ok((Scalar::Const(*v), ValueType::Int)),
        other => Err(EngineError::TypeError(format!("`{other}` is not a scalar term"))),
    }
}

fn compile_cmp(
    op: CmpOp,
    lhs: &Expr,
    rhs: &Expr,
    schema: &Schema,
    table: &TableMeta,
) -> Result<CompiledExpr, EngineError> {
    // Normalize literal-on-the-left by flipping the comparison.
    if matches!(lhs, Expr::Lit(_)) && !matches!(rhs, Expr::Lit(_)) {
        let flipped = match op {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        };
        return compile_cmp(flipped, rhs, lhs, schema, table);
    }

    match rhs {
        // column <op> string-literal: translate through the global
        // dictionary rank so absent literals still order correctly.
        Expr::Lit(Value::Str(s)) => {
            let (scalar, vtype) = compile_scalar(lhs, schema)?;
            if vtype != ValueType::Str {
                return Err(EngineError::TypeError(format!(
                    "comparing integer term with string literal \"{s}\""
                )));
            }
            let attr_idx = scalar_attr_idx(&scalar)
                .ok_or_else(|| EngineError::TypeError("string literal vs AGE".into()))?;
            let dict = table
                .global_dict(attr_idx)
                .ok_or_else(|| EngineError::TypeError("expected dictionary column".into()))?;
            let present = dict.lookup(s);
            let rank = dict.rank(s) as i64;
            Ok(match (op, present) {
                (CmpOp::Eq, Some(gid)) => {
                    CompiledExpr::Cmp(CmpOp::Eq, scalar, Scalar::Const(gid as i64))
                }
                (CmpOp::Eq, None) => CompiledExpr::Const(false),
                (CmpOp::Ne, Some(gid)) => {
                    CompiledExpr::Cmp(CmpOp::Ne, scalar, Scalar::Const(gid as i64))
                }
                (CmpOp::Ne, None) => CompiledExpr::Const(true),
                // gid < rank(v) <=> value < v ; see GlobalDict::rank.
                (CmpOp::Lt, _) => CompiledExpr::Cmp(CmpOp::Lt, scalar, Scalar::Const(rank)),
                (CmpOp::Ge, _) => CompiledExpr::Cmp(CmpOp::Ge, scalar, Scalar::Const(rank)),
                (CmpOp::Le, Some(gid)) => {
                    CompiledExpr::Cmp(CmpOp::Le, scalar, Scalar::Const(gid as i64))
                }
                (CmpOp::Le, None) => CompiledExpr::Cmp(CmpOp::Lt, scalar, Scalar::Const(rank)),
                (CmpOp::Gt, Some(gid)) => {
                    CompiledExpr::Cmp(CmpOp::Gt, scalar, Scalar::Const(gid as i64))
                }
                (CmpOp::Gt, None) => CompiledExpr::Cmp(CmpOp::Ge, scalar, Scalar::Const(rank)),
            })
        }
        _ => {
            let (ls, lt) = compile_scalar(lhs, schema)?;
            let (rs, rt) = compile_scalar(rhs, schema)?;
            if lt != rt {
                return Err(EngineError::TypeError(format!(
                    "comparing {} with {}",
                    lt.name(),
                    rt.name()
                )));
            }
            // Str vs Str compares global ids; dictionary order equals value
            // order, so every comparison operator is preserved.
            Ok(CompiledExpr::Cmp(op, ls, rs))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohana_activity::{generate, GeneratorConfig, Timestamp};
    use cohana_storage::{CompressedTable, CompressionOptions};

    fn setup() -> (cohana_activity::ActivityTable, CompressedTable) {
        let t = generate(&GeneratorConfig::small());
        let c = CompressedTable::build(&t, CompressionOptions::with_chunk_size(200)).unwrap();
        (t, c)
    }

    #[test]
    fn next_user_visits_every_user_once() {
        let (t, c) = setup();
        let gid = c.lookup_gid(t.schema().action_idx(), "launch");
        let mut total = 0usize;
        for chunk in c.chunks() {
            let mut scan = ChunkScan::open(c.table_meta(), chunk, gid).unwrap();
            while let Some(run) = scan.next_user() {
                assert!(run.count > 0);
                total += 1;
            }
        }
        assert_eq!(total, t.num_users());
    }

    #[test]
    fn find_birth_row_is_first_matching_action() {
        let (t, c) = setup();
        let aidx = t.schema().action_idx();
        let gid = c.lookup_gid(aidx, "launch");
        for chunk in c.chunks() {
            let mut scan = ChunkScan::open(c.table_meta(), chunk, gid).unwrap();
            while let Some(run) = scan.next_user() {
                // Every user's first action is launch, so the birth row is
                // the first row of the block.
                assert_eq!(scan.find_birth_row(&run), Some(run.first as usize));
            }
        }
    }

    #[test]
    fn batch_birth_rows_match_per_user_search() {
        let (t, c) = setup();
        let aidx = t.schema().action_idx();
        // "shop" births exercise non-trivial search depth (unlike "launch",
        // which always matches the first row of a block).
        for action in ["launch", "shop"] {
            let gid = c.lookup_gid(aidx, action);
            let mut batch = Vec::new();
            for chunk in c.chunks() {
                let scan = ChunkScan::open(c.table_meta(), chunk, gid).unwrap();
                let runs: Vec<UserRun> = chunk.user_rle().runs().collect();
                // Whole chunk as one morsel, then split morsels.
                scan.find_birth_rows_batch(&runs, &mut batch);
                let expect: Vec<Option<usize>> =
                    runs.iter().map(|r| scan.find_birth_row(r)).collect();
                assert_eq!(batch, expect, "action {action}");
                let mid = runs.len() / 2;
                scan.find_birth_rows_batch(&runs[mid..], &mut batch);
                assert_eq!(batch, expect[mid..], "action {action}, tail morsel");
            }
            // Empty morsel.
            scan_empty_batch(&c, gid, &mut batch);
        }
    }

    fn scan_empty_batch(c: &CompressedTable, gid: Option<u32>, batch: &mut Vec<Option<usize>>) {
        let chunk = &c.chunks()[0];
        let scan = ChunkScan::open(c.table_meta(), chunk, gid).unwrap();
        scan.find_birth_rows_batch(&[], batch);
        assert!(batch.is_empty());
    }

    #[test]
    fn find_birth_row_none_for_missing_action() {
        let (t, c) = setup();
        let gid = c.lookup_gid(t.schema().action_idx(), "no-such-action");
        assert_eq!(gid, None);
        for chunk in c.chunks() {
            let mut scan = ChunkScan::open(c.table_meta(), chunk, gid).unwrap();
            assert!(!scan.chunk_has_birth_action());
            while let Some(run) = scan.next_user() {
                assert_eq!(scan.find_birth_row(&run), None);
            }
        }
    }

    #[test]
    fn compiled_string_equality_matches_decoded() {
        let (t, c) = setup();
        let schema = t.schema();
        let e = Expr::attr("action").eq(Expr::lit_str("shop"));
        let compiled = compile_predicate(&e, schema, c.table_meta()).unwrap();
        let aidx = schema.action_idx();
        for (ci, chunk) in c.chunks().iter().enumerate() {
            let cur = chunk.cursors();
            let spec = compiled.specialize(chunk);
            for row in 0..chunk.num_rows() {
                let ctx = EvalCtx { row, birth_row: row, age_units: 0 };
                let expect = c.decode_value(ci, row, aidx).as_str() == Some("shop");
                assert_eq!(compiled.eval(&cur, &ctx), expect);
                assert_eq!(spec.eval(&cur, &ctx), expect, "specialized disagrees at row {row}");
            }
        }
    }

    #[test]
    fn compiled_absent_literal() {
        let (t, c) = setup();
        let schema = t.schema();
        let eq = compile_predicate(
            &Expr::attr("action").eq(Expr::lit_str("zzz-nope")),
            schema,
            c.table_meta(),
        )
        .unwrap();
        assert!(eq.is_const_false());
        let ne = compile_predicate(
            &Expr::attr("action").ne(Expr::lit_str("zzz-nope")),
            schema,
            c.table_meta(),
        )
        .unwrap();
        assert_eq!(ne, CompiledExpr::Const(true));
    }

    #[test]
    fn compiled_string_ordering_with_absent_literal() {
        let (t, c) = setup();
        let schema = t.schema();
        // "m" sits between action names; compare against decoded strings.
        let e = Expr::attr("action").lt(Expr::lit_str("m"));
        let compiled = compile_predicate(&e, schema, c.table_meta()).unwrap();
        let aidx = schema.action_idx();
        for (ci, chunk) in c.chunks().iter().enumerate() {
            let cur = chunk.cursors();
            let spec = compiled.specialize(chunk);
            for row in 0..chunk.num_rows().min(50) {
                let ctx = EvalCtx { row, birth_row: row, age_units: 0 };
                let decoded = c.decode_value(ci, row, aidx);
                let expect = decoded.as_str().unwrap() < "m";
                assert_eq!(compiled.eval(&cur, &ctx), expect, "row {row}: {decoded}");
                assert_eq!(spec.eval(&cur, &ctx), expect, "specialized: row {row}: {decoded}");
            }
        }
    }

    #[test]
    fn compiled_time_between() {
        let (t, c) = setup();
        let schema = t.schema();
        let lo = Timestamp::parse("2013-05-21").unwrap().secs();
        let hi = Timestamp::parse("2013-05-27").unwrap().secs();
        let e = Expr::attr("time").between_int(lo, hi);
        let compiled = compile_predicate(&e, schema, c.table_meta()).unwrap();
        let tidx = schema.time_idx();
        for (ci, chunk) in c.chunks().iter().enumerate() {
            let cur = chunk.cursors();
            let spec = compiled.specialize(chunk);
            for row in 0..chunk.num_rows().min(50) {
                let ctx = EvalCtx { row, birth_row: row, age_units: 0 };
                let v = c.decode_value(ci, row, tidx).as_int().unwrap();
                assert_eq!(compiled.eval(&cur, &ctx), (lo..=hi).contains(&v));
                assert_eq!(spec.eval(&cur, &ctx), (lo..=hi).contains(&v), "specialized row {row}");
            }
        }
    }

    #[test]
    fn compiled_birth_reference_and_age() {
        let (t, c) = setup();
        let schema = t.schema();
        let e =
            Expr::attr("country").eq(Expr::birth("country")).and(Expr::age().lt(Expr::lit_int(7)));
        let compiled = compile_predicate(&e, schema, c.table_meta()).unwrap();
        let chunk = &c.chunks()[0];
        let cur = chunk.cursors();
        // Same row as its own birth: country trivially equal; age gate decides.
        let ctx = EvalCtx { row: 0, birth_row: 0, age_units: 3 };
        assert!(compiled.eval(&cur, &ctx));
        assert!(compiled.specialize(chunk).eval(&cur, &ctx));
        let ctx = EvalCtx { row: 0, birth_row: 0, age_units: 9 };
        assert!(!compiled.eval(&cur, &ctx));
        assert!(!compiled.specialize(chunk).eval(&cur, &ctx));
    }

    #[test]
    fn compiled_in_list_strings() {
        let (t, c) = setup();
        let schema = t.schema();
        let e = Expr::attr("country").in_list([
            Value::str("China"),
            Value::str("Australia"),
            Value::str("Atlantis"), // absent: ignored
        ]);
        let compiled = compile_predicate(&e, schema, c.table_meta()).unwrap();
        let cidx = schema.index_of("country").unwrap();
        for (ci, chunk) in c.chunks().iter().enumerate() {
            let cur = chunk.cursors();
            let spec = compiled.specialize(chunk);
            for row in 0..chunk.num_rows().min(80) {
                let ctx = EvalCtx { row, birth_row: row, age_units: 0 };
                let v = c.decode_value(ci, row, cidx);
                let expect = matches!(v.as_str(), Some("China") | Some("Australia"));
                assert_eq!(compiled.eval(&cur, &ctx), expect);
                assert_eq!(spec.eval(&cur, &ctx), expect, "specialized row {row}");
            }
        }
    }

    #[test]
    fn rewind_restarts_user_iteration() {
        let (t, c) = setup();
        let gid = c.lookup_gid(t.schema().action_idx(), "launch");
        let chunk = &c.chunks()[0];
        let mut scan = ChunkScan::open(c.table_meta(), chunk, gid).unwrap();
        let first_pass: Vec<u32> =
            std::iter::from_fn(|| scan.next_user().map(|r| r.user_gid)).collect();
        assert!(!first_pass.is_empty());
        assert!(scan.next_user().is_none());
        scan.rewind();
        let second_pass: Vec<u32> =
            std::iter::from_fn(|| scan.next_user().map(|r| r.user_gid)).collect();
        assert_eq!(first_pass, second_pass);
    }

    // ---------------------------------------------------------------------
    // Per-chunk specialization (§4.3 "compile once per chunk")

    use cohana_storage::{ChunkColumn, UserRle};

    /// A hand-built chunk: attr 1 is an integer column with range
    /// `[100, 150]`, attr 2 a string column whose chunk dictionary holds
    /// gids {2, 5, 9}.
    fn spec_chunk() -> Chunk {
        Chunk::new(
            UserRle::from_rows(&[1, 1, 2]),
            vec![
                None,
                Some(ChunkColumn::from_ints(&[100, 150, 120])),
                Some(ChunkColumn::from_gids(&[2, 5, 9])),
            ],
        )
        .unwrap()
    }

    fn int_cmp(op: CmpOp, k: i64) -> CompiledExpr {
        CompiledExpr::Cmp(op, Scalar::IntAttr(1), Scalar::Const(k))
    }

    fn gid_cmp(op: CmpOp, k: i64) -> CompiledExpr {
        CompiledExpr::Cmp(op, Scalar::GidAttr(2), Scalar::Const(k))
    }

    #[test]
    fn specialize_folds_chunk_subsumed_between() {
        let chunk = spec_chunk();
        // BETWEEN compiles to Ge AND Le; chunk range [100, 150] ⊆ [50, 200].
        let between =
            CompiledExpr::And(Box::new(int_cmp(CmpOp::Ge, 50)), Box::new(int_cmp(CmpOp::Le, 200)));
        assert_eq!(between.specialize(&chunk), CompiledExpr::Const(true));
        // Disjoint range: the whole conjunction folds to false.
        let disjoint =
            CompiledExpr::And(Box::new(int_cmp(CmpOp::Ge, 500)), Box::new(int_cmp(CmpOp::Le, 900)));
        assert_eq!(disjoint.specialize(&chunk), CompiledExpr::Const(false));
        // Straddling bound: the undecidable half survives, the decided half
        // folds away.
        let straddle =
            CompiledExpr::And(Box::new(int_cmp(CmpOp::Ge, 50)), Box::new(int_cmp(CmpOp::Le, 120)));
        assert_eq!(straddle.specialize(&chunk), int_cmp(CmpOp::Le, 120));
    }

    #[test]
    fn specialize_folds_chunk_dict_absent_gid() {
        let chunk = spec_chunk();
        // gid 4 is in no row of this chunk: equality is decided.
        assert_eq!(gid_cmp(CmpOp::Eq, 4).specialize(&chunk), CompiledExpr::Const(false));
        assert_eq!(gid_cmp(CmpOp::Ne, 4).specialize(&chunk), CompiledExpr::Const(true));
        // gid 5 is present at chunk code 1: equality becomes a raw-code
        // comparison.
        assert_eq!(
            gid_cmp(CmpOp::Eq, 5).specialize(&chunk),
            CompiledExpr::Cmp(CmpOp::Eq, Scalar::CodeAttr(2), Scalar::Const(1))
        );
        // Orderings translate through the chunk dictionary: gid < 6 holds
        // for codes {0, 1} (gids 2, 5).
        assert_eq!(
            gid_cmp(CmpOp::Lt, 6).specialize(&chunk),
            CompiledExpr::Cmp(CmpOp::Lt, Scalar::CodeAttr(2), Scalar::Const(2))
        );
        // Bounds outside the chunk's gid range fold entirely.
        assert_eq!(gid_cmp(CmpOp::Lt, 1).specialize(&chunk), CompiledExpr::Const(false));
        assert_eq!(gid_cmp(CmpOp::Lt, 100).specialize(&chunk), CompiledExpr::Const(true));
        assert_eq!(gid_cmp(CmpOp::Ge, 1).specialize(&chunk), CompiledExpr::Const(true));
    }

    #[test]
    fn specialize_folds_mixed_and_or_not() {
        let chunk = spec_chunk();
        let t = || int_cmp(CmpOp::Ge, 50); // folds true
        let f = || gid_cmp(CmpOp::Eq, 4); // folds false
        let live = || int_cmp(CmpOp::Le, 120); // survives
                                               // Not(false) = true; Or(true, _) short-circuits.
        let e = CompiledExpr::Or(Box::new(CompiledExpr::Not(Box::new(f()))), Box::new(live()));
        assert_eq!(e.specialize(&chunk), CompiledExpr::Const(true));
        // And(true, live) = live; Or(false, live) = live.
        let e = CompiledExpr::And(Box::new(t()), Box::new(live()));
        assert_eq!(e.specialize(&chunk), live());
        let e = CompiledExpr::Or(Box::new(f()), Box::new(live()));
        assert_eq!(e.specialize(&chunk), live());
        // Not survives over an undecided term.
        let e = CompiledExpr::Not(Box::new(live()));
        assert_eq!(e.specialize(&chunk), CompiledExpr::Not(Box::new(live())));
    }

    #[test]
    fn specialize_in_set_translates_to_chunk_codes() {
        let chunk = spec_chunk();
        // Gid set {4, 5, 7}: only gid 5 occurs here, at code 1.
        let e = CompiledExpr::InSet(Scalar::GidAttr(2), vec![4, 5, 7]);
        assert_eq!(e.specialize(&chunk), CompiledExpr::InSet(Scalar::CodeAttr(2), vec![1]));
        // Entirely absent set: proved false.
        let e = CompiledExpr::InSet(Scalar::GidAttr(2), vec![0, 4, 7]);
        assert_eq!(e.specialize(&chunk), CompiledExpr::Const(false));
        // Integer set clipped to the chunk range.
        let e = CompiledExpr::InSet(Scalar::IntAttr(1), vec![10, 120, 999]);
        assert_eq!(e.specialize(&chunk), CompiledExpr::InSet(Scalar::IntAttr(1), vec![120]));
        let e = CompiledExpr::InSet(Scalar::IntAttr(1), vec![10, 999]);
        assert_eq!(e.specialize(&chunk), CompiledExpr::Const(false));
    }

    #[test]
    fn specialize_agrees_with_original_on_every_row() {
        // The full differential: on real generated chunks, the specialized
        // predicate must agree with the statement-level compilation on
        // every row, for a predicate exercising gids, ints, birth refs,
        // AND/OR/NOT, and IN.
        let (t, c) = setup();
        let schema = t.schema();
        let e = Expr::attr("country")
            .eq(Expr::birth("country"))
            .and(Expr::attr("gold").gt(Expr::lit_int(3)))
            .or(Expr::attr("action").in_list([Value::str("shop"), Value::str("zzz")]).not());
        let compiled = compile_predicate(&e, schema, c.table_meta()).unwrap();
        for chunk in c.chunks() {
            let cur = chunk.cursors();
            let spec = compiled.specialize(chunk);
            for row in 0..chunk.num_rows() {
                for birth_row in [0, row] {
                    let ctx = EvalCtx { row, birth_row, age_units: 1 };
                    assert_eq!(
                        compiled.eval(&cur, &ctx),
                        spec.eval(&cur, &ctx),
                        "row {row} birth {birth_row}"
                    );
                }
            }
        }
    }

    #[test]
    fn open_rejects_integer_action_column() {
        // A chunk whose action position decodes as an integer segment is
        // corrupt: the executor must surface a typed error, not panic.
        let (_, c) = setup();
        let schema = c.schema();
        let arity = schema.arity();
        let mut cols: Vec<Option<ChunkColumn>> = (0..arity).map(|_| None).collect();
        cols[schema.time_idx()] = Some(ChunkColumn::from_ints(&[1000, 1001, 1002]));
        cols[schema.action_idx()] = Some(ChunkColumn::from_ints(&[1, 2, 3]));
        let chunk = Chunk::new(UserRle::from_rows(&[1, 1, 2]), cols).unwrap();
        let err = ChunkScan::open(c.table_meta(), &chunk, Some(0)).unwrap_err();
        assert!(matches!(err, EngineError::Corrupt(_)), "got {err:?}");
        assert!(err.to_string().contains("action column"));
    }

    #[test]
    fn open_rejects_string_time_column() {
        let (_, c) = setup();
        let schema = c.schema();
        let arity = schema.arity();
        let mut cols: Vec<Option<ChunkColumn>> = (0..arity).map(|_| None).collect();
        cols[schema.time_idx()] = Some(ChunkColumn::from_gids(&[0, 1, 2]));
        cols[schema.action_idx()] = Some(ChunkColumn::from_gids(&[1, 2, 3]));
        let chunk = Chunk::new(UserRle::from_rows(&[1, 1, 2]), cols).unwrap();
        let err = ChunkScan::open(c.table_meta(), &chunk, None).unwrap_err();
        assert!(matches!(err, EngineError::Corrupt(_)), "got {err:?}");
        assert!(err.to_string().contains("time column"));
    }

    #[test]
    fn compile_rejects_type_confusion() {
        let (t, c) = setup();
        let schema = t.schema();
        assert!(compile_predicate(
            &Expr::attr("gold").eq(Expr::lit_str("dwarf")),
            schema,
            c.table_meta()
        )
        .is_err());
        assert!(compile_predicate(&Expr::attr("role"), schema, c.table_meta()).is_err());
        assert!(compile_predicate(
            &Expr::attr("role").eq(Expr::attr("gold")),
            schema,
            c.table_meta()
        )
        .is_err());
    }
}
