//! The session/statement query surface: prepare once, execute many, stream
//! results, observe costs.
//!
//! The paper's architecture (Figure 4) keeps a stable query surface —
//! parser → planner → executor — in front of the storage manager. This
//! module is that surface for programmatic callers (the SQL front end in
//! `cohana-sql` layers string parsing on top of it):
//!
//! * [`Session`] — a cheap per-caller handle on a shared
//!   [`Cohana`] engine, carrying option overrides (parallelism, planner
//!   flags, default table) that affect only this caller;
//! * [`Statement`] — a validated and planned query, re-executable any
//!   number of times, with [`Statement::explain`] and cumulative
//!   [`QueryStats`] across executions;
//! * [`QueryStream`] — a pull-based iterator of per-chunk [`ResultBatch`]es
//!   with [`QueryStream::collect`] preserving the eager semantics. A
//!   consumer that stops pulling stops chunk decode: on a lazy file-backed
//!   source, unpulled chunks are never read from disk.
//!
//! ```
//! use cohana_activity::{generate, GeneratorConfig};
//! use cohana_core::{AggFunc, Cohana, CohortQuery};
//! use cohana_storage::CompressionOptions;
//!
//! let table = generate(&GeneratorConfig::small());
//! let engine = Cohana::from_activity_table(&table, CompressionOptions::default()).unwrap();
//!
//! let session = engine.session().with_parallelism(2);
//! let q1 = CohortQuery::builder("launch")
//!     .cohort_by(["country"])
//!     .aggregate(AggFunc::user_count())
//!     .build()
//!     .unwrap();
//! let stmt = session.prepare(&q1).unwrap();
//! let report = stmt.execute().unwrap();
//! assert!(report.num_rows() > 0);
//! let stats = report.stats.unwrap();
//! assert_eq!(stats.chunks_scanned + stats.chunks_pruned, stats.chunks_total);
//! ```

use crate::engine::Cohana;
use crate::error::EngineError;
use crate::exec::{Partial, QueryCore, ResultBatch};
use crate::plan::{plan_query, PhysicalPlan, PlannerOptions};
use crate::query::CohortQuery;
use crate::report::CohortReport;
use crate::stats::QueryStats;
use cohana_activity::Schema;
use cohana_storage::{with_recorder, ChunkSource, IoRecorder};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// A lightweight per-caller handle on a [`Cohana`] engine.
///
/// Sessions are cheap to create (a borrow plus copied options) and carry
/// overrides that never touch the shared engine: many concurrent callers
/// can run the same engine at different parallelism, planner flags, or
/// default tables. Obtain one with [`Cohana::session`].
#[derive(Clone)]
pub struct Session<'e> {
    engine: &'e Cohana,
    options: crate::engine::EngineOptions,
    table: Option<String>,
}

impl<'e> Session<'e> {
    pub(crate) fn new(engine: &'e Cohana) -> Session<'e> {
        Session { engine, options: engine.options(), table: None }
    }

    /// The engine this session runs against.
    pub fn engine(&self) -> &'e Cohana {
        self.engine
    }

    /// The effective options (engine defaults plus session overrides).
    pub fn options(&self) -> crate::engine::EngineOptions {
        self.options
    }

    /// Override the worker-thread count for statements prepared here.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.options.parallelism = parallelism.max(1);
        self
    }

    /// Override the planner flags for statements prepared here.
    pub fn with_planner(mut self, planner: PlannerOptions) -> Self {
        self.options.planner = planner;
        self
    }

    /// Override the morsel size (rows per work-stealing unit) for statements
    /// prepared here. See [`crate::DEFAULT_MORSEL_ROWS`].
    pub fn with_morsel_rows(mut self, rows: usize) -> Self {
        self.options.morsel_rows = rows.max(1);
        self
    }

    /// Override this session's default table (the engine default otherwise).
    pub fn on_table(mut self, name: impl Into<String>) -> Self {
        self.table = Some(name.into());
        self
    }

    /// The table statements resolve against: the session override if set,
    /// the engine's default table otherwise.
    pub fn table_name(&self) -> Result<String, EngineError> {
        match &self.table {
            Some(name) => Ok(name.clone()),
            None => self
                .engine
                .default_table_name()
                .ok_or_else(|| EngineError::UnknownTable("<no tables registered>".into())),
        }
    }

    /// Schema of the session's table.
    pub fn schema(&self) -> Result<Schema, EngineError> {
        let name = self.table_name()?;
        self.engine.schema_of(&name).ok_or(EngineError::UnknownTable(name))
    }

    fn source(&self) -> Result<Arc<dyn ChunkSource>, EngineError> {
        let name = self.table_name()?;
        self.engine.source(&name).ok_or(EngineError::UnknownTable(name))
    }

    /// Validate and plan a query against the session's table. The returned
    /// [`Statement`] is self-contained (it pins the table's chunk source)
    /// and re-executable.
    pub fn prepare(&self, query: &CohortQuery) -> Result<Statement, EngineError> {
        Ok(Statement::over(self.source()?, query, self.options.planner, self.options.parallelism)?
            .with_morsel_rows(self.options.morsel_rows))
    }

    /// Prepare a query against an explicit [`TableHandle`] instead of the
    /// session's default table, keeping this session's option overrides
    /// (parallelism, planner flags, morsel size). The handle must belong to
    /// the same engine.
    ///
    /// [`TableHandle`]: crate::TableHandle
    pub fn prepare_on(
        &self,
        table: &crate::handle::TableHandle<'_>,
        query: &CohortQuery,
    ) -> Result<Statement, EngineError> {
        if !std::ptr::eq(table.engine(), self.engine) {
            return Err(EngineError::Unsupported(
                "the table handle belongs to a different engine than this session".into(),
            ));
        }
        Ok(Statement::over(table.source()?, query, self.options.planner, self.options.parallelism)?
            .with_morsel_rows(self.options.morsel_rows))
    }

    /// Prepare and execute in one call (the eager convenience path).
    pub fn execute(&self, query: &CohortQuery) -> Result<CohortReport, EngineError> {
        self.prepare(query)?.execute()
    }

    /// EXPLAIN: prepare the query and render its plan.
    pub fn explain(&self, query: &CohortQuery) -> Result<String, EngineError> {
        Ok(self.prepare(query)?.explain())
    }
}

/// A validated, planned, re-executable cohort query.
///
/// A statement pins the chunk source it was prepared against (catalog
/// changes after `prepare` do not affect it), owns the physical plan and the
/// compiled predicates, and accumulates [`QueryStats`] over every execution
/// in [`Statement::cumulative_stats`].
pub struct Statement {
    core: QueryCore,
    parallelism: usize,
    /// Target rows per morsel (work-stealing unit); see
    /// [`crate::DEFAULT_MORSEL_ROWS`].
    morsel_rows: usize,
    /// `(cumulative stats, execution count)` under one lock, so the two
    /// never present a torn snapshot.
    lifetime: Mutex<(QueryStats, u64)>,
}

impl Statement {
    /// Plan `query` directly over a chunk source — the low-level entry point
    /// behind [`Session::prepare`], useful for tests and tools that hold a
    /// source without an engine catalog.
    pub fn over(
        source: Arc<dyn ChunkSource>,
        query: &CohortQuery,
        planner: PlannerOptions,
        parallelism: usize,
    ) -> Result<Statement, EngineError> {
        let plan = plan_query(query, source.table_meta().schema(), planner)?;
        Self::with_plan(source, plan, parallelism)
    }

    /// Like [`Statement::over`] with an already-planned query. The plan must
    /// have been produced against this source's schema (predicate
    /// compilation re-validates attribute references).
    pub fn with_plan(
        source: Arc<dyn ChunkSource>,
        plan: PhysicalPlan,
        parallelism: usize,
    ) -> Result<Statement, EngineError> {
        Ok(Statement {
            core: QueryCore::new(source, Arc::new(plan))?,
            parallelism: parallelism.max(1),
            morsel_rows: crate::engine::DEFAULT_MORSEL_ROWS,
            lifetime: Mutex::new((QueryStats::default(), 0)),
        })
    }

    /// Override the target rows per morsel — the unit of work the parallel
    /// scheduler's workers claim and steal, and the granularity at which a
    /// dropped stream cancels in-flight chunks. Smaller morsels balance
    /// skewed chunks better at slightly higher scheduling cost.
    pub fn with_morsel_rows(mut self, rows: usize) -> Self {
        self.morsel_rows = rows.max(1);
        self
    }

    /// Target rows per work-stealing morsel.
    pub fn morsel_rows(&self) -> usize {
        self.morsel_rows
    }

    /// The physical plan.
    pub fn plan(&self) -> &PhysicalPlan {
        &self.core.plan
    }

    /// The validated query.
    pub fn query(&self) -> &CohortQuery {
        &self.core.plan.query
    }

    /// Worker threads used by [`Statement::stream`] / [`Statement::execute`].
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// EXPLAIN rendering: the optimized Figure-5 operator tree, the
    /// projected columns the scan will fetch, the metadata predicate used
    /// for §4.2 chunk pruning, and the execution parallelism.
    pub fn explain(&self) -> String {
        let plan = self.plan();
        let schema = self.core.source.table_meta().schema();
        let projected: Vec<&str> =
            plan.projected_idxs.iter().map(|&i| schema.attribute(i).name.as_str()).collect();
        let mut out = plan.explain();
        out.push_str(&format!("-- projected columns: {}\n", projected.join(", ")));
        if plan.options.prune_chunks {
            let mut prune = format!("birth action {:?}", plan.query.birth_action);
            if let Some((lo, hi)) = plan.birth_time_bounds {
                prune.push_str(&format!(", birth time in [{lo}, {hi}]"));
            }
            out.push_str(&format!("-- prune chunks on: {prune}\n"));
        } else {
            out.push_str("-- prune chunks on: (disabled)\n");
        }
        out.push_str(&format!("-- parallelism: {}\n", self.parallelism));
        out
    }

    /// Open a pull-based stream of per-chunk result batches. Chunk pruning
    /// happens here (it is metadata-only); chunk I/O and decode happen as
    /// batches are pulled.
    pub fn stream(&self) -> QueryStream<'_> {
        QueryStream::open(self)
    }

    /// Execute eagerly: stream every batch, merge, and attach this
    /// execution's [`QueryStats`] to the report.
    pub fn execute(&self) -> Result<CohortReport, EngineError> {
        self.stream().collect()
    }

    /// Merge already-pulled batches (from one full pass of
    /// [`Statement::stream`]) into a report — the manual-pull equivalent of
    /// [`QueryStream::collect`]. The report carries no stats; the stream
    /// that produced the batches has them.
    pub fn report_from_batches(
        &self,
        batches: impl IntoIterator<Item = ResultBatch>,
    ) -> Result<CohortReport, EngineError> {
        let mut merged = Partial::default();
        for batch in batches {
            merged.merge(batch.partial)?;
        }
        self.core.build_report(merged)
    }

    /// Convert a pulled batch into its network-portable [`WireBatch`](crate::wire::WireBatch) form,
    /// with cohort keys decoded to values so a remote consumer can merge
    /// batches (via [`ReportAssembler`](crate::wire::ReportAssembler))
    /// without this statement's table metadata.
    pub fn wire_batch(&self, batch: &ResultBatch) -> crate::wire::WireBatch {
        self.core.wire_batch(batch)
    }

    /// Stats accumulated over every execution (including partially consumed
    /// or dropped streams) of this statement. Monotone: each execution only
    /// adds.
    pub fn cumulative_stats(&self) -> QueryStats {
        self.lifetime.lock().expect("stats lock poisoned").0
    }

    /// How many streams this statement has opened.
    pub fn executions(&self) -> u64 {
        self.lifetime.lock().expect("stats lock poisoned").1
    }

    fn record(&self, stats: &QueryStats) {
        let mut lifetime = self.lifetime.lock().expect("stats lock poisoned");
        lifetime.0.absorb(stats);
        lifetime.1 += 1;
    }
}

impl std::fmt::Debug for Statement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Statement")
            .field("query", &self.query().to_sql())
            .field("parallelism", &self.parallelism)
            .field("executions", &self.executions())
            .finish_non_exhaustive()
    }
}

enum StreamState {
    /// One chunk is fetched, decoded, and processed per pull.
    Serial {
        live: std::vec::IntoIter<usize>,
    },
    /// Worker threads feed a bounded channel; pulls drain it.
    Parallel {
        rx: Receiver<Result<ResultBatch, EngineError>>,
        handles: Vec<JoinHandle<()>>,
    },
    Done,
}

/// A pull-based stream of per-chunk [`ResultBatch`]es.
///
/// Iterate it for streaming consumption (first batches arrive before the
/// last chunk is decoded) or call [`QueryStream::collect`] for the eager
/// report. Dropping the stream early terminates the query: serial streams
/// simply never touch the remaining chunks; parallel workers stop at their
/// next send into the disconnected channel. Either way the statement's
/// cumulative stats record whatever work was actually done.
pub struct QueryStream<'s> {
    stmt: &'s Statement,
    state: StreamState,
    stats: QueryStats,
    /// Per-worker busy-time counters of a parallel execution (kept outside
    /// [`StreamState`] so they survive shutdown for [`QueryStream::worker_busy`]).
    busy: Option<Arc<Vec<AtomicU64>>>,
    /// This execution's I/O, credited at the storage layer's increment
    /// sites: exact even when other queries decode on the same source
    /// concurrently (see [`IoRecorder`]).
    recorder: Arc<IoRecorder>,
    started: Instant,
    recorded: bool,
}

impl<'s> QueryStream<'s> {
    fn open(stmt: &'s Statement) -> QueryStream<'s> {
        let live = stmt.core.live_chunks();
        let total = stmt.core.source.num_chunks();
        let stats = QueryStats {
            chunks_total: total,
            chunks_pruned: total - live.len(),
            ..QueryStats::default()
        };
        let recorder = Arc::new(IoRecorder::new());
        let started = Instant::now();
        let workers = stmt.parallelism.min(live.len());
        let (state, busy) = if workers <= 1 {
            (StreamState::Serial { live: live.into_iter() }, None)
        } else {
            let (rx, handles, busy) =
                stmt.core.spawn_workers(live, workers, stmt.morsel_rows, recorder.clone());
            (StreamState::Parallel { rx, handles }, Some(busy))
        };
        QueryStream { stmt, state, stats, busy, recorder, started, recorded: false }
    }

    /// The statement this stream executes.
    pub fn statement(&self) -> &'s Statement {
        self.stmt
    }

    /// A snapshot of this execution's stats so far (final once the stream
    /// is exhausted).
    pub fn stats(&self) -> QueryStats {
        if self.recorded {
            return self.stats;
        }
        let mut snap = self.stats;
        snap.add_io(&self.recorder.snapshot());
        snap.wall_time = self.started.elapsed();
        if let Some(busy) = &self.busy {
            snap.worker_busy_ns += busy.iter().map(|b| b.load(Ordering::Relaxed)).sum::<u64>();
        }
        snap
    }

    /// Per-worker busy time (nanoseconds of chunk decode plus morsel
    /// execution) of a parallel execution; empty on the serial path, whose
    /// busy time goes straight into [`QueryStats::worker_busy_ns`]. Useful
    /// for observing scheduler balance under skew.
    pub fn worker_busy(&self) -> Vec<u64> {
        self.busy
            .as_ref()
            .map(|b| b.iter().map(|w| w.load(Ordering::Relaxed)).collect())
            .unwrap_or_default()
    }

    /// Drain the remaining batches and merge everything into the eager
    /// [`CohortReport`], with this execution's [`QueryStats`] attached.
    pub fn collect(mut self) -> Result<CohortReport, EngineError> {
        let mut merged = Partial::default();
        for batch in &mut self {
            merged.merge(batch?.partial)?;
        }
        let mut report = self.stmt.core.build_report(merged)?;
        report.stats = Some(self.stats());
        Ok(report)
    }

    /// Tear down the pipeline: disconnect the channel (stopping parallel
    /// workers at their next send), join them, and fold this execution's
    /// stats into the statement's cumulative counters exactly once.
    fn shutdown(&mut self) {
        if let StreamState::Parallel { rx, handles } =
            std::mem::replace(&mut self.state, StreamState::Done)
        {
            drop(rx);
            for h in handles {
                let _ = h.join();
            }
        }
        if !self.recorded {
            // Parallel workers are joined above, so every credit is in.
            self.stats.add_io(&self.recorder.snapshot());
            self.stats.wall_time = self.started.elapsed();
            if let Some(busy) = &self.busy {
                // Workers are joined: fold their final busy counters in once.
                self.stats.worker_busy_ns +=
                    busy.iter().map(|b| b.load(Ordering::Relaxed)).sum::<u64>();
            }
            self.recorded = true;
            self.stmt.record(&self.stats);
        }
    }
}

impl Iterator for QueryStream<'_> {
    type Item = Result<ResultBatch, EngineError>;

    fn next(&mut self) -> Option<Self::Item> {
        enum Step {
            Run(usize),
            Got(Result<ResultBatch, EngineError>),
            End,
        }
        let step = match &mut self.state {
            StreamState::Serial { live } => live.next().map(Step::Run).unwrap_or(Step::End),
            // A recv error means every worker is done and the channel is
            // drained (workers hold the only senders).
            StreamState::Parallel { rx, .. } => rx.recv().map(Step::Got).unwrap_or(Step::End),
            StreamState::Done => Step::End,
        };
        let item = match step {
            Step::Run(idx) => {
                let t = Instant::now();
                let out = with_recorder(&self.recorder, || {
                    self.stmt.core.run_chunk(idx, self.stmt.morsel_rows)
                });
                self.stats.worker_busy_ns += t.elapsed().as_nanos() as u64;
                Some(out)
            }
            Step::Got(result) => Some(result),
            Step::End => None,
        };
        match item {
            Some(Ok(batch)) => {
                self.stats.chunks_scanned += 1;
                self.stats.rows_scanned += batch.rows_scanned as u64;
                self.stats.batches += 1;
                self.stats.morsels_executed += batch.morsels;
                Some(Ok(batch))
            }
            Some(Err(e)) => {
                self.shutdown();
                Some(Err(e))
            }
            None => {
                self.shutdown();
                None
            }
        }
    }
}

impl Drop for QueryStream<'_> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggFunc;
    use cohana_activity::{generate, GeneratorConfig};
    use cohana_storage::{CompressedTable, CompressionOptions};

    fn engine() -> Cohana {
        let t = generate(&GeneratorConfig::small());
        Cohana::from_activity_table(&t, CompressionOptions::with_chunk_size(256)).unwrap()
    }

    fn q1() -> CohortQuery {
        CohortQuery::builder("launch")
            .cohort_by(["country"])
            .aggregate(AggFunc::user_count())
            .build()
            .unwrap()
    }

    #[test]
    fn session_prepare_execute_matches_engine_execute() {
        let e = engine();
        let session = e.session();
        let stmt = session.prepare(&q1()).unwrap();
        let via_stmt = stmt.execute().unwrap();
        let via_engine = e.execute(&q1()).unwrap();
        assert_eq!(via_stmt, via_engine);
        assert!(via_stmt.stats.is_some());
    }

    #[test]
    fn session_overrides_do_not_leak() {
        let e = engine();
        let fast = e.session().with_parallelism(4);
        assert_eq!(fast.options().parallelism, 4);
        assert_eq!(e.session().options().parallelism, e.options().parallelism);
        let a = fast.execute(&q1()).unwrap();
        let b = e.session().execute(&q1()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn stream_batches_cover_all_live_chunks() {
        let e = engine();
        let stmt = e.session().prepare(&q1()).unwrap();
        let mut stream = stmt.stream();
        let mut batches = Vec::new();
        for b in &mut stream {
            batches.push(b.unwrap());
        }
        let stats = stream.stats();
        assert_eq!(stats.batches, batches.len());
        assert_eq!(stats.chunks_scanned + stats.chunks_pruned, stats.chunks_total);
        let mut idxs: Vec<usize> = batches.iter().map(|b| b.chunk_index()).collect();
        idxs.sort_unstable();
        idxs.dedup();
        assert_eq!(idxs.len(), batches.len(), "each chunk yields exactly one batch");
        drop(stream);
        let report = stmt.report_from_batches(batches).unwrap();
        assert_eq!(report, e.execute(&q1()).unwrap());
    }

    #[test]
    fn cumulative_stats_are_monotone_over_reexecution() {
        let e = engine();
        let stmt = e.session().prepare(&q1()).unwrap();
        let r1 = stmt.execute().unwrap();
        let after_one = stmt.cumulative_stats();
        let r2 = stmt.execute().unwrap();
        let after_two = stmt.cumulative_stats();
        assert_eq!(r1, r2, "re-execution is deterministic");
        assert_eq!(stmt.executions(), 2);
        assert!(after_two.dominates(&after_one));
        assert_eq!(after_two.chunks_scanned, 2 * after_one.chunks_scanned);
    }

    #[test]
    fn statement_over_raw_source_works() {
        let t = generate(&GeneratorConfig::small());
        let c =
            Arc::new(CompressedTable::build(&t, CompressionOptions::with_chunk_size(256)).unwrap());
        let stmt = Statement::over(c, &q1(), PlannerOptions::default(), 2).unwrap();
        assert_eq!(stmt.parallelism(), 2);
        let report = stmt.execute().unwrap();
        assert!(report.num_rows() > 0);
    }

    #[test]
    fn explain_lists_projection_prune_and_parallelism() {
        let e = engine();
        let stmt = e.session().with_parallelism(3).prepare(&q1()).unwrap();
        let text = stmt.explain();
        assert!(text.contains("TableScan"));
        assert!(text.contains("projected columns:"));
        assert!(text.contains("birth action \"launch\""));
        assert!(text.contains("parallelism: 3"));
    }

    #[test]
    fn unknown_table_errors() {
        let e = engine();
        assert!(matches!(
            e.session().on_table("nope").prepare(&q1()).unwrap_err(),
            EngineError::UnknownTable(_)
        ));
        let empty = Cohana::new(Default::default());
        assert!(empty.session().prepare(&q1()).is_err());
    }

    #[test]
    fn dropped_stream_still_records_stats() {
        let e = engine();
        let stmt = e.session().prepare(&q1()).unwrap();
        {
            let mut stream = stmt.stream();
            let first = stream.next();
            assert!(first.is_some());
        } // dropped after one batch
        let cum = stmt.cumulative_stats();
        assert_eq!(stmt.executions(), 1);
        assert_eq!(cum.chunks_scanned, 1);
        assert!(cum.chunks_total > 1);
    }
}
