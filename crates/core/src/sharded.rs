//! Engine-managed sharded tables: a [`ShardedTable`] wraps the storage
//! layer's shard directory (manifest + shard files, see
//! [`cohana_storage::shard`]) with the pieces a live engine needs —
//! a current [`ShardedSource`] snapshot for queries, a write lock
//! serializing mutations, and an optional **background maintenance thread**
//! that watches per-shard dead-byte ratios and auto-compacts shards whose
//! ratio crosses the configured threshold (plus finishing any crash-interrupted
//! user deletions).
//!
//! Snapshot semantics are preserved throughout: queries and prepared
//! statements pin the `Arc<ShardedSource>` that was current when they were
//! prepared; every mutation (ingest, compaction, deletion) works on the
//! files via temp-file + rename or strict appends and then swaps a freshly
//! opened source in. An in-flight statement keeps reading its pre-mutation
//! snapshot through the old file handles (old inodes stay alive until the
//! last reader drops them).

use crate::error::EngineError;
use cohana_activity::ActivityTable;
use cohana_storage::shard::{self, ShardedAppendStats};
use cohana_storage::{CompactStats, DeleteStats, FileSpaceStats, ShardedSource};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, RwLock, Weak};
use std::time::Duration;

/// Policy of a [`ShardedTable`]'s background maintenance thread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaintenanceConfig {
    /// Whether to run the background thread at all. Off by default: plain
    /// opens stay thread-free; long-running processes (the server, the
    /// shell) opt in.
    pub auto_compact: bool,
    /// Compact a shard when its dead-byte ratio (dead bytes / file bytes)
    /// exceeds this.
    pub dead_ratio: f64,
    /// How often the thread polls shard space stats when nothing pokes it
    /// (every ingest pokes it immediately).
    pub interval: Duration,
}

impl Default for MaintenanceConfig {
    fn default() -> Self {
        MaintenanceConfig { auto_compact: false, dead_ratio: 0.3, interval: Duration::from_secs(2) }
    }
}

impl MaintenanceConfig {
    /// Background auto-compaction at the default threshold and interval.
    pub fn enabled() -> Self {
        MaintenanceConfig { auto_compact: true, ..Default::default() }
    }
}

/// What maintenance has done over a [`ShardedTable`]'s lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MaintenanceStats {
    /// Completed maintenance passes (manual or background).
    pub passes: u64,
    /// Shard compactions triggered by the dead-ratio threshold.
    pub auto_compactions: u64,
    /// Bytes those compactions reclaimed.
    pub reclaimed_bytes: u64,
    /// Users removed by tombstone recovery during maintenance.
    pub tombstone_users_applied: u64,
    /// Highest per-shard dead-byte ratio observed on the most recent pass.
    pub last_max_dead_ratio: f64,
}

/// Wake-up channel between a [`ShardedTable`] and its maintenance thread.
struct Wake {
    state: Mutex<WakeState>,
    cv: Condvar,
}

#[derive(Default)]
struct WakeState {
    poked: bool,
    stopped: bool,
}

/// One sharded table under engine management. See the module docs; obtain
/// one via `Cohana::open(dir).open()` against a shard directory, or
/// `Cohana::open(dir).shards(n).create_from(&table)`.
pub struct ShardedTable {
    /// The manifest file path (inside the table directory).
    manifest: PathBuf,
    cache_bytes: usize,
    config: MaintenanceConfig,
    /// The current query snapshot; swapped whole after every mutation.
    current: RwLock<Arc<ShardedSource>>,
    /// Serializes ingest / compaction / deletion / maintenance passes
    /// within this process (cross-process safety comes from the per-shard
    /// lock files underneath).
    write: Mutex<()>,
    stats: Mutex<MaintenanceStats>,
    wake: Arc<Wake>,
}

impl ShardedTable {
    /// Open a sharded table: finish any crash-interrupted deletions
    /// (pending manifest tombstones), open the query source, and — when the
    /// config says so — start the background maintenance thread. The thread
    /// holds only a [`Weak`] reference and a wake channel, so dropping the
    /// last `Arc<ShardedTable>` stops it promptly.
    pub fn open(
        path: &Path,
        cache_bytes: usize,
        config: MaintenanceConfig,
    ) -> Result<Arc<ShardedTable>, EngineError> {
        let manifest = shard::manifest_path(path);
        let recovered = shard::apply_pending_tombstones(&manifest)?;
        let source = Arc::new(ShardedSource::open_with_budget(&manifest, cache_bytes)?);
        let table = Arc::new(ShardedTable {
            manifest,
            cache_bytes,
            config,
            current: RwLock::new(source),
            write: Mutex::new(()),
            stats: Mutex::new(MaintenanceStats {
                tombstone_users_applied: recovered.users_deleted as u64,
                ..Default::default()
            }),
            wake: Arc::new(Wake { state: Mutex::new(WakeState::default()), cv: Condvar::new() }),
        });
        if config.auto_compact {
            let weak = Arc::downgrade(&table);
            let wake = table.wake.clone();
            let interval = config.interval;
            std::thread::Builder::new()
                .name("cohana-maintenance".into())
                .spawn(move || maintenance_loop(weak, wake, interval))
                .map_err(|e| EngineError::Storage(format!("spawn maintenance thread: {e}")))?;
        }
        Ok(table)
    }

    /// The manifest file path.
    pub fn manifest_path(&self) -> &Path {
        &self.manifest
    }

    /// The maintenance policy this table was opened with.
    pub fn config(&self) -> MaintenanceConfig {
        self.config
    }

    /// The current query snapshot. Statements prepared against it keep it
    /// (and the file handles under it) alive across later mutations.
    pub fn source(&self) -> Arc<ShardedSource> {
        self.current.read().expect("source lock poisoned").clone()
    }

    /// Number of shards in the current snapshot.
    pub fn num_shards(&self) -> usize {
        self.source().num_shards()
    }

    /// Swap in a freshly opened source reflecting the files' current state.
    fn reopen(&self) -> Result<(), EngineError> {
        let fresh = Arc::new(ShardedSource::open_with_budget(&self.manifest, self.cache_bytes)?);
        *self.current.write().expect("source lock poisoned") = fresh;
        Ok(())
    }

    /// Ingest a batch: route rows to their range-owning shards, append all
    /// touched shards in parallel (each under its single-writer lock file),
    /// swap in a fresh snapshot, and poke the maintenance thread so it can
    /// react to freshly created dead bytes without waiting out its poll
    /// interval.
    pub fn ingest(&self, batch: &ActivityTable) -> Result<ShardedAppendStats, EngineError> {
        let _w = self.write.lock().expect("write lock poisoned");
        let stats = shard::append_sharded(&self.manifest, batch)?;
        self.reopen()?;
        drop(_w);
        self.poke();
        Ok(stats)
    }

    /// Compact every shard that has any dead bytes, unconditionally (the
    /// manual path — the background thread applies the dead-ratio threshold
    /// instead). Returns the summed compaction stats.
    pub fn compact(&self) -> Result<CompactStats, EngineError> {
        let _w = self.write.lock().expect("write lock poisoned");
        let space = shard::shard_space_stats(&self.manifest)?;
        let mut total = CompactStats::default();
        let mut any = false;
        for (i, s) in space.iter().enumerate() {
            if s.dead_bytes == 0 {
                total.rows += s.rows as usize;
                total.chunks_before += s.chunks;
                total.chunks_after += s.chunks;
                total.bytes_before += s.file_bytes;
                total.bytes_after += s.file_bytes;
                continue;
            }
            let stats = shard::compact_shard(&self.manifest, i)?;
            total.bytes_before += stats.bytes_before;
            total.bytes_after += stats.bytes_after;
            total.reclaimed_bytes += stats.reclaimed_bytes;
            total.chunks_before += stats.chunks_before;
            total.chunks_after += stats.chunks_after;
            total.rows += stats.rows;
            any = true;
        }
        if any {
            self.reopen()?;
        }
        Ok(total)
    }

    /// Delete every tuple of the given users (GDPR-style retention): the
    /// tombstones are persisted in the manifest first, the owning shards
    /// rewritten, and a fresh snapshot swapped in. Crash-safe — see
    /// [`shard::delete_users`].
    pub fn delete_users(&self, users: &[&str]) -> Result<DeleteStats, EngineError> {
        let _w = self.write.lock().expect("write lock poisoned");
        let stats = shard::delete_users(&self.manifest, users)?;
        self.reopen()?;
        Ok(stats)
    }

    /// Per-shard space accounting (file size, dead bytes, dead ratio), read
    /// from the shard footers.
    pub fn shard_space(&self) -> Result<Vec<FileSpaceStats>, EngineError> {
        Ok(shard::shard_space_stats(&self.manifest)?)
    }

    /// Lifetime maintenance counters.
    pub fn maintenance_stats(&self) -> MaintenanceStats {
        *self.stats.lock().expect("stats lock poisoned")
    }

    /// Run one maintenance pass synchronously: finish pending tombstones,
    /// then compact every shard whose dead-byte ratio exceeds the
    /// configured threshold. This is exactly what the background thread
    /// runs; exposed so tests and operators can drive maintenance
    /// deterministically.
    pub fn maintenance_pass(&self) -> Result<MaintenanceStats, EngineError> {
        let _w = self.write.lock().expect("write lock poisoned");
        let recovered = shard::apply_pending_tombstones(&self.manifest)?;
        let space = shard::shard_space_stats(&self.manifest)?;
        let mut compactions = 0u64;
        let mut reclaimed = 0u64;
        let mut max_ratio = 0.0f64;
        for (i, s) in space.iter().enumerate() {
            max_ratio = max_ratio.max(s.dead_ratio());
            if s.dead_bytes > 0 && s.dead_ratio() > self.config.dead_ratio {
                let stats = shard::compact_shard(&self.manifest, i)?;
                compactions += 1;
                reclaimed += stats.reclaimed_bytes;
            }
        }
        if compactions > 0 || recovered.shards_rewritten > 0 {
            self.reopen()?;
        }
        let mut stats = self.stats.lock().expect("stats lock poisoned");
        stats.passes += 1;
        stats.auto_compactions += compactions;
        stats.reclaimed_bytes += reclaimed;
        stats.tombstone_users_applied += recovered.users_deleted as u64;
        stats.last_max_dead_ratio = max_ratio;
        Ok(*stats)
    }

    /// Wake the maintenance thread now (no-op without one).
    fn poke(&self) {
        let mut st = self.wake.state.lock().expect("wake lock poisoned");
        st.poked = true;
        self.wake.cv.notify_all();
    }
}

impl Drop for ShardedTable {
    fn drop(&mut self) {
        // Tell the maintenance thread to exit now instead of discovering
        // the dead Weak only after its next poll interval.
        let mut st = self.wake.state.lock().expect("wake lock poisoned");
        st.stopped = true;
        self.wake.cv.notify_all();
    }
}

impl std::fmt::Debug for ShardedTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedTable")
            .field("manifest", &self.manifest)
            .field("shards", &self.num_shards())
            .field("auto_compact", &self.config.auto_compact)
            .finish()
    }
}

/// Body of the background maintenance thread: sleep until poked (an ingest
/// happened) or the poll interval elapses, then run one pass. Holding only
/// a [`Weak`], the thread cannot keep the table alive; it exits as soon as
/// the table is dropped (the drop notifies `stopped`) or the upgrade fails.
fn maintenance_loop(weak: Weak<ShardedTable>, wake: Arc<Wake>, interval: Duration) {
    loop {
        {
            let mut st = wake.state.lock().expect("wake lock poisoned");
            if !st.poked && !st.stopped {
                let (guard, _) = wake.cv.wait_timeout(st, interval).expect("wake lock poisoned");
                st = guard;
            }
            if st.stopped {
                return;
            }
            st.poked = false;
        }
        let Some(table) = weak.upgrade() else { return };
        // Maintenance failures (e.g. a cross-process lock timeout) are
        // retried on the next wake-up; they must not kill the thread.
        let _ = table.maintenance_pass();
    }
}
