//! Per-query execution statistics.
//!
//! [`QueryStats`] is the query-scoped counterpart of the *source-lifetime*
//! [`SourceIoStats`]: every
//! [`QueryStream`](crate::QueryStream) carries an
//! [`IoRecorder`](cohana_storage::IoRecorder) installed on the threads that
//! decode for it (the serial pull, or each parallel worker for its whole
//! lifetime), so every storage counter bump is credited to exactly one
//! query at the increment site. That makes the I/O fields *exact* even when
//! many queries decode on the same source concurrently — the property the
//! serving layer's per-tenant accounting depends on. The executor adds the
//! purely query-level dimensions the storage layer cannot know: how many
//! chunks the planner's §4.2 metadata pruning skipped, how many the stream
//! actually scanned, and the wall time.

use cohana_storage::SourceIoStats;
use std::fmt;
use std::time::Duration;

/// What one query execution cost, measured at the chunk pipeline.
///
/// All counters are exact, including under source-level concurrency: the
/// I/O fields (`chunks_decoded`, `columns_decoded`, `bytes_read`,
/// `cache_evictions`) are credited per increment to the query whose thread
/// performed them, not inferred from lifetime-counter deltas. Chunks
/// decoded by parallel workers whose batches were never pulled — early
/// termination — are still attributed to the query that caused them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Chunks the source holds.
    pub chunks_total: usize,
    /// Chunks skipped from index metadata alone (§4.2), with zero I/O.
    pub chunks_pruned: usize,
    /// Chunks whose batch was pulled through the stream.
    pub chunks_scanned: usize,
    /// Rows covered by the scanned chunks' fused per-chunk passes. A chunk
    /// whose per-chunk specialized predicates prove it irrelevant without
    /// touching a row contributes 0, so together with `wall_time` this
    /// yields an honest end-to-end scan rate
    /// ([`QueryStats::rows_per_sec`]).
    pub rows_scanned: u64,
    /// Chunk skeletons decoded from backing storage (0 for resident tables,
    /// and less than `chunks_scanned` when the segment cache hits).
    pub chunks_decoded: usize,
    /// Individual column segments decoded (v3 column-addressable sources).
    pub columns_decoded: usize,
    /// Payload bytes read from backing storage (on-disk bytes; compressed
    /// for v4 blobs).
    pub bytes_read: u64,
    /// Bytes those blobs decoded to. Equals `bytes_read` on raw (v1–v3)
    /// sources; the gap is what the v4 codecs saved on the disk path.
    pub bytes_decompressed: u64,
    /// Segment-cache entries evicted while this query ran.
    pub cache_evictions: u64,
    /// Result batches the stream yielded (one per scanned chunk).
    pub batches: usize,
    /// User-block morsels the scheduler executed — the work units of the
    /// morsel-driven scan (also counted on the serial path, which walks the
    /// same morsel tiling). Skipped chunks contribute 0.
    pub morsels_executed: u64,
    /// Total nanoseconds workers spent decoding chunks and executing
    /// morsels, summed across workers (serial executions accumulate their
    /// per-chunk run time here). `worker_busy_ns / (workers × wall_time)`
    /// is the scheduler's utilization; the gap to 1.0 is idle/steal time.
    pub worker_busy_ns: u64,
    /// Wall-clock time from stream creation to exhaustion (or drop).
    pub wall_time: Duration,
}

impl QueryStats {
    /// Attribute recorded source I/O (an
    /// [`IoRecorder`](cohana_storage::IoRecorder) snapshot) to this query.
    pub(crate) fn add_io(&mut self, delta: &SourceIoStats) {
        self.chunks_decoded += delta.chunks_decoded;
        self.columns_decoded += delta.columns_decoded;
        self.bytes_read += delta.bytes_read;
        self.bytes_decompressed += delta.bytes_decompressed;
        self.cache_evictions += delta.cache_evictions;
    }

    /// End-to-end scan rate: rows covered per wall-clock second (0.0 when
    /// no time was measured).
    pub fn rows_per_sec(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs > 0.0 {
            self.rows_scanned as f64 / secs
        } else {
            0.0
        }
    }

    /// Fold another execution's counters into a cumulative total (used by
    /// [`Statement::cumulative_stats`](crate::Statement::cumulative_stats)).
    pub fn absorb(&mut self, other: &QueryStats) {
        self.chunks_total += other.chunks_total;
        self.chunks_pruned += other.chunks_pruned;
        self.chunks_scanned += other.chunks_scanned;
        self.rows_scanned += other.rows_scanned;
        self.chunks_decoded += other.chunks_decoded;
        self.columns_decoded += other.columns_decoded;
        self.bytes_read += other.bytes_read;
        self.bytes_decompressed += other.bytes_decompressed;
        self.cache_evictions += other.cache_evictions;
        self.batches += other.batches;
        self.morsels_executed += other.morsels_executed;
        self.worker_busy_ns += other.worker_busy_ns;
        self.wall_time += other.wall_time;
    }

    /// Whether every counter of `self` is at least the corresponding counter
    /// of `earlier` — the invariant of a statement's cumulative stats across
    /// re-executions.
    pub fn dominates(&self, earlier: &QueryStats) -> bool {
        self.chunks_total >= earlier.chunks_total
            && self.chunks_pruned >= earlier.chunks_pruned
            && self.chunks_scanned >= earlier.chunks_scanned
            && self.rows_scanned >= earlier.rows_scanned
            && self.chunks_decoded >= earlier.chunks_decoded
            && self.columns_decoded >= earlier.columns_decoded
            && self.bytes_read >= earlier.bytes_read
            && self.bytes_decompressed >= earlier.bytes_decompressed
            && self.cache_evictions >= earlier.cache_evictions
            && self.batches >= earlier.batches
            && self.morsels_executed >= earlier.morsels_executed
            && self.worker_busy_ns >= earlier.worker_busy_ns
            && self.wall_time >= earlier.wall_time
    }
}

impl fmt::Display for QueryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} of {} chunks scanned ({} pruned), {} rows, {} morsels, {} chunks / {} columns \
             decoded, {} bytes read ({} decoded), {} evictions, {:.2}ms busy, {:.1?} \
             ({:.1}M rows/s)",
            self.chunks_scanned,
            self.chunks_total,
            self.chunks_pruned,
            self.rows_scanned,
            self.morsels_executed,
            self.chunks_decoded,
            self.columns_decoded,
            self.bytes_read,
            self.bytes_decompressed,
            self.cache_evictions,
            self.worker_busy_ns as f64 / 1e6,
            self.wall_time,
            self.rows_per_sec() / 1e6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QueryStats {
        QueryStats {
            chunks_total: 4,
            chunks_pruned: 1,
            chunks_scanned: 3,
            rows_scanned: 600,
            chunks_decoded: 3,
            columns_decoded: 9,
            bytes_read: 1024,
            bytes_decompressed: 1536,
            cache_evictions: 2,
            batches: 3,
            morsels_executed: 12,
            worker_busy_ns: 4_000_000,
            wall_time: Duration::from_millis(5),
        }
    }

    #[test]
    fn absorb_sums_and_dominates() {
        let one = sample();
        let mut cum = QueryStats::default();
        cum.absorb(&one);
        assert_eq!(cum, one);
        let first = cum;
        cum.absorb(&one);
        assert_eq!(cum.chunks_scanned, 6);
        assert_eq!(cum.bytes_read, 2048);
        assert!(cum.dominates(&first));
        assert!(!first.dominates(&cum));
        assert!(first.dominates(&first));
    }

    #[test]
    fn display_mentions_chunks_rows_and_bytes() {
        let s = sample().to_string();
        assert!(s.contains("3 of 4 chunks"));
        assert!(s.contains("600 rows"));
        assert!(s.contains("12 morsels"));
        assert!(s.contains("1024 bytes"));
        assert!(s.contains("1536 decoded"));
        assert!(s.contains("4.00ms busy"));
        assert!(s.contains("rows/s"));
    }

    #[test]
    fn rows_per_sec_derives_from_rows_and_wall_time() {
        let s = sample();
        assert_eq!(s.rows_per_sec(), 600.0 / 0.005);
        assert_eq!(QueryStats::default().rows_per_sec(), 0.0);
    }
}
