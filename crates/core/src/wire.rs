//! Wire-format result batches: the network-portable form of a
//! [`ResultBatch`](crate::ResultBatch).
//!
//! A [`ResultBatch`](crate::ResultBatch) holds cohort keys in their *encoded* form (global ids,
//! bit-cast integers, binned timestamps) plus the executor context needed to
//! decode them — none of which survives a process boundary. A [`WireBatch`]
//! is the same partial aggregation with every cohort key decoded to
//! [`Value`]s, so a remote client can merge batches without the table's
//! dictionaries. Convert with
//! [`Statement::wire_batch`](crate::Statement::wire_batch); merge client-side
//! with [`ReportAssembler`], whose [`finish`](ReportAssembler::finish)
//! reproduces the engine's report bit-for-bit (same row order, same
//! cohort-size semantics), because aggregate partials are additive across
//! chunks and key decoding is injective.
//!
//! The module also carries the compact little-endian binary codec the
//! `cohana-server` protocol uses for batch and stats payloads
//! ([`WireWriter`] / [`WireReader`]); decode failures surface as
//! [`EngineError::Corrupt`] so a malformed payload can never panic a reader.

use crate::agg::AggState;
use crate::error::EngineError;
use crate::report::{CohortReport, ReportRow};
use crate::stats::QueryStats;
use cohana_activity::Value;
use std::collections::BTreeMap;
use std::time::Duration;

/// One per-chunk partial result with decoded cohort keys — the unit the
/// server streams to clients (one BATCH frame each).
///
/// Like [`ResultBatch`](crate::ResultBatch), a `WireBatch` is *partial*: the
/// same `(cohort, age)` cell may appear in many batches and their
/// contributions add.
#[derive(Debug, Clone, PartialEq)]
pub struct WireBatch {
    /// Index of the source chunk that produced this batch.
    pub chunk_index: u64,
    /// Rows of the source chunk the scan covered.
    pub rows_scanned: u64,
    /// User-block morsels executed to produce this batch.
    pub morsels: u64,
    /// Cohort → qualified users in this chunk.
    pub sizes: Vec<(Vec<Value>, u64)>,
    /// `(cohort, age)` → one partial state per aggregate.
    pub cells: Vec<(Vec<Value>, i64, Vec<AggState>)>,
}

impl WireBatch {
    /// Serialize into the binary wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u64(self.chunk_index);
        w.u64(self.rows_scanned);
        w.u64(self.morsels);
        w.u32(self.sizes.len() as u32);
        for (cohort, size) in &self.sizes {
            encode_values(&mut w, cohort);
            w.u64(*size);
        }
        w.u32(self.cells.len() as u32);
        for (cohort, age, states) in &self.cells {
            encode_values(&mut w, cohort);
            w.i64(*age);
            w.u16(states.len() as u16);
            for s in states {
                encode_agg_state(&mut w, s);
            }
        }
        w.into_bytes()
    }

    /// Deserialize from the binary wire form.
    pub fn decode(bytes: &[u8]) -> Result<WireBatch, EngineError> {
        let mut r = WireReader::new(bytes);
        let chunk_index = r.u64()?;
        let rows_scanned = r.u64()?;
        let morsels = r.u64()?;
        let n_sizes = r.u32()? as usize;
        let mut sizes = Vec::with_capacity(n_sizes.min(1 << 16));
        for _ in 0..n_sizes {
            let cohort = decode_values(&mut r)?;
            sizes.push((cohort, r.u64()?));
        }
        let n_cells = r.u32()? as usize;
        let mut cells = Vec::with_capacity(n_cells.min(1 << 16));
        for _ in 0..n_cells {
            let cohort = decode_values(&mut r)?;
            let age = r.i64()?;
            let n_states = r.u16()? as usize;
            let mut states = Vec::with_capacity(n_states);
            for _ in 0..n_states {
                states.push(decode_agg_state(&mut r)?);
            }
            cells.push((cohort, age, states));
        }
        r.finish()?;
        Ok(WireBatch { chunk_index, rows_scanned, morsels, sizes, cells })
    }
}

/// Client-side merge of [`WireBatch`]es back into a [`CohortReport`].
///
/// Feed it every batch of one execution, then [`finish`](Self::finish): the
/// result equals what [`Statement::execute`](crate::Statement::execute)
/// returns in-process (compared with `CohortReport`'s stats-ignoring
/// equality). Cohort keys sort by their decoded [`Value`]s, which matches
/// the engine's row order; a cohort with a size but no qualifying cells
/// contributes no rows, and a cell whose cohort never reported a size (never
/// happens in engine-produced batches) gets size 0 — both exactly as the
/// engine's own report builder behaves.
#[derive(Debug)]
pub struct ReportAssembler {
    cohort_attrs: Vec<String>,
    agg_names: Vec<String>,
    sizes: BTreeMap<Vec<Value>, u64>,
    cells: BTreeMap<Vec<Value>, BTreeMap<i64, Vec<AggState>>>,
}

impl ReportAssembler {
    /// Start assembling a report with the given headers (from the PREPARE
    /// response, or [`CohortQuery`](crate::CohortQuery) directly).
    pub fn new(cohort_attrs: Vec<String>, agg_names: Vec<String>) -> ReportAssembler {
        ReportAssembler { cohort_attrs, agg_names, sizes: BTreeMap::new(), cells: BTreeMap::new() }
    }

    /// Fold one batch in. Sizes add; aggregate states merge (commutative, so
    /// batch arrival order does not matter).
    pub fn push(&mut self, batch: &WireBatch) -> Result<(), EngineError> {
        for (cohort, size) in &batch.sizes {
            *self.sizes.entry(cohort.clone()).or_insert(0) += size;
        }
        for (cohort, age, states) in &batch.cells {
            let ages = self.cells.entry(cohort.clone()).or_default();
            match ages.entry(*age) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(states.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    let into = o.get_mut();
                    if into.len() != states.len() {
                        return Err(EngineError::Corrupt(format!(
                            "aggregate arity mismatch across batches: {} vs {}",
                            into.len(),
                            states.len()
                        )));
                    }
                    for (a, b) in into.iter_mut().zip(states.iter()) {
                        a.merge(b)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Finalize into the report, sorted by (cohort, age). Carries no stats
    /// (the server reports those separately in its STATS frame).
    pub fn finish(self) -> CohortReport {
        let mut rows = Vec::with_capacity(self.cells.values().map(BTreeMap::len).sum());
        for (cohort, ages) in &self.cells {
            let size = self.sizes.get(cohort).copied().unwrap_or(0);
            for (age, states) in ages {
                rows.push(ReportRow {
                    cohort: cohort.clone(),
                    size,
                    age: *age,
                    measures: states.iter().map(|s| s.finalize()).collect(),
                });
            }
        }
        CohortReport {
            cohort_attrs: self.cohort_attrs,
            agg_names: self.agg_names,
            rows,
            cohort_sizes: self.sizes,
            stats: None,
        }
    }
}

/// Serialize a [`QueryStats`] (for STATS frame payloads).
pub fn encode_query_stats(w: &mut WireWriter, s: &QueryStats) {
    w.u64(s.chunks_total as u64);
    w.u64(s.chunks_pruned as u64);
    w.u64(s.chunks_scanned as u64);
    w.u64(s.rows_scanned);
    w.u64(s.chunks_decoded as u64);
    w.u64(s.columns_decoded as u64);
    w.u64(s.bytes_read);
    w.u64(s.bytes_decompressed);
    w.u64(s.cache_evictions);
    w.u64(s.batches as u64);
    w.u64(s.morsels_executed);
    w.u64(s.worker_busy_ns);
    w.u64(s.wall_time.as_nanos() as u64);
}

/// Deserialize a [`QueryStats`] written by [`encode_query_stats`].
pub fn decode_query_stats(r: &mut WireReader<'_>) -> Result<QueryStats, EngineError> {
    Ok(QueryStats {
        chunks_total: r.u64()? as usize,
        chunks_pruned: r.u64()? as usize,
        chunks_scanned: r.u64()? as usize,
        rows_scanned: r.u64()?,
        chunks_decoded: r.u64()? as usize,
        columns_decoded: r.u64()? as usize,
        bytes_read: r.u64()?,
        bytes_decompressed: r.u64()?,
        cache_evictions: r.u64()?,
        batches: r.u64()? as usize,
        morsels_executed: r.u64()?,
        worker_busy_ns: r.u64()?,
        wall_time: Duration::from_nanos(r.u64()?),
    })
}

fn encode_values(w: &mut WireWriter, values: &[Value]) {
    w.u16(values.len() as u16);
    for v in values {
        match v {
            Value::Null => w.u8(0),
            Value::Int(i) => {
                w.u8(1);
                w.i64(*i);
            }
            Value::Str(s) => {
                w.u8(2);
                w.str(s);
            }
        }
    }
}

fn decode_values(r: &mut WireReader<'_>) -> Result<Vec<Value>, EngineError> {
    let n = r.u16()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(match r.u8()? {
            0 => Value::Null,
            1 => Value::Int(r.i64()?),
            2 => Value::str(r.str()?),
            t => return Err(EngineError::Corrupt(format!("unknown value tag {t}"))),
        });
    }
    Ok(out)
}

fn encode_agg_state(w: &mut WireWriter, s: &AggState) {
    match s {
        AggState::Sum(v) => {
            w.u8(0);
            w.i64(*v);
        }
        AggState::Avg { sum, count } => {
            w.u8(1);
            w.i64(*sum);
            w.u64(*count);
        }
        AggState::Min(m) => {
            w.u8(2);
            encode_opt_i64(w, m);
        }
        AggState::Max(m) => {
            w.u8(3);
            encode_opt_i64(w, m);
        }
        AggState::Count(c) => {
            w.u8(4);
            w.u64(*c);
        }
        AggState::UserCount(c) => {
            w.u8(5);
            w.u64(*c);
        }
    }
}

fn decode_agg_state(r: &mut WireReader<'_>) -> Result<AggState, EngineError> {
    Ok(match r.u8()? {
        0 => AggState::Sum(r.i64()?),
        1 => AggState::Avg { sum: r.i64()?, count: r.u64()? },
        2 => AggState::Min(decode_opt_i64(r)?),
        3 => AggState::Max(decode_opt_i64(r)?),
        4 => AggState::Count(r.u64()?),
        5 => AggState::UserCount(r.u64()?),
        t => return Err(EngineError::Corrupt(format!("unknown aggregate-state tag {t}"))),
    })
}

fn encode_opt_i64(w: &mut WireWriter, v: &Option<i64>) {
    match v {
        None => w.u8(0),
        Some(x) => {
            w.u8(1);
            w.i64(*x);
        }
    }
}

fn decode_opt_i64(r: &mut WireReader<'_>) -> Result<Option<i64>, EngineError> {
    Ok(match r.u8()? {
        0 => None,
        1 => Some(r.i64()?),
        t => return Err(EngineError::Corrupt(format!("unknown option tag {t}"))),
    })
}

/// Little-endian payload writer for the wire codec. Strings are
/// `u32 length + UTF-8 bytes`.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// A fresh, empty writer.
    pub fn new() -> WireWriter {
        WireWriter::default()
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// The accumulated payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked reader over a wire payload. Every method fails with
/// [`EngineError::Corrupt`] instead of panicking on truncated or malformed
/// input.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], EngineError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| EngineError::Corrupt("truncated wire payload".into()))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, EngineError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, EngineError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, EngineError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, EngineError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, EngineError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, EngineError> {
        let len = self.u32()? as usize;
        std::str::from_utf8(self.take(len)?)
            .map_err(|_| EngineError::Corrupt("invalid UTF-8 in wire string".into()))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Assert the payload was consumed exactly.
    pub fn finish(self) -> Result<(), EngineError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(EngineError::Corrupt(format!(
                "{} trailing bytes after wire payload",
                self.buf.len() - self.pos
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggValue;

    fn sample_batch() -> WireBatch {
        WireBatch {
            chunk_index: 3,
            rows_scanned: 1000,
            morsels: 7,
            sizes: vec![
                (vec![Value::str("Australia")], 3),
                (vec![Value::str("China")], 5),
                (vec![Value::Int(-4), Value::Null], 1),
            ],
            cells: vec![
                (vec![Value::str("Australia")], 1, vec![AggState::Sum(52), AggState::UserCount(3)]),
                (vec![Value::str("China")], 2, vec![AggState::Min(None), AggState::UserCount(5)]),
                (
                    vec![Value::Int(-4), Value::Null],
                    1,
                    vec![AggState::Avg { sum: 9, count: 2 }, AggState::Max(Some(-1))],
                ),
            ],
        }
    }

    #[test]
    fn batch_codec_roundtrips() {
        let batch = sample_batch();
        let bytes = batch.encode();
        assert_eq!(WireBatch::decode(&bytes).unwrap(), batch);
    }

    #[test]
    fn decode_rejects_truncation_and_trailing_garbage() {
        let bytes = sample_batch().encode();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                matches!(WireBatch::decode(&bytes[..cut]), Err(EngineError::Corrupt(_))),
                "cut at {cut} must fail"
            );
        }
        let mut extended = bytes.clone();
        extended.push(0xff);
        assert!(matches!(WireBatch::decode(&extended), Err(EngineError::Corrupt(_))));
    }

    #[test]
    fn decode_rejects_unknown_tags() {
        // A batch with one size entry whose single value has a bogus tag.
        let mut w = WireWriter::new();
        w.u64(0);
        w.u64(0);
        w.u64(0);
        w.u32(1); // one size entry
        w.u16(1); // one value in the cohort key
        w.u8(9); // bogus value tag
        w.u64(1);
        w.u32(0); // no cells
        assert!(matches!(WireBatch::decode(&w.into_bytes()), Err(EngineError::Corrupt(_))));
    }

    #[test]
    fn query_stats_codec_roundtrips() {
        let stats = QueryStats {
            chunks_total: 4,
            chunks_pruned: 1,
            chunks_scanned: 3,
            rows_scanned: 600,
            chunks_decoded: 3,
            columns_decoded: 9,
            bytes_read: 1024,
            bytes_decompressed: 1536,
            cache_evictions: 2,
            batches: 3,
            morsels_executed: 12,
            worker_busy_ns: 4_000_000,
            wall_time: Duration::from_millis(5),
        };
        let mut w = WireWriter::new();
        encode_query_stats(&mut w, &stats);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(decode_query_stats(&mut r).unwrap(), stats);
        r.finish().unwrap();
    }

    #[test]
    fn assembler_merges_batches_in_any_order() {
        let a = WireBatch {
            chunk_index: 0,
            rows_scanned: 10,
            morsels: 1,
            sizes: vec![(vec![Value::str("au")], 2)],
            cells: vec![(vec![Value::str("au")], 1, vec![AggState::Sum(5)])],
        };
        let b = WireBatch {
            chunk_index: 1,
            rows_scanned: 10,
            morsels: 1,
            sizes: vec![(vec![Value::str("au")], 1), (vec![Value::str("cn")], 4)],
            cells: vec![
                (vec![Value::str("au")], 1, vec![AggState::Sum(7)]),
                (vec![Value::str("cn")], 2, vec![AggState::Sum(1)]),
            ],
        };
        let assemble = |batches: &[&WireBatch]| {
            let mut asm = ReportAssembler::new(vec!["country".into()], vec!["Sum(gold)".into()]);
            for batch in batches {
                asm.push(batch).unwrap();
            }
            asm.finish()
        };
        let ab = assemble(&[&a, &b]);
        let ba = assemble(&[&b, &a]);
        assert_eq!(ab, ba);
        assert_eq!(ab.num_rows(), 2);
        let row = ab.find(&[Value::str("au")], 1).unwrap();
        assert_eq!(row.size, 3);
        assert_eq!(row.measures, vec![AggValue::Int(12)]);
        assert_eq!(ab.cohort_sizes[&vec![Value::str("cn")]], 4);
    }

    #[test]
    fn assembler_rejects_arity_mismatch() {
        let one = WireBatch {
            chunk_index: 0,
            rows_scanned: 1,
            morsels: 1,
            sizes: vec![],
            cells: vec![(vec![Value::str("au")], 1, vec![AggState::Sum(5)])],
        };
        let two = WireBatch {
            cells: vec![(vec![Value::str("au")], 1, vec![AggState::Sum(5), AggState::Count(1)])],
            ..one.clone()
        };
        let mut asm = ReportAssembler::new(vec![], vec![]);
        asm.push(&one).unwrap();
        assert!(asm.push(&two).is_err());
    }
}
