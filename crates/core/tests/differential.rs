//! Differential tests: the optimized COHANA executor must produce exactly
//! the results of the naive reference evaluator (the executable spec of
//! Definitions 1–6) for every benchmark query, under every combination of
//! optimizer flags, chunk sizes, and parallelism.

use cohana_activity::{generate, GeneratorConfig, Timestamp};
use cohana_core::naive::naive_execute;
use cohana_core::paper;
use cohana_core::{
    AggFunc, Cohana, CohortQuery, CohortReport, EngineOptions, Expr, PlannerOptions, Statement,
};
use cohana_storage::{CompressedTable, CompressionOptions};
use std::sync::Arc;

fn dataset() -> cohana_activity::ActivityTable {
    generate(&GeneratorConfig::new(150))
}

fn assert_reports_equal(optimized: &CohortReport, reference: &CohortReport, what: &str) {
    assert_eq!(
        optimized.rows.len(),
        reference.rows.len(),
        "{what}: row count mismatch\noptimized:\n{optimized}\nreference:\n{reference}"
    );
    for (a, b) in optimized.rows.iter().zip(reference.rows.iter()) {
        assert_eq!(a.cohort, b.cohort, "{what}: cohort mismatch");
        assert_eq!(a.age, b.age, "{what}: age mismatch for cohort {:?}", a.cohort);
        assert_eq!(a.size, b.size, "{what}: size mismatch for cohort {:?}", a.cohort);
        assert_eq!(a.measures.len(), b.measures.len());
        for (x, y) in a.measures.iter().zip(b.measures.iter()) {
            assert!(
                x.approx_eq(y),
                "{what}: measure mismatch at cohort {:?} age {}: {x:?} vs {y:?}",
                a.cohort,
                a.age
            );
        }
    }
    assert_eq!(optimized.cohort_sizes, reference.cohort_sizes, "{what}: cohort sizes");
}

fn check_query(query: &CohortQuery, what: &str) {
    let table = dataset();
    let reference = naive_execute(&table, query).expect("naive evaluation succeeds");
    for chunk_size in [64usize, 1024, 1 << 20] {
        let compressed = Arc::new(
            CompressedTable::build(&table, CompressionOptions::with_chunk_size(chunk_size))
                .expect("compression succeeds"),
        );
        for options in [
            PlannerOptions::default(),
            PlannerOptions::naive(),
            PlannerOptions { push_down_birth_selection: false, ..Default::default() },
            PlannerOptions { skip_unqualified_users: false, ..Default::default() },
            PlannerOptions { prune_chunks: false, ..Default::default() },
            PlannerOptions { array_aggregation: false, ..Default::default() },
        ] {
            for parallelism in [1usize, 4] {
                let stmt = Statement::over(compressed.clone(), query, options, parallelism)
                    .expect("planning succeeds");
                let got = stmt.execute().expect("execution succeeds");
                assert_reports_equal(
                    &got,
                    &reference,
                    &format!("{what} (chunk={chunk_size}, {options:?}, par={parallelism})"),
                );
            }
        }
    }
}

#[test]
fn q1_matches_reference() {
    check_query(&paper::q1(), "Q1");
}

#[test]
fn q2_matches_reference() {
    check_query(&paper::q2(), "Q2");
}

#[test]
fn q3_matches_reference() {
    check_query(&paper::q3(), "Q3");
}

#[test]
fn q4_matches_reference() {
    check_query(&paper::q4(), "Q4");
}

#[test]
fn q5_matches_reference() {
    let d1 = Timestamp::parse("2013-05-19").unwrap().secs();
    let d2 = Timestamp::parse("2013-05-30").unwrap().secs();
    check_query(&paper::q5(d1, d2), "Q5");
}

#[test]
fn q6_matches_reference() {
    let d1 = Timestamp::parse("2013-05-19").unwrap().secs();
    let d2 = Timestamp::parse("2013-06-05").unwrap().secs();
    check_query(&paper::q6(d1, d2), "Q6");
}

#[test]
fn q7_matches_reference() {
    check_query(&paper::q7(7), "Q7");
}

#[test]
fn q8_matches_reference() {
    check_query(&paper::q8(5), "Q8");
}

#[test]
fn example1_matches_reference() {
    check_query(&paper::example1(), "Example1");
}

#[test]
fn weekly_time_cohorts_match_reference() {
    check_query(&paper::shopping_trend(), "shopping-trend");
}

#[test]
fn shop_birth_action_matches_reference() {
    // Births defined by a non-first action exercise pre-birth tuple
    // exclusion (negative ages).
    let q = CohortQuery::builder("shop")
        .cohort_by(["country"])
        .aggregate(AggFunc::sum("gold"))
        .aggregate(AggFunc::count())
        .aggregate(AggFunc::user_count())
        .build()
        .unwrap();
    check_query(&q, "shop-birth");
}

#[test]
fn achievement_birth_action_matches_reference() {
    let q = CohortQuery::builder("achievement")
        .cohort_by(["role"])
        .aggregate(AggFunc::min("session"))
        .aggregate(AggFunc::max("session"))
        .build()
        .unwrap();
    check_query(&q, "achievement-birth");
}

#[test]
fn multi_attribute_cohorts_match_reference() {
    let q = CohortQuery::builder("launch")
        .cohort_by(["country", "role"])
        .aggregate(AggFunc::count())
        .build()
        .unwrap();
    check_query(&q, "multi-attr");
}

#[test]
fn birth_role_filter_matches_reference() {
    // Paper's Q4-style birth role predicate alone.
    let q = CohortQuery::builder("launch")
        .birth_where(Expr::attr("role").eq(Expr::lit_str("dwarf")))
        .cohort_by(["country"])
        .aggregate(AggFunc::user_count())
        .build()
        .unwrap();
    check_query(&q, "birth-role");
}

#[test]
fn birth_country_of_age_tuples_matches_reference() {
    // σg with Birth() reference and inequality.
    let q = CohortQuery::builder("launch")
        .age_where(Expr::attr("country").ne(Expr::birth("country")).not())
        .cohort_by(["country"])
        .aggregate(AggFunc::count())
        .build()
        .unwrap();
    check_query(&q, "birth-ref-not");
}

#[test]
fn disjunctive_age_predicate_matches_reference() {
    let q = CohortQuery::builder("launch")
        .age_where(
            Expr::attr("action")
                .eq(Expr::lit_str("shop"))
                .or(Expr::attr("action").eq(Expr::lit_str("fight"))),
        )
        .cohort_by(["country"])
        .aggregate(AggFunc::count())
        .build()
        .unwrap();
    check_query(&q, "disjunction");
}

#[test]
fn string_ordering_predicate_matches_reference() {
    // Ordering on a dictionary column with a literal absent from the dict.
    let q = CohortQuery::builder("launch")
        .age_where(Expr::attr("action").lt(Expr::lit_str("m")))
        .cohort_by(["country"])
        .aggregate(AggFunc::count())
        .build()
        .unwrap();
    check_query(&q, "string-ordering");
}

#[test]
fn empty_result_for_unknown_birth_action() {
    let table = dataset();
    let q = CohortQuery::builder("no-such-action")
        .cohort_by(["country"])
        .aggregate(AggFunc::count())
        .build()
        .unwrap();
    let engine = Cohana::from_activity_table(&table, CompressionOptions::default()).unwrap();
    let report = engine.execute(&q).unwrap();
    assert!(report.is_empty());
    assert!(report.cohort_sizes.is_empty());
    let reference = naive_execute(&table, &q).unwrap();
    assert!(reference.is_empty());
}

#[test]
fn monthly_age_bins_match_reference() {
    let q = CohortQuery::builder("launch")
        .age_where(Expr::attr("action").eq(Expr::lit_str("shop")))
        .cohort_by(["country"])
        .age_bin(cohana_activity::TimeBin::Month)
        .aggregate(AggFunc::avg("gold"))
        .build()
        .unwrap();
    check_query(&q, "monthly-bins");
}

#[test]
fn int_in_list_and_between_on_measures_match_reference() {
    // Integer IN lists and BETWEEN on a measure column (not just time).
    let q = CohortQuery::builder("launch")
        .age_where(
            Expr::attr("session")
                .in_list([
                    cohana_activity::Value::Int(5),
                    cohana_activity::Value::Int(10),
                    cohana_activity::Value::Int(15),
                ])
                .or(Expr::attr("gold").between_int(40, 90)),
        )
        .cohort_by(["country"])
        .aggregate(AggFunc::count())
        .aggregate(AggFunc::sum("gold"))
        .build()
        .unwrap();
    check_query(&q, "int-inlist-between");
}

#[test]
fn ge_le_on_strings_match_reference() {
    // Ordering comparisons on dictionary columns (>=, <=) with present and
    // absent literals.
    for lit in ["shop", "m", "a", "zzz"] {
        let q = CohortQuery::builder("launch")
            .age_where(Expr::attr("action").ge(Expr::lit_str(lit)))
            .cohort_by(["country"])
            .aggregate(AggFunc::count())
            .build()
            .unwrap();
        check_query(&q, &format!("string-ge-{lit}"));
        let q2 = CohortQuery::builder("launch")
            .age_where(Expr::attr("action").le(Expr::lit_str(lit)))
            .cohort_by(["country"])
            .aggregate(AggFunc::count())
            .build()
            .unwrap();
        check_query(&q2, &format!("string-le-{lit}"));
    }
}

#[test]
fn birth_measure_reference_matches_reference() {
    // Birth() over a measure attribute: spend more than at birth.
    let q = CohortQuery::builder("shop")
        .age_where(
            Expr::attr("action")
                .eq(Expr::lit_str("shop"))
                .and(Expr::attr("gold").gt(Expr::birth("gold"))),
        )
        .cohort_by(["country"])
        .aggregate(AggFunc::count())
        .build()
        .unwrap();
    check_query(&q, "birth-measure");
}

#[test]
fn empty_in_list_yields_empty_age_rows() {
    let table = dataset();
    let q = CohortQuery::builder("launch")
        .age_where(Expr::attr("country").in_list(Vec::<cohana_activity::Value>::new()))
        .cohort_by(["country"])
        .aggregate(AggFunc::count())
        .build()
        .unwrap();
    let compressed = CompressedTable::build(&table, CompressionOptions::default()).unwrap();
    let got = Statement::over(Arc::new(compressed), &q, PlannerOptions::default(), 1)
        .unwrap()
        .execute()
        .unwrap();
    assert!(got.rows.is_empty());
    // Cohort sizes survive: users still qualify via the (absent) birth
    // predicate even though no age tuple passes.
    assert!(!got.cohort_sizes.is_empty());
    let reference = naive_execute(&table, &q).unwrap();
    assert_eq!(got.cohort_sizes, reference.cohort_sizes);
}

#[test]
fn engine_facade_equals_direct_execution() {
    let table = dataset();
    let q = paper::q3();
    let engine = Cohana::from_activity_table_with(
        &table,
        CompressionOptions::with_chunk_size(512),
        EngineOptions::default(),
    )
    .unwrap();
    let via_engine = engine.execute(&q).unwrap();
    let reference = naive_execute(&table, &q).unwrap();
    assert_reports_equal(&via_engine, &reference, "facade");
}
