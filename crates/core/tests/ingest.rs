//! Engine-level incremental-ingest tests: a table built by N-batch
//! `Cohana::ingest` (optionally followed by `compact`) must answer Q1–Q8
//! identically to the same table built once, across parallelism levels, and
//! prepared statements must keep snapshot semantics across ingest/compact.

use cohana_activity::{generate, ActivityTable, GeneratorConfig, TableBuilder, TimeBin, Timestamp};
use cohana_core::{paper, Cohana, CohortQuery, CohortReport, EngineError, EngineOptions};
use cohana_storage::{persist, CompressedTable, CompressionOptions};
use std::path::PathBuf;

const CHUNK: usize = 256;

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cohana-ingest-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn base_table() -> ActivityTable {
    generate(&GeneratorConfig::small())
}

/// Contiguous time slices: later batches revisit users of earlier ones, the
/// worst case for append (forces chunk rewrites).
fn split_by_time(table: &ActivityTable, k: usize) -> Vec<ActivityTable> {
    let tidx = table.schema().time_idx();
    let mut order: Vec<usize> = (0..table.num_rows()).collect();
    order.sort_by_key(|&r| table.rows()[r].get(tidx).as_int().unwrap());
    let per = table.num_rows().div_ceil(k);
    order
        .chunks(per)
        .map(|rows| {
            let mut b = TableBuilder::new(table.schema().clone());
            for &r in rows {
                b.push(table.rows()[r].values().to_vec()).unwrap();
            }
            b.finish().unwrap()
        })
        .collect()
}

/// The paper's eight benchmark queries, with the birth-range bounds derived
/// from the dataset window.
fn q1_to_q8(table: &ActivityTable) -> Vec<CohortQuery> {
    let tidx = table.schema().time_idx();
    let start = table.int_range(tidx).map(|(lo, _)| lo).unwrap_or(0);
    let day = TimeBin::Day.bin_start(Timestamp(start)).secs();
    let (d1, d2) = (day + 86_400, day + 7 * 86_400);
    vec![
        paper::q1(),
        paper::q2(),
        paper::q3(),
        paper::q4(),
        paper::q5(d1, d2),
        paper::q6(d1, d2),
        paper::q7(7),
        paper::q8(7),
    ]
}

/// Execute every query at the given parallelism against an engine's default
/// table.
fn run_all(engine: &Cohana, queries: &[CohortQuery], parallelism: usize) -> Vec<CohortReport> {
    let session = engine.session().with_parallelism(parallelism);
    queries.iter().map(|q| session.execute(q).expect("query executes")).collect()
}

/// Build an engine over a file assembled by K `ingest` calls.
fn engine_by_ingest(name: &str, batches: &[ActivityTable]) -> (Cohana, PathBuf) {
    let path = temp_path(name);
    let first =
        CompressedTable::build(&batches[0], CompressionOptions::with_chunk_size(CHUNK)).unwrap();
    persist::write_file(&first, &path).unwrap();
    let engine = Cohana::new(EngineOptions::default());
    let handle = engine.open(&path).open().unwrap();
    for batch in &batches[1..] {
        let stats = handle.ingest(batch).unwrap();
        assert_eq!(stats.rows_appended, batch.num_rows());
    }
    drop(handle);
    (engine, path)
}

#[test]
fn n_batch_ingest_matches_build_once_across_queries_and_parallelism() {
    let table = base_table();
    let queries = q1_to_q8(&table);

    // Build-once reference over a file source, like the ingested engine.
    let once_path = temp_path("build-once.cohana");
    let once = CompressedTable::build(&table, CompressionOptions::with_chunk_size(CHUNK)).unwrap();
    persist::write_file(&once, &once_path).unwrap();
    let reference = Cohana::new(EngineOptions::default());
    reference.open(&once_path).open().unwrap();

    let batches = split_by_time(&table, 3);
    let (ingested, path) = engine_by_ingest("three-batches.cohana", &batches);

    for parallelism in [1, 4] {
        let expect = run_all(&reference, &queries, parallelism);
        let got = run_all(&ingested, &queries, parallelism);
        assert_eq!(expect, got, "ingested reports diverge at parallelism {parallelism}");

        // Compaction must not change a single answer either.
        let cstats = ingested.table("GameActions").unwrap().compact().unwrap();
        assert_eq!(cstats.rows, table.num_rows());
        let compacted = run_all(&ingested, &queries, parallelism);
        assert_eq!(expect, compacted, "compacted reports diverge at parallelism {parallelism}");
    }

    // Compaction through the engine restores the exact build-once v4 image:
    // same header version, same bytes, codec selection included.
    let compacted_bytes = std::fs::read(&path).unwrap();
    assert_eq!(&compacted_bytes[4..8], &4u32.to_le_bytes(), "compacted file is not v4");
    assert_eq!(
        compacted_bytes,
        std::fs::read(&once_path).unwrap(),
        "engine compact of an ingested v4 file diverges from the build-once image"
    );

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&once_path).ok();
}

#[test]
fn ingest_into_memory_table_matches_build_once() {
    let table = base_table();
    let queries = q1_to_q8(&table);
    let batches = split_by_time(&table, 3);

    let reference =
        Cohana::from_activity_table(&table, CompressionOptions::with_chunk_size(CHUNK)).unwrap();
    let engine =
        Cohana::from_activity_table(&batches[0], CompressionOptions::with_chunk_size(CHUNK))
            .unwrap();
    for batch in &batches[1..] {
        engine.table("GameActions").unwrap().ingest(batch).unwrap();
    }
    assert_eq!(run_all(&reference, &queries, 1), run_all(&engine, &queries, 1));
    // A memory compact is a rebuild; answers are unchanged.
    engine.table("GameActions").unwrap().compact().unwrap();
    assert_eq!(run_all(&reference, &queries, 1), run_all(&engine, &queries, 1));
}

#[test]
fn ingested_file_reopens_identically() {
    let table = base_table();
    let queries = q1_to_q8(&table);
    let batches = split_by_time(&table, 4);
    let (ingested, path) = engine_by_ingest("reopen.cohana", &batches);
    let before = run_all(&ingested, &queries, 1);

    // A fresh process opening the appended file sees the same answers, both
    // lazily and eagerly.
    let lazy = Cohana::new(EngineOptions::default());
    lazy.open(&path).open().unwrap();
    assert_eq!(before, run_all(&lazy, &queries, 1));
    let eager = Cohana::new(EngineOptions::default());
    eager.open(&path).resident(true).open().unwrap();
    assert_eq!(before, run_all(&eager, &queries, 1));
    std::fs::remove_file(&path).ok();
}

#[test]
fn prepared_statements_keep_snapshot_semantics_across_ingest() {
    let table = base_table();
    let batches = split_by_time(&table, 2);
    let (engine, path) = {
        let path = temp_path("snapshot-stmt.cohana");
        let first = CompressedTable::build(&batches[0], CompressionOptions::with_chunk_size(CHUNK))
            .unwrap();
        persist::write_file(&first, &path).unwrap();
        let engine = Cohana::new(EngineOptions::default());
        engine.open(&path).open().unwrap();
        (engine, path)
    };

    let session = engine.session();
    let q1 = paper::q1();
    let stmt = session.prepare(&q1).unwrap();
    let before = stmt.execute().unwrap();

    engine.table("GameActions").unwrap().ingest(&batches[1]).unwrap();

    // The old statement pins the pre-ingest source: same answer, then and
    // now — even after the file is compacted underneath it.
    assert_eq!(stmt.execute().unwrap(), before);
    engine.table("GameActions").unwrap().compact().unwrap();
    assert_eq!(stmt.execute().unwrap(), before);

    // A statement prepared after the ingest sees the grown table: every
    // user launches, so total cohort size equals the user count.
    let fresh = session.prepare(&q1).unwrap().execute().unwrap();
    let total: u64 = fresh.cohort_sizes.values().sum();
    assert_eq!(total as usize, table.num_users());
    assert!(fresh.cohort_sizes.values().sum::<u64>() > before.cohort_sizes.values().sum::<u64>());
    std::fs::remove_file(&path).ok();
}

#[test]
fn concurrent_ingests_serialize_and_lose_nothing() {
    // The engine's write lock must serialize racing ingests: every batch
    // lands exactly once, on both the file-backed and the resident path.
    let table = base_table();
    let batches = split_by_time(&table, 5);
    let queries = q1_to_q8(&table);

    let (engine, path) = {
        let path = temp_path("concurrent.cohana");
        let first = CompressedTable::build(&batches[0], CompressionOptions::with_chunk_size(CHUNK))
            .unwrap();
        persist::write_file(&first, &path).unwrap();
        let engine = Cohana::new(EngineOptions::default());
        engine.open(&path).open().unwrap();
        (engine, path)
    };
    std::thread::scope(|s| {
        for batch in &batches[1..] {
            s.spawn(|| engine.table("GameActions").unwrap().ingest(batch).unwrap());
        }
    });
    let reference =
        Cohana::from_activity_table(&table, CompressionOptions::with_chunk_size(CHUNK)).unwrap();
    assert_eq!(run_all(&reference, &queries, 1), run_all(&engine, &queries, 1));

    let memory =
        Cohana::from_activity_table(&batches[0], CompressionOptions::with_chunk_size(CHUNK))
            .unwrap();
    std::thread::scope(|s| {
        for batch in &batches[1..] {
            s.spawn(|| memory.table("GameActions").unwrap().ingest(batch).unwrap());
        }
    });
    assert_eq!(run_all(&reference, &queries, 1), run_all(&memory, &queries, 1));
    std::fs::remove_file(&path).ok();
}

#[test]
fn ingest_rejects_generic_sources_and_unknown_tables() {
    let table = base_table();
    let engine =
        Cohana::from_activity_table(&table, CompressionOptions::with_chunk_size(CHUNK)).unwrap();
    let compressed =
        CompressedTable::build(&table, CompressionOptions::with_chunk_size(CHUNK)).unwrap();
    engine.register_source("generic", std::sync::Arc::new(compressed));

    let batch = split_by_time(&table, 2).remove(1);
    let generic = engine.table("generic").unwrap();
    assert!(matches!(generic.ingest(&batch).unwrap_err(), EngineError::Unsupported(_)));
    assert!(matches!(generic.compact().unwrap_err(), EngineError::Unsupported(_)));
    assert!(matches!(engine.table("nope").unwrap_err(), EngineError::UnknownTable(_)));
}

#[test]
fn ingest_of_v1_file_is_cleanly_rejected() {
    // An engine can only open v2/v3 lazily, but a v2 file-backed table must
    // reject ingest with the migration hint rather than corrupting the file.
    let table = base_table();
    let compressed =
        CompressedTable::build(&table, CompressionOptions::with_chunk_size(CHUNK)).unwrap();
    let path = temp_path("v2-ingest.cohana");
    std::fs::write(&path, persist::to_bytes_v2(&compressed)).unwrap();
    let engine = Cohana::new(EngineOptions::default());
    let handle = engine.open(&path).open().unwrap();
    let batch = split_by_time(&table, 2).remove(1);
    let err = handle.ingest(&batch).unwrap_err();
    match err {
        EngineError::Storage(msg) => assert!(msg.contains("re-save"), "no migration hint: {msg}"),
        other => panic!("expected Storage(Unsupported), got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}
