//! Regression test for exact per-query I/O attribution under source-level
//! concurrency.
//!
//! The serving layer's per-tenant accounting sums each query's
//! `QueryStats` I/O fields; if those were measured as deltas of the
//! source's lifetime counters (the old `SourceIoStats::delta_since`
//! scheme), two sessions decoding on the same `FileSource` concurrently
//! would each swallow the other's bytes and the per-tenant totals would
//! exceed what the source actually did. With `IoRecorder` crediting at the
//! increment site, every byte lands in exactly one query: the sum of
//! per-query counters must *equal* the source's lifetime delta, not merely
//! bound it.

use cohana_activity::{generate, GeneratorConfig};
use cohana_core::{paper, PlannerOptions, QueryStats, Statement};
use cohana_storage::{persist, ChunkSource, CompressedTable, CompressionOptions, FileSource};
use std::sync::{Arc, Barrier};

#[test]
fn concurrent_queries_on_one_source_do_not_double_count_io() {
    let table = generate(&GeneratorConfig::small());
    let memory = CompressedTable::build(&table, CompressionOptions::with_chunk_size(256)).unwrap();
    let path = std::env::temp_dir().join("cohana-io-attribution-test.cohana");
    persist::write_file(&memory, &path).unwrap();

    // Zero cache budget: nothing is ever served from cache, so every
    // execution does real I/O and the threads genuinely interleave on the
    // source.
    let source = Arc::new(FileSource::open_with_budget(&path, 0).unwrap());
    let before = source.io_stats();

    let threads = 4;
    let rounds = 3;
    let barrier = Arc::new(Barrier::new(threads));
    let mut handles = Vec::new();
    for t in 0..threads {
        let source: Arc<dyn ChunkSource> = source.clone();
        let barrier = barrier.clone();
        handles.push(std::thread::spawn(move || {
            // Mix serial pulls and parallel worker executions.
            let parallelism = if t % 2 == 0 { 1 } else { 3 };
            let stmt =
                Statement::over(source, &paper::q1(), PlannerOptions::default(), parallelism)
                    .unwrap();
            barrier.wait();
            let mut total = QueryStats::default();
            for _ in 0..rounds {
                let report = stmt.execute().unwrap();
                total.absorb(&report.stats.unwrap());
            }
            total
        }));
    }
    let per_query: Vec<QueryStats> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let delta = source.io_stats().delta_since(&before);

    for (i, stats) in per_query.iter().enumerate() {
        assert!(stats.bytes_read > 0, "thread {i} did no I/O — test is vacuous");
        assert!(stats.chunks_decoded > 0, "thread {i} decoded no chunks");
    }
    assert_eq!(
        per_query.iter().map(|s| s.bytes_read).sum::<u64>(),
        delta.bytes_read,
        "per-query bytes_read must partition the source's lifetime delta exactly"
    );
    assert_eq!(
        per_query.iter().map(|s| s.bytes_decompressed).sum::<u64>(),
        delta.bytes_decompressed,
        "per-query bytes_decompressed must partition the lifetime delta exactly"
    );
    assert_eq!(
        per_query.iter().map(|s| s.chunks_decoded).sum::<usize>(),
        delta.chunks_decoded,
        "per-query chunks_decoded must partition the lifetime delta exactly"
    );
    assert_eq!(
        per_query.iter().map(|s| s.columns_decoded).sum::<usize>(),
        delta.columns_decoded,
        "per-query columns_decoded must partition the lifetime delta exactly"
    );
    assert_eq!(
        per_query.iter().map(|s| s.cache_evictions).sum::<u64>(),
        delta.cache_evictions,
        "per-query cache_evictions must partition the lifetime delta exactly"
    );

    std::fs::remove_file(&path).ok();
}
