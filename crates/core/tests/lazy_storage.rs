//! Differential tests for the storage-backed execution paths: the paper's
//! benchmark queries Q1–Q8 must produce identical reports whether the table
//! is fully resident in memory, eagerly loaded from a persisted file, or
//! served by the lazy file-backed `ChunkSource` — at parallelism 1 and 4.
//! Plus the headline property of the footer-indexed formats: selective
//! queries on a lazy source decode strictly fewer chunks than the table
//! contains. (The full v1/v2/v3 version matrix lives in
//! `version_matrix.rs`.)

use cohana_activity::{generate, GeneratorConfig, Schema, TableBuilder, Timestamp, Value};
use cohana_core::{paper, PlannerOptions, Statement};
use cohana_core::{Cohana, CohortQuery, EngineOptions};
use cohana_storage::{persist, ChunkSource, CompressedTable, CompressionOptions, FileSource};
use std::path::PathBuf;
use std::sync::Arc;

/// Execute one query over any source through the session-layer Statement.
fn run(
    source: Arc<dyn ChunkSource>,
    query: &CohortQuery,
    options: PlannerOptions,
    parallelism: usize,
) -> cohana_core::CohortReport {
    Statement::over(source, query, options, parallelism)
        .expect("query plans")
        .execute()
        .expect("query executes")
}

fn temp_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cohana-lazy-storage-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn paper_queries() -> Vec<(String, CohortQuery)> {
    let d1 = Timestamp::parse("2013-05-21").unwrap().secs();
    let d2 = Timestamp::parse("2013-05-27").unwrap().secs();
    vec![
        ("q1".into(), paper::q1()),
        ("q2".into(), paper::q2()),
        ("q3".into(), paper::q3()),
        ("q4".into(), paper::q4()),
        ("q5".into(), paper::q5(d1, d2)),
        ("q6".into(), paper::q6(d1, d2)),
        ("q7".into(), paper::q7(7)),
        ("q8".into(), paper::q8(7)),
    ]
}

#[test]
fn q1_to_q8_identical_across_memory_eager_and_lazy_sources() {
    let table = generate(&GeneratorConfig::small());
    let memory = CompressedTable::build(&table, CompressionOptions::with_chunk_size(256)).unwrap();
    assert!(memory.chunks().len() > 1, "need multiple chunks to be meaningful");

    let path = temp_file("differential.cohana");
    persist::write_file(&memory, &path).unwrap();
    let memory = Arc::new(memory);
    let eager = Arc::new(persist::read_file(&path).unwrap());
    let lazy = Arc::new(FileSource::open(&path).unwrap());

    for (name, query) in paper_queries() {
        for parallelism in [1, 4] {
            let expect = run(memory.clone(), &query, PlannerOptions::default(), parallelism);
            let from_eager = run(eager.clone(), &query, PlannerOptions::default(), parallelism);
            let from_lazy = run(lazy.clone(), &query, PlannerOptions::default(), parallelism);
            assert_eq!(expect.rows, from_eager.rows, "{name} eager p={parallelism}");
            assert_eq!(expect.rows, from_lazy.rows, "{name} lazy p={parallelism}");
            assert_eq!(
                expect.cohort_sizes, from_eager.cohort_sizes,
                "{name} eager sizes p={parallelism}"
            );
            assert_eq!(
                expect.cohort_sizes, from_lazy.cohort_sizes,
                "{name} lazy sizes p={parallelism}"
            );
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn engine_open_file_matches_in_memory_engine() {
    let table = generate(&GeneratorConfig::small());
    let memory = CompressedTable::build(&table, CompressionOptions::with_chunk_size(256)).unwrap();
    let path = temp_file("engine.cohana");
    persist::write_file(&memory, &path).unwrap();

    for parallelism in [1, 4] {
        let options = EngineOptions { parallelism, ..Default::default() };
        let resident = Cohana::from_compressed(memory.clone(), options);
        let lazy_engine = Cohana::new(options);
        lazy_engine.open(&path).open().unwrap();
        assert_eq!(lazy_engine.schema_of("GameActions"), Some(memory.schema().clone()));

        for (name, query) in paper_queries() {
            let a = resident.execute(&query).unwrap();
            let b = lazy_engine.execute(&query).unwrap();
            assert_eq!(a.rows, b.rows, "{name} p={parallelism}");
        }
    }
    std::fs::remove_file(&path).ok();
}

/// A handcrafted activity table whose users fall into two populations with
/// disjoint activity windows and different action vocabularies, so chunk
/// pruning provably fires:
///
/// * users `e00..e05` ("early"): launch + shop during days 0–4;
/// * users `l06..l11` ("late"): launch + fight during days 20–24 — never
///   a single `shop`.
///
/// User ids sort `e* < l*`, and chunking follows user order, so with a small
/// chunk size the early and late populations land in different chunks.
fn two_population_table() -> cohana_activity::ActivityTable {
    const DAY: i64 = 86_400;
    let mut b = TableBuilder::new(Schema::game_actions());
    let mut push = |user: &str, day: i64, action: &str, gold: i64| {
        b.push(vec![
            Value::str(user),
            Value::int(day * DAY + 3_600),
            Value::str(action),
            Value::str("China"),
            Value::str("Beijing"),
            Value::str("dwarf"),
            Value::int(10),
            Value::int(gold),
        ])
        .unwrap();
    };
    for u in 0..6 {
        let user = format!("e{u:02}");
        push(&user, 0, "launch", 0);
        for day in 1..5 {
            push(&user, day, "shop", 25);
        }
    }
    for u in 6..12 {
        let user = format!("l{u:02}");
        push(&user, 20, "launch", 0);
        for day in 21..25 {
            push(&user, day, "fight", 5);
        }
    }
    b.finish().unwrap()
}

#[test]
fn time_selective_query_decodes_strictly_fewer_chunks() {
    const DAY: i64 = 86_400;
    let table = two_population_table();
    // 15 tuples per chunk → at least one pure-early and one pure-late chunk.
    let memory = CompressedTable::build(&table, CompressionOptions::with_chunk_size(15)).unwrap();
    assert!(memory.chunks().len() >= 2);

    let path = temp_file("selective-time.cohana");
    persist::write_file(&memory, &path).unwrap();
    let lazy = Arc::new(FileSource::open(&path).unwrap());
    assert_eq!(lazy.chunks_decoded(), 0, "open must not touch chunk data");

    // Q2-style: Q1 plus a birth date range covering only the early
    // population (paper::q5 is exactly that sweep query).
    let query = paper::q5(0, 5 * DAY);
    let expect = run(Arc::new(memory), &query, PlannerOptions::default(), 1);
    let got = run(lazy.clone(), &query, PlannerOptions::default(), 1);

    assert_eq!(expect.rows, got.rows);
    assert_eq!(expect.cohort_sizes, got.cohort_sizes);
    assert!(!got.rows.is_empty(), "the early population must qualify");
    assert!(
        lazy.chunks_decoded() < lazy.num_chunks(),
        "decoded {} of {} chunks — time pruning never fired",
        lazy.chunks_decoded(),
        lazy.num_chunks()
    );
    assert!(lazy.chunks_decoded() > 0, "some chunk must have been decoded");
    std::fs::remove_file(&path).ok();
}

#[test]
fn birth_action_pruning_skips_chunks_without_the_action() {
    let table = two_population_table();
    let memory = CompressedTable::build(&table, CompressionOptions::with_chunk_size(15)).unwrap();
    let path = temp_file("selective-action.cohana");
    persist::write_file(&memory, &path).unwrap();
    let lazy = Arc::new(FileSource::open(&path).unwrap());

    // Birth action `shop` exists only in the early chunks; the late chunks'
    // action dictionaries prove they can be skipped without I/O.
    let query = paper::q3();
    let expect = run(Arc::new(memory), &query, PlannerOptions::default(), 1);
    let got = run(lazy.clone(), &query, PlannerOptions::default(), 1);

    assert_eq!(expect.rows, got.rows);
    assert!(
        lazy.chunks_decoded() < lazy.num_chunks(),
        "decoded {} of {} chunks — action-dictionary pruning never fired",
        lazy.chunks_decoded(),
        lazy.num_chunks()
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn disabled_pruning_still_correct_on_lazy_source() {
    let table = two_population_table();
    let memory = CompressedTable::build(&table, CompressionOptions::with_chunk_size(15)).unwrap();
    let path = temp_file("no-prune.cohana");
    persist::write_file(&memory, &path).unwrap();
    let lazy = Arc::new(FileSource::open(&path).unwrap());

    let options = PlannerOptions { prune_chunks: false, ..Default::default() };
    let query = paper::q3();
    let expect = run(Arc::new(memory), &query, options, 1);
    let got = run(lazy.clone(), &query, options, 1);
    assert_eq!(expect.rows, got.rows);
    // Without pruning every chunk is materialized.
    assert_eq!(lazy.chunks_decoded(), lazy.num_chunks());
    std::fs::remove_file(&path).ok();
}
