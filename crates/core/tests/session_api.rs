//! Integration tests for the Session/Statement/QueryStream surface over
//! file-backed storage: early termination must actually save I/O, prepared
//! statements must be re-executable with monotone cumulative stats, and the
//! streaming path must behave under parallelism — including dropping a
//! parallel stream mid-flight.

use cohana_activity::{generate, GeneratorConfig};
use cohana_core::{paper, Cohana, EngineOptions, PlannerOptions, QueryStats, Statement};
use cohana_storage::{persist, ChunkSource, CompressedTable, CompressionOptions, FileSource};
use std::path::PathBuf;
use std::sync::Arc;

fn temp_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cohana-session-api-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A v3 file with several chunks, freshly written.
fn v3_file(name: &str) -> PathBuf {
    let table = generate(&GeneratorConfig::small());
    let memory = CompressedTable::build(&table, CompressionOptions::with_chunk_size(256)).unwrap();
    assert!(memory.chunks().len() >= 3, "need several chunks for early termination");
    let path = temp_file(name);
    persist::write_file(&memory, &path).unwrap();
    path
}

/// The early-termination acceptance test: a consumer that stops pulling
/// after the first batch decodes strictly fewer chunk-columns than a full
/// `collect()` — unpulled chunks are never read from disk.
#[test]
fn dropping_stream_after_first_batch_decodes_fewer_columns() {
    let path = v3_file("early-term.cohana");
    let query = paper::q1();

    // Full execution on a cold source: the baseline column-decode count.
    let full_src = Arc::new(FileSource::open(&path).unwrap());
    let full_stmt =
        Statement::over(full_src.clone(), &query, PlannerOptions::default(), 1).unwrap();
    let report = full_stmt.stream().collect().unwrap();
    assert!(report.num_rows() > 0);
    let full_columns = full_src.columns_decoded();
    let full_chunks = full_src.chunks_decoded();
    assert!(full_chunks >= 3, "Q1 touches every chunk");

    // Early termination on an equally cold source: one batch, then drop.
    let early_src = Arc::new(FileSource::open(&path).unwrap());
    let early_stmt =
        Statement::over(early_src.clone(), &query, PlannerOptions::default(), 1).unwrap();
    {
        let mut stream = early_stmt.stream();
        let first = stream.next().expect("at least one batch").unwrap();
        assert!(first.num_users() > 0);
    } // stream dropped here
    let early_columns = early_src.columns_decoded();
    assert!(
        early_columns < full_columns,
        "early termination decoded {early_columns} columns, full run {full_columns} — \
         dropping the stream did not stop chunk decode"
    );
    assert_eq!(early_src.chunks_decoded(), 1, "exactly the pulled chunk was decoded");

    // The aborted execution still accounted its (smaller) work.
    let stats = early_stmt.cumulative_stats();
    assert_eq!(stats.chunks_scanned, 1);
    assert_eq!(stats.columns_decoded, early_columns);
    std::fs::remove_file(&path).ok();
}

/// Prepared-statement re-execution: the same `Statement` executed twice
/// yields identical reports, and its cumulative stats grow monotonically
/// (second warm run decodes less — cache hits — but never regresses any
/// counter).
#[test]
fn prepared_statement_reexecution_identical_reports_monotone_stats() {
    let path = v3_file("re-exec.cohana");
    let src = Arc::new(FileSource::open(&path).unwrap());
    let stmt = Statement::over(src, &paper::q3(), PlannerOptions::default(), 1).unwrap();

    let first = stmt.execute().unwrap();
    let after_first = stmt.cumulative_stats();
    let second = stmt.execute().unwrap();
    let after_second = stmt.cumulative_stats();

    assert_eq!(first, second, "re-execution must be deterministic");
    assert_eq!(stmt.executions(), 2);
    assert!(after_second.dominates(&after_first), "cumulative stats must be monotone");
    assert_eq!(after_second.chunks_scanned, 2 * after_first.chunks_scanned);
    // The warm second run was served from the segment cache: no new reads.
    let s1 = first.stats.unwrap();
    let s2 = second.stats.unwrap();
    assert!(s1.bytes_read > 0, "cold run reads from disk");
    assert_eq!(s2.bytes_read, 0, "warm run is served from cache");
    assert_eq!(s1.chunks_scanned, s2.chunks_scanned);
    std::fs::remove_file(&path).ok();
}

/// Streaming through worker threads: batches arrive in arbitrary order but
/// merge to the serial result, and dropping the stream mid-flight neither
/// hangs nor poisons the statement.
#[test]
fn parallel_stream_matches_serial_and_survives_early_drop() {
    let path = v3_file("parallel-stream.cohana");
    let src = Arc::new(FileSource::open(&path).unwrap());
    let query = paper::q1();

    let serial = Statement::over(src.clone(), &query, PlannerOptions::default(), 1).unwrap();
    let parallel = Statement::over(src.clone(), &query, PlannerOptions::default(), 4).unwrap();
    let expect = serial.execute().unwrap();

    // Streamed parallel batches, merged by hand.
    let mut stream = parallel.stream();
    let mut batches = Vec::new();
    for b in &mut stream {
        batches.push(b.unwrap());
    }
    drop(stream);
    let merged = parallel.report_from_batches(batches).unwrap();
    assert_eq!(expect, merged);

    // Drop a parallel stream after one batch: workers must stop, and the
    // statement must remain usable.
    {
        let mut stream = parallel.stream();
        let _ = stream.next().expect("one batch").unwrap();
    }
    let again = parallel.execute().unwrap();
    assert_eq!(expect, again);
    std::fs::remove_file(&path).ok();
}

/// Sessions on one shared engine: per-session parallelism and table
/// overrides are isolated, and a session pins its statement's source even
/// if the catalog changes afterwards.
#[test]
fn sessions_isolate_overrides_on_a_shared_engine() {
    let table = generate(&GeneratorConfig::small());
    let memory = CompressedTable::build(&table, CompressionOptions::with_chunk_size(256)).unwrap();
    let path = temp_file("session-engine.cohana");
    persist::write_file(&memory, &path).unwrap();

    let engine = Cohana::new(EngineOptions::default());
    engine.register("resident", memory);
    engine.open(&path).name("lazy").open().unwrap();

    let q = paper::q1();
    let fast = engine.session().with_parallelism(4).on_table("lazy");
    let slow = engine.session(); // default table = first registered
    assert_eq!(slow.table_name().unwrap(), "resident");
    assert_eq!(fast.table_name().unwrap(), "lazy");

    let a = fast.execute(&q).unwrap();
    let b = slow.execute(&q).unwrap();
    assert_eq!(a, b, "same data through different tables and parallelism");

    // Stats reflect each session's own source: the lazy session decoded
    // chunks, the resident one did not.
    assert!(a.stats.unwrap().chunks_decoded > 0);
    assert_eq!(b.stats.unwrap().chunks_decoded, 0);

    // A prepared statement keeps executing after its name is dropped from
    // the catalog view it came from (the source is pinned).
    let stmt = fast.prepare(&q).unwrap();
    engine.register("lazy", CompressedTable::build(&table, CompressionOptions::default()).unwrap());
    let c = stmt.execute().unwrap();
    assert_eq!(a, c);
    std::fs::remove_file(&path).ok();
}

/// `QueryStats` line up across the engine facade, session, and statement
/// paths, and absorb/dominates behave as the cumulative-stats contract
/// promises.
#[test]
fn stats_surface_is_consistent() {
    let table = generate(&GeneratorConfig::small());
    let engine =
        Cohana::from_activity_table(&table, CompressionOptions::with_chunk_size(256)).unwrap();
    let q = paper::q1();

    let via_engine = engine.execute(&q).unwrap().stats.unwrap();
    let via_session = engine.session().execute(&q).unwrap().stats.unwrap();
    assert_eq!(via_engine.chunks_total, via_session.chunks_total);
    assert_eq!(via_engine.chunks_scanned, via_session.chunks_scanned);
    assert_eq!(via_engine.batches, via_session.batches);

    let mut cumulative = QueryStats::default();
    cumulative.absorb(&via_engine);
    cumulative.absorb(&via_session);
    assert!(cumulative.dominates(&via_engine));
    assert_eq!(cumulative.chunks_scanned, 2 * via_engine.chunks_scanned);
}
