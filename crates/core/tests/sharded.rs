//! Sharded-table integration tests: a table partitioned by user-id range
//! into many shard files must be **observationally identical** to the same
//! data in one file — Q1–Q8, across parallelism levels, through K-batch
//! parallel ingest, background compaction racing the ingest, user deletion,
//! and prepared-statement snapshots.

use cohana_activity::{generate, ActivityTable, GeneratorConfig, TableBuilder, TimeBin, Timestamp};
use cohana_core::{
    paper, Cohana, CohortQuery, CohortReport, EngineError, EngineOptions, MaintenanceConfig,
};
use cohana_storage::{persist, CompressedTable, CompressionOptions};
use std::path::PathBuf;
use std::time::Duration;

const CHUNK: usize = 256;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cohana-sharded-test").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(dir.parent().unwrap()).unwrap();
    dir
}

fn temp_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cohana-sharded-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn base_table() -> ActivityTable {
    generate(&GeneratorConfig::small())
}

/// Contiguous time slices: later batches revisit users of earlier ones, the
/// worst case for append (forces chunk rewrites → dead bytes).
fn split_by_time(table: &ActivityTable, k: usize) -> Vec<ActivityTable> {
    let tidx = table.schema().time_idx();
    let mut order: Vec<usize> = (0..table.num_rows()).collect();
    order.sort_by_key(|&r| table.rows()[r].get(tidx).as_int().unwrap());
    let per = table.num_rows().div_ceil(k);
    order
        .chunks(per)
        .map(|rows| {
            let mut b = TableBuilder::new(table.schema().clone());
            for &r in rows {
                b.push(table.rows()[r].values().to_vec()).unwrap();
            }
            b.finish().unwrap()
        })
        .collect()
}

/// The paper's eight benchmark queries, with the birth-range bounds derived
/// from the dataset window.
fn q1_to_q8(table: &ActivityTable) -> Vec<CohortQuery> {
    let tidx = table.schema().time_idx();
    let start = table.int_range(tidx).map(|(lo, _)| lo).unwrap_or(0);
    let day = TimeBin::Day.bin_start(Timestamp(start)).secs();
    let (d1, d2) = (day + 86_400, day + 7 * 86_400);
    vec![
        paper::q1(),
        paper::q2(),
        paper::q3(),
        paper::q4(),
        paper::q5(d1, d2),
        paper::q6(d1, d2),
        paper::q7(7),
        paper::q8(7),
    ]
}

fn run_all(engine: &Cohana, queries: &[CohortQuery], parallelism: usize) -> Vec<CohortReport> {
    let session = engine.session().with_parallelism(parallelism);
    queries.iter().map(|q| session.execute(q).expect("query executes")).collect()
}

/// A build-once single-file reference engine over the same rows.
fn single_file_reference(table: &ActivityTable, name: &str) -> (Cohana, PathBuf) {
    let path = temp_file(name);
    let once = CompressedTable::build(table, CompressionOptions::with_chunk_size(CHUNK)).unwrap();
    persist::write_file(&once, &path).unwrap();
    let engine = Cohana::new(EngineOptions::default());
    engine.open(&path).open().unwrap();
    (engine, path)
}

#[test]
fn sharded_answers_match_single_file_over_q1_q8() {
    let table = base_table();
    let queries = q1_to_q8(&table);
    let (reference, ref_path) = single_file_reference(&table, "differential-ref.cohana");

    let dir = temp_dir("differential");
    let engine = Cohana::new(EngineOptions::default());
    let handle = engine.open(&dir).shards(5).chunk_size(CHUNK).create_from(&table).unwrap();
    assert!(handle.is_sharded());
    assert!(handle.num_shards() > 1, "small() has plenty of users; want a real split");

    for parallelism in [1, 4] {
        let expect = run_all(&reference, &queries, parallelism);
        let got = run_all(&engine, &queries, parallelism);
        assert_eq!(expect, got, "sharded reports diverge at parallelism {parallelism}");
    }

    // prepare_on: an explicit handle through a configured session gives the
    // same answer as the engine's default path.
    let session = engine.session().with_parallelism(2);
    let stmt = session.prepare_on(&handle, &queries[0]).unwrap();
    assert_eq!(stmt.execute().unwrap(), run_all(&reference, &queries[..1], 2)[0]);

    // A handle from another engine is rejected.
    let err = reference.session().prepare_on(&handle, &queries[0]).unwrap_err();
    assert!(matches!(err, EngineError::Unsupported(_)));

    std::fs::remove_file(&ref_path).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn k_batch_sharded_ingest_matches_build_once() {
    let table = base_table();
    let queries = q1_to_q8(&table);
    let batches = split_by_time(&table, 4);
    let (reference, ref_path) = single_file_reference(&table, "kbatch-ref.cohana");

    // Without background maintenance: create from the first batch, ingest
    // the rest (each append fans out across shards in parallel).
    let dir = temp_dir("kbatch");
    let engine = Cohana::new(EngineOptions::default());
    let handle = engine.open(&dir).shards(4).chunk_size(CHUNK).create_from(&batches[0]).unwrap();
    for batch in &batches[1..] {
        let stats = handle.ingest(batch).unwrap();
        assert_eq!(stats.rows_appended, batch.num_rows());
    }
    for parallelism in [1, 4] {
        let expect = run_all(&reference, &queries, parallelism);
        assert_eq!(
            expect,
            run_all(&engine, &queries, parallelism),
            "K-batch sharded ingest diverges at parallelism {parallelism}"
        );
        // Per-shard compaction must not change an answer.
        handle.compact().unwrap();
        assert_eq!(
            expect,
            run_all(&engine, &queries, parallelism),
            "compacted sharded table diverges at parallelism {parallelism}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();

    // With background compaction racing the ingest: an aggressive threshold
    // and a short interval make the maintenance thread rewrite shards while
    // batches keep arriving; answers must still match.
    let dir = temp_dir("kbatch-racing");
    let engine = Cohana::new(EngineOptions::default());
    let config = MaintenanceConfig {
        auto_compact: true,
        dead_ratio: 0.01,
        interval: Duration::from_millis(5),
    };
    let handle = engine
        .open(&dir)
        .shards(4)
        .chunk_size(CHUNK)
        .maintenance(config)
        .create_from(&batches[0])
        .unwrap();
    for batch in &batches[1..] {
        handle.ingest(batch).unwrap();
        // Give the racing thread a chance to actually interleave.
        std::thread::sleep(Duration::from_millis(10));
    }
    for parallelism in [1, 4] {
        assert_eq!(
            run_all(&reference, &queries, parallelism),
            run_all(&engine, &queries, parallelism),
            "sharded ingest racing background compaction diverges at parallelism {parallelism}"
        );
    }

    std::fs::remove_file(&ref_path).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn background_compaction_fires_without_breaking_prepared_snapshots() {
    let table = base_table();
    let batches = split_by_time(&table, 2);

    let dir = temp_dir("auto-compact");
    let engine = Cohana::new(EngineOptions::default());
    let config = MaintenanceConfig {
        auto_compact: true,
        dead_ratio: 0.02,
        interval: Duration::from_millis(5),
    };
    let handle = engine
        .open(&dir)
        .shards(3)
        .chunk_size(CHUNK)
        .maintenance(config)
        .create_from(&batches[0])
        .unwrap();

    // Pin a statement to the pre-ingest snapshot.
    let q1 = paper::q1();
    let stmt = engine.session().prepare(&q1).unwrap();
    let before = stmt.execute().unwrap();

    // Time-sliced batch 1 revisits batch 0's users: the appends rewrite
    // their chunks, leaving dead bytes well past the 2% threshold.
    handle.ingest(&batches[1]).unwrap();

    // The ingest poked the maintenance thread; wait for it to compact.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let m = handle.maintenance_stats().unwrap();
        if m.auto_compactions > 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "background maintenance never compacted: {m:?}, space {:?}",
            handle.space_stats().unwrap()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let m = handle.maintenance_stats().unwrap();
    assert!(m.reclaimed_bytes > 0, "compactions reclaimed nothing: {m:?}");

    // The in-flight statement still answers from its pre-ingest snapshot —
    // the compaction rewrote the files via temp + rename underneath it.
    assert_eq!(stmt.execute().unwrap(), before, "snapshot broken by background compaction");

    // A statement prepared now sees all the data.
    let fresh = engine.session().prepare(&q1).unwrap().execute().unwrap();
    let total: u64 = fresh.cohort_sizes.values().sum();
    assert_eq!(total as usize, table.num_users());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn delete_users_is_equivalent_to_never_having_ingested_them() {
    let table = base_table();
    let queries = q1_to_q8(&table);
    let user_idx = table.schema().user_idx();

    // Pick every 7th user to erase.
    let users: Vec<String> = table
        .user_blocks()
        .map(|b| table.rows()[b.start].get(user_idx).as_str().unwrap().to_string())
        .collect();
    let doomed: Vec<&str> = users.iter().step_by(7).map(|s| s.as_str()).collect();
    assert!(!doomed.is_empty());

    let dir = temp_dir("delete");
    let engine = Cohana::new(EngineOptions::default());
    let handle = engine.open(&dir).shards(4).chunk_size(CHUNK).create_from(&table).unwrap();

    // Pin a statement to the pre-delete snapshot.
    let stmt = engine.session().prepare(&queries[0]).unwrap();
    let before = stmt.execute().unwrap();

    let stats = handle.delete_users(&doomed).unwrap();
    assert_eq!(stats.users_deleted, doomed.len());
    assert!(stats.rows_deleted > 0);
    assert!(stats.shards_rewritten > 0);

    // Reference: the same table built without the deleted users at all.
    let doomed_set: std::collections::HashSet<&str> = doomed.iter().copied().collect();
    let mut b = TableBuilder::new(table.schema().clone());
    for row in table.rows() {
        if !doomed_set.contains(row.get(user_idx).as_str().unwrap()) {
            b.push(row.values().to_vec()).unwrap();
        }
    }
    let filtered = b.finish().unwrap();
    let reference =
        Cohana::from_activity_table(&filtered, CompressionOptions::with_chunk_size(CHUNK)).unwrap();

    for parallelism in [1, 4] {
        assert_eq!(
            run_all(&reference, &queries, parallelism),
            run_all(&engine, &queries, parallelism),
            "post-delete reports diverge at parallelism {parallelism}"
        );
    }

    // The pre-delete statement still sees the deleted users (snapshot), and
    // its cohort totals exceed the post-delete totals.
    assert_eq!(stmt.execute().unwrap(), before);
    let after = engine.session().prepare(&queries[0]).unwrap().execute().unwrap();
    let total_before: u64 = before.cohort_sizes.values().sum();
    let total_after: u64 = after.cohort_sizes.values().sum();
    assert_eq!(total_after as usize, table.num_users() - doomed.len());
    assert!(total_before > total_after);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_table_reopens_after_restart() {
    // A "process restart": drop the engine, reopen the directory, and get
    // identical answers (the manifest plus shard files are the whole state).
    let table = base_table();
    let queries = q1_to_q8(&table);
    let dir = temp_dir("reopen");

    let before = {
        let engine = Cohana::new(EngineOptions::default());
        engine.open(&dir).shards(4).chunk_size(CHUNK).create_from(&table).unwrap();
        run_all(&engine, &queries, 1)
    };

    let engine = Cohana::new(EngineOptions::default());
    let handle = engine.open(&dir).open().unwrap();
    assert!(handle.is_sharded());
    assert_eq!(before, run_all(&engine, &queries, 1));

    // Space stats expose one entry per shard for operators.
    let space = handle.space_stats().unwrap();
    assert_eq!(space.len(), handle.num_shards());
    assert!(space.iter().all(|s| s.file_bytes > 0));

    std::fs::remove_dir_all(&dir).ok();
}
