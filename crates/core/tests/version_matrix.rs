//! The on-disk version matrix: the paper's benchmark queries Q1–Q8 must
//! produce identical reports over every supported format and access path —
//! v1 (eager only), v2 (lazy, whole-chunk fetch), v3 (lazy, per-column
//! fetch), and v4 (lazy, per-column fetch through the per-blob codec
//! layer) — at parallelism 1 and 4, through *both* execution
//! shapes of the session API: the eager [`Statement::execute`] and the
//! streaming [`Statement::stream`] with its per-chunk batches merged by
//! hand. Plus the two headline properties of the v3 refactor:
//!
//! * **projection pushdown**: a query decodes strictly fewer columns than
//!   `arity × chunks_touched`, because unprojected columns are never read;
//! * **bounded cache**: under an arbitrarily small byte budget, resident
//!   cache bytes never exceed the budget while results stay identical to
//!   the eager path.

use cohana_activity::{generate, GeneratorConfig, Timestamp};
use cohana_core::naive::naive_execute;
use cohana_core::{paper, CohortQuery, CohortReport, PlannerOptions, Statement};
use cohana_storage::{persist, ChunkSource, CompressedTable, CompressionOptions, FileSource};
use std::path::PathBuf;
use std::sync::Arc;

fn temp_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cohana-version-matrix-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn paper_queries() -> Vec<(String, CohortQuery)> {
    let d1 = Timestamp::parse("2013-05-21").unwrap().secs();
    let d2 = Timestamp::parse("2013-05-27").unwrap().secs();
    vec![
        ("q1".into(), paper::q1()),
        ("q2".into(), paper::q2()),
        ("q3".into(), paper::q3()),
        ("q4".into(), paper::q4()),
        ("q5".into(), paper::q5(d1, d2)),
        ("q6".into(), paper::q6(d1, d2)),
        ("q7".into(), paper::q7(7)),
        ("q8".into(), paper::q8(7)),
    ]
}

fn prepare(source: Arc<dyn ChunkSource>, query: &CohortQuery, parallelism: usize) -> Statement {
    // A morsel budget far below the 256-row chunk size splits every chunk
    // into several work-stealing morsels, so the whole matrix exercises the
    // morsel-driven scheduler (serial and parallel), not one-morsel chunks.
    Statement::over(source, query, PlannerOptions::default(), parallelism)
        .expect("query plans")
        .with_morsel_rows(96)
}

/// Execute a statement by pulling its stream batch by batch and merging the
/// batches manually — the streaming consumer's path. Must agree exactly with
/// the eager [`Statement::execute`].
fn execute_via_stream(stmt: &Statement) -> CohortReport {
    let mut stream = stmt.stream();
    let mut batches = Vec::new();
    for batch in &mut stream {
        batches.push(batch.expect("batch executes"));
    }
    let stats = stream.stats();
    assert_eq!(stats.batches, batches.len());
    assert_eq!(stats.chunks_scanned + stats.chunks_pruned, stats.chunks_total);
    drop(stream);
    stmt.report_from_batches(batches).expect("batches merge")
}

#[test]
fn q1_to_q8_identical_across_v1_v2_v3_v4_eager_and_streamed() {
    let table = generate(&GeneratorConfig::small());
    let memory =
        Arc::new(CompressedTable::build(&table, CompressionOptions::with_chunk_size(256)).unwrap());
    assert!(memory.chunks().len() > 1, "need multiple chunks to be meaningful");

    let v1_path = temp_file("matrix-v1.cohana");
    let v2_path = temp_file("matrix-v2.cohana");
    let v3_path = temp_file("matrix-v3.cohana");
    let v4_path = temp_file("matrix-v4.cohana");
    std::fs::write(&v1_path, persist::to_bytes_v1(&memory)).unwrap();
    std::fs::write(&v2_path, persist::to_bytes_v2(&memory)).unwrap();
    std::fs::write(&v3_path, persist::to_bytes_v3(&memory)).unwrap();
    persist::write_file(&memory, &v4_path).unwrap();

    // v1 has no footer: eager load only.
    let v1_eager = Arc::new(persist::read_file(&v1_path).unwrap());
    // v2: lazy open degrades to whole-chunk fetches.
    let v2_lazy = Arc::new(FileSource::open(&v2_path).unwrap());
    assert!(!v2_lazy.is_column_addressable());
    // v3: lazy open with per-column fetches.
    let v3_lazy = Arc::new(FileSource::open(&v3_path).unwrap());
    assert!(v3_lazy.is_column_addressable());
    // v4: lazy open with per-column fetches through the codec layer.
    let v4_lazy = Arc::new(FileSource::open(&v4_path).unwrap());
    assert!(v4_lazy.is_column_addressable());

    for (name, query) in paper_queries() {
        // The executable spec: the naive interpreter over the uncompressed
        // table. Every storage format, access path, and parallelism level of
        // the vectorized executor must reproduce it exactly.
        let reference = naive_execute(&table, &query).expect("naive reference evaluates");
        for parallelism in [1, 4] {
            let expect = prepare(memory.clone(), &query, parallelism).execute().unwrap();
            assert_eq!(expect.rows, reference.rows, "{name} resident vs naive p={parallelism}");
            assert_eq!(
                expect.cohort_sizes, reference.cohort_sizes,
                "{name} resident sizes vs naive p={parallelism}"
            );
            for (vname, source) in [
                ("v1", Arc::clone(&v1_eager) as Arc<dyn ChunkSource>),
                ("v2", Arc::clone(&v2_lazy) as Arc<dyn ChunkSource>),
                ("v3", Arc::clone(&v3_lazy) as Arc<dyn ChunkSource>),
                ("v4", Arc::clone(&v4_lazy) as Arc<dyn ChunkSource>),
            ] {
                let stmt = prepare(source, &query, parallelism);
                let eager = stmt.execute().unwrap();
                let streamed = execute_via_stream(&stmt);
                assert_eq!(reference.rows, eager.rows, "{name} {vname} vs naive p={parallelism}");
                assert_eq!(
                    reference.cohort_sizes, eager.cohort_sizes,
                    "{name} {vname} sizes vs naive p={parallelism}"
                );
                assert_eq!(eager, streamed, "{name} {vname} streamed p={parallelism}");
                // Two executions ran through the statement; its cumulative
                // stats saw both.
                assert_eq!(stmt.executions(), 2, "{name} {vname}");
                // The executor attributes the rows its passes covered:
                // never more than the table, and exactly the table when
                // nothing can skip a chunk — no metadata pruning fired and
                // no birth predicate exists for per-chunk specialization
                // to fold away (a folded chunk reports 0 rows scanned).
                let stats = eager.stats.expect("stats attached");
                assert!(
                    stats.rows_scanned as usize <= table.num_rows(),
                    "{name} {vname} rows_scanned over-counts p={parallelism}"
                );
                if stats.chunks_pruned == 0 && query.birth_predicate.is_none() {
                    assert_eq!(
                        stats.rows_scanned as usize,
                        table.num_rows(),
                        "{name} {vname} rows_scanned p={parallelism}"
                    );
                    // Every scanned chunk split into >1 morsel (96-row
                    // morsels over 256-row chunks) and every executed
                    // morsel was timed.
                    assert!(
                        stats.morsels_executed > stats.chunks_scanned as u64,
                        "{name} {vname} p={parallelism}: {} morsels over {} chunks",
                        stats.morsels_executed,
                        stats.chunks_scanned
                    );
                    assert!(
                        stats.worker_busy_ns > 0,
                        "{name} {vname} p={parallelism}: busy time untracked"
                    );
                }
            }
        }
    }
    // The v2 source never decodes individual columns; the v3/v4 sources
    // did. Raw-blob sources report decompressed bytes equal to bytes read;
    // a v4 source's decoded bytes are never less than its disk bytes.
    assert_eq!(v2_lazy.columns_decoded(), 0);
    assert!(v3_lazy.columns_decoded() > 0);
    assert!(v4_lazy.columns_decoded() > 0);
    assert_eq!(v3_lazy.bytes_decompressed(), v3_lazy.bytes_read());
    assert!(v4_lazy.bytes_decompressed() >= v4_lazy.bytes_read());
    for p in [v1_path, v2_path, v3_path, v4_path] {
        std::fs::remove_file(&p).ok();
    }
}

/// The acceptance-criterion decode-counting test: a selective projected
/// query against a v3 file decodes strictly fewer *columns* than
/// `arity × chunks_touched`, and its per-query stats agree with the
/// source's lifetime counters.
#[test]
fn projected_query_decodes_fewer_columns_than_arity_times_chunks() {
    let table = generate(&GeneratorConfig::small());
    let memory =
        Arc::new(CompressedTable::build(&table, CompressionOptions::with_chunk_size(256)).unwrap());
    let arity = memory.schema().arity();
    let path = temp_file("projection-count.cohana");
    persist::write_file(&memory, &path).unwrap();

    // Q1 projects user, time, action, country — half of the 8-attribute
    // game schema.
    let query = paper::q1();
    let lazy = Arc::new(FileSource::open(&path).unwrap());
    let stmt = prepare(lazy.clone(), &query, 1);
    assert!(stmt.plan().projected_idxs.len() < arity, "Q1 must be a selective projection");

    let expect = prepare(memory, &query, 1).execute().unwrap();
    let got = stmt.execute().unwrap();
    assert_eq!(expect.rows, got.rows);

    let chunks_touched = lazy.chunks_decoded();
    assert!(chunks_touched > 0, "Q1 touches every chunk");
    assert!(lazy.columns_decoded() > 0);
    assert!(
        lazy.columns_decoded() < arity * chunks_touched,
        "decoded {} columns over {chunks_touched} chunks of arity {arity} — projection pushdown \
         never fired",
        lazy.columns_decoded(),
    );
    // Exactly the projected non-user columns decode: nothing else.
    let non_user_projected = stmt.plan().projected_idxs.len() - 1;
    assert_eq!(lazy.columns_decoded(), non_user_projected * chunks_touched);

    // The per-query stats attributed to this execution match the lifetime
    // counters (the query was alone on a cold source).
    let stats = got.stats.expect("executor attaches stats");
    assert_eq!(stats.chunks_decoded, lazy.chunks_decoded());
    assert_eq!(stats.columns_decoded, lazy.columns_decoded());
    assert_eq!(stats.bytes_read, lazy.bytes_read());
    std::fs::remove_file(&path).ok();
}

/// The acceptance-criterion cache test: resident bytes never exceed the
/// configured budget while Q1–Q8 results stay identical to the eager path.
#[test]
fn bounded_cache_stays_within_budget_with_identical_results() {
    let table = generate(&GeneratorConfig::small());
    let memory =
        Arc::new(CompressedTable::build(&table, CompressionOptions::with_chunk_size(256)).unwrap());
    let path = temp_file("budget.cohana");
    persist::write_file(&memory, &path).unwrap();

    // A budget far below the table's compressed size forces eviction.
    let budget = 4 * 1024;
    let lazy = Arc::new(FileSource::open_with_budget(&path, budget).unwrap());
    assert_eq!(lazy.cache_budget_bytes(), budget);

    for (name, query) in paper_queries() {
        for parallelism in [1, 4] {
            let expect = prepare(memory.clone(), &query, parallelism).execute().unwrap();
            let got = prepare(lazy.clone(), &query, parallelism).execute().unwrap();
            assert_eq!(expect.rows, got.rows, "{name} p={parallelism}");
            assert_eq!(expect.cohort_sizes, got.cohort_sizes, "{name} p={parallelism}");
            assert!(
                lazy.cache_resident_bytes() <= budget,
                "{name}: resident {} exceeds budget {budget}",
                lazy.cache_resident_bytes()
            );
        }
    }
    assert!(lazy.cache_evictions() > 0, "a tiny budget must evict");
    std::fs::remove_file(&path).ok();
}

/// Skewed data (one whale user ≈ half the table, never split by chunking)
/// is the worst case for static per-chunk work division; the work-stealing
/// scheduler must still reproduce the naive reference exactly, at every
/// parallelism and morsel size — including morsels so small the whale's
/// chunk shatters into hundreds of them.
#[test]
fn skewed_whale_chunk_identical_across_parallelism_and_morsel_sizes() {
    let table = generate(&GeneratorConfig::skewed(60));
    let source =
        Arc::new(CompressedTable::build(&table, CompressionOptions::with_chunk_size(256)).unwrap());
    let whale_chunk =
        source.chunks().iter().map(|c| c.num_rows()).max().expect("chunks exist") as f64;
    assert!(
        whale_chunk / table.num_rows() as f64 >= 0.4,
        "the whale chunk must dominate the table"
    );

    for (name, query) in paper_queries() {
        let reference = naive_execute(&table, &query).expect("naive reference evaluates");
        for parallelism in [1, 4] {
            for morsel_rows in [16, 256, usize::MAX] {
                let stmt = Statement::over(
                    Arc::clone(&source) as Arc<dyn ChunkSource>,
                    &query,
                    PlannerOptions::default(),
                    parallelism,
                )
                .unwrap()
                .with_morsel_rows(morsel_rows);
                let got = stmt.execute().unwrap();
                assert_eq!(
                    reference.rows, got.rows,
                    "{name} p={parallelism} morsel_rows={morsel_rows}"
                );
                assert_eq!(
                    reference.cohort_sizes, got.cohort_sizes,
                    "{name} sizes p={parallelism} morsel_rows={morsel_rows}"
                );
            }
        }
    }
}

/// Early termination under the morsel scheduler: dropping a parallel stream
/// after one batch stops workers at their next **morsel** boundary, the
/// query records what ran, and nothing hangs — even when the remaining
/// chunks still hold many unclaimed morsels.
#[test]
fn early_drop_under_morsel_scheduler_stops_at_morsel_boundary() {
    let table = generate(&GeneratorConfig::small());
    let source =
        Arc::new(CompressedTable::build(&table, CompressionOptions::with_chunk_size(256)).unwrap());
    assert!(source.chunks().len() > 2, "need chunks left over after the first batch");

    // One-row morsels maximize the number of cancellation points.
    let stmt =
        Statement::over(source as Arc<dyn ChunkSource>, &paper::q1(), PlannerOptions::default(), 4)
            .unwrap()
            .with_morsel_rows(1);
    let first_morsels;
    {
        let mut stream = stmt.stream();
        let first = stream.next().expect("at least one batch").expect("batch executes");
        // One-row morsels split the chunk per user run (a single-whale-user
        // chunk legitimately yields one morsel).
        first_morsels = first.morsels();
        assert!(first_morsels >= 1);
    } // drop: disconnects the channel, workers cancel at a morsel boundary
    let cum = stmt.cumulative_stats();
    assert_eq!(stmt.executions(), 1);
    assert!(cum.chunks_scanned >= 1, "the pulled batch was recorded");
    assert!(cum.morsels_executed >= first_morsels, "morsel accounting survived the early drop");
}

/// Cohort-clustered arrival makes chunk time-bounds disjoint, so a birth
/// date-range query on a v3 file skips whole chunks — no RLE decode, no
/// column decode, no bytes read for them — and the per-query stats say so:
/// `chunks_pruned > 0` and `chunks_decoded < chunks_total`.
#[test]
fn cohort_clustered_data_prunes_chunks_and_bytes() {
    const DAY: i64 = 86_400;
    let cfg = GeneratorConfig::cohort_clustered(120);
    let table = generate(&cfg);
    let memory =
        Arc::new(CompressedTable::build(&table, CompressionOptions::with_chunk_size(256)).unwrap());
    assert!(memory.chunks().len() >= 4, "need several chunks");
    // The arrival mode really does produce disjoint chunk time-bounds.
    let first = &memory.index_entries()[0];
    let last = memory.index_entries().last().unwrap();
    assert!(
        first.time_max < last.time_min,
        "first chunk [{}, {}] overlaps last [{}, {}]",
        first.time_min,
        first.time_max,
        last.time_min,
        last.time_max
    );

    let path = temp_file("clustered.cohana");
    persist::write_file(&memory, &path).unwrap();
    let lazy = Arc::new(FileSource::open(&path).unwrap());

    // Births during the first five days: only the earliest chunks qualify.
    let start = cfg.start.secs();
    let query = paper::q5(start, start + 5 * DAY);
    let expect = prepare(memory, &query, 1).execute().unwrap();
    let got = prepare(lazy.clone(), &query, 1).execute().unwrap();
    assert_eq!(expect.rows, got.rows);
    assert!(!got.rows.is_empty(), "the early cohorts must qualify");
    assert!(
        lazy.chunks_decoded() < lazy.num_chunks(),
        "decoded {} of {} chunks — time pruning never fired",
        lazy.chunks_decoded(),
        lazy.num_chunks()
    );

    // The acceptance criterion, straight off the per-query stats.
    let stats = got.stats.expect("executor attaches stats");
    assert!(stats.chunks_pruned > 0, "pruning must show in QueryStats");
    assert!(
        stats.chunks_decoded < stats.chunks_total,
        "stats: decoded {} of {} chunks",
        stats.chunks_decoded,
        stats.chunks_total
    );
    assert_eq!(stats.chunks_scanned, stats.chunks_total - stats.chunks_pruned);

    // Bytes read stay below the full payload: pruned chunks cost zero I/O.
    let file_len = std::fs::metadata(&path).unwrap().len();
    assert!(lazy.bytes_read() < file_len, "read {} of {file_len} file bytes", lazy.bytes_read());
    std::fs::remove_file(&path).ok();
}
