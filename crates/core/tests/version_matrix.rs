//! The on-disk version matrix: the paper's benchmark queries Q1–Q8 must
//! produce identical reports over every supported format and access path —
//! v1 (eager only), v2 (lazy, whole-chunk fetch), and v3 (lazy,
//! per-column fetch) — at parallelism 1 and 4. Plus the two headline
//! properties of the v3 refactor:
//!
//! * **projection pushdown**: a query decodes strictly fewer columns than
//!   `arity × chunks_touched`, because unprojected columns are never read;
//! * **bounded cache**: under an arbitrarily small byte budget, resident
//!   cache bytes never exceed the budget while results stay identical to
//!   the eager path.

use cohana_activity::{generate, GeneratorConfig, Timestamp};
use cohana_core::{execute_plan, execute_source, paper, plan_query, CohortQuery, PlannerOptions};
use cohana_storage::{persist, ChunkSource, CompressedTable, CompressionOptions, FileSource};
use std::path::PathBuf;

fn temp_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cohana-version-matrix-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn paper_queries() -> Vec<(String, CohortQuery)> {
    let d1 = Timestamp::parse("2013-05-21").unwrap().secs();
    let d2 = Timestamp::parse("2013-05-27").unwrap().secs();
    vec![
        ("q1".into(), paper::q1()),
        ("q2".into(), paper::q2()),
        ("q3".into(), paper::q3()),
        ("q4".into(), paper::q4()),
        ("q5".into(), paper::q5(d1, d2)),
        ("q6".into(), paper::q6(d1, d2)),
        ("q7".into(), paper::q7(7)),
        ("q8".into(), paper::q8(7)),
    ]
}

#[test]
fn q1_to_q8_identical_across_v1_v2_v3() {
    let table = generate(&GeneratorConfig::small());
    let memory = CompressedTable::build(&table, CompressionOptions::with_chunk_size(256)).unwrap();
    assert!(memory.chunks().len() > 1, "need multiple chunks to be meaningful");

    let v1_path = temp_file("matrix-v1.cohana");
    let v2_path = temp_file("matrix-v2.cohana");
    let v3_path = temp_file("matrix-v3.cohana");
    std::fs::write(&v1_path, persist::to_bytes_v1(&memory)).unwrap();
    std::fs::write(&v2_path, persist::to_bytes_v2(&memory)).unwrap();
    persist::write_file(&memory, &v3_path).unwrap();

    // v1 has no footer: eager load only.
    let v1_eager = persist::read_file(&v1_path).unwrap();
    // v2: lazy open degrades to whole-chunk fetches.
    let v2_lazy = FileSource::open(&v2_path).unwrap();
    assert!(!v2_lazy.is_column_addressable());
    // v3: lazy open with per-column fetches.
    let v3_lazy = FileSource::open(&v3_path).unwrap();
    assert!(v3_lazy.is_column_addressable());

    for (name, query) in paper_queries() {
        let plan = plan_query(&query, memory.schema(), PlannerOptions::default()).unwrap();
        for parallelism in [1, 4] {
            let expect = execute_plan(&memory, &plan, parallelism).unwrap();
            let from_v1 = execute_plan(&v1_eager, &plan, parallelism).unwrap();
            let from_v2 = execute_source(&v2_lazy, &plan, parallelism).unwrap();
            let from_v3 = execute_source(&v3_lazy, &plan, parallelism).unwrap();
            assert_eq!(expect.rows, from_v1.rows, "{name} v1 p={parallelism}");
            assert_eq!(expect.rows, from_v2.rows, "{name} v2 p={parallelism}");
            assert_eq!(expect.rows, from_v3.rows, "{name} v3 p={parallelism}");
            assert_eq!(expect.cohort_sizes, from_v2.cohort_sizes, "{name} v2 sizes");
            assert_eq!(expect.cohort_sizes, from_v3.cohort_sizes, "{name} v3 sizes");
        }
    }
    // The v2 source never decodes individual columns; the v3 source did.
    assert_eq!(v2_lazy.columns_decoded(), 0);
    assert!(v3_lazy.columns_decoded() > 0);
    for p in [v1_path, v2_path, v3_path] {
        std::fs::remove_file(&p).ok();
    }
}

/// The acceptance-criterion decode-counting test: a selective projected
/// query against a v3 file decodes strictly fewer *columns* than
/// `arity × chunks_touched`.
#[test]
fn projected_query_decodes_fewer_columns_than_arity_times_chunks() {
    let table = generate(&GeneratorConfig::small());
    let memory = CompressedTable::build(&table, CompressionOptions::with_chunk_size(256)).unwrap();
    let arity = memory.schema().arity();
    let path = temp_file("projection-count.cohana");
    persist::write_file(&memory, &path).unwrap();

    // Q1 projects user, time, action, country — half of the 8-attribute
    // game schema.
    let query = paper::q1();
    let plan = plan_query(&query, memory.schema(), PlannerOptions::default()).unwrap();
    assert!(plan.projected_idxs.len() < arity, "Q1 must be a selective projection");

    let lazy = FileSource::open(&path).unwrap();
    let expect = execute_plan(&memory, &plan, 1).unwrap();
    let got = execute_source(&lazy, &plan, 1).unwrap();
    assert_eq!(expect.rows, got.rows);

    let chunks_touched = lazy.chunks_decoded();
    assert!(chunks_touched > 0, "Q1 touches every chunk");
    assert!(lazy.columns_decoded() > 0);
    assert!(
        lazy.columns_decoded() < arity * chunks_touched,
        "decoded {} columns over {chunks_touched} chunks of arity {arity} — projection pushdown \
         never fired",
        lazy.columns_decoded(),
    );
    // Exactly the projected non-user columns decode: nothing else.
    let non_user_projected = plan.projected_idxs.len() - 1;
    assert_eq!(lazy.columns_decoded(), non_user_projected * chunks_touched);
    std::fs::remove_file(&path).ok();
}

/// The acceptance-criterion cache test: resident bytes never exceed the
/// configured budget while Q1–Q8 results stay identical to the eager path.
#[test]
fn bounded_cache_stays_within_budget_with_identical_results() {
    let table = generate(&GeneratorConfig::small());
    let memory = CompressedTable::build(&table, CompressionOptions::with_chunk_size(256)).unwrap();
    let path = temp_file("budget.cohana");
    persist::write_file(&memory, &path).unwrap();

    // A budget far below the table's compressed size forces eviction.
    let budget = 4 * 1024;
    let lazy = FileSource::open_with_budget(&path, budget).unwrap();
    assert_eq!(lazy.cache_budget_bytes(), budget);

    for (name, query) in paper_queries() {
        let plan = plan_query(&query, memory.schema(), PlannerOptions::default()).unwrap();
        for parallelism in [1, 4] {
            let expect = execute_plan(&memory, &plan, parallelism).unwrap();
            let got = execute_source(&lazy, &plan, parallelism).unwrap();
            assert_eq!(expect.rows, got.rows, "{name} p={parallelism}");
            assert_eq!(expect.cohort_sizes, got.cohort_sizes, "{name} p={parallelism}");
            assert!(
                lazy.cache_resident_bytes() <= budget,
                "{name}: resident {} exceeds budget {budget}",
                lazy.cache_resident_bytes()
            );
        }
    }
    assert!(lazy.cache_evictions() > 0, "a tiny budget must evict");
    std::fs::remove_file(&path).ok();
}

/// Cohort-clustered arrival makes chunk time-bounds disjoint, so a birth
/// date-range query on a v3 file skips whole chunks — no RLE decode, no
/// column decode, no bytes read for them.
#[test]
fn cohort_clustered_data_prunes_chunks_and_bytes() {
    const DAY: i64 = 86_400;
    let cfg = GeneratorConfig::cohort_clustered(120);
    let table = generate(&cfg);
    let memory = CompressedTable::build(&table, CompressionOptions::with_chunk_size(256)).unwrap();
    assert!(memory.chunks().len() >= 4, "need several chunks");
    // The arrival mode really does produce disjoint chunk time-bounds.
    let first = &memory.index_entries()[0];
    let last = memory.index_entries().last().unwrap();
    assert!(
        first.time_max < last.time_min,
        "first chunk [{}, {}] overlaps last [{}, {}]",
        first.time_min,
        first.time_max,
        last.time_min,
        last.time_max
    );

    let path = temp_file("clustered.cohana");
    persist::write_file(&memory, &path).unwrap();
    let lazy = FileSource::open(&path).unwrap();

    // Births during the first five days: only the earliest chunks qualify.
    let start = cfg.start.secs();
    let query = paper::q5(start, start + 5 * DAY);
    let plan = plan_query(&query, memory.schema(), PlannerOptions::default()).unwrap();
    let expect = execute_plan(&memory, &plan, 1).unwrap();
    let got = execute_source(&lazy, &plan, 1).unwrap();
    assert_eq!(expect.rows, got.rows);
    assert!(!got.rows.is_empty(), "the early cohorts must qualify");
    assert!(
        lazy.chunks_decoded() < lazy.num_chunks(),
        "decoded {} of {} chunks — time pruning never fired",
        lazy.chunks_decoded(),
        lazy.num_chunks()
    );

    // Bytes read stay below the full payload: pruned chunks cost zero I/O.
    let file_len = std::fs::metadata(&path).unwrap().len();
    assert!(lazy.bytes_read() < file_len, "read {} of {file_len} file bytes", lazy.bytes_read());
    std::fs::remove_file(&path).ok();
}
