//! The column-oriented baseline engine (MonetDB stand-in).
//!
//! Storage is column-major: one flat vector per attribute. Pipelines run
//! column-at-a-time: the birth `GROUP BY` is one pass over three columns,
//! the join back to birth tuples resolves each row's *birth row id* once
//! (late materialization — birth attributes are read through that
//! indirection instead of being copied per row), and filters produce
//! selection vectors. This captures what makes a columnar DB one to two
//! orders faster than a row store on cohort queries (Figure 11), while
//! still lacking COHANA's compressed storage, user skipping, and chunk
//! pruning.

use crate::common::{cohort_extractors, eval_pred, GroupTable, Scalar};
use crate::error::BaselineError;
use crate::mv::{MaterializedView, MvLayout};
use crate::Result;
use cohana_activity::{ActivityTable, Schema, Value, ValueType};
use cohana_core::{CohortQuery, CohortReport};
use std::collections::HashMap;
use std::sync::Arc;

/// A column vector.
#[derive(Debug, Clone)]
pub enum ColData {
    /// String column.
    Str(Vec<Arc<str>>),
    /// Integer column.
    Int(Vec<i64>),
}

impl ColData {
    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            ColData::Str(v) => v.len(),
            ColData::Int(v) => v.len(),
        }
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn scalar(&self, row: usize) -> Scalar<'_> {
        match self {
            ColData::Str(v) => Scalar::S(&v[row]),
            ColData::Int(v) => Scalar::I(v[row]),
        }
    }
}

/// Columnar payload of a materialized view: a birth copy of every non-user
/// column plus the age column, aligned with the base columns by row id and
/// a validity filter (`born[i]`).
#[derive(Debug, Clone)]
pub struct ColViewData {
    /// Row ids (into the base columns) that belong to born users.
    pub row_ids: Vec<u32>,
    /// Birth copies, indexed like `MvLayout::birth_pairs` order.
    pub birth_cols: Vec<ColData>,
    /// Age in seconds, aligned with `row_ids`.
    pub ages: Vec<i64>,
}

/// The column-store engine.
pub struct ColEngine {
    schema: Schema,
    cols: Vec<ColData>,
    num_rows: usize,
    views: HashMap<String, MaterializedView<ColViewData>>,
}

impl ColEngine {
    /// Load an activity table into column vectors.
    pub fn load(table: &ActivityTable) -> Self {
        let schema = table.schema().clone();
        let n = table.num_rows();
        let mut cols: Vec<ColData> = schema
            .attributes()
            .iter()
            .map(|a| match a.vtype {
                ValueType::Str => ColData::Str(Vec::with_capacity(n)),
                ValueType::Int => ColData::Int(Vec::with_capacity(n)),
            })
            .collect();
        for row in table.rows() {
            for (idx, col) in cols.iter_mut().enumerate() {
                match (col, row.get(idx)) {
                    (ColData::Str(v), Value::Str(s)) => v.push(s.clone()),
                    (ColData::Int(v), Value::Int(i)) => v.push(*i),
                    _ => unreachable!("activity tables are type-checked"),
                }
            }
        }
        ColEngine { schema, cols, num_rows: n, views: HashMap::new() }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of base tuples.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// The SQL approach: rebuild the view columns per query.
    pub fn execute_sql(&self, query: &CohortQuery) -> Result<CohortReport> {
        let (layout, data) = self.build_view_data(&query.birth_action);
        self.query_over_view(&layout, &data, query)
    }

    /// Materialize the view for a birth action (Figure 10 measures this).
    ///
    /// Mirrors the paper's construction: after the birth GROUP BY, **one
    /// hash-join pass per birth attribute** ("six joins in total"), each
    /// re-probing the birth map per row and materializing one output
    /// column, as a columnar DB executing the six CREATE-TABLE-AS joins
    /// would.
    pub fn create_mv(&mut self, birth_action: &str) -> &MaterializedView<ColViewData> {
        let schema = self.schema.clone();
        let layout = MvLayout::new(&schema);
        let users = self.str_col(schema.user_idx());
        let times = self.int_col(schema.time_idx());
        let actions = self.str_col(schema.action_idx());

        // Birth GROUP BY (Figure 2(a)+(b)): per-user birth row.
        let mut births: HashMap<&str, (i64, u32)> = HashMap::new();
        for (i, action) in actions.iter().enumerate() {
            if action.as_ref() == birth_action {
                let entry = births.entry(users[i].as_ref()).or_insert((times[i], i as u32));
                if times[i] < entry.0 {
                    *entry = (times[i], i as u32);
                }
            }
        }

        // Selection vector of born rows.
        let row_ids: Vec<u32> = (0..self.num_rows as u32)
            .filter(|&i| births.contains_key(users[i as usize].as_ref()))
            .collect();

        // One join pass per birth attribute: re-probe the hash table for
        // every row and gather that column.
        let mut birth_cols: Vec<ColData> = Vec::new();
        for (attr, _col) in layout.birth_pairs() {
            birth_cols.push(match &self.cols[attr] {
                ColData::Str(v) => ColData::Str(
                    row_ids
                        .iter()
                        .map(|&r| {
                            let (_, b) = births[users[r as usize].as_ref()];
                            v[b as usize].clone()
                        })
                        .collect(),
                ),
                ColData::Int(v) => ColData::Int(
                    row_ids
                        .iter()
                        .map(|&r| {
                            let (_, b) = births[users[r as usize].as_ref()];
                            v[b as usize]
                        })
                        .collect(),
                ),
            });
        }
        // Final pass: the age column.
        let ages: Vec<i64> = row_ids
            .iter()
            .map(|&r| {
                let (bt, _) = births[users[r as usize].as_ref()];
                times[r as usize] - bt
            })
            .collect();

        let data = ColViewData { row_ids, birth_cols, ages };
        let view = MaterializedView {
            birth_action: birth_action.to_string(),
            layout,
            num_rows: data.row_ids.len(),
            data,
        };
        self.views.insert(birth_action.to_string(), view);
        &self.views[birth_action]
    }

    /// Whether a view exists for a birth action.
    pub fn has_mv(&self, birth_action: &str) -> bool {
        self.views.contains_key(birth_action)
    }

    /// Serialize a materialized view to its on-disk byte image (the
    /// `CREATE TABLE AS` write of Figure 10): every base column restricted
    /// to born rows, every birth copy, and the age column, uncompressed.
    pub fn serialize_mv(&self, birth_action: &str) -> Option<Vec<u8>> {
        let view = self.views.get(birth_action)?;
        let mut out = Vec::new();
        let mut put_col = |col: &ColData, rows: Option<&[u32]>| match col {
            ColData::Str(v) => {
                let mut put = |s: &Arc<str>| {
                    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    out.extend_from_slice(s.as_bytes());
                };
                match rows {
                    Some(ids) => ids.iter().for_each(|&r| put(&v[r as usize])),
                    None => v.iter().for_each(put),
                }
            }
            ColData::Int(v) => match rows {
                Some(ids) => {
                    ids.iter().for_each(|&r| out.extend_from_slice(&v[r as usize].to_le_bytes()))
                }
                None => v.iter().for_each(|i| out.extend_from_slice(&i.to_le_bytes())),
            },
        };
        for col in &self.cols {
            put_col(col, Some(&view.data.row_ids));
        }
        for col in &view.data.birth_cols {
            put_col(col, None);
        }
        for age in &view.data.ages {
            out.extend_from_slice(&age.to_le_bytes());
        }
        Some(out)
    }

    /// The MV approach: filter + aggregate over prebuilt view columns.
    pub fn execute_mv(&self, query: &CohortQuery) -> Result<CohortReport> {
        let view = self.views.get(&query.birth_action).ok_or_else(|| {
            BaselineError::MissingView { birth_action: query.birth_action.clone() }
        })?;
        self.query_over_view(&view.layout, &view.data, query)
    }

    fn str_col(&self, idx: usize) -> &[Arc<str>] {
        match &self.cols[idx] {
            ColData::Str(v) => v,
            ColData::Int(_) => unreachable!("expected string column"),
        }
    }

    fn int_col(&self, idx: usize) -> &[i64] {
        match &self.cols[idx] {
            ColData::Int(v) => v,
            ColData::Str(_) => unreachable!("expected integer column"),
        }
    }

    /// Column-at-a-time view construction: one pass to find per-user birth
    /// rows, one pass to resolve each row's birth row id, then per-column
    /// gathers.
    fn build_view_data(&self, birth_action: &str) -> (MvLayout, ColViewData) {
        let schema = &self.schema;
        let layout = MvLayout::new(schema);
        let users = self.str_col(schema.user_idx());
        let times = self.int_col(schema.time_idx());
        let actions = self.str_col(schema.action_idx());

        // Pass 1: birth row of each user (min time among birth-action rows).
        let mut births: HashMap<&str, (i64, u32)> = HashMap::new();
        for (i, action) in actions.iter().enumerate() {
            if action.as_ref() == birth_action {
                let entry = births.entry(users[i].as_ref()).or_insert((times[i], i as u32));
                if times[i] < entry.0 {
                    *entry = (times[i], i as u32);
                }
            }
        }

        // Pass 2: selection vector of born rows + their birth row ids.
        let mut row_ids: Vec<u32> = Vec::new();
        let mut birth_rows: Vec<u32> = Vec::new();
        for (i, user) in users.iter().enumerate() {
            if let Some((_, brow)) = births.get(user.as_ref()) {
                row_ids.push(i as u32);
                birth_rows.push(*brow);
            }
        }

        // Per-column gathers through the birth-row indirection.
        let mut birth_cols: Vec<ColData> = Vec::new();
        for (attr, _col) in layout.birth_pairs() {
            birth_cols.push(match &self.cols[attr] {
                ColData::Str(v) => {
                    ColData::Str(birth_rows.iter().map(|&b| v[b as usize].clone()).collect())
                }
                ColData::Int(v) => {
                    ColData::Int(birth_rows.iter().map(|&b| v[b as usize]).collect())
                }
            });
        }
        let ages: Vec<i64> = row_ids
            .iter()
            .zip(birth_rows.iter())
            .map(|(&r, &b)| times[r as usize] - times[b as usize])
            .collect();

        (layout, ColViewData { row_ids, birth_cols, ages })
    }

    /// Filter + aggregate over the view columns with a selection-vector
    /// style pass.
    fn query_over_view(
        &self,
        layout: &MvLayout,
        data: &ColViewData,
        query: &CohortQuery,
    ) -> Result<CohortReport> {
        let schema = &self.schema;
        let uidx = schema.user_idx();
        let tidx = schema.time_idx();
        let users = self.str_col(uidx);
        let extractors = cohort_extractors(query, schema)?;
        let mut groups = GroupTable::new(query, schema)?;
        let mut seen_users: std::collections::HashSet<Arc<str>> = std::collections::HashSet::new();

        // Map attr idx -> position in birth_cols.
        let birth_pos: Vec<Option<usize>> = {
            let mut v = vec![None; layout.base_arity];
            for (pos, (attr, _)) in layout.birth_pairs().enumerate() {
                v[attr] = Some(pos);
            }
            v
        };

        for (vi, &row) in data.row_ids.iter().enumerate() {
            let row = row as usize;
            let cur = |idx: usize| self.cols[idx].scalar(row);
            let birth = |idx: usize| -> Scalar<'_> {
                if idx == uidx {
                    Scalar::S(&users[row])
                } else {
                    data.birth_cols[birth_pos[idx].expect("birth copy exists")].scalar(vi)
                }
            };
            if let Some(p) = &query.birth_predicate {
                if !eval_pred(p, schema, &birth, &birth, 0)? {
                    continue;
                }
            }
            let age_secs = data.ages[vi];
            let age_units = query.age_bin.age_units(age_secs);
            let birth_time = match birth(tidx) {
                Scalar::I(t) => t,
                Scalar::S(_) => unreachable!("time is an integer"),
            };
            let cohort: Vec<Value> =
                extractors.iter().map(|e| e.extract(&birth, birth_time)).collect();
            let user = &users[row];
            if seen_users.insert(user.clone()) {
                groups.add_user(cohort.clone());
            }
            if age_secs <= 0 {
                continue;
            }
            if let Some(p) = &query.age_predicate {
                if !eval_pred(p, schema, &cur, &birth, age_units)? {
                    continue;
                }
            }
            groups.update(&cohort, age_units, user, &cur)?;
        }
        Ok(groups.into_report(query))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohana_activity::{generate, GeneratorConfig};
    use cohana_core::naive::naive_execute;
    use cohana_core::paper;

    fn table() -> ActivityTable {
        generate(&GeneratorConfig::small())
    }

    #[test]
    fn col_sql_matches_reference_q3() {
        let t = table();
        let e = ColEngine::load(&t);
        let got = e.execute_sql(&paper::q3()).unwrap();
        let want = naive_execute(&t, &paper::q3()).unwrap();
        assert_eq!(got.rows, want.rows);
        assert_eq!(got.cohort_sizes, want.cohort_sizes);
    }

    #[test]
    fn col_mv_lifecycle() {
        let t = table();
        let mut e = ColEngine::load(&t);
        assert!(matches!(
            e.execute_mv(&paper::q1()).unwrap_err(),
            BaselineError::MissingView { .. }
        ));
        let view = e.create_mv("launch");
        assert_eq!(view.num_rows, t.num_rows()); // everyone launches
        let got = e.execute_mv(&paper::q1()).unwrap();
        let want = naive_execute(&t, &paper::q1()).unwrap();
        assert_eq!(got.rows, want.rows);
    }

    #[test]
    fn col_equals_row_engine() {
        let t = table();
        let col = ColEngine::load(&t);
        let row = RowEngineEquiv::load(&t);
        for q in [paper::q1(), paper::q2(), paper::q3(), paper::q4()] {
            let a = col.execute_sql(&q).unwrap();
            let b = row.execute_sql(&q).unwrap();
            assert_eq!(a.rows, b.rows, "query {q}");
        }
    }

    use crate::rowstore::RowEngine as RowEngineEquiv;
}
