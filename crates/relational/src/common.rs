//! Shared machinery for the baseline engines: predicate interpretation over
//! "current tuple + birth tuple + age" contexts, cohort-key extraction, and
//! report assembly.

use crate::error::BaselineError;
use cohana_activity::{Schema, Timestamp, Value};
use cohana_core::report::{CohortReport, ReportRow};
use cohana_core::{AggFunc, AggState, CmpOp, CohortAttr, CohortQuery, Expr};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// A borrowed scalar from either engine's storage.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar<'a> {
    /// String value.
    S(&'a str),
    /// Integer value.
    I(i64),
}

impl Scalar<'_> {
    fn cmp_with(&self, op: CmpOp, other: &Scalar<'_>) -> Result<bool, BaselineError> {
        match (self, other) {
            (Scalar::S(a), Scalar::S(b)) => Ok(op.test(a.cmp(b))),
            (Scalar::I(a), Scalar::I(b)) => Ok(op.test(a.cmp(b))),
            (a, b) => Err(BaselineError::TypeError(format!("comparing {a:?} with {b:?}"))),
        }
    }

    fn matches(&self, v: &Value) -> bool {
        match (self, v) {
            (Scalar::S(a), Value::Str(b)) => *a == b.as_ref(),
            (Scalar::I(a), Value::Int(b)) => a == b,
            _ => false,
        }
    }
}

/// Evaluate a predicate given accessors for the current tuple and the birth
/// tuple (both indexed by schema attribute position) and the tuple's age.
pub fn eval_pred<'a>(
    expr: &'a Expr,
    schema: &Schema,
    cur: &impl Fn(usize) -> Scalar<'a>,
    birth: &impl Fn(usize) -> Scalar<'a>,
    age_units: i64,
) -> Result<bool, BaselineError> {
    match expr {
        Expr::Cmp(op, a, b) => {
            let va = eval_scalar(a, schema, cur, birth, age_units)?;
            let vb = eval_scalar(b, schema, cur, birth, age_units)?;
            va.cmp_with(*op, &vb)
        }
        Expr::And(a, b) => Ok(eval_pred(a, schema, cur, birth, age_units)?
            && eval_pred(b, schema, cur, birth, age_units)?),
        Expr::Or(a, b) => Ok(eval_pred(a, schema, cur, birth, age_units)?
            || eval_pred(b, schema, cur, birth, age_units)?),
        Expr::Not(a) => Ok(!eval_pred(a, schema, cur, birth, age_units)?),
        Expr::InList(a, vs) => {
            let va = eval_scalar(a, schema, cur, birth, age_units)?;
            Ok(vs.iter().any(|v| va.matches(v)))
        }
        Expr::Between(a, lo, hi) => {
            let va = eval_scalar(a, schema, cur, birth, age_units)?;
            let vlo = lit_scalar(lo)?;
            let vhi = lit_scalar(hi)?;
            Ok(va.cmp_with(CmpOp::Ge, &vlo)? && va.cmp_with(CmpOp::Le, &vhi)?)
        }
        other => Err(BaselineError::TypeError(format!("`{other}` is not a predicate"))),
    }
}

fn lit_scalar(v: &Value) -> Result<Scalar<'_>, BaselineError> {
    match v {
        Value::Str(s) => Ok(Scalar::S(s)),
        Value::Int(i) => Ok(Scalar::I(*i)),
        Value::Null => Err(BaselineError::TypeError("NULL literal".into())),
    }
}

fn eval_scalar<'a>(
    expr: &'a Expr,
    schema: &Schema,
    cur: &impl Fn(usize) -> Scalar<'a>,
    birth: &impl Fn(usize) -> Scalar<'a>,
    age_units: i64,
) -> Result<Scalar<'a>, BaselineError> {
    match expr {
        Expr::Attr(a) => Ok(cur(schema.require(a)?)),
        Expr::Birth(a) => Ok(birth(schema.require(a)?)),
        Expr::Age => Ok(Scalar::I(age_units)),
        Expr::Lit(v) => lit_scalar(v),
        other => Err(BaselineError::TypeError(format!("`{other}` is not a scalar"))),
    }
}

/// Resolve the cohort attribute set to extraction instructions.
pub fn cohort_extractors(
    query: &CohortQuery,
    schema: &Schema,
) -> Result<Vec<CohortExtract>, BaselineError> {
    query
        .cohort_by
        .iter()
        .map(|c| {
            Ok(match c {
                CohortAttr::Attr(a) => CohortExtract::Attr(schema.require(a)?),
                CohortAttr::TimeBin(bin) => CohortExtract::TimeBin(*bin),
            })
        })
        .collect()
}

/// One cohort-key component.
#[derive(Debug, Clone, Copy)]
pub enum CohortExtract {
    /// Project a birth attribute.
    Attr(usize),
    /// Bin the birth time.
    TimeBin(cohana_activity::TimeBin),
}

impl CohortExtract {
    /// Extract the component from a birth-tuple accessor.
    pub fn extract<'a>(&self, birth: &impl Fn(usize) -> Scalar<'a>, birth_time: i64) -> Value {
        match self {
            CohortExtract::Attr(idx) => match birth(*idx) {
                Scalar::S(s) => Value::Str(Arc::from(s)),
                Scalar::I(v) => Value::Int(v),
            },
            CohortExtract::TimeBin(bin) => {
                Value::from(bin.bin_start(Timestamp(birth_time)).render_date())
            }
        }
    }
}

/// Grouped aggregation state shared by both engines:
/// `(cohort, age) → states`, plus per-cohort distinct-user sizes.
pub struct GroupTable {
    aggs: Vec<AggFunc>,
    agg_attrs: Vec<Option<usize>>,
    cells: HashMap<(Vec<Value>, i64), Vec<AggState>>,
    /// Distinct users per (cohort, age) for UserCount, tracked the honest
    /// relational way: an explicit hash set per group.
    distinct: HashMap<(Vec<Value>, i64), HashSet<Arc<str>>>,
    sizes: HashMap<Vec<Value>, u64>,
}

impl GroupTable {
    /// Create for a query (validates aggregate attributes).
    pub fn new(query: &CohortQuery, schema: &Schema) -> Result<Self, BaselineError> {
        let agg_attrs = query
            .aggregates
            .iter()
            .map(|a| a.attr().map(|n| schema.require(n)).transpose())
            .collect::<Result<Vec<_>, _>>()?;
        Ok(GroupTable {
            aggs: query.aggregates.clone(),
            agg_attrs,
            cells: HashMap::new(),
            distinct: HashMap::new(),
            sizes: HashMap::new(),
        })
    }

    /// Record one qualified user for cohort-size accounting.
    pub fn add_user(&mut self, cohort: Vec<Value>) {
        *self.sizes.entry(cohort).or_insert(0) += 1;
    }

    /// Fold one qualifying age-activity tuple.
    pub fn update<'a>(
        &mut self,
        cohort: &[Value],
        age_units: i64,
        user: &Arc<str>,
        cur: &impl Fn(usize) -> Scalar<'a>,
    ) -> Result<(), BaselineError> {
        let key = (cohort.to_vec(), age_units);
        let states = self
            .cells
            .entry(key.clone())
            .or_insert_with(|| self.aggs.iter().map(|a| a.init()).collect());
        for (i, agg) in self.aggs.iter().enumerate() {
            if agg.per_user() {
                let set = self.distinct.entry(key.clone()).or_default();
                if set.insert(user.clone()) {
                    states[i].update_user();
                }
            } else {
                let v = match self.agg_attrs[i] {
                    Some(idx) => match cur(idx) {
                        Scalar::I(v) => v,
                        Scalar::S(_) => {
                            return Err(BaselineError::TypeError(
                                "aggregate over string attribute".into(),
                            ))
                        }
                    },
                    None => 0,
                };
                states[i].update(v);
            }
        }
        Ok(())
    }

    /// Assemble the final report.
    pub fn into_report(self, query: &CohortQuery) -> CohortReport {
        let sizes: BTreeMap<Vec<Value>, u64> = self.sizes.into_iter().collect();
        let mut rows: Vec<ReportRow> = self
            .cells
            .into_iter()
            .map(|((cohort, age), states)| ReportRow {
                size: sizes.get(&cohort).copied().unwrap_or(0),
                cohort,
                age,
                measures: states.iter().map(|s| s.finalize()).collect(),
            })
            .collect();
        rows.sort_by(|a, b| a.cohort.cmp(&b.cohort).then(a.age.cmp(&b.age)));
        CohortReport {
            cohort_attrs: query.cohort_by.iter().map(|c| c.to_string()).collect(),
            agg_names: query.aggregates.iter().map(|a| a.header()).collect(),
            rows,
            cohort_sizes: sizes,
            stats: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohana_core::AggFunc;

    fn schema() -> Schema {
        Schema::game_actions()
    }

    #[test]
    fn scalar_comparisons() {
        assert!(Scalar::I(3).cmp_with(CmpOp::Lt, &Scalar::I(5)).unwrap());
        assert!(Scalar::S("a").cmp_with(CmpOp::Ne, &Scalar::S("b")).unwrap());
        assert!(Scalar::I(3).cmp_with(CmpOp::Eq, &Scalar::S("x")).is_err());
        assert!(Scalar::S("a").matches(&Value::str("a")));
        assert!(!Scalar::S("a").matches(&Value::int(1)));
    }

    #[test]
    fn eval_pred_with_birth_and_age() {
        let s = schema();
        let cidx = s.index_of("country").unwrap();
        let e =
            Expr::attr("country").eq(Expr::birth("country")).and(Expr::age().lt(Expr::lit_int(5)));
        let cur = |idx: usize| if idx == cidx { Scalar::S("China") } else { Scalar::I(0) };
        let birth = |idx: usize| if idx == cidx { Scalar::S("China") } else { Scalar::I(0) };
        assert!(eval_pred(&e, &s, &cur, &birth, 3).unwrap());
        assert!(!eval_pred(&e, &s, &cur, &birth, 7).unwrap());
    }

    #[test]
    fn group_table_user_count_dedups() {
        let s = schema();
        let q = CohortQuery::builder("launch")
            .cohort_by(["country"])
            .aggregate(AggFunc::user_count())
            .build()
            .unwrap();
        let mut g = GroupTable::new(&q, &s).unwrap();
        let cohort = vec![Value::str("China")];
        let user: Arc<str> = Arc::from("u1");
        let cur = |_idx: usize| Scalar::I(0);
        g.add_user(cohort.clone());
        g.update(&cohort, 1, &user, &cur).unwrap();
        g.update(&cohort, 1, &user, &cur).unwrap(); // same user, same age
        let report = g.into_report(&q);
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].measures[0], cohana_core::AggValue::Int(1));
    }
}
