//! Error type for the baseline engines.

use std::fmt;

/// Errors raised by the relational baseline engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// Referenced attribute missing from the schema.
    UnknownAttribute(String),
    /// Ill-typed expression or aggregate.
    TypeError(String),
    /// The query needs a materialized view that has not been created.
    MissingView {
        /// Birth action of the required view.
        birth_action: String,
    },
    /// Structural query problem.
    InvalidQuery(String),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::UnknownAttribute(a) => write!(f, "unknown attribute {a:?}"),
            BaselineError::TypeError(m) => write!(f, "type error: {m}"),
            BaselineError::MissingView { birth_action } => {
                write!(
                    f,
                    "no materialized view for birth action {birth_action:?}; call create_mv first"
                )
            }
            BaselineError::InvalidQuery(m) => write!(f, "invalid query: {m}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<cohana_core::EngineError> for BaselineError {
    fn from(e: cohana_core::EngineError) -> Self {
        match e {
            cohana_core::EngineError::UnknownAttribute(a) => BaselineError::UnknownAttribute(a),
            cohana_core::EngineError::TypeError(m) => BaselineError::TypeError(m),
            other => BaselineError::InvalidQuery(other.to_string()),
        }
    }
}

impl From<cohana_activity::ActivityError> for BaselineError {
    fn from(e: cohana_activity::ActivityError) -> Self {
        match e {
            cohana_activity::ActivityError::UnknownAttribute(a) => {
                BaselineError::UnknownAttribute(a)
            }
            other => BaselineError::InvalidQuery(other.to_string()),
        }
    }
}
