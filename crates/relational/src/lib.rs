//! # cohana-relational
//!
//! The paper's two **non-intrusive** baselines (§2), implemented on two
//! small relational engines built for this reproduction:
//!
//! * [`rowstore::RowEngine`] — a row-oriented, tuple-at-a-time engine
//!   standing in for PostgreSQL: every pipeline stage materializes vectors
//!   of heap-allocated rows, joins are hash joins probing per tuple;
//! * [`colstore::ColEngine`] — a column-oriented engine standing in for
//!   MonetDB: column-at-a-time kernels over flat vectors with selection
//!   vectors and late materialization.
//!
//! Each engine evaluates cohort queries two ways:
//!
//! * the **SQL approach** (`*-S` in Figure 11): the Figure-2 five-block
//!   query — find each user's birth time (`GROUP BY`), join back to recover
//!   birth tuples, join again to attach birth attributes and ages to every
//!   activity tuple, filter, and aggregate;
//! * the **materialized-view approach** (`*-M`): the joins are done once in
//!   [`mv`]-construction (per birth action, materializing every birth
//!   attribute plus the age — the paper's 15-extra-column scheme) and each
//!   query becomes filter + aggregate over the MV (Figure 3).
//!
//! Results are returned as [`cohana_core::CohortReport`], so they are
//! directly comparable (and differentially tested) against COHANA and the
//! naive reference evaluator.

pub mod colstore;
pub mod common;
pub mod error;
pub mod mv;
pub mod rowstore;

pub use colstore::ColEngine;
pub use error::BaselineError;
pub use mv::MaterializedView;
pub use rowstore::RowEngine;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, BaselineError>;
