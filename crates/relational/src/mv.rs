//! Materialized-view layout (§2 and §3.6).
//!
//! The MV approach materializes, for one birth action, every activity tuple
//! joined with its user's birth attributes and age — Figure 2(c)'s
//! `cohortT`. The paper's view adds the birth time plus a birth copy of
//! each dimension; in the extreme it doubles the table width, which is the
//! storage cost the paper calls out. We materialize a birth copy of every
//! non-user attribute so any `Birth(A)` reference can be answered.

use cohana_activity::Schema;

/// Column layout of a materialized cohort view.
///
/// A view row is `[base attributes…, birth copies…, age]` where the birth
/// copies cover every attribute except the user id (which equals its own
/// birth copy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MvLayout {
    /// Arity of the base activity schema.
    pub base_arity: usize,
    /// Position of the user attribute.
    pub user_idx: usize,
    /// `birth_cols[attr_idx]` = view column of the attr's birth copy.
    birth_cols: Vec<Option<usize>>,
    /// View column holding the age in seconds.
    pub age_col: usize,
}

impl MvLayout {
    /// Compute the layout for a schema.
    pub fn new(schema: &Schema) -> Self {
        let base_arity = schema.arity();
        let user_idx = schema.user_idx();
        let mut birth_cols = vec![None; base_arity];
        let mut next = base_arity;
        for (idx, slot) in birth_cols.iter_mut().enumerate() {
            if idx != user_idx {
                *slot = Some(next);
                next += 1;
            }
        }
        MvLayout { base_arity, user_idx, birth_cols, age_col: next }
    }

    /// Total width of a view row.
    pub fn width(&self) -> usize {
        self.age_col + 1
    }

    /// View column of an attribute's birth copy (the user attribute maps to
    /// itself: a user is their own birth user).
    pub fn birth_col(&self, attr_idx: usize) -> usize {
        if attr_idx == self.user_idx {
            attr_idx
        } else {
            self.birth_cols[attr_idx].expect("non-user attrs have birth copies")
        }
    }

    /// The attribute indexes that have birth copies, with their view
    /// columns, in order.
    pub fn birth_pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.birth_cols.iter().enumerate().filter_map(|(a, c)| c.map(|c| (a, c)))
    }
}

/// A materialized cohort view: layout + engine-specific payload.
#[derive(Debug, Clone)]
pub struct MaterializedView<T> {
    /// The birth action this view answers queries for.
    pub birth_action: String,
    /// Column layout.
    pub layout: MvLayout,
    /// Engine-specific data (rows or columns).
    pub data: T,
    /// Number of view rows (= activity tuples of born users).
    pub num_rows: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_covers_all_non_user_attrs() {
        let s = Schema::game_actions(); // arity 8, user at 0
        let l = MvLayout::new(&s);
        assert_eq!(l.base_arity, 8);
        assert_eq!(l.width(), 8 + 7 + 1);
        assert_eq!(l.age_col, 15);
        assert_eq!(l.birth_col(0), 0); // user maps to itself
        let pairs: Vec<(usize, usize)> = l.birth_pairs().collect();
        assert_eq!(pairs.len(), 7);
        assert_eq!(pairs[0], (1, 8)); // time -> bt
        assert_eq!(l.birth_col(1), 8);
        assert_eq!(l.birth_col(7), 14);
    }

    #[test]
    fn materialized_view_carries_layout_consistent_payload() {
        // MaterializedView is payload-generic; exercise the struct with a
        // plain row-vector payload shaped by the layout, the way the row
        // and column stores use it.
        let schema = Schema::game_actions();
        let layout = MvLayout::new(&schema);
        let width = layout.width();
        let rows: Vec<Vec<i64>> = (0..4).map(|r| vec![r; width]).collect();
        let view = MaterializedView {
            birth_action: "launch".to_string(),
            layout: layout.clone(),
            num_rows: rows.len(),
            data: rows,
        };

        assert_eq!(view.birth_action, "launch");
        assert_eq!(view.num_rows, view.data.len());
        assert!(view.data.iter().all(|r| r.len() == view.layout.width()));
        // Every birth copy lands in the view extension, after the base
        // attributes and before the age column.
        for (attr, col) in view.layout.birth_pairs() {
            assert!(attr < view.layout.base_arity);
            assert!((view.layout.base_arity..view.layout.age_col).contains(&col));
        }
        // Cloning (the catalog stores views by value) preserves the layout.
        let copy = view.clone();
        assert_eq!(copy.layout, view.layout);
        assert_eq!(copy.num_rows, view.num_rows);
    }
}
