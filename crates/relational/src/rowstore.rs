//! The row-oriented baseline engine (PostgreSQL stand-in).
//!
//! Storage is row-major: every tuple is a heap-allocated `Vec<Value>`.
//! Query evaluation is tuple-at-a-time, and — as in the paper's SQL
//! approach — every pipeline stage **materializes** its output rows:
//! Figure 2's birth/birthTuples/cohortT sub-queries become three scans with
//! hash-join probes per tuple and full intermediate materialization.
//! There is no push-down of the birth selection: the birth condition is
//! re-checked on every joined tuple, exactly the inefficiency §2 describes.

use crate::common::{cohort_extractors, eval_pred, GroupTable, Scalar};
use crate::error::BaselineError;
use crate::mv::{MaterializedView, MvLayout};
use crate::Result;
use cohana_activity::{ActivityTable, Schema, Value};
use cohana_core::{CohortQuery, CohortReport};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Row-major payload of a materialized view.
pub type RowViewData = Vec<Vec<Value>>;

/// The row-store engine.
pub struct RowEngine {
    schema: Schema,
    rows: Vec<Vec<Value>>,
    views: HashMap<String, MaterializedView<RowViewData>>,
}

impl RowEngine {
    /// Load an activity table (copies rows into row-major heap storage).
    pub fn load(table: &ActivityTable) -> Self {
        RowEngine {
            schema: table.schema().clone(),
            rows: table.rows().iter().map(|t| t.values().to_vec()).collect(),
            views: HashMap::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of base tuples.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The SQL approach (Figure 2): rebuild the joined view for every query,
    /// then filter + aggregate.
    pub fn execute_sql(&self, query: &CohortQuery) -> Result<CohortReport> {
        let (layout, data) = self.build_view_data(&query.birth_action);
        self.query_over_view(&layout, &data, query)
    }

    /// Create (or rebuild) the materialized view for a birth action
    /// (Figure 10 measures this).
    ///
    /// Follows the paper's construction method: the birth-time GROUP BY,
    /// the join recovering birth tuples, and then **one join per birth
    /// attribute** — §5.1's "adds 15 additional columns to the original
    /// table by performing six joins in total" — each pass re-probing the
    /// birth-tuple hash table and materializing one more column.
    pub fn create_mv(&mut self, birth_action: &str) -> &MaterializedView<RowViewData> {
        let schema = self.schema.clone();
        let (uidx, tidx) = (schema.user_idx(), schema.time_idx());
        let layout = MvLayout::new(&schema);
        let birth_tuples = self.birth_tuples(birth_action);

        // Base pass: keep the tuples of born users.
        let mut data: RowViewData = self
            .rows
            .iter()
            .filter(|row| row[uidx].as_str().map(|u| birth_tuples.contains_key(u)).unwrap_or(false))
            .map(|row| {
                let mut out = Vec::with_capacity(layout.width());
                out.extend(row.iter().cloned());
                out
            })
            .collect();

        // One full join pass per birth attribute (the paper's six joins).
        for (attr, _col) in layout.birth_pairs() {
            for row in data.iter_mut() {
                let user = row[uidx].as_str().expect("user is a string");
                let birth = &birth_tuples[user];
                row.push(birth[attr].clone());
            }
        }
        // Final pass: the age column.
        for row in data.iter_mut() {
            let bt = row[layout.birth_col(tidx)].as_int().expect("bt is int");
            let t = row[tidx].as_int().expect("time is int");
            row.push(Value::Int(t - bt));
        }

        let view = MaterializedView {
            birth_action: birth_action.to_string(),
            layout,
            num_rows: data.len(),
            data,
        };
        self.views.insert(birth_action.to_string(), view);
        &self.views[birth_action]
    }

    /// Figure 2(a)+(b): per-user birth tuples for a birth action.
    fn birth_tuples(&self, birth_action: &str) -> HashMap<Arc<str>, Vec<Value>> {
        let schema = &self.schema;
        let (uidx, tidx, aidx) = (schema.user_idx(), schema.time_idx(), schema.action_idx());
        let mut births: HashMap<Arc<str>, i64> = HashMap::new();
        for row in &self.rows {
            if row[aidx].as_str() == Some(birth_action) {
                let user = match &row[uidx] {
                    Value::Str(u) => u.clone(),
                    _ => continue,
                };
                let t = row[tidx].as_int().expect("time is int");
                births.entry(user).and_modify(|cur| *cur = (*cur).min(t)).or_insert(t);
            }
        }
        let mut birth_tuples: HashMap<Arc<str>, Vec<Value>> = HashMap::new();
        for row in &self.rows {
            if row[aidx].as_str() != Some(birth_action) {
                continue;
            }
            let user = match &row[uidx] {
                Value::Str(u) => u.clone(),
                _ => continue,
            };
            if births.get(&user) == row[tidx].as_int().as_ref() {
                birth_tuples.entry(user).or_insert_with(|| row.clone());
            }
        }
        birth_tuples
    }

    /// Whether a view exists for a birth action.
    pub fn has_mv(&self, birth_action: &str) -> bool {
        self.views.contains_key(birth_action)
    }

    /// Serialize a materialized view to its on-disk byte image — the
    /// `CREATE TABLE AS` write the paper's Figure 10 measures. The view is
    /// uncompressed and nearly twice the base table's width, which is the
    /// storage cost §2 calls out.
    pub fn serialize_mv(&self, birth_action: &str) -> Option<Vec<u8>> {
        let view = self.views.get(birth_action)?;
        let mut out = Vec::new();
        for row in &view.data {
            for v in row {
                match v {
                    Value::Str(s) => {
                        out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                        out.extend_from_slice(s.as_bytes());
                    }
                    Value::Int(i) => out.extend_from_slice(&i.to_le_bytes()),
                    Value::Null => out.push(0),
                }
            }
        }
        Some(out)
    }

    /// The MV approach (Figure 3): filter + aggregate over the prebuilt
    /// view.
    pub fn execute_mv(&self, query: &CohortQuery) -> Result<CohortReport> {
        let view = self.views.get(&query.birth_action).ok_or_else(|| {
            BaselineError::MissingView { birth_action: query.birth_action.clone() }
        })?;
        self.query_over_view(&view.layout, &view.data, query)
    }

    /// Figure 2(a)–(c): birth times by GROUP BY, birth tuples by join, then
    /// the full activity×birth join with computed ages. Tuple-at-a-time
    /// with materialization of every stage.
    fn build_view_data(&self, birth_action: &str) -> (MvLayout, RowViewData) {
        let schema = &self.schema;
        let (uidx, tidx, aidx) = (schema.user_idx(), schema.time_idx(), schema.action_idx());
        let layout = MvLayout::new(schema);

        // (a) birth: SELECT p, Min(t) FROM D WHERE a = e GROUP BY p
        let mut births: HashMap<Arc<str>, i64> = HashMap::new();
        for row in &self.rows {
            if row[aidx].as_str() == Some(birth_action) {
                let user = match &row[uidx] {
                    Value::Str(u) => u.clone(),
                    _ => continue,
                };
                let t = row[tidx].as_int().expect("time is int");
                births.entry(user).and_modify(|cur| *cur = (*cur).min(t)).or_insert(t);
            }
        }

        // (b) birthTuples: join D with births on (p, t = birthTime, a = e),
        // materializing each user's full birth tuple.
        let mut birth_tuples: HashMap<Arc<str>, Vec<Value>> = HashMap::new();
        for row in &self.rows {
            if row[aidx].as_str() != Some(birth_action) {
                continue;
            }
            let user = match &row[uidx] {
                Value::Str(u) => u.clone(),
                _ => continue,
            };
            if births.get(&user) == row[tidx].as_int().as_ref() {
                birth_tuples.entry(user).or_insert_with(|| row.clone());
            }
        }

        // (c) cohortT: join D with birthTuples on p, materializing
        // [base…, birth copies…, age].
        let mut out: RowViewData = Vec::new();
        for row in &self.rows {
            let user = match &row[uidx] {
                Value::Str(u) => u,
                _ => continue,
            };
            let Some(birth) = birth_tuples.get(user) else { continue };
            let bt = birth[tidx].as_int().expect("time is int");
            let mut view_row: Vec<Value> = Vec::with_capacity(layout.width());
            view_row.extend(row.iter().cloned());
            for (attr, _col) in layout.birth_pairs() {
                view_row.push(birth[attr].clone());
            }
            view_row.push(Value::Int(row[tidx].as_int().expect("time is int") - bt));
            out.push(view_row);
        }
        (layout, out)
    }

    /// Figure 3 / Figure 2(d)–(e): cohortSize + filtered GROUP BY over the
    /// view. The birth condition is evaluated per view row — the
    /// "unnecessarily check each activity tuple" cost of §2.
    fn query_over_view(
        &self,
        layout: &MvLayout,
        data: &RowViewData,
        query: &CohortQuery,
    ) -> Result<CohortReport> {
        let schema = &self.schema;
        let uidx = schema.user_idx();
        let tidx = schema.time_idx();
        let extractors = cohort_extractors(query, schema)?;
        let mut groups = GroupTable::new(query, schema)?;
        let mut seen_users: HashSet<Arc<str>> = HashSet::new();

        for row in data {
            let cur = |idx: usize| scalar_at(row, idx);
            let birth = |idx: usize| scalar_at(row, layout.birth_col(idx));
            let age_secs = row[layout.age_col].as_int().expect("age is int");
            let age_units = query.age_bin.age_units(age_secs);

            // Birth selection, evaluated on the birth copies of this row.
            if let Some(p) = &query.birth_predicate {
                if !eval_pred(p, schema, &birth, &birth, 0)? {
                    continue;
                }
            }

            let user = match &row[uidx] {
                Value::Str(u) => u.clone(),
                _ => continue,
            };
            // cohortSize: first qualified row of each user registers the
            // user with its cohort (Figure 3(c)'s DISTINCT).
            let birth_time = row[layout.birth_col(tidx)].as_int().expect("bt is int");
            let cohort: Vec<Value> =
                extractors.iter().map(|e| e.extract(&birth, birth_time)).collect();
            if seen_users.insert(user.clone()) {
                groups.add_user(cohort.clone());
            }

            // Age tuples only (g > 0), passing the age selection.
            if age_secs <= 0 {
                continue;
            }
            if let Some(p) = &query.age_predicate {
                if !eval_pred(p, schema, &cur, &birth, age_units)? {
                    continue;
                }
            }
            groups.update(&cohort, age_units, &user, &cur)?;
        }
        Ok(groups.into_report(query))
    }
}

fn scalar_at(row: &[Value], idx: usize) -> Scalar<'_> {
    match &row[idx] {
        Value::Str(s) => Scalar::S(s),
        Value::Int(v) => Scalar::I(*v),
        Value::Null => Scalar::I(i64::MIN),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohana_activity::{generate, GeneratorConfig};
    use cohana_core::naive::naive_execute;
    use cohana_core::paper;

    fn table() -> ActivityTable {
        generate(&GeneratorConfig::small())
    }

    #[test]
    fn sql_approach_matches_reference_q1() {
        let t = table();
        let e = RowEngine::load(&t);
        let got = e.execute_sql(&paper::q1()).unwrap();
        let want = naive_execute(&t, &paper::q1()).unwrap();
        assert_eq!(got.rows, want.rows);
        assert_eq!(got.cohort_sizes, want.cohort_sizes);
    }

    #[test]
    fn mv_approach_requires_view() {
        let t = table();
        let mut e = RowEngine::load(&t);
        assert!(matches!(
            e.execute_mv(&paper::q1()).unwrap_err(),
            BaselineError::MissingView { .. }
        ));
        e.create_mv("launch");
        assert!(e.has_mv("launch"));
        assert!(e.execute_mv(&paper::q1()).is_ok());
    }

    #[test]
    fn mv_equals_sql_approach() {
        let t = table();
        let mut e = RowEngine::load(&t);
        e.create_mv("shop");
        let a = e.execute_sql(&paper::q3()).unwrap();
        let b = e.execute_mv(&paper::q3()).unwrap();
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn view_rows_cover_only_born_users() {
        let t = table();
        let e = RowEngine::load(&t);
        let (_, data) = e.build_view_data("shop");
        // Only tuples of users who ever shopped appear in the shop view.
        assert!(data.len() <= e.num_rows());
        let (layout, all) = e.build_view_data("launch");
        // Everyone launches, so the launch view covers every tuple.
        assert_eq!(all.len(), e.num_rows());
        assert_eq!(all[0].len(), layout.width());
    }
}
