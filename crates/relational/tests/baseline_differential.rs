//! Differential tests: all four baseline evaluation schemes (row/col ×
//! SQL/MV) must agree with the naive reference evaluator — and therefore
//! with COHANA — on every benchmark query.

use cohana_activity::{generate, GeneratorConfig, Timestamp};
use cohana_core::naive::naive_execute;
use cohana_core::{paper, CohortQuery, CohortReport};
use cohana_relational::{ColEngine, RowEngine};

fn dataset() -> cohana_activity::ActivityTable {
    generate(&GeneratorConfig::new(120))
}

fn assert_same(got: &CohortReport, want: &CohortReport, what: &str) {
    assert_eq!(got.rows.len(), want.rows.len(), "{what}: row count");
    for (a, b) in got.rows.iter().zip(want.rows.iter()) {
        assert_eq!(a.cohort, b.cohort, "{what}");
        assert_eq!(a.age, b.age, "{what}");
        assert_eq!(a.size, b.size, "{what} cohort {:?} age {}", a.cohort, a.age);
        for (x, y) in a.measures.iter().zip(b.measures.iter()) {
            assert!(x.approx_eq(y), "{what}: {x:?} vs {y:?} at {:?}/{}", a.cohort, a.age);
        }
    }
    assert_eq!(got.cohort_sizes, want.cohort_sizes, "{what}: sizes");
}

fn check(query: &CohortQuery, what: &str) {
    let table = dataset();
    let want = naive_execute(&table, query).unwrap();

    let mut row = RowEngine::load(&table);
    assert_same(&row.execute_sql(query).unwrap(), &want, &format!("{what} row-sql"));
    row.create_mv(&query.birth_action);
    assert_same(&row.execute_mv(query).unwrap(), &want, &format!("{what} row-mv"));

    let mut col = ColEngine::load(&table);
    assert_same(&col.execute_sql(query).unwrap(), &want, &format!("{what} col-sql"));
    col.create_mv(&query.birth_action);
    assert_same(&col.execute_mv(query).unwrap(), &want, &format!("{what} col-mv"));
}

#[test]
fn q1_all_schemes() {
    check(&paper::q1(), "Q1");
}

#[test]
fn q2_all_schemes() {
    check(&paper::q2(), "Q2");
}

#[test]
fn q3_all_schemes() {
    check(&paper::q3(), "Q3");
}

#[test]
fn q4_all_schemes() {
    check(&paper::q4(), "Q4");
}

#[test]
fn q5_all_schemes() {
    let d1 = Timestamp::parse("2013-05-19").unwrap().secs();
    let d2 = Timestamp::parse("2013-06-01").unwrap().secs();
    check(&paper::q5(d1, d2), "Q5");
}

#[test]
fn q6_all_schemes() {
    let d1 = Timestamp::parse("2013-05-22").unwrap().secs();
    let d2 = Timestamp::parse("2013-06-10").unwrap().secs();
    check(&paper::q6(d1, d2), "Q6");
}

#[test]
fn q7_all_schemes() {
    check(&paper::q7(10), "Q7");
}

#[test]
fn q8_all_schemes() {
    check(&paper::q8(6), "Q8");
}

#[test]
fn example1_all_schemes() {
    check(&paper::example1(), "Example1");
}

#[test]
fn weekly_cohorts_all_schemes() {
    check(&paper::shopping_trend(), "shopping-trend");
}

#[test]
fn shop_birth_all_schemes() {
    // Non-first birth action: view rows include pre-birth tuples with
    // negative ages that must be excluded from aggregation.
    let q = CohortQuery::builder("shop")
        .cohort_by(["country"])
        .aggregate(cohana_core::AggFunc::sum("gold"))
        .aggregate(cohana_core::AggFunc::user_count())
        .build()
        .unwrap();
    check(&q, "shop-birth");
}

#[test]
fn baselines_agree_with_cohana_engine() {
    use cohana_core::Cohana;
    use cohana_storage::CompressionOptions;
    let table = dataset();
    let engine =
        Cohana::from_activity_table(&table, CompressionOptions::with_chunk_size(1024)).unwrap();
    let row = RowEngine::load(&table);
    for q in [paper::q1(), paper::q2(), paper::q3(), paper::q4()] {
        let a = engine.execute(&q).unwrap();
        let b = row.execute_sql(&q).unwrap();
        assert_same(&a, &b, &format!("cohana-vs-row {q}"));
    }
}
