//! Per-query admission control: a semaphore over concurrently-decoding
//! queries with a bounded FIFO wait queue.
//!
//! The engine's chunk pipeline is happy to run any number of queries, but
//! every admitted query costs worker threads, decode CPU, and segment-cache
//! churn; past the core count, extra concurrency only adds cache pressure
//! and latency variance. [`Admission`] caps the number of queries executing
//! at once: up to `cap` run immediately, the next `queue_bound` wait their
//! turn in strict FIFO order (ticket-numbered, so a released slot always
//! goes to the longest waiter), and everyone else is refused with
//! [`AdmitError::QueueFull`] rather than piling up unboundedly. The time a
//! query spent queued is recorded on its [`Permit`] and reported in the
//! stream's STATS frame, so clients can tell engine time from waiting time.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a query was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The wait queue is at its bound; retry later.
    QueueFull,
    /// The server is shutting down; no new queries are admitted.
    ShuttingDown,
}

#[derive(Debug, Default)]
struct State {
    active: usize,
    queued: usize,
    /// Next ticket to hand to a waiter.
    next_ticket: u64,
    /// Ticket allowed to take the next free slot (FIFO order).
    next_to_admit: u64,
    peak_active: usize,
    max_queue_depth: usize,
    admitted_total: u64,
    rejected_total: u64,
    total_queue_wait: Duration,
    shutdown: bool,
}

/// Snapshot of the admission state, served in standalone STATS responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionStats {
    /// Maximum queries executing at once.
    pub cap: usize,
    /// Queries executing right now.
    pub active: usize,
    /// High-water mark of `active` — provably `<= cap` for the server's
    /// whole lifetime.
    pub peak_active: usize,
    /// Queries waiting right now.
    pub queued: usize,
    /// High-water mark of the wait queue.
    pub max_queue_depth: usize,
    /// Queries ever admitted.
    pub admitted_total: u64,
    /// Queries refused with [`AdmitError::QueueFull`].
    pub rejected_total: u64,
    /// Total time admitted queries spent waiting in the queue.
    pub total_queue_wait: Duration,
}

/// The admission semaphore. Shared across all connections of one server.
#[derive(Debug)]
pub struct Admission {
    cap: usize,
    queue_bound: usize,
    state: Mutex<State>,
    cond: Condvar,
}

impl Admission {
    /// A gate admitting `cap` concurrent queries with up to `queue_bound`
    /// waiters.
    pub fn new(cap: usize, queue_bound: usize) -> Admission {
        Admission {
            cap: cap.max(1),
            queue_bound,
            state: Mutex::new(State::default()),
            cond: Condvar::new(),
        }
    }

    /// Block until admitted (FIFO among waiters), or fail fast when the
    /// queue is full or the server is draining.
    pub fn admit(self: &Arc<Self>) -> Result<Permit, AdmitError> {
        let mut s = self.state.lock().expect("admission lock poisoned");
        if s.shutdown {
            return Err(AdmitError::ShuttingDown);
        }
        // Fast path: a free slot and nobody waiting ahead of us.
        if s.active < self.cap && s.queued == 0 {
            s.active += 1;
            s.peak_active = s.peak_active.max(s.active);
            s.admitted_total += 1;
            return Ok(Permit { gate: self.clone(), queue_wait: Duration::ZERO });
        }
        if s.queued >= self.queue_bound {
            s.rejected_total += 1;
            return Err(AdmitError::QueueFull);
        }
        let ticket = s.next_ticket;
        s.next_ticket += 1;
        s.queued += 1;
        s.max_queue_depth = s.max_queue_depth.max(s.queued);
        let waited_from = Instant::now();
        loop {
            s = self.cond.wait(s).expect("admission lock poisoned");
            if s.shutdown {
                s.queued -= 1;
                // Unblock waiters behind this ticket (they will also bail).
                s.next_to_admit = s.next_to_admit.max(ticket + 1);
                self.cond.notify_all();
                return Err(AdmitError::ShuttingDown);
            }
            if ticket == s.next_to_admit && s.active < self.cap {
                s.queued -= 1;
                s.next_to_admit += 1;
                s.active += 1;
                s.peak_active = s.peak_active.max(s.active);
                s.admitted_total += 1;
                let queue_wait = waited_from.elapsed();
                s.total_queue_wait += queue_wait;
                // The next ticket may also be admissible (cap > 1).
                self.cond.notify_all();
                return Ok(Permit { gate: self.clone(), queue_wait });
            }
        }
    }

    /// Stop admitting: current waiters fail with
    /// [`AdmitError::ShuttingDown`]; already-admitted queries keep their
    /// permits and drain normally.
    pub fn shutdown(&self) {
        let mut s = self.state.lock().expect("admission lock poisoned");
        s.shutdown = true;
        self.cond.notify_all();
    }

    /// Current counters and high-water marks.
    pub fn stats(&self) -> AdmissionStats {
        let s = self.state.lock().expect("admission lock poisoned");
        AdmissionStats {
            cap: self.cap,
            active: s.active,
            peak_active: s.peak_active,
            queued: s.queued,
            max_queue_depth: s.max_queue_depth,
            admitted_total: s.admitted_total,
            rejected_total: s.rejected_total,
            total_queue_wait: s.total_queue_wait,
        }
    }

    fn release(&self) {
        let mut s = self.state.lock().expect("admission lock poisoned");
        s.active -= 1;
        self.cond.notify_all();
    }
}

/// RAII admission slot: holding one means the query may execute; dropping
/// it frees the slot for the longest waiter.
#[derive(Debug)]
pub struct Permit {
    gate: Arc<Admission>,
    queue_wait: Duration,
}

impl Permit {
    /// How long this query waited in the admission queue (zero on the fast
    /// path).
    pub fn queue_wait(&self) -> Duration {
        self.queue_wait
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.gate.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    #[test]
    fn cap_is_never_exceeded_under_contention() {
        let gate = Arc::new(Admission::new(3, 64));
        let running = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..24 {
            let gate = gate.clone();
            let running = running.clone();
            handles.push(thread::spawn(move || {
                let permit = gate.admit().unwrap();
                let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                assert!(now <= 3, "{now} queries active past the cap");
                thread::sleep(Duration::from_millis(2));
                running.fetch_sub(1, Ordering::SeqCst);
                drop(permit);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = gate.stats();
        assert_eq!(stats.admitted_total, 24);
        assert!(stats.peak_active <= 3);
        assert_eq!(stats.active, 0);
        assert_eq!(stats.queued, 0);
    }

    #[test]
    fn bounded_queue_rejects_overflow() {
        let gate = Arc::new(Admission::new(1, 0));
        let held = gate.admit().unwrap();
        assert_eq!(gate.admit().unwrap_err(), AdmitError::QueueFull);
        assert_eq!(gate.stats().rejected_total, 1);
        drop(held);
        let again = gate.admit().unwrap();
        assert_eq!(again.queue_wait(), Duration::ZERO);
    }

    #[test]
    fn fifo_order_among_waiters() {
        let gate = Arc::new(Admission::new(1, 16));
        let first = gate.admit().unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for i in 0..5 {
            let waiter_gate = gate.clone();
            let order = order.clone();
            handles.push(thread::spawn(move || {
                let permit = waiter_gate.admit().unwrap();
                order.lock().unwrap().push(i);
                assert!(permit.queue_wait() > Duration::ZERO);
                drop(permit);
            }));
            // Serialize queue entry so arrival order is deterministic.
            while gate.stats().queued != i + 1 {
                thread::sleep(Duration::from_millis(1));
            }
        }
        drop(first);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
        assert_eq!(gate.stats().max_queue_depth, 5);
        assert!(gate.stats().total_queue_wait > Duration::ZERO);
    }

    #[test]
    fn shutdown_fails_waiters_and_new_arrivals_but_drains_holders() {
        let gate = Arc::new(Admission::new(1, 16));
        let held = gate.admit().unwrap();
        let waiter = {
            let gate = gate.clone();
            thread::spawn(move || gate.admit().map(|_| ()))
        };
        while gate.stats().queued == 0 {
            thread::sleep(Duration::from_millis(1));
        }
        gate.shutdown();
        assert_eq!(waiter.join().unwrap().unwrap_err(), AdmitError::ShuttingDown);
        assert_eq!(gate.admit().unwrap_err(), AdmitError::ShuttingDown);
        // The holder's permit still releases cleanly.
        drop(held);
        assert_eq!(gate.stats().active, 0);
    }
}
