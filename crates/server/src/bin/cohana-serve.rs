//! `cohana-serve` — serve a COHANA table over TCP.
//!
//! ```text
//! cohana-serve [--open FILE.cohana | --users N] [--addr HOST:PORT]
//!              [--cap N] [--queue N] [--cache-bytes N]
//! ```
//!
//! With `--open` the table is file-backed and chunk columns are fetched on
//! demand within the cache budget; otherwise a synthetic dataset with
//! `--users` users is generated in memory. The server prints the bound
//! address on stdout, then serves until stdin closes or reads `quit`,
//! shutting down gracefully (draining in-flight queries).

use cohana_activity::{generate, GeneratorConfig};
use cohana_core::engine::DEFAULT_TABLE;
use cohana_server::{Server, ServerConfig};
use cohana_storage::{CompressedTable, CompressionOptions, DEFAULT_CACHE_BUDGET};
use std::io::BufRead;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut users = 10_000usize;
    let mut open: Option<String> = None;
    let mut config = ServerConfig { addr: "127.0.0.1:7654".into(), ..ServerConfig::default() };
    let mut cache_bytes = DEFAULT_CACHE_BUDGET;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--users" => {
                i += 1;
                users = parse_or_exit(args.get(i), "--users");
            }
            "--open" => {
                i += 1;
                open = args.get(i).cloned();
            }
            "--addr" => {
                i += 1;
                config.addr = args.get(i).cloned().unwrap_or_else(|| usage_exit("--addr"));
            }
            "--cap" => {
                i += 1;
                config.admission_cap = parse_or_exit(args.get(i), "--cap");
            }
            "--queue" => {
                i += 1;
                config.queue_bound = parse_or_exit(args.get(i), "--queue");
            }
            "--cache-bytes" => {
                i += 1;
                cache_bytes = parse_or_exit(args.get(i), "--cache-bytes");
            }
            "--help" | "-h" => {
                println!(
                    "usage: cohana-serve [--open FILE.cohana | --users N] \
                     [--addr HOST:PORT] [--cap N] [--queue N] [--cache-bytes N]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let engine = cohana_core::Cohana::new(Default::default());
    if let Some(path) = open {
        // Files and shard directories alike; a long-running server wants
        // background compaction to keep dead bytes bounded.
        match engine
            .open(&path)
            .name(DEFAULT_TABLE)
            .cache_bytes(cache_bytes)
            .maintenance(cohana_core::MaintenanceConfig::enabled())
            .open()
            .and_then(|handle| Ok((handle.num_shards(), handle.source()?)))
        {
            Ok((shards, src)) => eprintln!(
                "opened {path}: {} tuples in {} chunks across {shards} shard(s) \
                 (cache budget {cache_bytes} bytes)",
                src.table_meta().num_rows(),
                src.num_chunks(),
            ),
            Err(e) => {
                eprintln!("cannot open {path}: {e}");
                std::process::exit(1);
            }
        }
    } else {
        eprintln!("generating a synthetic dataset with {users} users…");
        let table = generate(&GeneratorConfig::new(users));
        let compressed = CompressedTable::build(&table, CompressionOptions::default())
            .expect("compression succeeds");
        eprintln!("ready: {} tuples, {} users", table.num_rows(), table.num_users());
        engine.register(DEFAULT_TABLE, compressed);
    }

    let mut server = match Server::start(Arc::new(engine), config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind: {e}");
            std::process::exit(1);
        }
    };
    // Machine-readable so spawners can pick up the bound port.
    println!("listening {}", server.local_addr());
    eprintln!("serving; close stdin or type `quit` to shut down");

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "quit" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    eprintln!("shutting down (draining in-flight queries)…");
    server.shutdown();
    let stats = server.admission_stats();
    eprintln!(
        "served {} queries ({} refused, peak concurrency {}/{})",
        stats.admitted_total, stats.rejected_total, stats.peak_active, stats.cap
    );
}

fn usage_exit(flag: &str) -> ! {
    eprintln!("missing value for {flag}");
    std::process::exit(2);
}

fn parse_or_exit<T: std::str::FromStr>(arg: Option<&String>, flag: &str) -> T {
    match arg.and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => {
            eprintln!("bad value for {flag}");
            std::process::exit(2);
        }
    }
}
