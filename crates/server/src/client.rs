//! The blocking client for `cohana-serve`.
//!
//! [`Client::connect`] performs the HELLO handshake; [`Client::prepare`] /
//! [`Client::execute`] mirror the in-process `Session` / `Statement` split.
//! An execution is a [`RemoteStream`]: pull [`WireBatch`]es one at a time
//! (the pull rate is the backpressure — the server blocks on this
//! connection's TCP buffer, not on other clients), or
//! [`RemoteStream::collect`] them into a [`CohortReport`] that is
//! bit-identical to what `Statement::execute` produces in-process.
//!
//! Dropping a [`RemoteStream`] before its terminating STATS frame leaves
//! server frames in flight, so the connection is desynchronized; further
//! calls on the client fail with [`ClientError::Desynced`]. Drop the client
//! (or call [`RemoteStream::cancel`] first) instead — closing the
//! connection is itself the cancellation signal the server acts on.

use crate::protocol::{self as proto, PreparedInfo};
use cohana_core::{CohortReport, ReportAssembler, WireBatch};
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or closed unexpectedly.
    Io(io::Error),
    /// The server sent something that does not decode as the protocol.
    Protocol(String),
    /// The server answered with an ERROR frame; `code` is one of the
    /// stable `ERR_*` codes in [`crate::protocol`].
    Remote {
        /// Stable numeric error code.
        code: u16,
        /// Human-readable message (do not match on it).
        message: String,
    },
    /// A previous [`RemoteStream`] was dropped mid-stream, leaving server
    /// frames in flight; this connection can no longer be used.
    Desynced,
}

impl ClientError {
    /// The remote error code, if this is a [`ClientError::Remote`].
    pub fn remote_code(&self) -> Option<u16> {
        match self {
            ClientError::Remote { code, .. } => Some(*code),
            _ => None,
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Remote { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            ClientError::Desynced => {
                write!(f, "connection desynchronized by a dropped stream")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

fn bad_wire(e: impl fmt::Display) -> ClientError {
    ClientError::Protocol(e.to_string())
}

/// A statement prepared on the server, addressable by id on the connection
/// that prepared it.
#[derive(Debug, Clone)]
pub struct Prepared {
    info: PreparedInfo,
}

impl Prepared {
    /// The server-assigned statement id.
    pub fn stmt_id(&self) -> u64 {
        self.info.stmt_id
    }

    /// Header names of the cohort attributes.
    pub fn cohort_attrs(&self) -> &[String] {
        &self.info.cohort_attrs
    }

    /// Header names of the aggregates.
    pub fn agg_names(&self) -> &[String] {
        &self.info.agg_names
    }

    /// The server's EXPLAIN rendering of the plan.
    pub fn explain(&self) -> &str {
        &self.info.explain
    }
}

/// One connection to a `cohana-serve` server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    banner: String,
    default_table: String,
    /// Set while a [`RemoteStream`] is live; only a clean stream end (STATS
    /// terminator, terminal ERROR, or a drained cancel) clears it.
    mid_stream: bool,
}

impl Client {
    /// Connect and shake hands, identifying as `tenant`.
    pub fn connect(addr: impl ToSocketAddrs, tenant: &str) -> Result<Client, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        proto::write_frame(&mut stream, proto::FRAME_HELLO, &proto::encode_hello(tenant))?;
        match proto::read_frame(&mut stream, proto::MAX_FRAME)? {
            proto::ReadFrame::Frame(proto::FRAME_HELLO, payload) => {
                let (version, banner, default_table) =
                    proto::decode_hello_ok(&payload).map_err(bad_wire)?;
                if version != proto::PROTOCOL_VERSION {
                    return Err(ClientError::Protocol(format!(
                        "server speaks protocol {version}, client speaks {}",
                        proto::PROTOCOL_VERSION
                    )));
                }
                Ok(Client { stream, banner, default_table, mid_stream: false })
            }
            proto::ReadFrame::Frame(proto::FRAME_ERROR, payload) => {
                let (code, message) = proto::decode_error(&payload).map_err(bad_wire)?;
                Err(ClientError::Remote { code, message })
            }
            proto::ReadFrame::Frame(ty, _) => {
                Err(ClientError::Protocol(format!("unexpected frame {ty} in handshake")))
            }
            proto::ReadFrame::Eof => Err(io::Error::from(io::ErrorKind::UnexpectedEof).into()),
            proto::ReadFrame::TooLarge(n) => {
                Err(ClientError::Protocol(format!("oversized handshake frame ({n} bytes)")))
            }
        }
    }

    /// The server's banner string.
    pub fn banner(&self) -> &str {
        &self.banner
    }

    /// The server's default table name.
    pub fn default_table(&self) -> &str {
        &self.default_table
    }

    fn check_sync(&self) -> Result<(), ClientError> {
        if self.mid_stream {
            Err(ClientError::Desynced)
        } else {
            Ok(())
        }
    }

    /// Read one frame, mapping ERROR frames to [`ClientError::Remote`] and
    /// anything unexpected to [`ClientError::Protocol`].
    fn expect_frame(&mut self, want: u8) -> Result<Vec<u8>, ClientError> {
        match proto::read_frame(&mut self.stream, proto::MAX_FRAME)? {
            proto::ReadFrame::Frame(ty, payload) if ty == want => Ok(payload),
            proto::ReadFrame::Frame(proto::FRAME_ERROR, payload) => {
                let (code, message) = proto::decode_error(&payload).map_err(bad_wire)?;
                Err(ClientError::Remote { code, message })
            }
            proto::ReadFrame::Frame(ty, _) => {
                Err(ClientError::Protocol(format!("unexpected frame type {ty}")))
            }
            proto::ReadFrame::Eof => Err(io::Error::from(io::ErrorKind::UnexpectedEof).into()),
            proto::ReadFrame::TooLarge(n) => {
                Err(ClientError::Protocol(format!("oversized frame ({n} bytes)")))
            }
        }
    }

    /// Parse and plan `sql` on the server.
    pub fn prepare(&mut self, sql: &str) -> Result<Prepared, ClientError> {
        self.check_sync()?;
        proto::write_frame(&mut self.stream, proto::FRAME_PREPARE, &proto::encode_prepare(sql))?;
        let payload = self.expect_frame(proto::FRAME_PREPARE)?;
        let info = proto::decode_prepared(&payload).map_err(bad_wire)?;
        Ok(Prepared { info })
    }

    /// Start executing a prepared statement. Admission errors (queue full,
    /// shutting down) surface from the stream's first
    /// [`RemoteStream::next_batch`].
    pub fn execute<'c>(&'c mut self, prepared: &Prepared) -> Result<RemoteStream<'c>, ClientError> {
        self.check_sync()?;
        proto::write_frame(
            &mut self.stream,
            proto::FRAME_EXECUTE,
            &proto::encode_execute(prepared.info.stmt_id),
        )?;
        self.mid_stream = true;
        Ok(RemoteStream {
            cohort_attrs: prepared.info.cohort_attrs.clone(),
            agg_names: prepared.info.agg_names.clone(),
            client: self,
            finished: false,
            stats: None,
        })
    }

    /// Prepare, execute, and collect in one call.
    pub fn query(&mut self, sql: &str) -> Result<CohortReport, ClientError> {
        let prepared = self.prepare(sql)?;
        self.execute(&prepared)?.collect()
    }

    /// This tenant's cumulative stats plus the server's admission snapshot.
    pub fn server_stats(&mut self) -> Result<proto::ServerStats, ClientError> {
        self.check_sync()?;
        proto::write_frame(&mut self.stream, proto::FRAME_STATS, &[])?;
        let payload = self.expect_frame(proto::FRAME_STATS)?;
        proto::decode_server_stats(&payload).map_err(bad_wire)
    }
}

/// One in-flight execution: BATCH frames pulled on demand, ended by the
/// server's STATS terminator (or a terminal ERROR).
#[derive(Debug)]
pub struct RemoteStream<'c> {
    client: &'c mut Client,
    cohort_attrs: Vec<String>,
    agg_names: Vec<String>,
    finished: bool,
    stats: Option<proto::ExecStats>,
}

impl RemoteStream<'_> {
    /// Pull the next batch; `Ok(None)` after the terminating STATS frame.
    /// A terminal ERROR (engine failure, cancellation, admission refusal)
    /// surfaces as [`ClientError::Remote`] and ends the stream.
    pub fn next_batch(&mut self) -> Result<Option<WireBatch>, ClientError> {
        if self.finished {
            return Ok(None);
        }
        match proto::read_frame(&mut self.client.stream, proto::MAX_FRAME) {
            Ok(proto::ReadFrame::Frame(proto::FRAME_BATCH, payload)) => {
                Ok(Some(WireBatch::decode(&payload).map_err(bad_wire)?))
            }
            Ok(proto::ReadFrame::Frame(proto::FRAME_STATS, payload)) => {
                self.stats = Some(proto::decode_exec_stats(&payload).map_err(bad_wire)?);
                self.finished = true;
                self.client.mid_stream = false;
                Ok(None)
            }
            Ok(proto::ReadFrame::Frame(proto::FRAME_ERROR, payload)) => {
                let (code, message) = proto::decode_error(&payload).map_err(bad_wire)?;
                self.finished = true;
                self.client.mid_stream = false;
                Err(ClientError::Remote { code, message })
            }
            Ok(proto::ReadFrame::Frame(ty, _)) => {
                Err(ClientError::Protocol(format!("unexpected frame type {ty} in stream")))
            }
            Ok(proto::ReadFrame::Eof) => Err(io::Error::from(io::ErrorKind::UnexpectedEof).into()),
            Ok(proto::ReadFrame::TooLarge(n)) => {
                Err(ClientError::Protocol(format!("oversized frame ({n} bytes)")))
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Pull every batch and assemble the report — bit-identical to the
    /// server running `Statement::execute` locally. The report carries this
    /// execution's server-side [`QueryStats`](cohana_core::QueryStats).
    pub fn collect(mut self) -> Result<CohortReport, ClientError> {
        let mut asm = ReportAssembler::new(self.cohort_attrs.clone(), self.agg_names.clone());
        while let Some(batch) = self.next_batch()? {
            asm.push(&batch).map_err(bad_wire)?;
        }
        let mut report = asm.finish();
        report.stats = self.stats.map(|s| s.stats);
        Ok(report)
    }

    /// The execution's server-side stats; present once the stream ended
    /// with its STATS terminator.
    pub fn stats(&self) -> Option<proto::ExecStats> {
        self.stats
    }

    /// Ask the server to stop this query, then drain until its terminal
    /// frame. Returns `true` if the server confirmed the cancellation,
    /// `false` if the query had already completed (the race is benign).
    pub fn cancel(mut self) -> Result<bool, ClientError> {
        if self.finished {
            return Ok(false);
        }
        proto::write_frame(&mut self.client.stream, proto::FRAME_CANCEL, &[])?;
        loop {
            match self.next_batch() {
                Ok(Some(_)) => continue, // batches already in flight
                Ok(None) => return Ok(false),
                Err(ClientError::Remote { code, .. }) if code == proto::ERR_CANCELLED => {
                    return Ok(true);
                }
                Err(e) => return Err(e),
            }
        }
    }
}
