//! `cohana-server`: a concurrent network serving layer for the COHANA
//! cohort engine.
//!
//! One [`Server`] wraps one shared [`Cohana`](cohana_core::Cohana) catalog
//! and serves it over a length-prefixed binary protocol
//! ([`protocol`], documented in `docs/PROTOCOL.md`) to any number of
//! concurrent connections, thread-per-connection:
//!
//! - **Admission control** ([`admission`]): at most `cap` queries decode at
//!   once; up to `queue_bound` more wait in FIFO order; the rest are
//!   refused fast. Queue time is reported separately from engine time.
//! - **Streaming results with backpressure**: each per-chunk result batch
//!   is shipped as it is produced ([`WireBatch`](cohana_core::WireBatch)
//!   in a BATCH frame); a slow client blocks only its own query's pull
//!   loop, never another tenant's.
//! - **Cancellation**: a CANCEL frame — or simply disconnecting — stops the
//!   query's chunk decode at the next batch boundary.
//! - **Per-tenant accounting** ([`registry`]): every execution's exact
//!   [`QueryStats`](cohana_core::QueryStats) (recorder-attributed I/O, no
//!   double counting across concurrent sessions) folds into the tenant
//!   named at HELLO time.
//! - **Graceful shutdown**: draining in-flight streams, refusing new work,
//!   force-closing stragglers at a deadline.
//!
//! The matching blocking client lives in [`client`]; the `cohana-serve`
//! binary wraps [`Server`] around a file-backed or generated table.
//!
//! ```no_run
//! use cohana_server::{Client, Server, ServerConfig};
//! use std::sync::Arc;
//!
//! let engine = cohana_core::Cohana::new(Default::default());
//! // ... engine.open("game.cohana").open()? ...
//! let mut server = Server::start(Arc::new(engine), ServerConfig::default())?;
//! let mut client = Client::connect(server.local_addr(), "analytics")?;
//! let report = client.query(
//!     "SELECT country, COHORTSIZE, AGE, SUM(gold) FROM GameActions \
//!      BIRTH ON action = 'launch' GROUP BY COHORT country, AGE",
//! )?;
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod admission;
pub mod client;
pub mod protocol;
pub mod registry;
pub mod server;

pub use admission::{Admission, AdmissionStats, AdmitError, Permit};
pub use client::{Client, ClientError, Prepared, RemoteStream};
pub use registry::{TenantRegistry, TenantStats};
pub use server::{Server, ServerConfig};
