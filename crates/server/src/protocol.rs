//! The length-prefixed binary protocol `cohana-serve` speaks.
//!
//! Every frame is `u32 payload length (LE) | u8 frame type | payload`;
//! payloads use the little-endian codec of [`cohana_core::wire`]. A peer
//! that sends a payload longer than [`MAX_FRAME`] is refused with
//! [`ERR_TOO_LARGE`] and disconnected; a frame that fails to decode is a
//! protocol violation ([`ERR_PROTOCOL`]) that closes only that connection.
//! See `docs/PROTOCOL.md` for the full exchange rules.

use cohana_core::wire::{decode_query_stats, encode_query_stats, WireReader, WireWriter};
use cohana_core::{EngineError, QueryStats};
use std::io::{self, Read, Write};
use std::time::Duration;

/// Protocol version sent (and required to match) in the HELLO handshake.
pub const PROTOCOL_VERSION: u32 = 1;

/// Largest accepted frame payload (64 MiB).
pub const MAX_FRAME: u32 = 64 << 20;

/// Client → server greeting; must be the first frame on a connection.
pub const FRAME_HELLO: u8 = 1;
/// Client → server: parse + plan a SQL cohort query. Response carries the
/// statement id and the result headers.
pub const FRAME_PREPARE: u8 = 2;
/// Client → server: execute a prepared statement. The server streams BATCH
/// frames and terminates with one STATS frame.
pub const FRAME_EXECUTE: u8 = 3;
/// Server → client: one per-chunk [`WireBatch`](cohana_core::WireBatch).
pub const FRAME_BATCH: u8 = 4;
/// Stats. As the EXECUTE terminator (server → client) the payload is
/// [`encode_exec_stats`]; as a standalone request/response pair the request
/// payload is empty and the response is [`encode_server_stats`].
pub const FRAME_STATS: u8 = 5;
/// Server → client: a typed error (stable numeric code + human message).
pub const FRAME_ERROR: u8 = 6;
/// Client → server, only during an EXECUTE stream: stop the query. The
/// server abandons the stream and answers ERROR [`ERR_CANCELLED`].
pub const FRAME_CANCEL: u8 = 7;

// Engine error codes (1:1 with `EngineError` variants) — stable: clients
// match on these numbers, never on rendered messages.
/// [`EngineError::UnknownAttribute`]
pub const ERR_UNKNOWN_ATTRIBUTE: u16 = 1;
/// [`EngineError::UnknownTable`]
pub const ERR_UNKNOWN_TABLE: u16 = 2;
/// [`EngineError::TypeError`]
pub const ERR_TYPE: u16 = 3;
/// [`EngineError::InvalidQuery`]
pub const ERR_INVALID_QUERY: u16 = 4;
/// [`EngineError::Storage`]
pub const ERR_STORAGE: u16 = 5;
/// [`EngineError::Corrupt`]
pub const ERR_CORRUPT: u16 = 6;
/// [`EngineError::Activity`]
pub const ERR_ACTIVITY: u16 = 7;
/// [`EngineError::Unsupported`]
pub const ERR_UNSUPPORTED: u16 = 8;

// Protocol/server error codes.
/// Malformed frame or out-of-order exchange; the connection is closed.
pub const ERR_PROTOCOL: u16 = 100;
/// Frame payload exceeds [`MAX_FRAME`]; the connection is closed.
pub const ERR_TOO_LARGE: u16 = 101;
/// EXECUTE named a statement id this connection never prepared.
pub const ERR_UNKNOWN_STATEMENT: u16 = 102;
/// The query was cancelled by a CANCEL frame.
pub const ERR_CANCELLED: u16 = 103;
/// The server is shutting down and accepts no new queries.
pub const ERR_SHUTTING_DOWN: u16 = 104;
/// The admission wait queue is full; retry later.
pub const ERR_QUEUE_FULL: u16 = 105;
/// The SQL text failed to lex, parse, or translate.
pub const ERR_SQL: u16 = 106;

/// The stable wire code of a typed [`EngineError`].
pub fn engine_error_code(e: &EngineError) -> u16 {
    match e {
        EngineError::UnknownAttribute(_) => ERR_UNKNOWN_ATTRIBUTE,
        EngineError::UnknownTable(_) => ERR_UNKNOWN_TABLE,
        EngineError::TypeError(_) => ERR_TYPE,
        EngineError::InvalidQuery(_) => ERR_INVALID_QUERY,
        EngineError::Storage(_) => ERR_STORAGE,
        EngineError::Corrupt(_) => ERR_CORRUPT,
        EngineError::Activity(_) => ERR_ACTIVITY,
        EngineError::Unsupported(_) => ERR_UNSUPPORTED,
    }
}

/// Write one frame (header + payload) and flush.
pub fn write_frame(w: &mut impl Write, frame_type: u8, payload: &[u8]) -> io::Result<()> {
    let mut header = [0u8; 5];
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4] = frame_type;
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Outcome of a blocking frame read.
#[derive(Debug)]
pub enum ReadFrame {
    /// A complete frame.
    Frame(u8, Vec<u8>),
    /// Clean EOF at a frame boundary.
    Eof,
    /// The peer announced a payload longer than [`MAX_FRAME`].
    TooLarge(u32),
}

/// Read one frame, blocking. EOF before the first header byte is a clean
/// [`ReadFrame::Eof`]; EOF mid-frame is an [`io::Error`].
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> io::Result<ReadFrame> {
    let mut header = [0u8; 5];
    let mut pos = 0;
    while pos < header.len() {
        match r.read(&mut header[pos..]) {
            Ok(0) if pos == 0 => return Ok(ReadFrame::Eof),
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => pos += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(header[..4].try_into().unwrap());
    if len > max_frame {
        return Ok(ReadFrame::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(ReadFrame::Frame(header[4], payload))
}

/// HELLO request payload.
pub fn encode_hello(tenant: &str) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u32(PROTOCOL_VERSION);
    w.str(tenant);
    w.into_bytes()
}

/// Parse a HELLO request: `(version, tenant)`.
pub fn decode_hello(payload: &[u8]) -> Result<(u32, String), EngineError> {
    let mut r = WireReader::new(payload);
    let version = r.u32()?;
    let tenant = r.str()?.to_string();
    r.finish()?;
    Ok((version, tenant))
}

/// HELLO response payload.
pub fn encode_hello_ok(banner: &str, default_table: &str) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u32(PROTOCOL_VERSION);
    w.str(banner);
    w.str(default_table);
    w.into_bytes()
}

/// Parse a HELLO response: `(version, banner, default_table)`.
pub fn decode_hello_ok(payload: &[u8]) -> Result<(u32, String, String), EngineError> {
    let mut r = WireReader::new(payload);
    let version = r.u32()?;
    let banner = r.str()?.to_string();
    let table = r.str()?.to_string();
    r.finish()?;
    Ok((version, banner, table))
}

/// PREPARE request payload.
pub fn encode_prepare(sql: &str) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.str(sql);
    w.into_bytes()
}

/// Parse a PREPARE request: the SQL text.
pub fn decode_prepare(payload: &[u8]) -> Result<String, EngineError> {
    let mut r = WireReader::new(payload);
    let sql = r.str()?.to_string();
    r.finish()?;
    Ok(sql)
}

/// What PREPARE returns: enough to execute remotely and to assemble the
/// report client-side without the table's metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedInfo {
    /// Server-assigned statement id, scoped to this connection.
    pub stmt_id: u64,
    /// Header names of the cohort attributes.
    pub cohort_attrs: Vec<String>,
    /// Header names of the aggregates.
    pub agg_names: Vec<String>,
    /// The server's EXPLAIN rendering of the plan.
    pub explain: String,
}

/// PREPARE response payload.
pub fn encode_prepared(info: &PreparedInfo) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u64(info.stmt_id);
    w.u16(info.cohort_attrs.len() as u16);
    for a in &info.cohort_attrs {
        w.str(a);
    }
    w.u16(info.agg_names.len() as u16);
    for a in &info.agg_names {
        w.str(a);
    }
    w.str(&info.explain);
    w.into_bytes()
}

/// Parse a PREPARE response.
pub fn decode_prepared(payload: &[u8]) -> Result<PreparedInfo, EngineError> {
    let mut r = WireReader::new(payload);
    let stmt_id = r.u64()?;
    let n = r.u16()? as usize;
    let mut cohort_attrs = Vec::with_capacity(n);
    for _ in 0..n {
        cohort_attrs.push(r.str()?.to_string());
    }
    let n = r.u16()? as usize;
    let mut agg_names = Vec::with_capacity(n);
    for _ in 0..n {
        agg_names.push(r.str()?.to_string());
    }
    let explain = r.str()?.to_string();
    r.finish()?;
    Ok(PreparedInfo { stmt_id, cohort_attrs, agg_names, explain })
}

/// EXECUTE request payload.
pub fn encode_execute(stmt_id: u64) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u64(stmt_id);
    w.into_bytes()
}

/// Parse an EXECUTE request: the statement id.
pub fn decode_execute(payload: &[u8]) -> Result<u64, EngineError> {
    let mut r = WireReader::new(payload);
    let id = r.u64()?;
    r.finish()?;
    Ok(id)
}

/// ERROR payload.
pub fn encode_error(code: u16, message: &str) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u16(code);
    w.str(message);
    w.into_bytes()
}

/// Parse an ERROR payload: `(code, message)`.
pub fn decode_error(payload: &[u8]) -> Result<(u16, String), EngineError> {
    let mut r = WireReader::new(payload);
    let code = r.u16()?;
    let message = r.str()?.to_string();
    r.finish()?;
    Ok((code, message))
}

/// The STATS frame terminating one EXECUTE stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// What this execution cost on the server.
    pub stats: QueryStats,
    /// How long the query waited in the admission queue before running.
    pub queue_wait: Duration,
}

/// EXECUTE-terminator STATS payload.
pub fn encode_exec_stats(s: &ExecStats) -> Vec<u8> {
    let mut w = WireWriter::new();
    encode_query_stats(&mut w, &s.stats);
    w.u64(s.queue_wait.as_nanos() as u64);
    w.into_bytes()
}

/// Parse an EXECUTE-terminator STATS payload.
pub fn decode_exec_stats(payload: &[u8]) -> Result<ExecStats, EngineError> {
    let mut r = WireReader::new(payload);
    let stats = decode_query_stats(&mut r)?;
    let queue_wait = Duration::from_nanos(r.u64()?);
    r.finish()?;
    Ok(ExecStats { stats, queue_wait })
}

/// A standalone STATS response: this tenant's cumulative accounting plus a
/// snapshot of the server's admission state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Queries this tenant has executed (across all its connections).
    pub queries: u64,
    /// Sum of this tenant's per-query [`QueryStats`].
    pub stats: QueryStats,
    /// Admission-control snapshot (server-wide, not per tenant).
    pub admission: crate::admission::AdmissionStats,
}

/// Standalone STATS response payload.
pub fn encode_server_stats(s: &ServerStats) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u64(s.queries);
    encode_query_stats(&mut w, &s.stats);
    let a = &s.admission;
    w.u64(a.cap as u64);
    w.u64(a.active as u64);
    w.u64(a.peak_active as u64);
    w.u64(a.queued as u64);
    w.u64(a.max_queue_depth as u64);
    w.u64(a.admitted_total);
    w.u64(a.rejected_total);
    w.u64(a.total_queue_wait.as_nanos() as u64);
    w.into_bytes()
}

/// Parse a standalone STATS response payload.
pub fn decode_server_stats(payload: &[u8]) -> Result<ServerStats, EngineError> {
    let mut r = WireReader::new(payload);
    let queries = r.u64()?;
    let stats = decode_query_stats(&mut r)?;
    let admission = crate::admission::AdmissionStats {
        cap: r.u64()? as usize,
        active: r.u64()? as usize,
        peak_active: r.u64()? as usize,
        queued: r.u64()? as usize,
        max_queue_depth: r.u64()? as usize,
        admitted_total: r.u64()?,
        rejected_total: r.u64()?,
        total_queue_wait: Duration::from_nanos(r.u64()?),
    };
    r.finish()?;
    Ok(ServerStats { queries, stats, admission })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FRAME_PREPARE, &encode_prepare("SELECT 1")).unwrap();
        write_frame(&mut buf, FRAME_CANCEL, &[]).unwrap();
        let mut r = io::Cursor::new(buf);
        match read_frame(&mut r, MAX_FRAME).unwrap() {
            ReadFrame::Frame(ty, payload) => {
                assert_eq!(ty, FRAME_PREPARE);
                assert_eq!(decode_prepare(&payload).unwrap(), "SELECT 1");
            }
            other => panic!("unexpected {other:?}"),
        }
        match read_frame(&mut r, MAX_FRAME).unwrap() {
            ReadFrame::Frame(ty, payload) => {
                assert_eq!(ty, FRAME_CANCEL);
                assert!(payload.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(read_frame(&mut r, MAX_FRAME).unwrap(), ReadFrame::Eof));
    }

    #[test]
    fn oversized_frames_are_reported_not_read() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        buf.push(FRAME_HELLO);
        let mut r = io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut r, MAX_FRAME).unwrap(),
            ReadFrame::TooLarge(n) if n == MAX_FRAME + 1
        ));
    }

    #[test]
    fn payload_codecs_roundtrip() {
        let (v, t) = decode_hello(&encode_hello("analytics")).unwrap();
        assert_eq!((v, t.as_str()), (PROTOCOL_VERSION, "analytics"));

        let info = PreparedInfo {
            stmt_id: 42,
            cohort_attrs: vec!["country".into()],
            agg_names: vec!["Sum(gold)".into(), "UserCount()".into()],
            explain: "plan\n".into(),
        };
        assert_eq!(decode_prepared(&encode_prepared(&info)).unwrap(), info);

        assert_eq!(decode_execute(&encode_execute(7)).unwrap(), 7);

        let (code, msg) = decode_error(&encode_error(ERR_QUEUE_FULL, "full")).unwrap();
        assert_eq!((code, msg.as_str()), (ERR_QUEUE_FULL, "full"));

        let exec = ExecStats {
            stats: QueryStats { chunks_total: 3, ..QueryStats::default() },
            queue_wait: Duration::from_micros(21),
        };
        assert_eq!(decode_exec_stats(&encode_exec_stats(&exec)).unwrap(), exec);
    }

    #[test]
    fn engine_errors_have_stable_codes() {
        assert_eq!(engine_error_code(&EngineError::UnknownAttribute("x".into())), 1);
        assert_eq!(engine_error_code(&EngineError::UnknownTable("x".into())), 2);
        assert_eq!(engine_error_code(&EngineError::TypeError("x".into())), 3);
        assert_eq!(engine_error_code(&EngineError::InvalidQuery("x".into())), 4);
        assert_eq!(engine_error_code(&EngineError::Storage("x".into())), 5);
        assert_eq!(engine_error_code(&EngineError::Corrupt("x".into())), 6);
        assert_eq!(engine_error_code(&EngineError::Activity("x".into())), 7);
        assert_eq!(engine_error_code(&EngineError::Unsupported("x".into())), 8);
    }

    #[test]
    fn malformed_payloads_error_cleanly() {
        assert!(decode_hello(&[1, 2]).is_err());
        assert!(decode_prepared(&[0xff; 3]).is_err());
        assert!(decode_error(&[]).is_err());
        let mut good = encode_hello("t");
        good.push(0);
        assert!(decode_hello(&good).is_err(), "trailing bytes must be rejected");
    }
}
