//! Per-tenant cumulative accounting.
//!
//! Every connection names a tenant in its HELLO frame; every completed (or
//! cancelled — partial work still costs) query folds its [`QueryStats`]
//! into that tenant's running total. Because the executor's I/O counters
//! are credited per increment ([`cohana_storage::IoRecorder`]), tenant
//! totals partition the shared source's real I/O exactly — two tenants
//! decoding concurrently never double-count bytes.

use cohana_core::QueryStats;
use std::collections::HashMap;
use std::sync::Mutex;

/// One tenant's running totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Executions recorded (including cancelled ones).
    pub queries: u64,
    /// Sum of the per-query stats.
    pub stats: QueryStats,
}

/// Tenant name → cumulative stats, shared by all connections of a server.
#[derive(Debug, Default)]
pub struct TenantRegistry {
    tenants: Mutex<HashMap<String, TenantStats>>,
}

impl TenantRegistry {
    /// An empty registry.
    pub fn new() -> TenantRegistry {
        TenantRegistry::default()
    }

    /// Fold one execution's stats into `tenant`'s total.
    pub fn record(&self, tenant: &str, stats: &QueryStats) {
        let mut tenants = self.tenants.lock().expect("registry lock poisoned");
        let entry = tenants.entry(tenant.to_string()).or_default();
        entry.queries += 1;
        entry.stats.absorb(stats);
    }

    /// `tenant`'s totals (zeros if it never ran a query).
    pub fn snapshot(&self, tenant: &str) -> TenantStats {
        self.tenants
            .lock()
            .expect("registry lock poisoned")
            .get(tenant)
            .copied()
            .unwrap_or_default()
    }

    /// All tenants with recorded queries, sorted by name.
    pub fn all(&self) -> Vec<(String, TenantStats)> {
        let tenants = self.tenants.lock().expect("registry lock poisoned");
        let mut out: Vec<(String, TenantStats)> =
            tenants.iter().map(|(k, v)| (k.clone(), *v)).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_per_tenant() {
        let reg = TenantRegistry::new();
        let one = QueryStats { rows_scanned: 100, bytes_read: 7, ..QueryStats::default() };
        reg.record("a", &one);
        reg.record("a", &one);
        reg.record("b", &one);
        assert_eq!(reg.snapshot("a").queries, 2);
        assert_eq!(reg.snapshot("a").stats.rows_scanned, 200);
        assert_eq!(reg.snapshot("b").queries, 1);
        assert_eq!(reg.snapshot("nobody"), TenantStats::default());
        let all = reg.all();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, "a");
    }
}
