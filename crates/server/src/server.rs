//! The threaded TCP server: one accept loop, one thread per connection,
//! all multiplexed over one shared [`Cohana`] catalog (and therefore one
//! shared chunk-column cache).
//!
//! Concurrency model — thread-per-connection on purpose: the engine's own
//! parallelism lives *inside* a query (morsel-driven workers), so the
//! serving layer only needs enough threads to keep admitted queries moving,
//! and [`Admission`] caps how many of those decode at once. Backpressure is
//! the TCP send buffer: a slow client blocks its own connection thread's
//! BATCH write, which stops that query's pull loop (serial) or parks its
//! workers on the bounded channel (parallel) — other tenants' queries never
//! wait on it. A client that disconnects mid-stream fails the next BATCH
//! write, which drops the `QueryStream` and cancels chunk decode at the
//! next morsel boundary.

use crate::admission::{Admission, AdmissionStats, AdmitError, Permit};
use crate::protocol::{self as proto, PreparedInfo};
use crate::registry::{TenantRegistry, TenantStats};
use cohana_core::{Cohana, EngineError, QueryStats, Statement};
use cohana_sql::parse_cohort_query;
use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the server is bound and gated.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Queries allowed to execute concurrently.
    pub admission_cap: usize,
    /// Queries allowed to wait for a slot before new ones are refused.
    pub queue_bound: usize,
    /// Free-text banner sent in the HELLO response.
    pub banner: String,
    /// How long [`Server::shutdown`] waits for in-flight connections to
    /// drain before force-closing their sockets.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            admission_cap: 4,
            queue_bound: 64,
            banner: "cohana-serve".into(),
            drain_timeout: Duration::from_secs(10),
        }
    }
}

/// State shared by the accept loop and every connection thread.
struct Shared {
    engine: Arc<Cohana>,
    admission: Arc<Admission>,
    tenants: TenantRegistry,
    shutdown: AtomicBool,
    banner: String,
}

struct ConnSlot {
    handle: JoinHandle<()>,
    /// A clone of the connection's stream, so shutdown can force-close it
    /// (unblocking a reader or a backpressured writer) past the drain
    /// deadline.
    stream: TcpStream,
}

/// A running server. Dropping it (or calling [`Server::shutdown`]) stops
/// accepting, drains in-flight queries, and joins every thread.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<ConnSlot>>>,
    drain_timeout: Duration,
}

impl Server {
    /// Bind and start serving `engine` in background threads.
    pub fn start(engine: Arc<Cohana>, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine,
            admission: Arc::new(Admission::new(config.admission_cap, config.queue_bound)),
            tenants: TenantRegistry::new(),
            shutdown: AtomicBool::new(false),
            banner: config.banner,
        });
        let conns: Arc<Mutex<Vec<ConnSlot>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = shared.clone();
            let conns = conns.clone();
            std::thread::spawn(move || accept_loop(listener, shared, conns))
        };
        Ok(Server {
            shared,
            local_addr,
            accept: Some(accept),
            conns,
            drain_timeout: config.drain_timeout,
        })
    }

    /// The bound address (with the actual port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Current admission counters and high-water marks.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.shared.admission.stats()
    }

    /// One tenant's cumulative accounting.
    pub fn tenant_stats(&self, tenant: &str) -> TenantStats {
        self.shared.tenants.snapshot(tenant)
    }

    /// Graceful shutdown: stop accepting connections and admitting queries,
    /// let in-flight queries stream to completion, then join every
    /// connection thread. Connections still alive after the drain timeout
    /// get their sockets force-closed (which unblocks any reader or
    /// backpressured writer) and are then joined.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.admission.shutdown();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let deadline = Instant::now() + self.drain_timeout;
        loop {
            let mut conns = self.conns.lock().expect("conn registry poisoned");
            conns.retain(|slot| !slot.handle.is_finished());
            if conns.is_empty() {
                return;
            }
            if Instant::now() >= deadline {
                // Force-close the stragglers' sockets, then join for real.
                let stragglers: Vec<ConnSlot> = conns.drain(..).collect();
                drop(conns);
                for slot in &stragglers {
                    let _ = slot.stream.shutdown(std::net::Shutdown::Both);
                }
                for slot in stragglers {
                    let _ = slot.handle.join();
                }
                return;
            }
            drop(conns);
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, conns: Arc<Mutex<Vec<ConnSlot>>>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                // The per-frame read timeout is the shutdown poll interval.
                let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
                let clone = match stream.try_clone() {
                    Ok(c) => c,
                    Err(_) => continue,
                };
                let shared = shared.clone();
                let handle = std::thread::spawn(move || {
                    serve_conn(shared, &mut stream);
                    // The registry holds a clone of this stream, so merely
                    // dropping ours would leave the socket open (no FIN);
                    // shut the underlying fd down explicitly.
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                });
                let mut conns = conns.lock().expect("conn registry poisoned");
                conns.retain(|slot| !slot.handle.is_finished());
                conns.push(ConnSlot { handle, stream: clone });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// What the connection reader saw.
enum Event {
    Frame(u8, Vec<u8>),
    /// Peer went away (clean EOF or connection error).
    Disconnect,
    /// Peer announced a payload over [`proto::MAX_FRAME`].
    TooLarge,
    /// Server is shutting down and the connection is idle between frames.
    ShutdownIdle,
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Read one frame, polling the shutdown flag while idle *between* frames.
/// A frame whose header has started is always read to completion (the
/// drain-deadline force-close breaks truly stuck peers).
fn next_event(stream: &mut TcpStream, shutdown: &AtomicBool) -> Event {
    let mut header = [0u8; 5];
    let mut pos = 0;
    while pos < header.len() {
        match stream.read(&mut header[pos..]) {
            Ok(0) => return Event::Disconnect,
            Ok(n) => pos += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => {
                if pos == 0 && shutdown.load(Ordering::SeqCst) {
                    return Event::ShutdownIdle;
                }
            }
            Err(_) => return Event::Disconnect,
        }
    }
    let len = u32::from_le_bytes(header[..4].try_into().unwrap());
    if len > proto::MAX_FRAME {
        return Event::TooLarge;
    }
    let mut payload = vec![0u8; len as usize];
    let mut pos = 0;
    while pos < payload.len() {
        match stream.read(&mut payload[pos..]) {
            Ok(0) => return Event::Disconnect,
            Ok(n) => pos += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted || is_timeout(&e) => continue,
            Err(_) => return Event::Disconnect,
        }
    }
    Event::Frame(header[4], payload)
}

/// Mid-stream poll for a client frame between BATCH writes, without
/// blocking the stream when the client sent nothing.
enum CancelPoll {
    Quiet,
    Cancelled,
    Disconnected,
    ProtocolViolation,
}

fn poll_cancel(stream: &mut TcpStream) -> CancelPoll {
    if stream.set_nonblocking(true).is_err() {
        return CancelPoll::Disconnected;
    }
    let mut header = [0u8; 5];
    let first = stream.read(&mut header);
    if stream.set_nonblocking(false).is_err() {
        return CancelPoll::Disconnected;
    }
    let mut pos = match first {
        Ok(0) => return CancelPoll::Disconnected,
        Ok(n) => n,
        Err(e) if is_timeout(&e) => return CancelPoll::Quiet,
        Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
        Err(_) => return CancelPoll::Disconnected,
    };
    // The client committed to a frame: finish reading it (blocking, with
    // the standing read timeout retried).
    while pos < header.len() {
        match stream.read(&mut header[pos..]) {
            Ok(0) => return CancelPoll::Disconnected,
            Ok(n) => pos += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted || is_timeout(&e) => continue,
            Err(_) => return CancelPoll::Disconnected,
        }
    }
    let len = u32::from_le_bytes(header[..4].try_into().unwrap());
    if len > proto::MAX_FRAME {
        return CancelPoll::ProtocolViolation;
    }
    let mut payload = vec![0u8; len as usize];
    let mut pos = 0;
    while pos < payload.len() {
        match stream.read(&mut payload[pos..]) {
            Ok(0) => return CancelPoll::Disconnected,
            Ok(n) => pos += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted || is_timeout(&e) => continue,
            Err(_) => return CancelPoll::Disconnected,
        }
    }
    // CANCEL is the only frame a client may send mid-stream.
    if header[4] == proto::FRAME_CANCEL {
        CancelPoll::Cancelled
    } else {
        CancelPoll::ProtocolViolation
    }
}

fn send_error(stream: &mut TcpStream, code: u16, message: &str) -> io::Result<()> {
    proto::write_frame(stream, proto::FRAME_ERROR, &proto::encode_error(code, message))
}

fn send_engine_error(stream: &mut TcpStream, e: &EngineError) -> io::Result<()> {
    send_error(stream, proto::engine_error_code(e), &e.to_string())
}

/// Per-field difference of two cumulative snapshots — this execution's
/// share of the statement's lifetime counters. Exact because the statement
/// is connection-local and the connection runs one query at a time.
fn stats_delta(after: &QueryStats, before: &QueryStats) -> QueryStats {
    QueryStats {
        chunks_total: after.chunks_total - before.chunks_total,
        chunks_pruned: after.chunks_pruned - before.chunks_pruned,
        chunks_scanned: after.chunks_scanned - before.chunks_scanned,
        rows_scanned: after.rows_scanned - before.rows_scanned,
        chunks_decoded: after.chunks_decoded - before.chunks_decoded,
        columns_decoded: after.columns_decoded - before.columns_decoded,
        bytes_read: after.bytes_read - before.bytes_read,
        bytes_decompressed: after.bytes_decompressed - before.bytes_decompressed,
        cache_evictions: after.cache_evictions - before.cache_evictions,
        batches: after.batches - before.batches,
        morsels_executed: after.morsels_executed - before.morsels_executed,
        worker_busy_ns: after.worker_busy_ns - before.worker_busy_ns,
        wall_time: after.wall_time - before.wall_time,
    }
}

fn serve_conn(shared: Arc<Shared>, stream: &mut TcpStream) {
    // Handshake: HELLO must come first.
    let tenant = match next_event(stream, &shared.shutdown) {
        Event::Frame(proto::FRAME_HELLO, payload) => match proto::decode_hello(&payload) {
            Ok((version, _)) if version != proto::PROTOCOL_VERSION => {
                let _ = send_error(
                    stream,
                    proto::ERR_PROTOCOL,
                    &format!("protocol version {version} != {}", proto::PROTOCOL_VERSION),
                );
                return;
            }
            Ok((_, tenant)) => tenant,
            Err(_) => {
                let _ = send_error(stream, proto::ERR_PROTOCOL, "malformed HELLO");
                return;
            }
        },
        Event::Frame(..) => {
            let _ = send_error(stream, proto::ERR_PROTOCOL, "expected HELLO first");
            return;
        }
        Event::TooLarge => {
            let _ = send_error(stream, proto::ERR_TOO_LARGE, "oversized HELLO");
            return;
        }
        Event::ShutdownIdle => {
            let _ = send_error(stream, proto::ERR_SHUTTING_DOWN, "server shutting down");
            return;
        }
        Event::Disconnect => return,
    };
    let default_table = shared.engine.default_table_name().unwrap_or_default();
    if proto::write_frame(
        stream,
        proto::FRAME_HELLO,
        &proto::encode_hello_ok(&shared.banner, &default_table),
    )
    .is_err()
    {
        return;
    }

    let session = shared.engine.session();
    let mut statements: HashMap<u64, Statement> = HashMap::new();
    let mut next_stmt_id: u64 = 1;

    loop {
        match next_event(stream, &shared.shutdown) {
            Event::Frame(proto::FRAME_PREPARE, payload) => {
                let sql = match proto::decode_prepare(&payload) {
                    Ok(sql) => sql,
                    Err(_) => {
                        let _ = send_error(stream, proto::ERR_PROTOCOL, "malformed PREPARE");
                        return;
                    }
                };
                // Parse SQL server-side, then prepare through the typed
                // session API so engine failures keep their variant (the
                // SQL crate's combined path stringifies them).
                let schema = match session.schema() {
                    Ok(s) => s,
                    Err(e) => {
                        if send_engine_error(stream, &e).is_err() {
                            return;
                        }
                        continue;
                    }
                };
                let query = match parse_cohort_query(&sql, &schema) {
                    Ok(q) => q,
                    Err(e) => {
                        if send_error(stream, proto::ERR_SQL, &e.to_string()).is_err() {
                            return;
                        }
                        continue;
                    }
                };
                let stmt = match session.prepare(&query) {
                    Ok(s) => s,
                    Err(e) => {
                        if send_engine_error(stream, &e).is_err() {
                            return;
                        }
                        continue;
                    }
                };
                let info = PreparedInfo {
                    stmt_id: next_stmt_id,
                    cohort_attrs: query.cohort_by.iter().map(|c| c.to_string()).collect(),
                    agg_names: query.aggregates.iter().map(|a| a.header()).collect(),
                    explain: stmt.explain(),
                };
                next_stmt_id += 1;
                let reply = proto::encode_prepared(&info);
                statements.insert(info.stmt_id, stmt);
                if proto::write_frame(stream, proto::FRAME_PREPARE, &reply).is_err() {
                    return;
                }
            }
            Event::Frame(proto::FRAME_EXECUTE, payload) => {
                let stmt_id = match proto::decode_execute(&payload) {
                    Ok(id) => id,
                    Err(_) => {
                        let _ = send_error(stream, proto::ERR_PROTOCOL, "malformed EXECUTE");
                        return;
                    }
                };
                let Some(stmt) = statements.get(&stmt_id) else {
                    if send_error(
                        stream,
                        proto::ERR_UNKNOWN_STATEMENT,
                        &format!("unknown statement id {stmt_id}"),
                    )
                    .is_err()
                    {
                        return;
                    }
                    continue;
                };
                let permit = match shared.admission.admit() {
                    Ok(p) => p,
                    Err(AdmitError::QueueFull) => {
                        if send_error(stream, proto::ERR_QUEUE_FULL, "admission queue full")
                            .is_err()
                        {
                            return;
                        }
                        continue;
                    }
                    Err(AdmitError::ShuttingDown) => {
                        if send_error(stream, proto::ERR_SHUTTING_DOWN, "server shutting down")
                            .is_err()
                        {
                            return;
                        }
                        continue;
                    }
                };
                let keep_going = run_query(&shared, stream, &tenant, stmt, permit);
                if !keep_going {
                    return;
                }
            }
            Event::Frame(proto::FRAME_STATS, payload) => {
                if !payload.is_empty() {
                    let _ = send_error(stream, proto::ERR_PROTOCOL, "malformed STATS");
                    return;
                }
                let tenant_stats = shared.tenants.snapshot(&tenant);
                let reply = proto::encode_server_stats(&proto::ServerStats {
                    queries: tenant_stats.queries,
                    stats: tenant_stats.stats,
                    admission: shared.admission.stats(),
                });
                if proto::write_frame(stream, proto::FRAME_STATS, &reply).is_err() {
                    return;
                }
            }
            // A CANCEL arriving between queries raced a stream that already
            // ended; it is not an error and gets no reply.
            Event::Frame(proto::FRAME_CANCEL, _) => {}
            Event::Frame(ty, _) => {
                let _ =
                    send_error(stream, proto::ERR_PROTOCOL, &format!("unexpected frame type {ty}"));
                return;
            }
            Event::TooLarge => {
                let _ = send_error(stream, proto::ERR_TOO_LARGE, "frame exceeds limit");
                return;
            }
            Event::ShutdownIdle => {
                let _ = send_error(stream, proto::ERR_SHUTTING_DOWN, "server shutting down");
                return;
            }
            Event::Disconnect => return,
        }
    }
}

/// Stream one admitted execution. Returns `false` when the connection must
/// close (disconnect or protocol violation).
fn run_query(
    shared: &Shared,
    stream: &mut TcpStream,
    tenant: &str,
    stmt: &Statement,
    permit: Permit,
) -> bool {
    enum Outcome {
        Completed,
        Cancelled,
        Disconnected,
        ProtocolViolation,
        Failed,
    }
    let before = stmt.cumulative_stats();
    let mut outcome = Outcome::Completed;
    {
        let mut qstream = stmt.stream();
        for batch in &mut qstream {
            match poll_cancel(stream) {
                CancelPoll::Quiet => {}
                CancelPoll::Cancelled => {
                    outcome = Outcome::Cancelled;
                    break;
                }
                CancelPoll::Disconnected => {
                    outcome = Outcome::Disconnected;
                    break;
                }
                CancelPoll::ProtocolViolation => {
                    outcome = Outcome::ProtocolViolation;
                    break;
                }
            }
            match batch {
                Ok(b) => {
                    let wire = stmt.wire_batch(&b);
                    if proto::write_frame(stream, proto::FRAME_BATCH, &wire.encode()).is_err() {
                        outcome = Outcome::Disconnected;
                        break;
                    }
                }
                Err(e) => {
                    if send_engine_error(stream, &e).is_err() {
                        outcome = Outcome::Disconnected;
                    } else {
                        outcome = Outcome::Failed;
                    }
                    break;
                }
            }
        }
        // Dropping the stream here cancels any remaining chunk decode and
        // folds this execution's stats into the statement's lifetime
        // counters (joining parallel workers first, so the delta below is
        // complete).
    }
    let exec_stats = stats_delta(&stmt.cumulative_stats(), &before);
    shared.tenants.record(tenant, &exec_stats);
    let queue_wait = permit.queue_wait();
    drop(permit);
    match outcome {
        Outcome::Completed => proto::write_frame(
            stream,
            proto::FRAME_STATS,
            &proto::encode_exec_stats(&proto::ExecStats { stats: exec_stats, queue_wait }),
        )
        .is_ok(),
        Outcome::Cancelled => send_error(stream, proto::ERR_CANCELLED, "query cancelled").is_ok(),
        Outcome::Failed => true,
        Outcome::Disconnected => false,
        Outcome::ProtocolViolation => {
            let _ = send_error(stream, proto::ERR_PROTOCOL, "unexpected frame during stream");
            false
        }
    }
}
