//! End-to-end serving tests: concurrent remote clients must be
//! bit-identical to in-process execution, the admission cap must provably
//! never be exceeded, a client disconnect must stop chunk decode mid-query
//! (observed through the source's decode counters), graceful shutdown must
//! drain in-flight streams while refusing new work, and malformed frames
//! must close only the offending connection.

use cohana_activity::{generate, GeneratorConfig, Timestamp};
use cohana_core::{paper, Cohana, CohortQuery, CohortReport, EngineOptions};
use cohana_server::protocol as proto;
use cohana_server::{Client, Server, ServerConfig};
use cohana_storage::{persist, CompressedTable, CompressionOptions};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn paper_queries() -> Vec<(String, CohortQuery)> {
    let d1 = Timestamp::parse("2013-05-21").unwrap().secs();
    let d2 = Timestamp::parse("2013-05-27").unwrap().secs();
    vec![
        ("q1".into(), paper::q1()),
        ("q2".into(), paper::q2()),
        ("q3".into(), paper::q3()),
        ("q4".into(), paper::q4()),
        ("q5".into(), paper::q5(d1, d2)),
        ("q6".into(), paper::q6(d1, d2)),
        ("q7".into(), paper::q7(7)),
        ("q8".into(), paper::q8(7)),
    ]
}

/// An engine over a freshly generated in-memory table.
fn resident_engine(users: usize, chunk_rows: usize) -> Arc<Cohana> {
    let table = generate(&GeneratorConfig::new(users));
    let compressed =
        CompressedTable::build(&table, CompressionOptions::with_chunk_size(chunk_rows)).unwrap();
    let engine = Cohana::new(EngineOptions::default());
    engine.register("GameActions", compressed);
    Arc::new(engine)
}

fn temp_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cohana-serving-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn start(engine: Arc<Cohana>, cap: usize, queue: usize) -> Server {
    Server::start(
        engine,
        ServerConfig { admission_cap: cap, queue_bound: queue, ..ServerConfig::default() },
    )
    .expect("server binds")
}

#[test]
fn concurrent_clients_are_bit_identical_to_in_process() {
    let engine = resident_engine(60, 256);
    let expected: Vec<(String, String, CohortReport)> = {
        let session = engine.session();
        paper_queries()
            .into_iter()
            .map(|(name, q)| {
                let report = session.prepare(&q).unwrap().execute().unwrap();
                (name, q.to_sql(), report)
            })
            .collect()
    };
    let mut server = start(engine, 4, 64);
    let addr = server.local_addr();

    let expected = Arc::new(expected);
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client =
                    Client::connect(addr, &format!("tenant-{}", i % 3)).expect("connects");
                // Each client covers every query, starting at a different
                // offset so the mix overlaps across clients.
                for k in 0..expected.len() {
                    let (name, sql, want) = &expected[(i + k) % expected.len()];
                    let got = client.query(sql).expect("remote query runs");
                    assert_eq!(&got, want, "client {i} query {name} diverged");
                    assert!(
                        got.stats.expect("remote report carries server stats").chunks_scanned > 0,
                        "client {i} query {name} reported no work"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread succeeds");
    }

    let stats = server.admission_stats();
    assert_eq!(stats.admitted_total, 64, "8 clients x 8 queries all admitted");
    assert!(stats.peak_active <= 4, "cap 4 exceeded: peak {}", stats.peak_active);
    assert_eq!(stats.active, 0);

    // Tenant accounting: the three tenants' totals partition all 64
    // executions (clients map onto tenants round-robin: 3 + 3 + 2 clients
    // of 8 queries each).
    assert_eq!(server.tenant_stats("tenant-0").queries, 24);
    assert_eq!(server.tenant_stats("tenant-1").queries, 24);
    assert_eq!(server.tenant_stats("tenant-2").queries, 16);
    server.shutdown();
}

#[test]
fn admission_cap_is_never_exceeded_under_4x_load() {
    let engine = resident_engine(60, 256);
    let cap = 2;
    let mut server = start(engine, cap, 64);
    let addr = server.local_addr();

    let sql = Arc::new(paper::q1().to_sql());
    let handles: Vec<_> = (0..4 * cap)
        .map(|i| {
            let sql = sql.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr, &format!("t{i}")).expect("connects");
                for _ in 0..3 {
                    client.query(&sql).expect("query under contention runs");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread succeeds");
    }

    // Server-side accounting is the authority: peak concurrency is tracked
    // under the admission lock, so this is a proof, not a sample.
    let stats = server.admission_stats();
    assert!(stats.peak_active <= cap, "cap {cap} exceeded: peak {}", stats.peak_active);
    assert_eq!(stats.admitted_total, (4 * cap * 3) as u64);
    assert_eq!(stats.rejected_total, 0, "queue bound 64 should absorb 8 waiters");
    server.shutdown();
}

#[test]
fn disconnect_mid_stream_stops_chunk_decode() {
    // File-backed source with a zero cache budget: every chunk a query
    // touches is a real decode, so the source's counters are a live view of
    // decode progress. Small chunks make the stream long enough that the
    // disconnect provably lands mid-query.
    let table = generate(&GeneratorConfig::new(400));
    let compressed =
        CompressedTable::build(&table, CompressionOptions::with_chunk_size(64)).unwrap();
    let path = temp_file("disconnect.cohana");
    persist::write_file(&compressed, &path).unwrap();
    let engine = Cohana::new(EngineOptions::default());
    engine.open(&path).cache_bytes(0).open().unwrap();
    let source = engine.source("GameActions").unwrap();
    let engine = Arc::new(engine);

    let mut server = start(engine, 4, 64);
    let addr = server.local_addr();
    let sql = paper::q1().to_sql();

    // Baseline: a fully drained run decodes every chunk.
    let before = source.io_stats();
    let mut client = Client::connect(addr, "baseline").unwrap();
    client.query(&sql).unwrap();
    drop(client);
    let full_decodes = source.io_stats().chunks_decoded - before.chunks_decoded;
    assert!(full_decodes >= 20, "need a long stream, got {full_decodes} chunk decodes");

    // Now read one batch and vanish.
    let before = source.io_stats();
    {
        let mut client = Client::connect(addr, "quitter").unwrap();
        let prepared = client.prepare(&sql).unwrap();
        let mut stream = client.execute(&prepared).unwrap();
        let first = stream.next_batch().unwrap();
        assert!(first.is_some(), "stream produced nothing");
        // Dropping stream + client closes the socket mid-stream: that IS
        // the cancellation signal.
    }

    // The decode counters must stop advancing...
    let mut stable = source.io_stats().chunks_decoded;
    let stopped_at = loop {
        std::thread::sleep(Duration::from_millis(100));
        let now = source.io_stats().chunks_decoded;
        if now == stable {
            break now;
        }
        stable = now;
    };
    // ...and strictly before the full count: the server noticed the
    // disconnect and dropped the query stream mid-decode.
    let partial_decodes = stopped_at - before.chunks_decoded;
    assert!(
        partial_decodes < full_decodes,
        "disconnect did not cancel decode: {partial_decodes} of {full_decodes} chunks"
    );

    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn cancel_frame_stops_query_and_keeps_connection_usable() {
    let engine = resident_engine(400, 64);
    let mut server = start(engine, 4, 64);
    let mut client = Client::connect(server.local_addr(), "canceller").unwrap();
    let sql = paper::q1().to_sql();

    let prepared = client.prepare(&sql).unwrap();
    let mut stream = client.execute(&prepared).unwrap();
    assert!(stream.next_batch().unwrap().is_some());
    // Whether the server confirms the cancel or the query won the race,
    // the connection must come back in sync.
    let _cancelled = stream.cancel().expect("cancel exchange completes");
    let report = client.query(&sql).expect("connection survives a cancel");
    assert!(report.num_rows() > 0);
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_and_refuses_new() {
    let engine = resident_engine(400, 64);
    let mut server = start(engine, 4, 64);
    let addr = server.local_addr();
    let sql = paper::q1().to_sql();

    let mut client = Client::connect(addr, "drainer").unwrap();
    let expected = client.query(&sql).unwrap();

    let prepared = client.prepare(&sql).unwrap();
    let mut stream = client.execute(&prepared).unwrap();
    let mut batches = vec![stream.next_batch().unwrap().expect("first batch")];

    // Shut down while the stream is mid-flight.
    let shutdown = std::thread::spawn(move || {
        server.shutdown();
        server
    });
    std::thread::sleep(Duration::from_millis(150));

    // New connections are refused while (and after) draining: the listener
    // is gone, so the connect itself fails.
    assert!(
        Client::connect(addr, "latecomer").is_err(),
        "server accepted a connection during shutdown"
    );

    // The in-flight stream drains to completion, slowly, and still matches.
    loop {
        std::thread::sleep(Duration::from_millis(20));
        match stream.next_batch().unwrap() {
            Some(b) => batches.push(b),
            None => break,
        }
    }
    let stats = stream.stats().expect("drained stream ends with its STATS terminator");
    assert!(stats.stats.chunks_scanned > 0);
    let mut asm = cohana_core::ReportAssembler::new(
        prepared.cohort_attrs().to_vec(),
        prepared.agg_names().to_vec(),
    );
    for b in &batches {
        asm.push(b).unwrap();
    }
    assert_eq!(asm.finish(), expected, "drained stream diverged from pre-shutdown run");

    let server = shutdown.join().expect("shutdown completes");
    drop(server);
}

#[test]
fn typed_error_codes_over_the_wire() {
    let engine = resident_engine(60, 256);
    let mut server = start(engine, 1, 4);
    let addr = server.local_addr();
    let mut client = Client::connect(addr, "errors").unwrap();

    // SQL that does not parse: ERR_SQL, connection stays usable.
    let err = client.prepare("SELECT FROM WHERE").unwrap_err();
    assert_eq!(err.remote_code(), Some(proto::ERR_SQL), "{err}");

    // Unknown attribute: the engine's typed variant, by code, not by
    // message matching.
    let err = client
        .prepare(
            "SELECT no_such_column, COHORTSIZE, AGE, UserCount() \
             FROM GameActions BIRTH FROM action = \"launch\" COHORT BY no_such_column",
        )
        .unwrap_err();
    assert_eq!(err.remote_code(), Some(proto::ERR_UNKNOWN_ATTRIBUTE), "{err}");

    // The connection survived both errors.
    let report = client.query(&paper::q1().to_sql()).unwrap();
    assert!(report.num_rows() > 0);

    // EXECUTE of a statement id this connection never prepared.
    let mut raw = TcpStream::connect(addr).unwrap();
    proto::write_frame(&mut raw, proto::FRAME_HELLO, &proto::encode_hello("raw")).unwrap();
    match proto::read_frame(&mut raw, proto::MAX_FRAME).unwrap() {
        proto::ReadFrame::Frame(proto::FRAME_HELLO, _) => {}
        other => panic!("handshake failed: {other:?}"),
    }
    proto::write_frame(&mut raw, proto::FRAME_EXECUTE, &proto::encode_execute(999)).unwrap();
    match proto::read_frame(&mut raw, proto::MAX_FRAME).unwrap() {
        proto::ReadFrame::Frame(proto::FRAME_ERROR, payload) => {
            let (code, _) = proto::decode_error(&payload).unwrap();
            assert_eq!(code, proto::ERR_UNKNOWN_STATEMENT);
        }
        other => panic!("expected ERROR frame, got {other:?}"),
    }

    server.shutdown();
}

#[test]
fn malformed_and_oversized_frames_close_only_that_connection() {
    let engine = resident_engine(60, 256);
    let mut server = start(engine, 2, 8);
    let addr = server.local_addr();

    // A well-behaved client shares the server with the abusers throughout.
    let mut good = Client::connect(addr, "good").unwrap();
    let sql = paper::q1().to_sql();

    // Garbage before HELLO: ERROR 100, then the connection is closed.
    let mut raw = TcpStream::connect(addr).unwrap();
    proto::write_frame(&mut raw, 42, b"nonsense").unwrap();
    match proto::read_frame(&mut raw, proto::MAX_FRAME).unwrap() {
        proto::ReadFrame::Frame(proto::FRAME_ERROR, payload) => {
            let (code, _) = proto::decode_error(&payload).unwrap();
            assert_eq!(code, proto::ERR_PROTOCOL);
        }
        other => panic!("expected ERROR frame, got {other:?}"),
    }
    let mut rest = Vec::new();
    raw.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "server kept the connection open after a protocol violation");

    // An oversized frame header: ERR_TOO_LARGE without reading the body.
    let mut raw = TcpStream::connect(addr).unwrap();
    let mut header = Vec::new();
    header.extend_from_slice(&(proto::MAX_FRAME + 1).to_le_bytes());
    header.push(proto::FRAME_HELLO);
    raw.write_all(&header).unwrap();
    match proto::read_frame(&mut raw, proto::MAX_FRAME).unwrap() {
        proto::ReadFrame::Frame(proto::FRAME_ERROR, payload) => {
            let (code, _) = proto::decode_error(&payload).unwrap();
            assert_eq!(code, proto::ERR_TOO_LARGE);
        }
        other => panic!("expected ERROR frame, got {other:?}"),
    }

    // A HELLO whose payload is truncated garbage.
    let mut raw = TcpStream::connect(addr).unwrap();
    proto::write_frame(&mut raw, proto::FRAME_HELLO, &[1, 2]).unwrap();
    match proto::read_frame(&mut raw, proto::MAX_FRAME).unwrap() {
        proto::ReadFrame::Frame(proto::FRAME_ERROR, payload) => {
            let (code, _) = proto::decode_error(&payload).unwrap();
            assert_eq!(code, proto::ERR_PROTOCOL);
        }
        other => panic!("expected ERROR frame, got {other:?}"),
    }

    // The abuse never panicked the server or hurt the good connection.
    let report = good.query(&sql).unwrap();
    assert!(report.num_rows() > 0);
    server.shutdown();
}
