//! AST for the extended cohort SQL dialect.
//!
//! Predicates reuse [`cohana_core::Expr`] directly; the only schema-aware
//! rewriting (date-literal conversion) happens in [`translate()`](crate::translate()).

use cohana_core::Expr;

/// One item of the `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A cohort attribute echoed in the output.
    Column(String),
    /// The derived `COHORTSIZE` column.
    CohortSize,
    /// The derived `AGE` column.
    Age,
    /// An aggregate call, e.g. `Sum(gold)` or `UserCount()`; the optional
    /// alias comes from `AS name`.
    Aggregate {
        /// Function name (case preserved for error messages).
        func: String,
        /// Argument attribute (empty for `Count()` / `UserCount()`).
        arg: Option<String>,
        /// Optional `AS` alias.
        alias: Option<String>,
    },
}

/// One entry of the `COHORT BY` list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CohortKeyAst {
    /// Cohort by an attribute.
    Attr(String),
    /// Cohort by binned birth time: `time(day|week|month)`.
    TimeBin(String),
}

/// A parsed (but not yet schema-validated) cohort query.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlCohortQuery {
    /// The SELECT list.
    pub select: Vec<SelectItem>,
    /// The activity table name.
    pub table: String,
    /// The full `BIRTH FROM` predicate, including the mandatory
    /// `action = e` conjunct.
    pub birth_clause: Expr,
    /// The `AGE ACTIVITIES IN` predicate, if present.
    pub age_clause: Option<Expr>,
    /// The `COHORT BY` list.
    pub cohort_by: Vec<CohortKeyAst>,
    /// Optional `AGE UNIT day|week|month` extension clause.
    pub age_unit: Option<String>,
}
