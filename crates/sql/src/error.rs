//! Error type for the SQL front end.

use std::fmt;

/// Errors raised while lexing, parsing, or translating cohort SQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Lexical error with byte offset.
    Lex {
        /// Byte offset in the input.
        offset: usize,
        /// Description.
        message: String,
    },
    /// Parse error with the offending token.
    Parse {
        /// Token text (or `<eof>`).
        token: String,
        /// What was expected.
        message: String,
    },
    /// Semantic error during translation (unknown attribute, bad types…).
    Translate(String),
    /// Propagated engine error.
    Engine(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { offset, message } => write!(f, "lex error at byte {offset}: {message}"),
            SqlError::Parse { token, message } => {
                write!(f, "parse error near {token:?}: {message}")
            }
            SqlError::Translate(m) => write!(f, "translation error: {m}"),
            SqlError::Engine(m) => write!(f, "engine error: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<cohana_core::EngineError> for SqlError {
    fn from(e: cohana_core::EngineError) -> Self {
        SqlError::Engine(e.to_string())
    }
}
