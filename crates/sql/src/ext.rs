//! SQL entry points for the [`Cohana`] engine and its [`Session`]s.
//!
//! `cohana-core` cannot depend on the parser (the parser produces core
//! types), so the string-query API lives here as extension traits:
//!
//! * [`SessionSqlExt`] — the primary surface. Prepare a re-executable
//!   [`Statement`] from SQL text ([`SessionSqlExt::prepare_sql`]), run any
//!   statement kind through one dispatching entry point
//!   ([`SessionSqlExt::run_sql`], which also understands `EXPLAIN <query>`
//!   and `WITH … AS (…) SELECT …` mixed queries), or use the one-shot
//!   conveniences.
//! * [`SqlExt`] — the legacy one-shot methods on [`Cohana`] itself, kept as
//!   thin wrappers over a fresh default session.

use crate::error::SqlError;
use crate::mixed::{parse_mixed_query, MixedResult};
use crate::parse_cohort_query;
use cohana_core::session::Session;
use cohana_core::{Cohana, CohortReport, Statement};

/// The result of one dispatched SQL statement ([`SessionSqlExt::run_sql`]).
#[derive(Debug)]
pub enum SqlAnswer {
    /// A cohort query's report.
    Report(CohortReport),
    /// A §3.5 mixed query's relational result.
    Mixed(MixedResult),
    /// An `EXPLAIN <query>` plan rendering.
    Plan(String),
}

/// String-query methods for [`Session`]: parse against the session's table,
/// plan, and execute with the session's option overrides.
pub trait SessionSqlExt {
    /// Parse an extended-SQL cohort query and prepare it as a re-executable
    /// [`Statement`].
    fn prepare_sql(&self, sql: &str) -> Result<Statement, SqlError>;

    /// Parse and execute an extended-SQL cohort query.
    fn query(&self, sql: &str) -> Result<CohortReport, SqlError>;

    /// Parse and execute a §3.5 *mixed query*: a `WITH name AS (<cohort
    /// query>) SELECT … FROM name [WHERE …] [ORDER BY …] [LIMIT n]`
    /// statement whose outer SQL query consumes the cohort sub-query's
    /// result.
    fn query_mixed(&self, sql: &str) -> Result<MixedResult, SqlError>;

    /// Parse a query and return [`Statement::explain`]'s rendering (plan
    /// operators, projected columns, pruning predicate, parallelism).
    fn explain_sql(&self, sql: &str) -> Result<String, SqlError>;

    /// Dispatch one SQL statement of any kind: `EXPLAIN <query>` renders the
    /// plan, `WITH … AS (…) SELECT …` runs as a mixed query, anything else
    /// runs as a cohort query.
    fn run_sql(&self, sql: &str) -> Result<SqlAnswer, SqlError>;
}

/// Strip a leading `EXPLAIN` keyword (case-insensitive), returning the rest.
fn strip_explain(sql: &str) -> Option<&str> {
    let trimmed = sql.trim_start();
    if !trimmed.get(..7)?.eq_ignore_ascii_case("EXPLAIN") {
        return None;
    }
    let tail = &trimmed[7..];
    tail.starts_with(char::is_whitespace).then(|| tail.trim_start())
}

/// Whether the statement is a §3.5 mixed query (`WITH …`).
fn is_mixed(sql: &str) -> bool {
    sql.trim_start().get(..4).is_some_and(|kw| kw.eq_ignore_ascii_case("WITH"))
}

impl SessionSqlExt for Session<'_> {
    fn prepare_sql(&self, sql: &str) -> Result<Statement, SqlError> {
        let schema = self.schema()?;
        let query = parse_cohort_query(sql, &schema)?;
        Ok(self.prepare(&query)?)
    }

    fn query(&self, sql: &str) -> Result<CohortReport, SqlError> {
        Ok(self.prepare_sql(sql)?.execute()?)
    }

    fn query_mixed(&self, sql: &str) -> Result<MixedResult, SqlError> {
        parse_mixed_query(sql)?.execute_in(self)
    }

    fn explain_sql(&self, sql: &str) -> Result<String, SqlError> {
        if is_mixed(sql) {
            // Explain the cohort sub-query (the part COHANA plans); the
            // outer SQL is a post-pass over its result table.
            let mixed = parse_mixed_query(sql)?;
            let schema = self.schema()?;
            let query = crate::translate(&mixed.cohort, &schema)?;
            let mut out = self.prepare(&query)?.explain();
            out.push_str("-- outer SQL over the sub-query result (filter/order/limit)\n");
            return Ok(out);
        }
        Ok(self.prepare_sql(sql)?.explain())
    }

    fn run_sql(&self, sql: &str) -> Result<SqlAnswer, SqlError> {
        if let Some(rest) = strip_explain(sql) {
            return Ok(SqlAnswer::Plan(self.explain_sql(rest)?));
        }
        if is_mixed(sql) {
            return Ok(SqlAnswer::Mixed(self.query_mixed(sql)?));
        }
        Ok(SqlAnswer::Report(self.query(sql)?))
    }
}

/// Legacy one-shot string-query methods for [`Cohana`]. Each call opens a
/// fresh default [`Session`]; prefer [`SessionSqlExt`] when you need option
/// overrides, prepared statements, or streaming.
///
/// These now resolve the engine's *default table* (the first table
/// registered) like every other session-based path, where they previously
/// picked the alphabetically first catalog name — on a multi-table engine
/// whose first-registered table is not alphabetically first, use
/// `engine.session().on_table(name)` to address a specific table.
pub trait SqlExt {
    /// Parse and execute an extended-SQL cohort query against the default
    /// table.
    fn query(&self, sql: &str) -> Result<CohortReport, SqlError>;

    /// Parse and execute a §3.5 *mixed query* (see
    /// [`SessionSqlExt::query_mixed`]).
    fn query_mixed(&self, sql: &str) -> Result<MixedResult, SqlError>;

    /// Parse a query and return the optimized plan rendering (EXPLAIN).
    fn explain_sql(&self, sql: &str) -> Result<String, SqlError>;
}

impl SqlExt for Cohana {
    fn query(&self, sql: &str) -> Result<CohortReport, SqlError> {
        SessionSqlExt::query(&self.session(), sql)
    }

    fn query_mixed(&self, sql: &str) -> Result<MixedResult, SqlError> {
        SessionSqlExt::query_mixed(&self.session(), sql)
    }

    fn explain_sql(&self, sql: &str) -> Result<String, SqlError> {
        SessionSqlExt::explain_sql(&self.session(), sql)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohana_activity::{generate, GeneratorConfig};
    use cohana_core::paper;
    use cohana_storage::CompressionOptions;

    fn engine() -> Cohana {
        let t = generate(&GeneratorConfig::small());
        Cohana::from_activity_table(&t, CompressionOptions::default()).unwrap()
    }

    #[test]
    fn sql_q1_equals_programmatic_q1() {
        let e = engine();
        let via_sql = e
            .query(
                "SELECT country, CohortSize, Age, UserCount() \
                 FROM GameActions BIRTH FROM action = \"launch\" COHORT BY country",
            )
            .unwrap();
        let programmatic = e.execute(&paper::q1()).unwrap();
        assert_eq!(via_sql.rows, programmatic.rows);
    }

    #[test]
    fn prepared_sql_statement_reexecutes() {
        let e = engine();
        let session = e.session();
        let stmt = session
            .prepare_sql(
                "SELECT country, CohortSize, Age, UserCount() \
                 FROM GameActions BIRTH FROM action = \"launch\" COHORT BY country",
            )
            .unwrap();
        let a = stmt.execute().unwrap();
        let b = stmt.execute().unwrap();
        assert_eq!(a, b);
        assert_eq!(stmt.executions(), 2);
        assert!(a.stats.is_some());
    }

    #[test]
    fn explain_sql_works() {
        let text = engine()
            .explain_sql(
                "SELECT country, COHORTSIZE, AGE, Avg(gold) FROM GameActions \
                 BIRTH FROM action = \"shop\" AND role = \"dwarf\" \
                 AGE ACTIVITIES IN action = \"shop\" COHORT BY country",
            )
            .unwrap();
        assert!(text.contains("σb"));
        assert!(text.contains("σg"));
        assert!(text.contains("projected columns:"));
    }

    #[test]
    fn run_sql_dispatches_explain_mixed_and_report() {
        let e = engine();
        let session = e.session();
        let q1 = "SELECT country, CohortSize, Age, UserCount() \
                  FROM GameActions BIRTH FROM action = \"launch\" COHORT BY country";
        assert!(matches!(session.run_sql(q1).unwrap(), SqlAnswer::Report(_)));
        match session.run_sql(&format!("EXPLAIN {q1}")).unwrap() {
            SqlAnswer::Plan(text) => {
                assert!(text.contains("γc"));
                assert!(text.contains("TableScan"));
            }
            other => panic!("expected a plan, got {other:?}"),
        }
        // Case-insensitive keyword.
        assert!(matches!(session.run_sql(&format!("explain {q1}")).unwrap(), SqlAnswer::Plan(_)));
        let mixed = "WITH c AS ( SELECT country, COHORTSIZE, AGE, UserCount() \
                     FROM GameActions BIRTH FROM action = \"launch\" COHORT BY country ) \
                     SELECT country, AGE FROM c LIMIT 3";
        assert!(matches!(session.run_sql(mixed).unwrap(), SqlAnswer::Mixed(_)));
        match session.run_sql(&format!("EXPLAIN {mixed}")).unwrap() {
            SqlAnswer::Plan(text) => assert!(text.contains("outer SQL")),
            other => panic!("expected a plan, got {other:?}"),
        }
    }

    #[test]
    fn query_errors_propagate() {
        let e = engine();
        assert!(e.query("SELECT nope FROM x").is_err());
        let empty = Cohana::new(Default::default());
        assert!(matches!(
            empty
                .query("SELECT country, COHORTSIZE, AGE, Count() FROM D BIRTH FROM action = \"x\" COHORT BY country")
                .unwrap_err(),
            SqlError::Engine(_)
        ));
        // EXPLAIN with a bad query is still an error, not a plan.
        assert!(e.session().run_sql("EXPLAIN SELECT nope FROM x").is_err());
    }
}
