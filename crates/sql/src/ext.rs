//! SQL entry points for the [`Cohana`] engine.
//!
//! `cohana-core` cannot depend on the parser (the parser produces core
//! types), so the string-query API lives here as an extension trait.

use crate::error::SqlError;
use crate::mixed::{parse_mixed_query, MixedResult};
use crate::parse_cohort_query;
use cohana_core::{Cohana, CohortReport};

/// String-query convenience methods for [`Cohana`].
pub trait SqlExt {
    /// Parse and execute an extended-SQL cohort query against the default
    /// table.
    fn query(&self, sql: &str) -> Result<CohortReport, SqlError>;

    /// Parse and execute a §3.5 *mixed query*: a `WITH name AS (<cohort
    /// query>) SELECT … FROM name [WHERE …] [ORDER BY …] [LIMIT n]`
    /// statement whose outer SQL query consumes the cohort sub-query's
    /// result.
    fn query_mixed(&self, sql: &str) -> Result<MixedResult, SqlError>;

    /// Parse a query and return the optimized plan rendering (EXPLAIN).
    fn explain_sql(&self, sql: &str) -> Result<String, SqlError>;
}

impl SqlExt for Cohana {
    fn query(&self, sql: &str) -> Result<CohortReport, SqlError> {
        let table = self
            .table_names()
            .first()
            .cloned()
            .ok_or_else(|| SqlError::Engine("no tables registered".into()))?;
        let schema = self
            .schema_of(&table)
            .ok_or_else(|| SqlError::Engine("no tables registered".into()))?;
        let query = parse_cohort_query(sql, &schema)?;
        Ok(self.execute(&query)?)
    }

    fn query_mixed(&self, sql: &str) -> Result<MixedResult, SqlError> {
        let mixed = parse_mixed_query(sql)?;
        mixed.execute(self)
    }

    fn explain_sql(&self, sql: &str) -> Result<String, SqlError> {
        let table = self
            .table_names()
            .first()
            .cloned()
            .ok_or_else(|| SqlError::Engine("no tables registered".into()))?;
        let schema = self
            .schema_of(&table)
            .ok_or_else(|| SqlError::Engine("no tables registered".into()))?;
        let query = parse_cohort_query(sql, &schema)?;
        Ok(self.explain(&query)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohana_activity::{generate, GeneratorConfig};
    use cohana_core::paper;
    use cohana_storage::CompressionOptions;

    fn engine() -> Cohana {
        let t = generate(&GeneratorConfig::small());
        Cohana::from_activity_table(&t, CompressionOptions::default()).unwrap()
    }

    #[test]
    fn sql_q1_equals_programmatic_q1() {
        let e = engine();
        let via_sql = e
            .query(
                "SELECT country, CohortSize, Age, UserCount() \
                 FROM GameActions BIRTH FROM action = \"launch\" COHORT BY country",
            )
            .unwrap();
        let programmatic = e.execute(&paper::q1()).unwrap();
        assert_eq!(via_sql.rows, programmatic.rows);
    }

    #[test]
    fn explain_sql_works() {
        let text = engine()
            .explain_sql(
                "SELECT country, COHORTSIZE, AGE, Avg(gold) FROM GameActions \
                 BIRTH FROM action = \"shop\" AND role = \"dwarf\" \
                 AGE ACTIVITIES IN action = \"shop\" COHORT BY country",
            )
            .unwrap();
        assert!(text.contains("σb"));
        assert!(text.contains("σg"));
    }

    #[test]
    fn query_errors_propagate() {
        let e = engine();
        assert!(e.query("SELECT nope FROM x").is_err());
        let empty = Cohana::new(Default::default());
        assert!(matches!(
            empty
                .query("SELECT country, COHORTSIZE, AGE, Count() FROM D BIRTH FROM action = \"x\" COHORT BY country")
                .unwrap_err(),
            SqlError::Engine(_)
        ));
    }
}
