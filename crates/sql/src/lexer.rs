//! Tokenizer for the extended cohort SQL dialect.

use crate::error::SqlError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword (keywords are matched case-insensitively by
    /// the parser).
    Ident(String),
    /// Double- or single-quoted string literal.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// A punctuation / operator symbol.
    Symbol(Symbol),
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `*`
    Star,
}

impl Token {
    /// Render for error messages.
    pub fn describe(&self) -> String {
        match self {
            Token::Ident(s) => s.clone(),
            Token::Str(s) => format!("\"{s}\""),
            Token::Int(v) => v.to_string(),
            Token::Symbol(s) => format!("{s:?}"),
        }
    }

    /// Case-insensitive keyword check.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize a statement.
pub fn lex(input: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' => {
                tokens.push(Token::Symbol(Symbol::LParen));
                i += 1;
            }
            ')' => {
                tokens.push(Token::Symbol(Symbol::RParen));
                i += 1;
            }
            '[' => {
                tokens.push(Token::Symbol(Symbol::LBracket));
                i += 1;
            }
            ']' => {
                tokens.push(Token::Symbol(Symbol::RBracket));
                i += 1;
            }
            ',' => {
                tokens.push(Token::Symbol(Symbol::Comma));
                i += 1;
            }
            '*' => {
                tokens.push(Token::Symbol(Symbol::Star));
                i += 1;
            }
            '=' => {
                tokens.push(Token::Symbol(Symbol::Eq));
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Symbol(Symbol::Ne));
                    i += 2;
                } else {
                    return Err(SqlError::Lex { offset: i, message: "expected `!=`".into() });
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(Token::Symbol(Symbol::Le));
                    i += 2;
                }
                Some(b'>') => {
                    tokens.push(Token::Symbol(Symbol::Ne));
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Symbol(Symbol::Lt));
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Symbol(Symbol::Ge));
                    i += 2;
                } else {
                    tokens.push(Token::Symbol(Symbol::Gt));
                    i += 1;
                }
            }
            '"' | '\'' => {
                let quote = c;
                let start = i + 1;
                let mut j = start;
                let mut out = String::new();
                loop {
                    match bytes.get(j) {
                        None => {
                            return Err(SqlError::Lex {
                                offset: i,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(&b) if b as char == quote => {
                            // Doubled quote escapes itself.
                            if bytes.get(j + 1) == Some(&(quote as u8)) {
                                out.push(quote);
                                j += 2;
                            } else {
                                break;
                            }
                        }
                        Some(&b) => {
                            out.push(b as char);
                            j += 1;
                        }
                    }
                }
                tokens.push(Token::Str(out));
                i = j + 1;
            }
            '-' | '0'..='9' => {
                let start = i;
                let mut j = i;
                if bytes[j] == b'-' {
                    j += 1;
                    if !bytes.get(j).map(|b| b.is_ascii_digit()).unwrap_or(false) {
                        return Err(SqlError::Lex {
                            offset: start,
                            message: "expected digits after `-`".into(),
                        });
                    }
                }
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let text = &input[start..j];
                let v: i64 = text.parse().map_err(|_| SqlError::Lex {
                    offset: start,
                    message: format!("bad integer {text:?}"),
                })?;
                tokens.push(Token::Int(v));
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                tokens.push(Token::Ident(input[start..j].to_string()));
                i = j;
            }
            other => {
                return Err(SqlError::Lex {
                    offset: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_q1() {
        let toks = lex("SELECT country, CohortSize, Age, UserCount() \
             FROM GameActions BIRTH FROM action = \"launch\" COHORT BY country")
        .unwrap();
        assert!(toks.iter().any(|t| t.is_kw("select")));
        assert!(toks.iter().any(|t| matches!(t, Token::Str(s) if s == "launch")));
        assert!(toks.iter().any(|t| matches!(t, Token::Symbol(Symbol::LParen))));
    }

    #[test]
    fn lexes_operators() {
        let toks = lex("a >= 1 AND b <= -2 OR c != 3 AND d <> 4").unwrap();
        let syms: Vec<&Token> = toks.iter().filter(|t| matches!(t, Token::Symbol(_))).collect();
        assert_eq!(
            syms,
            vec![
                &Token::Symbol(Symbol::Ge),
                &Token::Symbol(Symbol::Le),
                &Token::Symbol(Symbol::Ne),
                &Token::Symbol(Symbol::Ne),
            ]
        );
        assert!(toks.contains(&Token::Int(-2)));
    }

    #[test]
    fn string_escapes() {
        let toks = lex("\"Korea, \"\"South\"\"\"").unwrap();
        assert_eq!(toks, vec![Token::Str("Korea, \"South\"".into())]);
        let toks = lex("'single'").unwrap();
        assert_eq!(toks, vec![Token::Str("single".into())]);
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(matches!(lex("\"oops").unwrap_err(), SqlError::Lex { .. }));
    }

    #[test]
    fn rejects_unknown_char() {
        assert!(matches!(lex("a ; b").unwrap_err(), SqlError::Lex { .. }));
    }

    #[test]
    fn in_list_brackets() {
        let toks = lex("country IN [\"China\", \"Australia\"]").unwrap();
        assert!(toks.contains(&Token::Symbol(Symbol::LBracket)));
        assert!(toks.contains(&Token::Symbol(Symbol::RBracket)));
    }
}
