//! # cohana-sql
//!
//! The extended SQL front end for cohort queries (§3.4 of the paper):
//!
//! ```sql
//! SELECT country, COHORTSIZE, AGE, UserCount()
//! FROM GameActions
//! BIRTH FROM action = "launch" AND time BETWEEN "2013-05-21" AND "2013-05-27"
//! AGE ACTIVITIES IN action = "shop" AND country = Birth(country)
//! COHORT BY country
//! ```
//!
//! * `BIRTH FROM action = e [AND C]` names the birth action and an optional
//!   birth selection σᵇ;
//! * `AGE ACTIVITIES IN C` is the optional age selection σᵍ, where `C` may
//!   use `Birth(attr)` and `AGE`;
//! * `COHORT BY` lists the cohort attribute set `L`; `time(day|week|month)`
//!   cohorts by binned birth time;
//! * the `SELECT` list may use the derived `COHORTSIZE` and `AGE` columns
//!   and the aggregates `Sum/Avg/Min/Max/Count/UserCount`;
//! * the order of the `BIRTH FROM` and `AGE ACTIVITIES IN` clauses is
//!   irrelevant, as the paper specifies.
//!
//! Parsing is schema-aware only at the last step: date literals compared
//! against the time attribute are converted to epoch seconds.
//!
//! The [`SessionSqlExt`] extension trait is the primary entry point: it adds
//! `session.prepare_sql("SELECT …")` (a re-executable, streamable
//! [`cohana_core::Statement`]), one-shot `session.query(…)`, and the
//! dispatching `session.run_sql(…)` — which also understands
//! `EXPLAIN <query>` — to [`cohana_core::session::Session`]. The legacy
//! [`SqlExt`] trait keeps the one-shot `engine.query("SELECT …")` methods on
//! [`cohana_core::Cohana`], and [`mixed`] implements the §3.5 mixed-query
//! extension (a SQL outer query over a cohort sub-query).

pub mod ast;
pub mod error;
pub mod ext;
pub mod lexer;
pub mod mixed;
pub mod parser;
pub mod translate;

pub use ast::{CohortKeyAst, SelectItem, SqlCohortQuery};
pub use error::SqlError;
pub use ext::{SessionSqlExt, SqlAnswer, SqlExt};
pub use mixed::{parse_mixed_query, MixedQuery, MixedResult};
pub use parser::parse_statement;
pub use translate::translate;

use cohana_activity::Schema;
use cohana_core::CohortQuery;

/// Parse an extended-SQL cohort query and translate it against a schema.
pub fn parse_cohort_query(sql: &str, schema: &Schema) -> Result<CohortQuery> {
    let ast = parse_statement(sql)?;
    translate(&ast, schema)
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, SqlError>;
