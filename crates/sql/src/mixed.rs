//! Mixed queries (§3.5): SQL over cohort sub-queries.
//!
//! The paper's extension encapsulates a cohort query in a `WITH` clause and
//! lets an ordinary SQL query consume its result:
//!
//! ```sql
//! WITH cohorts AS (
//!   SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent
//!   FROM GameActions
//!   AGE ACTIVITIES IN action = "shop"
//!   BIRTH FROM action = "launch" AND role = "dwarf"
//!   COHORT BY country
//! )
//! SELECT country, AGE, spent FROM cohorts
//! WHERE country IN ["Australia", "China"]
//! ORDER BY spent DESC LIMIT 10
//! ```
//!
//! Per the paper's rules: the outermost query must be the SQL query, the
//! cohort query is evaluated first ("cohort query first"), and the outer
//! query can only read — never remove birth tuples from — the sub-query's
//! result, which is a plain relational table at that point.

use crate::ast::{SelectItem, SqlCohortQuery};
use crate::error::SqlError;
use crate::parser::Parser;
use crate::translate::translate;
use cohana_activity::Value;
use cohana_core::session::Session;
use cohana_core::{AggValue, Cohana, CohortReport, Expr, QueryStats, ReportRow};

/// A parsed mixed query.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedQuery {
    /// Name bound by `WITH <name> AS (…)`.
    pub with_name: String,
    /// The cohort sub-query (evaluated first).
    pub cohort: SqlCohortQuery,
    /// Outer SELECT column list (names resolved against the sub-query's
    /// output columns).
    pub select: Vec<String>,
    /// Outer WHERE predicate over the sub-query's columns.
    pub where_clause: Option<Expr>,
    /// Optional `ORDER BY column [DESC]`.
    pub order_by: Option<(String, bool)>,
    /// Optional `LIMIT n`.
    pub limit: Option<usize>,
}

/// The outer query's result: a plain relational table.
#[derive(Debug, Clone)]
pub struct MixedResult {
    /// Output column names.
    pub headers: Vec<String>,
    /// Rows as display values.
    pub rows: Vec<Vec<String>>,
    /// Stats of the cohort sub-query execution (the outer SQL pass is an
    /// in-memory post-pass and costs no storage I/O).
    pub stats: Option<QueryStats>,
}

/// Equality compares the relational result only, ignoring
/// [`MixedResult::stats`] (wall times differ between identical runs).
impl PartialEq for MixedResult {
    fn eq(&self, other: &Self) -> bool {
        self.headers == other.headers && self.rows == other.rows
    }
}

impl MixedResult {
    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Aligned text rendering.
    pub fn pretty(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            out.push_str(&format!("{:w$}  ", h, w = widths[i]));
        }
        out.push('\n');
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                out.push_str(&format!("{:w$}  ", c, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// Parse a `WITH name AS (<cohort query>) SELECT …` statement.
pub fn parse_mixed_query(sql: &str) -> Result<MixedQuery, SqlError> {
    let mut p = Parser::new(sql)?;
    p.expect_kw("WITH")?;
    let with_name = p.ident()?;
    p.expect_kw("AS")?;
    p.expect_lparen()?;
    let cohort = p.cohort_statement()?;
    p.expect_rparen()?;

    p.expect_kw("SELECT")?;
    let mut select = Vec::new();
    loop {
        select.push(p.output_column()?);
        if !p.eat_comma() {
            break;
        }
    }
    p.expect_kw("FROM")?;
    let from = p.ident()?;
    if from != with_name {
        return Err(SqlError::Translate(format!(
            "outer query reads {from:?} but the WITH clause binds {with_name:?}"
        )));
    }
    let where_clause = if p.eat_kw("WHERE") { Some(p.predicate()?) } else { None };
    let order_by = if p.eat_kw("ORDER") {
        p.expect_kw("BY")?;
        let col = p.output_column()?;
        let desc = p.eat_kw("DESC");
        if !desc {
            p.eat_kw("ASC");
        }
        Some((col, desc))
    } else {
        None
    };
    let limit = if p.eat_kw("LIMIT") {
        match p.literal()? {
            Value::Int(n) if n >= 0 => Some(n as usize),
            other => return Err(SqlError::Translate(format!("bad LIMIT {other}"))),
        }
    } else {
        None
    };
    p.expect_eof()?;
    Ok(MixedQuery { with_name, cohort, select, where_clause, order_by, limit })
}

impl MixedQuery {
    /// Evaluate through a fresh default session; see
    /// [`MixedQuery::execute_in`].
    pub fn execute(&self, engine: &Cohana) -> Result<MixedResult, SqlError> {
        self.execute_in(&engine.session())
    }

    /// Evaluate: cohort sub-query first (prepared and executed through the
    /// session, honouring its option overrides), then the outer filter /
    /// order / limit / projection over its result table.
    pub fn execute_in(&self, session: &Session<'_>) -> Result<MixedResult, SqlError> {
        let schema = session.schema()?;
        let query = translate(&self.cohort, &schema)?;
        let report = session.prepare(&query)?.execute()?;
        let resolver = ColumnResolver::new(&self.cohort, &report)?;

        let mut rows: Vec<&ReportRow> = report
            .rows
            .iter()
            .map(Ok)
            .filter_map(|r: Result<&ReportRow, SqlError>| {
                let r = r.expect("infallible");
                match &self.where_clause {
                    None => Some(Ok(r)),
                    Some(p) => match eval_outer(p, r, &resolver) {
                        Ok(true) => Some(Ok(r)),
                        Ok(false) => None,
                        Err(e) => Some(Err(e)),
                    },
                }
            })
            .collect::<Result<_, _>>()?;

        if let Some((col, desc)) = &self.order_by {
            let key = resolver.resolve(col)?;
            rows.sort_by(|a, b| {
                let cmp = cell_of(a, key).cmp_cell(&cell_of(b, key));
                if *desc {
                    cmp.reverse()
                } else {
                    cmp
                }
            });
        }
        if let Some(n) = self.limit {
            rows.truncate(n);
        }

        let keys: Vec<Col> =
            self.select.iter().map(|c| resolver.resolve(c)).collect::<Result<_, _>>()?;
        let out_rows =
            rows.iter().map(|r| keys.iter().map(|k| cell_of(r, *k).display()).collect()).collect();
        Ok(MixedResult { headers: self.select.clone(), rows: out_rows, stats: report.stats })
    }
}

/// A resolved output column of the cohort sub-query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Col {
    Cohort(usize),
    Size,
    Age,
    Measure(usize),
}

/// A comparable cell value.
enum Cell<'a> {
    Str(&'a str),
    Num(f64),
    Null,
}

impl Cell<'_> {
    fn display(&self) -> String {
        match self {
            Cell::Str(s) => s.to_string(),
            Cell::Num(v) => {
                if v.fract() == 0.0 {
                    format!("{}", *v as i64)
                } else {
                    format!("{v:.2}")
                }
            }
            Cell::Null => "NULL".into(),
        }
    }

    fn cmp_cell(&self, other: &Cell<'_>) -> std::cmp::Ordering {
        match (self, other) {
            (Cell::Str(a), Cell::Str(b)) => a.cmp(b),
            (Cell::Num(a), Cell::Num(b)) => a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal),
            (Cell::Null, Cell::Null) => std::cmp::Ordering::Equal,
            (Cell::Null, _) => std::cmp::Ordering::Less,
            (_, Cell::Null) => std::cmp::Ordering::Greater,
            (Cell::Str(_), _) => std::cmp::Ordering::Less,
            (_, Cell::Str(_)) => std::cmp::Ordering::Greater,
        }
    }
}

fn cell_of(row: &ReportRow, col: Col) -> Cell<'_> {
    match col {
        Col::Cohort(i) => match &row.cohort[i] {
            Value::Str(s) => Cell::Str(s),
            Value::Int(v) => Cell::Num(*v as f64),
            Value::Null => Cell::Null,
        },
        Col::Size => Cell::Num(row.size as f64),
        Col::Age => Cell::Num(row.age as f64),
        Col::Measure(i) => match row.measures[i] {
            AggValue::Int(v) => Cell::Num(v as f64),
            AggValue::Float(v) => Cell::Num(v),
            AggValue::Null => Cell::Null,
        },
    }
}

/// Maps outer-query column names to sub-query output columns, honouring
/// `AS` aliases on aggregates.
struct ColumnResolver {
    cohort_names: Vec<String>,
    measure_names: Vec<Vec<String>>,
}

impl ColumnResolver {
    fn new(ast: &SqlCohortQuery, report: &CohortReport) -> Result<Self, SqlError> {
        let cohort_names = report.cohort_attrs.clone();
        let mut measure_names: Vec<Vec<String>> =
            report.agg_names.iter().map(|n| vec![n.clone()]).collect();
        let mut idx = 0usize;
        for item in &ast.select {
            if let SelectItem::Aggregate { alias, .. } = item {
                if idx < measure_names.len() {
                    if let Some(a) = alias {
                        measure_names[idx].push(a.clone());
                    }
                    idx += 1;
                }
            }
        }
        Ok(ColumnResolver { cohort_names, measure_names })
    }

    fn resolve(&self, name: &str) -> Result<Col, SqlError> {
        if name.eq_ignore_ascii_case("COHORTSIZE") || name.eq_ignore_ascii_case("size") {
            return Ok(Col::Size);
        }
        if name.eq_ignore_ascii_case("AGE") {
            return Ok(Col::Age);
        }
        if name.eq_ignore_ascii_case("cohort") && self.cohort_names.len() == 1 {
            return Ok(Col::Cohort(0));
        }
        if let Some(i) = self.cohort_names.iter().position(|c| c.eq_ignore_ascii_case(name)) {
            return Ok(Col::Cohort(i));
        }
        for (i, names) in self.measure_names.iter().enumerate() {
            if names.iter().any(|n| n.eq_ignore_ascii_case(name)) {
                return Ok(Col::Measure(i));
            }
        }
        Err(SqlError::Translate(format!("unknown output column {name:?}")))
    }
}

/// Evaluate the outer WHERE over one report row.
fn eval_outer(expr: &Expr, row: &ReportRow, resolver: &ColumnResolver) -> Result<bool, SqlError> {
    use cohana_core::CmpOp;
    let scalar = |e: &Expr| -> Result<Option<CellOwned>, SqlError> {
        Ok(match e {
            Expr::Attr(name) => Some(CellOwned::from_cell(&cell_of(row, resolver.resolve(name)?))),
            Expr::Age => Some(CellOwned::Num(row.age as f64)),
            Expr::Lit(Value::Str(s)) => Some(CellOwned::Str(s.to_string())),
            Expr::Lit(Value::Int(v)) => Some(CellOwned::Num(*v as f64)),
            _ => None,
        })
    };
    let cmp = |op: CmpOp, a: &Expr, b: &Expr| -> Result<bool, SqlError> {
        let (va, vb) = (scalar(a)?, scalar(b)?);
        match (va, vb) {
            (Some(x), Some(y)) => Ok(op.test(x.cmp_owned(&y))),
            _ => Err(SqlError::Translate(format!("unsupported outer comparison {a} vs {b}"))),
        }
    };
    match expr {
        Expr::Cmp(op, a, b) => cmp(*op, a, b),
        Expr::And(a, b) => Ok(eval_outer(a, row, resolver)? && eval_outer(b, row, resolver)?),
        Expr::Or(a, b) => Ok(eval_outer(a, row, resolver)? || eval_outer(b, row, resolver)?),
        Expr::Not(a) => Ok(!eval_outer(a, row, resolver)?),
        Expr::InList(a, vs) => {
            let va = scalar(a)?
                .ok_or_else(|| SqlError::Translate(format!("unsupported IN operand {a}")))?;
            Ok(vs.iter().any(|v| match (v, &va) {
                (Value::Str(s), CellOwned::Str(x)) => s.as_ref() == x,
                (Value::Int(i), CellOwned::Num(x)) => (*i as f64) == *x,
                _ => false,
            }))
        }
        Expr::Between(a, lo, hi) => {
            let ge = Expr::Cmp(CmpOp::Ge, a.clone(), Box::new(Expr::Lit(lo.clone())));
            let le = Expr::Cmp(CmpOp::Le, a.clone(), Box::new(Expr::Lit(hi.clone())));
            Ok(eval_outer(&ge, row, resolver)? && eval_outer(&le, row, resolver)?)
        }
        other => Err(SqlError::Translate(format!("unsupported outer predicate {other}"))),
    }
}

enum CellOwned {
    Str(String),
    Num(f64),
    Null,
}

impl CellOwned {
    fn from_cell(c: &Cell<'_>) -> Self {
        match c {
            Cell::Str(s) => CellOwned::Str(s.to_string()),
            Cell::Num(v) => CellOwned::Num(*v),
            Cell::Null => CellOwned::Null,
        }
    }

    fn cmp_owned(&self, other: &CellOwned) -> std::cmp::Ordering {
        match (self, other) {
            (CellOwned::Str(a), CellOwned::Str(b)) => a.cmp(b),
            (CellOwned::Num(a), CellOwned::Num(b)) => {
                a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)
            }
            (CellOwned::Null, CellOwned::Null) => std::cmp::Ordering::Equal,
            (CellOwned::Null, _) => std::cmp::Ordering::Less,
            (_, CellOwned::Null) => std::cmp::Ordering::Greater,
            (CellOwned::Str(_), _) => std::cmp::Ordering::Less,
            (_, CellOwned::Str(_)) => std::cmp::Ordering::Greater,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohana_activity::{generate, GeneratorConfig};
    use cohana_storage::CompressionOptions;

    const MIXED: &str = "WITH cohorts AS ( \
        SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent \
        FROM GameActions \
        AGE ACTIVITIES IN action = \"shop\" \
        BIRTH FROM action = \"launch\" \
        COHORT BY country ) \
        SELECT country, AGE, spent FROM cohorts \
        WHERE country IN [\"Australia\", \"China\"] \
        ORDER BY spent DESC LIMIT 5";

    fn engine() -> Cohana {
        let t = generate(&GeneratorConfig::small());
        Cohana::from_activity_table(&t, CompressionOptions::default()).unwrap()
    }

    #[test]
    fn parses_paper_mixed_query() {
        let m = parse_mixed_query(MIXED).unwrap();
        assert_eq!(m.with_name, "cohorts");
        assert_eq!(m.select, vec!["country", "AGE", "spent"]);
        assert_eq!(m.limit, Some(5));
        assert_eq!(m.order_by, Some(("spent".into(), true)));
    }

    #[test]
    fn executes_with_filter_order_limit() {
        let m = parse_mixed_query(MIXED).unwrap();
        let res = m.execute(&engine()).unwrap();
        assert_eq!(res.headers, vec!["country", "AGE", "spent"]);
        assert!(res.num_rows() <= 5);
        for row in &res.rows {
            assert!(row[0] == "Australia" || row[0] == "China", "filtered: {row:?}");
        }
        // Descending spent order.
        let spent: Vec<f64> = res.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        for w in spent.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn rejects_mismatched_from() {
        let sql = MIXED.replace("FROM cohorts", "FROM other");
        assert!(parse_mixed_query(&sql).is_err());
    }

    #[test]
    fn rejects_unknown_outer_column() {
        let sql = MIXED.replace("SELECT country, AGE, spent FROM", "SELECT nope FROM");
        let m = parse_mixed_query(&sql).unwrap();
        assert!(m.execute(&engine()).is_err());
    }

    #[test]
    fn pretty_renders() {
        let m = parse_mixed_query(MIXED).unwrap();
        let res = m.execute(&engine()).unwrap();
        let p = res.pretty();
        assert!(p.contains("spent"));
    }
}
