//! Recursive-descent parser for the extended cohort SQL dialect.

use crate::ast::{CohortKeyAst, SelectItem, SqlCohortQuery};
use crate::error::SqlError;
use crate::lexer::{lex, Symbol, Token};
use cohana_activity::Value;
use cohana_core::{CmpOp, Expr};

/// Parse one cohort query statement.
pub fn parse_statement(sql: &str) -> Result<SqlCohortQuery, SqlError> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.statement()?;
    if let Some(t) = p.peek() {
        return Err(p.err(&format!("unexpected trailing input `{}`", t.describe())));
    }
    Ok(q)
}

pub(crate) struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    pub(crate) fn new(sql: &str) -> Result<Self, SqlError> {
        Ok(Parser { tokens: lex(sql)?, pos: 0 })
    }

    pub(crate) fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    pub(crate) fn err(&self, message: &str) -> SqlError {
        SqlError::Parse {
            token: self.peek().map(|t| t.describe()).unwrap_or_else(|| "<eof>".into()),
            message: message.into(),
        }
    }

    pub(crate) fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().map(|t| t.is_kw(kw)).unwrap_or(false) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    pub(crate) fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(&format!("expected keyword {kw}")))
        }
    }

    fn eat_sym(&mut self, s: Symbol) -> bool {
        if self.peek() == Some(&Token::Symbol(s)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: Symbol) -> Result<(), SqlError> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {s:?}")))
        }
    }

    pub(crate) fn ident(&mut self) -> Result<String, SqlError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected identifier"))
            }
        }
    }

    pub(crate) fn expect_lparen(&mut self) -> Result<(), SqlError> {
        self.expect_sym(Symbol::LParen)
    }

    pub(crate) fn expect_rparen(&mut self) -> Result<(), SqlError> {
        self.expect_sym(Symbol::RParen)
    }

    pub(crate) fn eat_comma(&mut self) -> bool {
        self.eat_sym(Symbol::Comma)
    }

    pub(crate) fn expect_eof(&mut self) -> Result<(), SqlError> {
        if let Some(t) = self.peek() {
            return Err(self.err(&format!("unexpected trailing input `{}`", t.describe())));
        }
        Ok(())
    }

    /// An outer-query output column name (used by mixed queries).
    pub(crate) fn output_column(&mut self) -> Result<String, SqlError> {
        self.ident()
    }

    /// Parse a cohort query as a sub-statement (used by `WITH … AS (…)`).
    pub(crate) fn cohort_statement(&mut self) -> Result<SqlCohortQuery, SqlError> {
        self.statement()
    }

    // ------------------------------------------------------------ statement

    fn statement(&mut self) -> Result<SqlCohortQuery, SqlError> {
        self.expect_kw("SELECT")?;
        let select = self.select_list()?;
        self.expect_kw("FROM")?;
        let table = self.ident()?;

        let mut birth_clause: Option<Expr> = None;
        let mut age_clause: Option<Expr> = None;
        let mut cohort_by: Option<Vec<CohortKeyAst>> = None;
        let mut age_unit: Option<String> = None;

        loop {
            if self.peek().map(|t| t.is_kw("BIRTH")).unwrap_or(false) {
                self.pos += 1;
                self.expect_kw("FROM")?;
                if birth_clause.is_some() {
                    return Err(self.err("duplicate BIRTH FROM clause"));
                }
                birth_clause = Some(self.predicate()?);
            } else if self.peek().map(|t| t.is_kw("AGE")).unwrap_or(false) {
                self.pos += 1;
                if self.eat_kw("ACTIVITIES") {
                    self.expect_kw("IN")?;
                    if age_clause.is_some() {
                        return Err(self.err("duplicate AGE ACTIVITIES IN clause"));
                    }
                    age_clause = Some(self.predicate()?);
                } else if self.eat_kw("UNIT") {
                    age_unit = Some(self.ident()?);
                } else {
                    return Err(self.err("expected ACTIVITIES or UNIT after AGE"));
                }
            } else if self.peek().map(|t| t.is_kw("COHORT")).unwrap_or(false) {
                self.pos += 1;
                self.expect_kw("BY")?;
                if cohort_by.is_some() {
                    return Err(self.err("duplicate COHORT BY clause"));
                }
                cohort_by = Some(self.cohort_list()?);
            } else {
                break;
            }
        }

        Ok(SqlCohortQuery {
            select,
            table,
            birth_clause: birth_clause.ok_or_else(|| self.err("missing BIRTH FROM clause"))?,
            age_clause,
            cohort_by: cohort_by.ok_or_else(|| self.err("missing COHORT BY clause"))?,
            age_unit,
        })
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>, SqlError> {
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.eat_sym(Symbol::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlError> {
        let name = self.ident()?;
        if name.eq_ignore_ascii_case("COHORTSIZE") {
            return Ok(SelectItem::CohortSize);
        }
        if name.eq_ignore_ascii_case("AGE") {
            return Ok(SelectItem::Age);
        }
        if self.eat_sym(Symbol::LParen) {
            let arg = if self.eat_sym(Symbol::RParen) {
                None
            } else {
                let a = self.ident()?;
                self.expect_sym(Symbol::RParen)?;
                Some(a)
            };
            // `time(week)` in the SELECT list echoes a time-bin cohort
            // attribute, not an aggregate call.
            if name.eq_ignore_ascii_case("time") {
                return Ok(SelectItem::Column("time".into()));
            }
            let alias = if self.eat_kw("AS") { Some(self.ident()?) } else { None };
            return Ok(SelectItem::Aggregate { func: name, arg, alias });
        }
        // Plain column, optional alias ignored in output naming.
        if self.eat_kw("AS") {
            let _alias = self.ident()?;
        }
        Ok(SelectItem::Column(name))
    }

    fn cohort_list(&mut self) -> Result<Vec<CohortKeyAst>, SqlError> {
        let mut keys = Vec::new();
        loop {
            let name = self.ident()?;
            if self.eat_sym(Symbol::LParen) {
                let bin = self.ident()?;
                self.expect_sym(Symbol::RParen)?;
                if !name.eq_ignore_ascii_case("time") {
                    return Err(self.err("only time(...) supports a bin argument in COHORT BY"));
                }
                keys.push(CohortKeyAst::TimeBin(bin));
            } else {
                keys.push(CohortKeyAst::Attr(name));
            }
            if !self.eat_sym(Symbol::Comma) {
                break;
            }
        }
        Ok(keys)
    }

    // ------------------------------------------------------------ predicates

    pub(crate) fn predicate(&mut self) -> Result<Expr, SqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("AND") {
            let rhs = self.not_expr()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, SqlError> {
        if self.eat_kw("NOT") {
            return Ok(self.not_expr()?.not());
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, SqlError> {
        // Parenthesized sub-predicate (only when it isn't a scalar group).
        if self.peek() == Some(&Token::Symbol(Symbol::LParen)) {
            self.pos += 1;
            let inner = self.predicate()?;
            self.expect_sym(Symbol::RParen)?;
            return Ok(inner);
        }
        let lhs = self.term()?;
        if let Some(Token::Symbol(sym)) = self.peek() {
            if let Some(op) = cmp_of(*sym) {
                self.pos += 1;
                let rhs = self.term()?;
                return Ok(Expr::Cmp(op, Box::new(lhs), Box::new(rhs)));
            }
        }
        if self.eat_kw("BETWEEN") {
            let lo = self.literal()?;
            self.expect_kw("AND")?;
            let hi = self.literal()?;
            return Ok(Expr::Between(Box::new(lhs), lo, hi));
        }
        if self.eat_kw("NOT") {
            self.expect_kw("IN")?;
            let list = self.literal_list()?;
            return Ok(lhs.in_list(list).not());
        }
        if self.eat_kw("IN") {
            let list = self.literal_list()?;
            return Ok(lhs.in_list(list));
        }
        Err(self.err("expected comparison, BETWEEN, or IN"))
    }

    fn term(&mut self) -> Result<Expr, SqlError> {
        match self.peek() {
            Some(Token::Str(_)) | Some(Token::Int(_)) => Ok(Expr::Lit(self.literal()?)),
            Some(Token::Ident(name)) => {
                let name = name.clone();
                if name.eq_ignore_ascii_case("AGE") {
                    self.pos += 1;
                    return Ok(Expr::Age);
                }
                if name.eq_ignore_ascii_case("BIRTH")
                    && self.peek2() == Some(&Token::Symbol(Symbol::LParen))
                {
                    self.pos += 2;
                    let attr = self.ident()?;
                    self.expect_sym(Symbol::RParen)?;
                    return Ok(Expr::birth(attr));
                }
                self.pos += 1;
                Ok(Expr::attr(name))
            }
            _ => Err(self.err("expected a scalar term")),
        }
    }

    pub(crate) fn literal(&mut self) -> Result<Value, SqlError> {
        match self.next() {
            Some(Token::Str(s)) => Ok(Value::from(s)),
            Some(Token::Int(v)) => Ok(Value::Int(v)),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected a literal"))
            }
        }
    }

    fn literal_list(&mut self) -> Result<Vec<Value>, SqlError> {
        let closing = if self.eat_sym(Symbol::LBracket) {
            Symbol::RBracket
        } else if self.eat_sym(Symbol::LParen) {
            Symbol::RParen
        } else {
            return Err(self.err("expected `[` or `(` to open an IN list"));
        };
        let mut out = Vec::new();
        if self.eat_sym(closing) {
            return Ok(out);
        }
        loop {
            out.push(self.literal()?);
            if self.eat_sym(closing) {
                return Ok(out);
            }
            self.expect_sym(Symbol::Comma)?;
        }
    }
}

fn cmp_of(sym: Symbol) -> Option<CmpOp> {
    match sym {
        Symbol::Eq => Some(CmpOp::Eq),
        Symbol::Ne => Some(CmpOp::Ne),
        Symbol::Lt => Some(CmpOp::Lt),
        Symbol::Le => Some(CmpOp::Le),
        Symbol::Gt => Some(CmpOp::Gt),
        Symbol::Ge => Some(CmpOp::Ge),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_q1() {
        let q = parse_statement(
            "SELECT country, CohortSize, Age, UserCount() \
             FROM GameActions BIRTH FROM action = \"launch\" \
             COHORT BY country",
        )
        .unwrap();
        assert_eq!(q.table, "GameActions");
        assert_eq!(q.cohort_by, vec![CohortKeyAst::Attr("country".into())]);
        assert_eq!(q.select.len(), 4);
        assert!(
            matches!(q.select[3], SelectItem::Aggregate { ref func, arg: None, .. } if func == "UserCount")
        );
    }

    #[test]
    fn parses_paper_q4() {
        let q = parse_statement(
            "SELECT country, COHORTSIZE, AGE, Avg(gold) \
             FROM GameActions BIRTH FROM action = \"shop\" AND \
             time BETWEEN \"2013-05-21\" AND \"2013-05-27\" AND \
             role = \"dwarf\" AND \
             country IN [\"China\", \"Australia\", \"United States\"] \
             AGE ACTIVITIES IN action = \"shop\" AND country = Birth(country) \
             COHORT BY country",
        )
        .unwrap();
        let birth = q.birth_clause.to_string();
        assert!(birth.contains("BETWEEN"));
        assert!(birth.contains("IN [\"China\""));
        let age = q.age_clause.unwrap().to_string();
        assert!(age.contains("Birth(country)"));
    }

    #[test]
    fn parses_age_predicate_q7() {
        let q = parse_statement(
            "SELECT country, COHORTSIZE, AGE, UserCount() \
             FROM GameActions BIRTH FROM action = \"launch\" \
             AGE ACTIVITIES in AGE < 14 \
             COHORT BY country",
        )
        .unwrap();
        assert_eq!(q.age_clause.unwrap().to_string(), "AGE < 14");
    }

    #[test]
    fn clause_order_is_irrelevant() {
        let a = parse_statement(
            "SELECT country, COHORTSIZE, AGE, Avg(gold) FROM D \
             BIRTH FROM action = \"shop\" AGE ACTIVITIES IN action = \"shop\" COHORT BY country",
        )
        .unwrap();
        let b = parse_statement(
            "SELECT country, COHORTSIZE, AGE, Avg(gold) FROM D \
             AGE ACTIVITIES IN action = \"shop\" COHORT BY country BIRTH FROM action = \"shop\"",
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parses_time_bin_cohort() {
        let q = parse_statement(
            "SELECT COHORTSIZE, AGE, Avg(gold) FROM D \
             BIRTH FROM action = \"launch\" COHORT BY time(week) AGE UNIT week",
        )
        .unwrap();
        assert_eq!(q.cohort_by, vec![CohortKeyAst::TimeBin("week".into())]);
        assert_eq!(q.age_unit.as_deref(), Some("week"));
    }

    #[test]
    fn rejects_missing_clauses() {
        assert!(parse_statement("SELECT a FROM D COHORT BY a").is_err()); // no BIRTH FROM
        assert!(parse_statement("SELECT a FROM D BIRTH FROM action = \"x\"").is_err());
        // no COHORT BY
    }

    #[test]
    fn rejects_duplicate_clauses() {
        assert!(parse_statement(
            "SELECT a FROM D BIRTH FROM action = \"x\" BIRTH FROM action = \"y\" COHORT BY a"
        )
        .is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(
            parse_statement("SELECT a FROM D BIRTH FROM action = \"x\" COHORT BY a EXTRA").is_err()
        );
    }

    #[test]
    fn parses_parenthesized_or() {
        let q = parse_statement(
            "SELECT country, COHORTSIZE, AGE, Count() FROM D \
             BIRTH FROM action = \"launch\" \
             AGE ACTIVITIES IN (action = \"shop\" OR action = \"fight\") AND AGE < 5 \
             COHORT BY country",
        )
        .unwrap();
        let s = q.age_clause.unwrap().to_string();
        assert!(s.contains("OR"));
        assert!(s.contains("AGE < 5"));
    }

    #[test]
    fn not_in_parses() {
        let q = parse_statement(
            "SELECT country, COHORTSIZE, AGE, Count() FROM D \
             BIRTH FROM action = \"launch\" \
             AGE ACTIVITIES IN country NOT IN [\"China\"] \
             COHORT BY country",
        )
        .unwrap();
        assert!(q.age_clause.unwrap().to_string().starts_with("NOT"));
    }
}
