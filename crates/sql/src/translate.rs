//! Translation of parsed statements into validated [`CohortQuery`]s.
//!
//! Besides structural mapping this performs the schema-aware rewrites:
//!
//! * the mandatory `action = e` conjunct is extracted from the `BIRTH FROM`
//!   predicate and becomes the query's birth action;
//! * string literals compared against integer attributes are parsed as
//!   timestamps (`"2013-05-21"` → epoch seconds), matching the paper's
//!   `time BETWEEN "2013-05-21" AND "2013-05-27"` style;
//! * the SELECT list is checked for consistency with `COHORT BY`.

use crate::ast::{CohortKeyAst, SelectItem, SqlCohortQuery};
use crate::error::SqlError;
use cohana_activity::{Schema, TimeBin, Timestamp, Value, ValueType};
use cohana_core::{AggFunc, CmpOp, CohortQuery, Expr};

/// Translate a parsed statement against a schema.
pub fn translate(ast: &SqlCohortQuery, schema: &Schema) -> Result<CohortQuery, SqlError> {
    // 1. Split `action = e` out of the birth clause.
    let action_attr = &schema.attribute(schema.action_idx()).name;
    let (birth_action, birth_pred) = split_birth_action(&ast.birth_clause, action_attr)?;

    // 2. Rewrite date literals.
    let birth_pred = birth_pred.map(|p| rewrite_dates(&p, schema)).transpose()?;
    let age_pred = ast.age_clause.as_ref().map(|p| rewrite_dates(p, schema)).transpose()?;

    // 3. Aggregates from the SELECT list.
    let mut aggregates = Vec::new();
    let mut selected_columns = Vec::new();
    for item in &ast.select {
        match item {
            SelectItem::Aggregate { func, arg, .. } => {
                aggregates.push(agg_of(func, arg.as_deref())?);
            }
            SelectItem::Column(c) => selected_columns.push(c.clone()),
            SelectItem::CohortSize | SelectItem::Age => {}
        }
    }

    // 4. Cohort keys.
    let mut builder = CohortQuery::builder(birth_action);
    if let Some(p) = birth_pred {
        builder = builder.birth_where(p);
    }
    if let Some(p) = age_pred {
        builder = builder.age_where(p);
    }
    for key in &ast.cohort_by {
        builder = match key {
            CohortKeyAst::Attr(a) => builder.cohort_by([a.clone()]),
            CohortKeyAst::TimeBin(bin) => builder.cohort_by_time(parse_bin(bin)?),
        };
    }
    if let Some(unit) = &ast.age_unit {
        builder = builder.age_bin(parse_bin(unit)?);
    }
    for agg in aggregates {
        builder = builder.aggregate(agg);
    }
    let query = builder.build()?;

    // 5. SELECT-list consistency: plain columns must be cohort attributes.
    for c in &selected_columns {
        let in_cohort = query.cohort_by.iter().any(|k| match k {
            cohana_core::CohortAttr::Attr(a) => a == c,
            cohana_core::CohortAttr::TimeBin(_) => c.eq_ignore_ascii_case("time"),
        });
        if !in_cohort {
            return Err(SqlError::Translate(format!(
                "selected column {c:?} is not in COHORT BY; only cohort attributes, \
                 COHORTSIZE, AGE, and aggregates may be selected"
            )));
        }
    }
    Ok(query)
}

/// Extract the `action = "e"` conjunct (the birth action) from the BIRTH
/// FROM predicate; the remaining conjuncts form the birth selection.
fn split_birth_action(
    clause: &Expr,
    action_attr: &str,
) -> Result<(String, Option<Expr>), SqlError> {
    let mut action: Option<String> = None;
    let mut rest: Vec<Expr> = Vec::new();
    for c in clause.conjuncts() {
        match c {
            Expr::Cmp(CmpOp::Eq, lhs, rhs) => {
                let pair = match (lhs.as_ref(), rhs.as_ref()) {
                    (Expr::Attr(a), Expr::Lit(Value::Str(s))) if a == action_attr => Some(s),
                    (Expr::Lit(Value::Str(s)), Expr::Attr(a)) if a == action_attr => Some(s),
                    _ => None,
                };
                if let (Some(s), None) = (pair, &action) {
                    action = Some(s.to_string());
                    continue;
                }
                rest.push(c.clone());
            }
            other => rest.push(other.clone()),
        }
    }
    let action = action.ok_or_else(|| {
        SqlError::Translate(format!(
            "BIRTH FROM must contain an `{action_attr} = \"<birth action>\"` conjunct"
        ))
    })?;
    Ok((action, Expr::conjoin(rest)))
}

/// Rewrite string literals compared against integer attributes into epoch
/// seconds.
fn rewrite_dates(expr: &Expr, schema: &Schema) -> Result<Expr, SqlError> {
    let is_int_attr = |e: &Expr| -> bool {
        match e {
            Expr::Attr(a) | Expr::Birth(a) => schema
                .index_of(a)
                .map(|i| schema.attribute(i).vtype == ValueType::Int)
                .unwrap_or(false),
            Expr::Age => true,
            _ => false,
        }
    };
    let conv = |v: &Value| -> Result<Value, SqlError> {
        match v {
            Value::Str(s) => Timestamp::parse(s).map(|t| Value::Int(t.secs())).map_err(|_| {
                SqlError::Translate(format!("expected a date/timestamp, got \"{s}\""))
            }),
            other => Ok(other.clone()),
        }
    };
    Ok(match expr {
        Expr::Cmp(op, a, b) => {
            let (mut a2, mut b2) = (rewrite_dates(a, schema)?, rewrite_dates(b, schema)?);
            if is_int_attr(a) {
                if let Expr::Lit(v) = &b2 {
                    b2 = Expr::Lit(conv(v)?);
                }
            }
            if is_int_attr(b) {
                if let Expr::Lit(v) = &a2 {
                    a2 = Expr::Lit(conv(v)?);
                }
            }
            Expr::Cmp(*op, Box::new(a2), Box::new(b2))
        }
        Expr::Between(a, lo, hi) => {
            let a2 = rewrite_dates(a, schema)?;
            let (lo2, hi2) =
                if is_int_attr(a) { (conv(lo)?, conv(hi)?) } else { (lo.clone(), hi.clone()) };
            Expr::Between(Box::new(a2), lo2, hi2)
        }
        Expr::InList(a, vs) => {
            let a2 = rewrite_dates(a, schema)?;
            let vs2 = if is_int_attr(a) {
                vs.iter().map(conv).collect::<Result<_, _>>()?
            } else {
                vs.clone()
            };
            Expr::InList(Box::new(a2), vs2)
        }
        Expr::And(a, b) => rewrite_dates(a, schema)?.and(rewrite_dates(b, schema)?),
        Expr::Or(a, b) => rewrite_dates(a, schema)?.or(rewrite_dates(b, schema)?),
        Expr::Not(a) => rewrite_dates(a, schema)?.not(),
        leaf => leaf.clone(),
    })
}

fn agg_of(func: &str, arg: Option<&str>) -> Result<AggFunc, SqlError> {
    let need_arg = |f: &str| -> Result<String, SqlError> {
        arg.map(|s| s.to_string())
            .ok_or_else(|| SqlError::Translate(format!("{f} requires an attribute argument")))
    };
    match func.to_ascii_lowercase().as_str() {
        "sum" => Ok(AggFunc::Sum(need_arg("Sum")?)),
        "avg" => Ok(AggFunc::Avg(need_arg("Avg")?)),
        "min" => Ok(AggFunc::Min(need_arg("Min")?)),
        "max" => Ok(AggFunc::Max(need_arg("Max")?)),
        "count" => {
            if arg.is_some() {
                return Err(SqlError::Translate("Count() takes no argument".into()));
            }
            Ok(AggFunc::Count)
        }
        "usercount" => {
            if arg.is_some() {
                return Err(SqlError::Translate("UserCount() takes no argument".into()));
            }
            Ok(AggFunc::UserCount)
        }
        other => Err(SqlError::Translate(format!("unknown aggregate function {other:?}"))),
    }
}

fn parse_bin(name: &str) -> Result<TimeBin, SqlError> {
    match name.to_ascii_lowercase().as_str() {
        "day" | "days" => Ok(TimeBin::Day),
        "week" | "weeks" => Ok(TimeBin::Week),
        "month" | "months" => Ok(TimeBin::Month),
        other => Err(SqlError::Translate(format!(
            "unknown time bin {other:?} (expected day, week, or month)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;
    use cohana_core::CohortAttr;

    fn schema() -> Schema {
        Schema::game_actions()
    }

    fn tr(sql: &str) -> Result<CohortQuery, SqlError> {
        translate(&parse_statement(sql).unwrap(), &schema())
    }

    #[test]
    fn q1_translates() {
        let q = tr("SELECT country, CohortSize, Age, UserCount() \
             FROM GameActions BIRTH FROM action = \"launch\" COHORT BY country")
        .unwrap();
        assert_eq!(q.birth_action, "launch");
        assert!(q.birth_predicate.is_none());
        assert_eq!(q.aggregates, vec![AggFunc::UserCount]);
    }

    #[test]
    fn q2_dates_convert() {
        let q = tr("SELECT country, COHORTSIZE, AGE, UserCount() \
             FROM GameActions BIRTH FROM action = \"launch\" AND \
             time BETWEEN \"2013-05-21\" AND \"2013-05-27\" \
             COHORT BY country")
        .unwrap();
        let lo = Timestamp::parse("2013-05-21").unwrap().secs();
        let hi = Timestamp::parse("2013-05-27").unwrap().secs();
        assert_eq!(q.birth_predicate.unwrap().int_bounds("time"), Some((lo, hi)));
    }

    #[test]
    fn q4_full_translation() {
        let q = tr("SELECT country, COHORTSIZE, AGE, Avg(gold) \
             FROM GameActions BIRTH FROM action = \"shop\" AND \
             time BETWEEN \"2013-05-21\" AND \"2013-05-27\" AND \
             role = \"dwarf\" AND \
             country IN [\"China\", \"Australia\", \"United States\"] \
             AGE ACTIVITIES IN action = \"shop\" AND country = Birth(country) \
             COHORT BY country")
        .unwrap();
        assert_eq!(q.birth_action, "shop");
        assert!(q.age_predicate.unwrap().references_birth_or_age());
        assert_eq!(q.aggregates, vec![AggFunc::Avg("gold".into())]);
    }

    #[test]
    fn equals_paper_module_queries() {
        // The SQL texts of §5.2 translate to exactly the programmatic
        // queries in cohana_core::paper.
        let q1 = tr("SELECT country, CohortSize, Age, UserCount() \
             FROM GameActions BIRTH FROM action = \"launch\" COHORT BY country")
        .unwrap();
        assert_eq!(q1, cohana_core::paper::q1());

        let q3 = tr("SELECT country, COHORTSIZE, AGE, Avg(gold) \
             FROM GameActions BIRTH FROM action = \"shop\" \
             AGE ACTIVITIES IN action = \"shop\" \
             COHORT BY country")
        .unwrap();
        assert_eq!(q3, cohana_core::paper::q3());

        let q7 = tr("SELECT country, COHORTSIZE, AGE, UserCount() \
             FROM GameActions BIRTH FROM action = \"launch\" \
             AGE ACTIVITIES in AGE < 14 \
             COHORT BY country")
        .unwrap();
        assert_eq!(q7, cohana_core::paper::q7(14));
    }

    #[test]
    fn time_bin_cohort() {
        let q = tr("SELECT COHORTSIZE, AGE, Avg(gold) FROM D \
             BIRTH FROM action = \"launch\" \
             AGE ACTIVITIES IN action = \"shop\" \
             COHORT BY time(week) AGE UNIT week")
        .unwrap();
        assert_eq!(q.cohort_by, vec![CohortAttr::TimeBin(TimeBin::Week)]);
        assert_eq!(q.age_bin, TimeBin::Week);
        assert_eq!(q, cohana_core::paper::shopping_trend());
    }

    #[test]
    fn missing_birth_action_conjunct() {
        let e = tr("SELECT country, COHORTSIZE, AGE, Count() FROM D \
             BIRTH FROM role = \"dwarf\" COHORT BY country")
        .unwrap_err();
        assert!(matches!(e, SqlError::Translate(_)));
    }

    #[test]
    fn rejects_non_cohort_select_column() {
        let e = tr("SELECT city, COHORTSIZE, AGE, Count() FROM D \
             BIRTH FROM action = \"launch\" COHORT BY country")
        .unwrap_err();
        assert!(matches!(e, SqlError::Translate(_)));
    }

    #[test]
    fn rejects_unknown_aggregate() {
        let e = tr("SELECT country, COHORTSIZE, AGE, Median(gold) FROM D \
             BIRTH FROM action = \"launch\" COHORT BY country")
        .unwrap_err();
        assert!(matches!(e, SqlError::Translate(_)));
    }

    #[test]
    fn rejects_bad_date_literal() {
        let e = tr("SELECT country, COHORTSIZE, AGE, Count() FROM D \
             BIRTH FROM action = \"launch\" AND time > \"not-a-date\" \
             COHORT BY country")
        .unwrap_err();
        assert!(matches!(e, SqlError::Translate(_)));
    }

    #[test]
    fn rejects_count_with_argument() {
        let e = tr("SELECT country, COHORTSIZE, AGE, Count(gold) FROM D \
             BIRTH FROM action = \"launch\" COHORT BY country")
        .unwrap_err();
        assert!(matches!(e, SqlError::Translate(_)));
    }
}
