//! Round-trip property tests: `CohortQuery::to_sql` output must parse and
//! translate back to the original query, for randomly generated queries.

use cohana_activity::{Schema, TimeBin};
use cohana_core::{AggFunc, CohortQuery, Expr};
use cohana_sql::parse_cohort_query;
use proptest::prelude::*;

fn agg_strategy() -> impl Strategy<Value = AggFunc> {
    prop_oneof![
        Just(AggFunc::sum("gold")),
        Just(AggFunc::avg("gold")),
        Just(AggFunc::min("session")),
        Just(AggFunc::max("session")),
        Just(AggFunc::count()),
        Just(AggFunc::user_count()),
    ]
}

fn birth_pred_strategy() -> impl Strategy<Value = Option<Expr>> {
    prop_oneof![
        Just(None),
        prop::sample::select(vec!["dwarf", "wizard", "bandit"])
            .prop_map(|r| Some(Expr::attr("role").eq(Expr::lit_str(r)))),
        (0i64..1_000_000, 1_000_000i64..2_000_000)
            .prop_map(|(a, b)| Some(Expr::attr("time").between_int(a, b))),
        prop::sample::select(vec!["China", "Australia"]).prop_map(|c| Some(
            Expr::attr("country")
                .in_list([cohana_activity::Value::str(c), cohana_activity::Value::str("Japan")])
        )),
    ]
}

fn age_pred_strategy() -> impl Strategy<Value = Option<Expr>> {
    prop_oneof![
        Just(None),
        prop::sample::select(vec!["shop", "fight"])
            .prop_map(|a| Some(Expr::attr("action").eq(Expr::lit_str(a)))),
        (1i64..30).prop_map(|g| Some(Expr::age().lt(Expr::lit_int(g)))),
        Just(Some(Expr::attr("country").eq(Expr::birth("country")))),
        Just(Some(
            Expr::attr("action")
                .eq(Expr::lit_str("shop"))
                .or(Expr::attr("action").eq(Expr::lit_str("fight")))
        )),
        Just(Some(Expr::attr("role").ne(Expr::lit_str("dwarf")).not())),
    ]
}

fn query_strategy() -> impl Strategy<Value = CohortQuery> {
    (
        prop::sample::select(vec!["launch", "shop", "achievement"]),
        birth_pred_strategy(),
        age_pred_strategy(),
        prop::sample::select(vec!["country", "role", "city"]),
        prop::bool::ANY,
        agg_strategy(),
        prop::sample::select(vec![TimeBin::Day, TimeBin::Week, TimeBin::Month]),
    )
        .prop_map(|(action, bp, ap, attr, by_time, agg, bin)| {
            let mut b = CohortQuery::builder(action);
            if let Some(p) = bp {
                b = b.birth_where(p);
            }
            if let Some(p) = ap {
                b = b.age_where(p);
            }
            b = if by_time { b.cohort_by_time(TimeBin::Week) } else { b.cohort_by([attr]) };
            b.age_bin(bin).aggregate(agg).build().expect("generated query valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn to_sql_parses_back_to_same_query(query in query_strategy()) {
        let sql = query.to_sql();
        let schema = Schema::game_actions();
        let reparsed = parse_cohort_query(&sql, &schema)
            .unwrap_or_else(|e| panic!("rendered SQL failed to parse: {e}\n{sql}"));
        prop_assert_eq!(reparsed, query, "round-trip mismatch for:\n{}", sql);
    }
}

#[test]
fn paper_queries_roundtrip() {
    use cohana_core::paper;
    let schema = Schema::game_actions();
    for q in [
        paper::q1(),
        paper::q2(),
        paper::q3(),
        paper::q4(),
        paper::q5(0, 86_400),
        paper::q6(0, 86_400),
        paper::q7(14),
        paper::q8(7),
        paper::example1(),
        paper::shopping_trend(),
    ] {
        let sql = q.to_sql();
        let back = parse_cohort_query(&sql, &schema).unwrap_or_else(|e| panic!("{e}\n{sql}"));
        assert_eq!(back, q, "round-trip failed for:\n{sql}");
    }
}
