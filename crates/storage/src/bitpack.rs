//! Fixed-width bit-packing with random access (§4.1).
//!
//! Values are packed into 64-bit words at the minimum width `n` that
//! represents the maximum value, fitting `⌊64 / n⌋` values per word so that
//! **no value spans a word boundary**. This is not the most space-efficient
//! scheme, but — as the paper stresses — it allows any position to be read
//! without decompressing its neighbours, which the cohort operators rely on
//! for user skipping.

use std::fmt;

/// A bit-packed array of `u64` values.
#[derive(Clone, PartialEq, Eq)]
pub struct BitPacked {
    width: u8,
    len: usize,
    words: Vec<u64>,
}

impl BitPacked {
    /// Pack a slice. The width is the minimum number of bits representing
    /// the maximum value (`width == 0` iff every value is zero, in which
    /// case no words are stored at all).
    pub fn from_slice(values: &[u64]) -> Self {
        let max = values.iter().copied().max().unwrap_or(0);
        let width = bits_for(max);
        Self::from_slice_with_width(values, width)
    }

    /// Pack with an explicit width (must cover every value).
    pub fn from_slice_with_width(values: &[u64], width: u8) -> Self {
        assert!(width <= 64, "width must be <= 64");
        if width == 0 {
            debug_assert!(values.iter().all(|&v| v == 0));
            return BitPacked { width: 0, len: values.len(), words: Vec::new() };
        }
        let per_word = (64 / width as usize).max(1);
        let num_words = values.len().div_ceil(per_word);
        let mut words = vec![0u64; num_words];
        for (i, &v) in values.iter().enumerate() {
            debug_assert!(width == 64 || v < (1u64 << width), "value {v} exceeds width {width}");
            let w = i / per_word;
            let shift = (i % per_word) * width as usize;
            words[w] |= v << shift;
        }
        BitPacked { width, len: values.len(), words }
    }

    /// Number of packed values.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit width per value.
    #[inline]
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Random access without decompression. Panics if out of range (all
    /// call sites index within `len`, checked by the chunk layer).
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        debug_assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        if self.width == 0 {
            return 0;
        }
        let width = self.width as usize;
        let per_word = (64 / width).max(1);
        let word = self.words[i / per_word];
        let shift = (i % per_word) * width;
        if width == 64 {
            word
        } else {
            (word >> shift) & ((1u64 << width) - 1)
        }
    }

    /// Iterate over all values in order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Decode to a vector.
    pub fn to_vec(&self) -> Vec<u64> {
        self.iter().collect()
    }

    /// Bytes consumed by the packed words (excluding the struct header).
    pub fn packed_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Raw words (for persistence).
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild from raw parts (for persistence). Validates word count.
    pub(crate) fn from_raw(width: u8, len: usize, words: Vec<u64>) -> crate::Result<Self> {
        let expected = if width == 0 {
            0
        } else {
            let per_word = (64 / width as usize).max(1);
            len.div_ceil(per_word)
        };
        if words.len() != expected {
            return Err(crate::StorageError::Corrupt(format!(
                "bitpack expects {expected} words, found {}",
                words.len()
            )));
        }
        Ok(BitPacked { width, len, words })
    }
}

impl fmt::Debug for BitPacked {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitPacked(width={}, len={})", self.width, self.len)
    }
}

/// Minimum number of bits needed to represent `v` (0 for 0).
#[inline]
pub fn bits_for(v: u64) -> u8 {
    (64 - v.leading_zeros()) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bits_for_boundaries() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(u64::MAX), 64);
    }

    #[test]
    fn roundtrip_simple() {
        let vals = [3u64, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5];
        let p = BitPacked::from_slice(&vals);
        assert_eq!(p.width(), 4);
        assert_eq!(p.to_vec(), vals);
    }

    #[test]
    fn all_zero_uses_no_words() {
        let p = BitPacked::from_slice(&[0, 0, 0, 0]);
        assert_eq!(p.width(), 0);
        assert_eq!(p.packed_bytes(), 0);
        assert_eq!(p.to_vec(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn width_64_values() {
        let vals = [u64::MAX, 0, 42];
        let p = BitPacked::from_slice(&vals);
        assert_eq!(p.width(), 64);
        assert_eq!(p.to_vec(), vals);
    }

    #[test]
    fn values_never_span_words() {
        // width 7 -> 9 values per word; the 10th value starts a new word.
        let vals: Vec<u64> = (0..20).map(|i| (i * 7) % 128).collect();
        let p = BitPacked::from_slice_with_width(&vals, 7);
        assert_eq!(p.words().len(), 20usize.div_ceil(9));
        assert_eq!(p.to_vec(), vals);
    }

    #[test]
    fn empty_input() {
        let p = BitPacked::from_slice(&[]);
        assert!(p.is_empty());
        assert_eq!(p.to_vec(), Vec::<u64>::new());
    }

    #[test]
    fn from_raw_validates() {
        assert!(BitPacked::from_raw(8, 10, vec![0; 2]).is_ok());
        assert!(BitPacked::from_raw(8, 10, vec![0; 3]).is_err());
        assert!(BitPacked::from_raw(0, 10, vec![]).is_ok());
        assert!(BitPacked::from_raw(0, 10, vec![0]).is_err());
    }

    proptest! {
        #[test]
        fn prop_roundtrip(vals in proptest::collection::vec(0u64..u64::MAX, 0..300)) {
            let p = BitPacked::from_slice(&vals);
            prop_assert_eq!(p.to_vec(), vals);
        }

        #[test]
        fn prop_roundtrip_small_domain(vals in proptest::collection::vec(0u64..1000, 0..500)) {
            let p = BitPacked::from_slice(&vals);
            prop_assert!(p.width() <= 10);
            for (i, &v) in vals.iter().enumerate() {
                prop_assert_eq!(p.get(i), v);
            }
        }

        #[test]
        fn prop_random_access_matches_iter(vals in proptest::collection::vec(0u64..1_000_000, 1..200), idx in 0usize..199) {
            let p = BitPacked::from_slice(&vals);
            let i = idx % vals.len();
            prop_assert_eq!(p.get(i), vals[i]);
        }
    }
}
