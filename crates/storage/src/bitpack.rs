//! Fixed-width bit-packing with random access (§4.1).
//!
//! Values are packed into 64-bit words at the minimum width `n` that
//! represents the maximum value, fitting `⌊64 / n⌋` values per word so that
//! **no value spans a word boundary**. This is not the most space-efficient
//! scheme, but — as the paper stresses — it allows any position to be read
//! without decompressing its neighbours, which the cohort operators rely on
//! for user skipping.

use std::fmt;

/// Exponent of the fixed-point reciprocal used to divide indexes by
/// `per_word` without a hardware division (see [`BitPacked::get`]). With
/// `per_word ≤ 64` the magic-multiply `⌊i·m / 2^57⌋` equals `⌊i / per_word⌋`
/// exactly for every `i < 2^51` — far beyond any array this format can
/// address (row positions are `u32` on disk).
const RECIP_SHIFT: u32 = 57;

/// A bit-packed array of `u64` values.
#[derive(Clone)]
pub struct BitPacked {
    width: u8,
    /// `⌊64 / width⌋`, cached at construction so neither random access nor
    /// block decode pays a `64 / width` recompute (`1` when `width == 0`, a
    /// value the accessors never reach — they short-circuit to zero).
    per_word: u8,
    /// `⌊2^RECIP_SHIFT / per_word⌋ + 1`: the fixed-point reciprocal that
    /// turns the index→word division of random access into a multiply.
    recip: u64,
    len: usize,
    words: Vec<u64>,
}

impl PartialEq for BitPacked {
    fn eq(&self, other: &Self) -> bool {
        // `per_word` is derived from `width`; comparing it would be
        // redundant.
        self.width == other.width && self.len == other.len && self.words == other.words
    }
}

impl Eq for BitPacked {}

impl BitPacked {
    /// Pack a slice. The width is the minimum number of bits representing
    /// the maximum value (`width == 0` iff every value is zero, in which
    /// case no words are stored at all).
    pub fn from_slice(values: &[u64]) -> Self {
        let max = values.iter().copied().max().unwrap_or(0);
        let width = bits_for(max);
        Self::from_slice_with_width(values, width)
    }

    /// Pack with an explicit width (must cover every value).
    pub fn from_slice_with_width(values: &[u64], width: u8) -> Self {
        assert!(width <= 64, "width must be <= 64");
        if width == 0 {
            debug_assert!(values.iter().all(|&v| v == 0));
            return BitPacked {
                width: 0,
                per_word: 1,
                recip: recip_for(1),
                len: values.len(),
                words: Vec::new(),
            };
        }
        let per_word = (64 / width as usize).max(1);
        let num_words = values.len().div_ceil(per_word);
        let mut words = vec![0u64; num_words];
        for (i, &v) in values.iter().enumerate() {
            debug_assert!(width == 64 || v < (1u64 << width), "value {v} exceeds width {width}");
            let w = i / per_word;
            let shift = (i % per_word) * width as usize;
            words[w] |= v << shift;
        }
        BitPacked {
            width,
            per_word: per_word as u8,
            recip: recip_for(per_word),
            len: values.len(),
            words,
        }
    }

    /// Number of packed values.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit width per value.
    #[inline]
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Random access without decompression. Panics if out of range (all
    /// call sites index within `len`, checked by the chunk layer).
    /// **Division-free**: the index→word split uses the reciprocal cached
    /// at construction (one widening multiply + shift), not a hardware
    /// division — this path runs once per tuple in predicate evaluation and
    /// birth-row search.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        debug_assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        if self.width == 0 {
            return 0;
        }
        let width = self.width as usize;
        let per_word = self.per_word as usize;
        let word_idx = (((i as u128) * (self.recip as u128)) >> RECIP_SHIFT) as usize;
        debug_assert_eq!(word_idx, i / per_word);
        let word = self.words[word_idx];
        let shift = (i - word_idx * per_word) * width;
        if width == 64 {
            word
        } else {
            (word >> shift) & ((1u64 << width) - 1)
        }
    }

    /// Block decode: write values `start..end` into `out` (whose length must
    /// be `end - start`), one packed word at a time. Unlike repeated
    /// [`BitPacked::get`], the inner loop performs no per-element div/mod —
    /// it walks each word's lanes with a running shift, the standard
    /// word-at-a-time unpacking idiom.
    pub fn unpack_range(&self, start: usize, end: usize, out: &mut [u64]) {
        assert!(start <= end && end <= self.len, "range {start}..{end} out of bounds");
        assert_eq!(out.len(), end - start, "output buffer length mismatch");
        if start == end {
            return;
        }
        if self.width == 0 {
            out.fill(0);
            return;
        }
        let width = self.width as usize;
        if width == 64 {
            out.copy_from_slice(&self.words[start..end]);
            return;
        }
        let per_word = self.per_word as usize;
        let mask = (1u64 << width) - 1;
        // One div/mod pair for the whole block, not one per element.
        let mut word_idx = start / per_word;
        let mut lane = start % per_word;
        let mut word = self.words[word_idx] >> (lane * width);
        for slot in out.iter_mut() {
            *slot = word & mask;
            lane += 1;
            if lane == per_word {
                lane = 0;
                word_idx += 1;
                // The last word may be past the end when the block finishes
                // exactly on a word boundary.
                word = self.words.get(word_idx).copied().unwrap_or(0);
            } else {
                word >>= width;
            }
        }
    }

    /// Iterate over all values in order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Decode to a vector.
    pub fn to_vec(&self) -> Vec<u64> {
        self.iter().collect()
    }

    /// Bytes consumed by the packed words (excluding the struct header).
    pub fn packed_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Raw words (for persistence).
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild from raw parts (for persistence). Validates word count.
    pub(crate) fn from_raw(width: u8, len: usize, words: Vec<u64>) -> crate::Result<Self> {
        let expected = if width == 0 {
            0
        } else {
            let per_word = (64 / width as usize).max(1);
            len.div_ceil(per_word)
        };
        if words.len() != expected {
            return Err(crate::StorageError::Corrupt(format!(
                "bitpack expects {expected} words, found {}",
                words.len()
            )));
        }
        let per_word = if width == 0 { 1 } else { (64 / width as usize).max(1) as u8 };
        Ok(BitPacked { width, per_word, recip: recip_for(per_word as usize), len, words })
    }
}

impl fmt::Debug for BitPacked {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitPacked(width={}, len={})", self.width, self.len)
    }
}

/// Minimum number of bits needed to represent `v` (0 for 0).
#[inline]
pub fn bits_for(v: u64) -> u8 {
    (64 - v.leading_zeros()) as u8
}

/// The fixed-point reciprocal of `per_word`: `⌊2^RECIP_SHIFT/d⌋ + 1`.
///
/// Exactness: write `2^p = d·Q + R` (`0 ≤ R < d`, `m = Q + 1`) and
/// `i = d·a + b` (`b < d`); then `m·i = a·2^p + a·(d−R) + b·(Q+1)`, so
/// `⌊m·i/2^p⌋ = a = ⌊i/d⌋` exactly when `a·(d−R) + b·(Q+1) < 2^p`, which
/// with `d ≤ 64` and `p = 57` holds for every `i < 2^51`.
#[inline]
fn recip_for(per_word: usize) -> u64 {
    debug_assert!((1..=64).contains(&per_word));
    ((1u64 << RECIP_SHIFT) / per_word as u64) + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bits_for_boundaries() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(u64::MAX), 64);
    }

    #[test]
    fn roundtrip_simple() {
        let vals = [3u64, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5];
        let p = BitPacked::from_slice(&vals);
        assert_eq!(p.width(), 4);
        assert_eq!(p.to_vec(), vals);
    }

    #[test]
    fn all_zero_uses_no_words() {
        let p = BitPacked::from_slice(&[0, 0, 0, 0]);
        assert_eq!(p.width(), 0);
        assert_eq!(p.packed_bytes(), 0);
        assert_eq!(p.to_vec(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn width_64_values() {
        let vals = [u64::MAX, 0, 42];
        let p = BitPacked::from_slice(&vals);
        assert_eq!(p.width(), 64);
        assert_eq!(p.to_vec(), vals);
    }

    #[test]
    fn values_never_span_words() {
        // width 7 -> 9 values per word; the 10th value starts a new word.
        let vals: Vec<u64> = (0..20).map(|i| (i * 7) % 128).collect();
        let p = BitPacked::from_slice_with_width(&vals, 7);
        assert_eq!(p.words().len(), 20usize.div_ceil(9));
        assert_eq!(p.to_vec(), vals);
    }

    #[test]
    fn empty_input() {
        let p = BitPacked::from_slice(&[]);
        assert!(p.is_empty());
        assert_eq!(p.to_vec(), Vec::<u64>::new());
    }

    #[test]
    fn from_raw_validates() {
        assert!(BitPacked::from_raw(8, 10, vec![0; 2]).is_ok());
        assert!(BitPacked::from_raw(8, 10, vec![0; 3]).is_err());
        assert!(BitPacked::from_raw(0, 10, vec![]).is_ok());
        assert!(BitPacked::from_raw(0, 10, vec![0]).is_err());
    }

    /// `unpack_range` ≡ repeated `get` for every width 0–64, with ranges
    /// chosen to hit word-boundary starts, mid-word starts, and the tail.
    #[test]
    fn unpack_range_matches_get_all_widths() {
        for width in 0u8..=64 {
            let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
            let vals: Vec<u64> =
                (0..137u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask).collect();
            let p = BitPacked::from_slice_with_width(&vals, width);
            let per_word = (64 / width.max(1) as usize).max(1);
            // Word-aligned, mid-word, empty, and full ranges.
            let starts = [0, 1, per_word, per_word + 1, 2 * per_word, vals.len() - 1, vals.len()];
            for &start in &starts {
                for &end in &[start, vals.len().min(start + per_word), vals.len()] {
                    if end < start {
                        continue;
                    }
                    let mut out = vec![u64::MAX; end - start];
                    p.unpack_range(start, end, &mut out);
                    let expect: Vec<u64> = (start..end).map(|i| p.get(i)).collect();
                    assert_eq!(out, expect, "width {width}, range {start}..{end}");
                    assert_eq!(&out[..], &vals[start..end], "width {width} roundtrip");
                }
            }
        }
    }

    /// The reciprocal index→word split must equal true division for every
    /// divisor 1–64 across representative and adversarial indexes.
    #[test]
    fn reciprocal_division_is_exact() {
        for d in 1usize..=64 {
            let m = recip_for(d) as u128;
            let mut probes: Vec<usize> = vec![0, 1, d - 1, d, d + 1, 1 << 20, (1 << 32) - 1];
            probes.extend((0..1000).map(|k| k * 7919 + d));
            // Near multiples of d at the top of the supported range.
            let top = (1usize << 51) - 1;
            probes.extend([top, top - 1, (top / d) * d, (top / d) * d - 1]);
            for i in probes {
                let q = ((i as u128 * m) >> RECIP_SHIFT) as usize;
                assert_eq!(q, i / d, "i={i}, d={d}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn unpack_range_rejects_out_of_bounds() {
        let p = BitPacked::from_slice(&[1, 2, 3]);
        let mut out = vec![0; 2];
        p.unpack_range(2, 4, &mut out);
    }

    proptest! {
        #[test]
        fn prop_unpack_range_matches_get(
            vals in proptest::collection::vec(0u64..u64::MAX, 1..300),
            cut in 0usize..300,
            width_extra in 0u8..3,
        ) {
            // Vary the width beyond the minimum so lanes include slack bits.
            let min_width = bits_for(vals.iter().copied().max().unwrap_or(0));
            let width = (min_width + width_extra).min(64);
            let p = BitPacked::from_slice_with_width(&vals, width);
            let start = cut % vals.len();
            let end = start + (cut * 7 + 1) % (vals.len() - start + 1);
            let mut out = vec![0u64; end - start];
            p.unpack_range(start, end, &mut out);
            for (off, v) in out.iter().enumerate() {
                prop_assert_eq!(*v, p.get(start + off));
                prop_assert_eq!(*v, vals[start + off]);
            }
        }

        #[test]
        fn prop_roundtrip(vals in proptest::collection::vec(0u64..u64::MAX, 0..300)) {
            let p = BitPacked::from_slice(&vals);
            prop_assert_eq!(p.to_vec(), vals);
        }

        #[test]
        fn prop_roundtrip_small_domain(vals in proptest::collection::vec(0u64..1000, 0..500)) {
            let p = BitPacked::from_slice(&vals);
            prop_assert!(p.width() <= 10);
            for (i, &v) in vals.iter().enumerate() {
                prop_assert_eq!(p.get(i), v);
            }
        }

        #[test]
        fn prop_random_access_matches_iter(vals in proptest::collection::vec(0u64..1_000_000, 1..200), idx in 0usize..199) {
            let p = BitPacked::from_slice(&vals);
            let i = idx % vals.len();
            prop_assert_eq!(p.get(i), vals[i]);
        }
    }
}
