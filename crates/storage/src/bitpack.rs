//! Fixed-width bit-packing with random access (§4.1).
//!
//! Values are packed into 64-bit words at the minimum width `n` that
//! represents the maximum value, fitting `⌊64 / n⌋` values per word so that
//! **no value spans a word boundary**. This is not the most space-efficient
//! scheme, but — as the paper stresses — it allows any position to be read
//! without decompressing its neighbours, which the cohort operators rely on
//! for user skipping.

use std::fmt;

/// Exponent of the fixed-point reciprocal used to divide indexes by
/// `per_word` without a hardware division (see [`BitPacked::get`]). With
/// `per_word ≤ 64` the magic-multiply `⌊i·m / 2^57⌋` equals `⌊i / per_word⌋`
/// exactly for every `i < 2^51` — far beyond any array this format can
/// address (row positions are `u32` on disk).
const RECIP_SHIFT: u32 = 57;

/// A bit-packed array of `u64` values.
#[derive(Clone)]
pub struct BitPacked {
    width: u8,
    /// `⌊64 / width⌋`, cached at construction so neither random access nor
    /// block decode pays a `64 / width` recompute (`1` when `width == 0`, a
    /// value the accessors never reach — they short-circuit to zero).
    per_word: u8,
    /// `⌊2^RECIP_SHIFT / per_word⌋ + 1`: the fixed-point reciprocal that
    /// turns the index→word division of random access into a multiply.
    recip: u64,
    /// Whether [`BitPacked::unpack_range`] takes the SIMD lane path.
    /// Decided once at construction (table-open time for persisted chunks):
    /// the `simd` feature must be compiled in and the width must pack at
    /// least four lanes per word (1–16; width 0 and 64 have cheaper
    /// dedicated paths, wider widths keep the scalar walk).
    #[cfg_attr(not(feature = "simd"), allow(dead_code))]
    use_simd: bool,
    len: usize,
    words: Vec<u64>,
}

/// Whether a width qualifies for the SIMD block-decode path: at least four
/// lanes must share a packed word (width ≤ 16) so the four-lane vector body
/// has work per word. Wider widths decode a handful of values per word and
/// the scalar running-shift walk with its sequential stores is already the
/// fastest layout.
#[inline]
fn simd_eligible(width: u8) -> bool {
    cfg!(feature = "simd") && (1..=16).contains(&width)
}

impl PartialEq for BitPacked {
    fn eq(&self, other: &Self) -> bool {
        // `per_word` is derived from `width`; comparing it would be
        // redundant.
        self.width == other.width && self.len == other.len && self.words == other.words
    }
}

impl Eq for BitPacked {}

impl BitPacked {
    /// Pack a slice. The width is the minimum number of bits representing
    /// the maximum value (`width == 0` iff every value is zero, in which
    /// case no words are stored at all).
    pub fn from_slice(values: &[u64]) -> Self {
        let max = values.iter().copied().max().unwrap_or(0);
        let width = bits_for(max);
        Self::from_slice_with_width(values, width)
    }

    /// Pack with an explicit width (must cover every value).
    pub fn from_slice_with_width(values: &[u64], width: u8) -> Self {
        assert!(width <= 64, "width must be <= 64");
        if width == 0 {
            debug_assert!(values.iter().all(|&v| v == 0));
            return BitPacked {
                width: 0,
                per_word: 1,
                recip: recip_for(1),
                use_simd: false,
                len: values.len(),
                words: Vec::new(),
            };
        }
        let per_word = (64 / width as usize).max(1);
        let num_words = values.len().div_ceil(per_word);
        let mut words = Vec::with_capacity(num_words);
        for chunk in values.chunks(per_word) {
            let mut word = 0u64;
            let mut shift = 0u32;
            for &v in chunk {
                debug_assert!(
                    width == 64 || v < (1u64 << width),
                    "value {v} exceeds width {width}"
                );
                word |= v << shift;
                shift += width as u32;
            }
            words.push(word);
        }
        BitPacked {
            width,
            per_word: per_word as u8,
            recip: recip_for(per_word),
            use_simd: simd_eligible(width),
            len: values.len(),
            words,
        }
    }

    /// Number of packed values.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit width per value.
    #[inline]
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Random access without decompression. Panics if out of range (all
    /// call sites index within `len`, checked by the chunk layer).
    /// **Division-free**: the index→word split uses the reciprocal cached
    /// at construction (one widening multiply + shift), not a hardware
    /// division — this path runs once per tuple in predicate evaluation and
    /// birth-row search.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        debug_assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        if self.width == 0 {
            return 0;
        }
        let width = self.width as usize;
        let per_word = self.per_word as usize;
        let word_idx = (((i as u128) * (self.recip as u128)) >> RECIP_SHIFT) as usize;
        debug_assert_eq!(word_idx, i / per_word);
        let word = self.words[word_idx];
        let shift = (i - word_idx * per_word) * width;
        if width == 64 {
            word
        } else {
            (word >> shift) & ((1u64 << width) - 1)
        }
    }

    /// Block decode: write values `start..end` into `out` (whose length must
    /// be `end - start`). Unlike repeated [`BitPacked::get`], no per-element
    /// div/mod is performed. With the `simd` feature the word-aligned body
    /// runs the four-words-at-a-time lane path (`unpack_range_simd`);
    /// otherwise (and for the unaligned head/tail) the scalar word-walking
    /// loop runs. Which path a given array takes is fixed at construction —
    /// table-open time for persisted chunks.
    pub fn unpack_range(&self, start: usize, end: usize, out: &mut [u64]) {
        assert!(start <= end && end <= self.len, "range {start}..{end} out of bounds");
        assert_eq!(out.len(), end - start, "output buffer length mismatch");
        if start == end {
            return;
        }
        if self.width == 0 {
            out.fill(0);
            return;
        }
        if self.width == 64 {
            out.copy_from_slice(&self.words[start..end]);
            return;
        }
        #[cfg(feature = "simd")]
        if self.use_simd {
            self.unpack_range_simd(start, out);
            return;
        }
        self.unpack_range_scalar(start, out);
    }

    /// The scalar block-decode loop: walk each word's lanes with a running
    /// shift, the standard word-at-a-time unpacking idiom. Callers have
    /// validated the range and excluded widths 0 and 64.
    fn unpack_range_scalar(&self, start: usize, out: &mut [u64]) {
        let width = self.width as usize;
        let per_word = self.per_word as usize;
        let mask = (1u64 << width) - 1;
        // One div/mod pair for the whole block, not one per element.
        let mut word_idx = start / per_word;
        let mut lane = start % per_word;
        let mut word = self.words[word_idx] >> (lane * width);
        for slot in out.iter_mut() {
            *slot = word & mask;
            lane += 1;
            if lane == per_word {
                lane = 0;
                word_idx += 1;
                // The last word may be past the end when the block finishes
                // exactly on a word boundary.
                word = self.words.get(word_idx).copied().unwrap_or(0);
            } else {
                word >>= width;
            }
        }
    }

    /// SIMD block decode (`simd` feature, widths 1–16): after a scalar head
    /// up to the next word boundary, each packed word is **broadcast** into
    /// a [`U64x4`] and its lanes extracted four at a time with a vector of
    /// per-lane shifts ([`LANE_SHIFTS`], lowered to `vpsrlvq`-style
    /// variable shifts) and one shared mask — then stored **sequentially**,
    /// so the store side stays a contiguous streaming write (a transposed
    /// scatter layout benchmarked slower than the scalar walk). Lanes past
    /// the last multiple of four and partial trailing words fall back to
    /// the scalar walk.
    #[cfg(feature = "simd")]
    fn unpack_range_simd(&self, start: usize, out: &mut [u64]) {
        let width = self.width as usize;
        let per_word = self.per_word as usize;
        let mask = MASKS[width];
        let shifts = &LANE_SHIFTS[width][..per_word];

        // Scalar head: decode up to the next packed-word boundary.
        let head = (per_word - start % per_word) % per_word;
        let head = head.min(out.len());
        if head > 0 {
            self.unpack_range_scalar(start, &mut out[..head]);
        }
        let mut word_idx = (start + head) / per_word;
        let mut o = head;

        // Body: one packed word -> per_word consecutive outputs, four lanes
        // per vector op. `lanes4` is per_word rounded down to a multiple of
        // four (eligibility guarantees per_word ≥ 4).
        let lanes4 = per_word & !3;
        while out.len() - o >= per_word {
            let w = self.words[word_idx];
            let v = U64x4::splat(w);
            let mut k = 0;
            while k < lanes4 {
                v.shr_lanes([
                    shifts[k] as u32,
                    shifts[k + 1] as u32,
                    shifts[k + 2] as u32,
                    shifts[k + 3] as u32,
                ])
                .and(mask)
                .store(&mut out[o + k..o + k + 4]);
                k += 4;
            }
            while k < per_word {
                out[o + k] = (w >> shifts[k]) & mask;
                k += 1;
            }
            word_idx += 1;
            o += per_word;
        }

        // Scalar tail: the final partial word.
        if o < out.len() {
            self.unpack_range_scalar(word_idx * per_word, &mut out[o..]);
        }
    }

    /// First position in `start..end` holding `value`, scanning packed words
    /// with a running shift instead of per-element [`BitPacked::get`]
    /// probes: one word load serves every lane it packs, and the index→word
    /// division happens once per call, not once per element. This is the
    /// birth-row search primitive (`find_birth_row` in `cohana-core`
    /// resolves the dictionary code once and scans raw codes through here).
    pub fn find_first(&self, start: usize, end: usize, value: u64) -> Option<usize> {
        assert!(start <= end && end <= self.len, "range {start}..{end} out of bounds");
        if start == end {
            return None;
        }
        if self.width == 0 {
            return (value == 0).then_some(start);
        }
        let width = self.width as usize;
        if width == 64 {
            return self.words[start..end].iter().position(|&w| w == value).map(|p| p + start);
        }
        let mask = (1u64 << width) - 1;
        if value > mask {
            return None; // wider than any packed value
        }
        let per_word = self.per_word as usize;
        let mut word_idx = start / per_word;
        let mut lane = start % per_word;
        let mut word = self.words[word_idx] >> (lane * width);
        for i in start..end {
            if word & mask == value {
                return Some(i);
            }
            lane += 1;
            if lane == per_word {
                lane = 0;
                word_idx += 1;
                word = self.words.get(word_idx).copied().unwrap_or(0);
            } else {
                word >>= width;
            }
        }
        None
    }

    /// Iterate over all values in order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Decode to a vector.
    pub fn to_vec(&self) -> Vec<u64> {
        self.iter().collect()
    }

    /// Bytes consumed by the packed words (excluding the struct header).
    pub fn packed_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Raw words (for persistence).
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild from raw parts (for persistence). Validates word count.
    pub(crate) fn from_raw(width: u8, len: usize, words: Vec<u64>) -> crate::Result<Self> {
        let expected = if width == 0 {
            0
        } else {
            let per_word = (64 / width as usize).max(1);
            len.div_ceil(per_word)
        };
        if words.len() != expected {
            return Err(crate::StorageError::Corrupt(format!(
                "bitpack expects {expected} words, found {}",
                words.len()
            )));
        }
        let per_word = if width == 0 { 1 } else { (64 / width as usize).max(1) as u8 };
        Ok(BitPacked {
            width,
            per_word,
            recip: recip_for(per_word as usize),
            use_simd: simd_eligible(width),
            len,
            words,
        })
    }
}

/// Four `u64` lanes, the manual-SIMD working registers of
/// [`BitPacked::unpack_range`]'s block decode (and of the delta codec's
/// offset-bit extraction in `codec.rs`). Each op touches all four lanes in
/// straight-line code with no cross-lane dependency, which is the shape
/// LLVM auto-vectorizes to `vpsrlq`/`vpandq` on AVX2 (and the NEON
/// equivalents) — explicit lanes without a platform intrinsic dependency.
#[cfg(feature = "simd")]
#[derive(Clone, Copy)]
pub(crate) struct U64x4([u64; 4]);

#[cfg(feature = "simd")]
impl U64x4 {
    /// Broadcast one packed word into all four lanes.
    #[inline(always)]
    pub(crate) fn splat(w: u64) -> Self {
        U64x4([w, w, w, w])
    }

    /// Per-lane logical right shift (the variable-shift form hardware
    /// exposes as `vpsrlvq` / NEON `ushl` with negated shifts).
    #[inline(always)]
    pub(crate) fn shr_lanes(self, sh: [u32; 4]) -> Self {
        let [a, b, c, d] = self.0;
        U64x4([a >> sh[0], b >> sh[1], c >> sh[2], d >> sh[3]])
    }

    /// Lane-wise mask.
    #[inline(always)]
    pub(crate) fn and(self, mask: u64) -> Self {
        let [a, b, c, d] = self.0;
        U64x4([a & mask, b & mask, c & mask, d & mask])
    }

    /// Per-lane mask (each lane keeps a different low-bit window — the
    /// delta codec's offset widths vary lane to lane).
    #[inline(always)]
    pub(crate) fn and_lanes(self, masks: [u64; 4]) -> Self {
        let [a, b, c, d] = self.0;
        U64x4([a & masks[0], b & masks[1], c & masks[2], d & masks[3]])
    }

    /// Store the four lanes contiguously.
    #[inline(always)]
    fn store(self, out: &mut [u64]) {
        out[..4].copy_from_slice(&self.0);
    }

    /// The four lanes as a plain array.
    #[inline(always)]
    pub(crate) fn to_array(self) -> [u64; 4] {
        self.0
    }
}

/// `MASKS[w]` = the `w`-bit value mask, precomputed for widths 0–63 (width
/// 64 never reaches the lane path).
#[cfg(feature = "simd")]
const MASKS: [u64; 64] = {
    let mut m = [0u64; 64];
    let mut w = 1;
    while w < 64 {
        m[w] = (1u64 << w) - 1;
        w += 1;
    }
    m
};

/// `LANE_SHIFTS[w][l]` = the right shift extracting lane `l` of a word
/// packed at width `w` (`l · w`), precomputed for every width so the lane
/// loop reads a table instead of multiplying. Row length 64 covers the
/// widest case (`per_word = 64` at width 1); only the first `⌊64/w⌋`
/// entries of a row are meaningful.
#[cfg(feature = "simd")]
static LANE_SHIFTS: [[u8; 64]; 64] = {
    let mut t = [[0u8; 64]; 64];
    let mut w = 1;
    while w < 64 {
        let per_word = 64 / w;
        let mut l = 0;
        while l < per_word {
            t[w][l] = (l * w) as u8;
            l += 1;
        }
        w += 1;
    }
    t
};

impl fmt::Debug for BitPacked {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitPacked(width={}, len={})", self.width, self.len)
    }
}

/// Minimum number of bits needed to represent `v` (0 for 0).
#[inline]
pub fn bits_for(v: u64) -> u8 {
    (64 - v.leading_zeros()) as u8
}

/// The fixed-point reciprocal of `per_word`: `⌊2^RECIP_SHIFT/d⌋ + 1`.
///
/// Exactness: write `2^p = d·Q + R` (`0 ≤ R < d`, `m = Q + 1`) and
/// `i = d·a + b` (`b < d`); then `m·i = a·2^p + a·(d−R) + b·(Q+1)`, so
/// `⌊m·i/2^p⌋ = a = ⌊i/d⌋` exactly when `a·(d−R) + b·(Q+1) < 2^p`, which
/// with `d ≤ 64` and `p = 57` holds for every `i < 2^51`.
#[inline]
fn recip_for(per_word: usize) -> u64 {
    debug_assert!((1..=64).contains(&per_word));
    ((1u64 << RECIP_SHIFT) / per_word as u64) + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bits_for_boundaries() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(u64::MAX), 64);
    }

    #[test]
    fn roundtrip_simple() {
        let vals = [3u64, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5];
        let p = BitPacked::from_slice(&vals);
        assert_eq!(p.width(), 4);
        assert_eq!(p.to_vec(), vals);
    }

    #[test]
    fn all_zero_uses_no_words() {
        let p = BitPacked::from_slice(&[0, 0, 0, 0]);
        assert_eq!(p.width(), 0);
        assert_eq!(p.packed_bytes(), 0);
        assert_eq!(p.to_vec(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn width_64_values() {
        let vals = [u64::MAX, 0, 42];
        let p = BitPacked::from_slice(&vals);
        assert_eq!(p.width(), 64);
        assert_eq!(p.to_vec(), vals);
    }

    #[test]
    fn values_never_span_words() {
        // width 7 -> 9 values per word; the 10th value starts a new word.
        let vals: Vec<u64> = (0..20).map(|i| (i * 7) % 128).collect();
        let p = BitPacked::from_slice_with_width(&vals, 7);
        assert_eq!(p.words().len(), 20usize.div_ceil(9));
        assert_eq!(p.to_vec(), vals);
    }

    #[test]
    fn empty_input() {
        let p = BitPacked::from_slice(&[]);
        assert!(p.is_empty());
        assert_eq!(p.to_vec(), Vec::<u64>::new());
    }

    #[test]
    fn from_raw_validates() {
        assert!(BitPacked::from_raw(8, 10, vec![0; 2]).is_ok());
        assert!(BitPacked::from_raw(8, 10, vec![0; 3]).is_err());
        assert!(BitPacked::from_raw(0, 10, vec![]).is_ok());
        assert!(BitPacked::from_raw(0, 10, vec![0]).is_err());
    }

    /// `unpack_range` ≡ repeated `get` for every width 0–64, with ranges
    /// chosen to hit word-boundary starts, mid-word starts, and the tail.
    #[test]
    fn unpack_range_matches_get_all_widths() {
        for width in 0u8..=64 {
            let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
            let vals: Vec<u64> =
                (0..137u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask).collect();
            let p = BitPacked::from_slice_with_width(&vals, width);
            let per_word = (64 / width.max(1) as usize).max(1);
            // Word-aligned, mid-word, empty, and full ranges.
            let starts = [0, 1, per_word, per_word + 1, 2 * per_word, vals.len() - 1, vals.len()];
            for &start in &starts {
                for &end in &[start, vals.len().min(start + per_word), vals.len()] {
                    if end < start {
                        continue;
                    }
                    let mut out = vec![u64::MAX; end - start];
                    p.unpack_range(start, end, &mut out);
                    let expect: Vec<u64> = (start..end).map(|i| p.get(i)).collect();
                    assert_eq!(out, expect, "width {width}, range {start}..{end}");
                    assert_eq!(&out[..], &vals[start..end], "width {width} roundtrip");
                }
            }
        }
    }

    /// The reciprocal index→word split must equal true division for every
    /// divisor 1–64 across representative and adversarial indexes.
    #[test]
    fn reciprocal_division_is_exact() {
        for d in 1usize..=64 {
            let m = recip_for(d) as u128;
            let mut probes: Vec<usize> = vec![0, 1, d - 1, d, d + 1, 1 << 20, (1 << 32) - 1];
            probes.extend((0..1000).map(|k| k * 7919 + d));
            // Near multiples of d at the top of the supported range.
            let top = (1usize << 51) - 1;
            probes.extend([top, top - 1, (top / d) * d, (top / d) * d - 1]);
            for i in probes {
                let q = ((i as u128 * m) >> RECIP_SHIFT) as usize;
                assert_eq!(q, i / d, "i={i}, d={d}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn unpack_range_rejects_out_of_bounds() {
        let p = BitPacked::from_slice(&[1, 2, 3]);
        let mut out = vec![0; 2];
        p.unpack_range(2, 4, &mut out);
    }

    /// `unpack_range` (SIMD path when the feature is on) ≡ the scalar loop
    /// for every width 0–64, exercising word-boundary starts, mid-word
    /// starts, and short tails that never reach the 4-word body.
    #[test]
    fn unpack_range_matches_scalar_all_widths() {
        for width in 0u8..=64 {
            let mask = if width == 64 { u64::MAX } else { (1u64 << width).wrapping_sub(1) };
            let vals: Vec<u64> =
                (0..301u64).map(|i| i.wrapping_mul(0x5851_F42D_4C95_7F2D) & mask).collect();
            let p = BitPacked::from_slice_with_width(&vals, width);
            let per_word = (64 / width.max(1) as usize).max(1);
            let starts = [0, 1, per_word - 1, per_word, per_word + 1, 4 * per_word, vals.len() - 1];
            for &start in &starts {
                for &end in
                    &[start, start + 1, (start + 4 * per_word + 3).min(vals.len()), vals.len()]
                {
                    if end < start || end > vals.len() {
                        continue;
                    }
                    let mut got = vec![u64::MAX; end - start];
                    p.unpack_range(start, end, &mut got);
                    if width != 0 && width != 64 {
                        let mut scalar = vec![u64::MAX; end - start];
                        p.unpack_range_scalar(start, &mut scalar);
                        assert_eq!(got, scalar, "width {width}, range {start}..{end}");
                    }
                    assert_eq!(&got[..], &vals[start..end], "width {width}, range {start}..{end}");
                }
            }
        }
    }

    #[test]
    fn find_first_matches_linear_probe() {
        for width in [0u8, 1, 3, 4, 13, 22, 31, 64] {
            let mask = if width == 64 { u64::MAX } else { (1u64 << width).wrapping_sub(1) };
            let vals: Vec<u64> = (0..97u64).map(|i| (i * 37 + 11) & mask & 0xF).collect();
            let p = BitPacked::from_slice_with_width(&vals, width);
            for start in [0usize, 1, 17, 96, 97] {
                for value in 0u64..16 {
                    let expect = (start..vals.len()).find(|&i| vals[i] == value);
                    assert_eq!(
                        p.find_first(start, vals.len(), value),
                        expect,
                        "width {width}, start {start}, value {value}"
                    );
                }
            }
            // A value wider than the packing can never match.
            if width < 60 {
                assert_eq!(p.find_first(0, vals.len(), mask.wrapping_add(10)), None);
            }
        }
    }

    #[test]
    fn find_first_respects_range_end() {
        let p = BitPacked::from_slice(&[5, 1, 5, 2]);
        assert_eq!(p.find_first(0, 4, 5), Some(0));
        assert_eq!(p.find_first(1, 4, 5), Some(2));
        assert_eq!(p.find_first(1, 2, 5), None);
        assert_eq!(p.find_first(3, 3, 2), None);
    }

    proptest! {
        #[test]
        fn prop_unpack_range_matches_get(
            vals in proptest::collection::vec(0u64..u64::MAX, 1..300),
            cut in 0usize..300,
            width_extra in 0u8..3,
        ) {
            // Vary the width beyond the minimum so lanes include slack bits.
            let min_width = bits_for(vals.iter().copied().max().unwrap_or(0));
            let width = (min_width + width_extra).min(64);
            let p = BitPacked::from_slice_with_width(&vals, width);
            let start = cut % vals.len();
            let end = start + (cut * 7 + 1) % (vals.len() - start + 1);
            let mut out = vec![0u64; end - start];
            p.unpack_range(start, end, &mut out);
            for (off, v) in out.iter().enumerate() {
                prop_assert_eq!(*v, p.get(start + off));
                prop_assert_eq!(*v, vals[start + off]);
            }
        }

        /// The dispatched `unpack_range` (SIMD when compiled in) must agree
        /// with the scalar loop for arbitrary widths and ranges — including
        /// the word-boundary starts `word_sel` forces below.
        #[test]
        fn prop_unpack_range_matches_scalar(
            vals in proptest::collection::vec(0u64..u64::MAX, 1..400),
            width in 1u8..64,
            cut in 0usize..400,
            word_sel in 0usize..8,
            aligned in proptest::prop::bool::ANY,
        ) {
            let mask = (1u64 << width) - 1;
            let masked: Vec<u64> = vals.iter().map(|v| v & mask).collect();
            let p = BitPacked::from_slice_with_width(&masked, width);
            let per_word = (64 / width as usize).max(1);
            let start = if aligned {
                // Force a word-boundary start.
                (word_sel * per_word).min(masked.len())
            } else {
                cut % masked.len()
            };
            let end = start + (cut * 13 + 1) % (masked.len() - start + 1);
            let mut got = vec![u64::MAX; end - start];
            p.unpack_range(start, end, &mut got);
            let mut scalar = vec![u64::MAX; end - start];
            if start < end {
                p.unpack_range_scalar(start, &mut scalar);
            }
            prop_assert_eq!(&got, &scalar);
            prop_assert_eq!(&got[..], &masked[start..end]);
        }

        #[test]
        fn prop_find_first_matches_scan(
            vals in proptest::collection::vec(0u64..32, 1..300),
            start in 0usize..300,
            value in 0u64..40,
        ) {
            let p = BitPacked::from_slice(&vals);
            let start = start % (vals.len() + 1);
            let expect = (start..vals.len()).find(|&i| vals[i] == value);
            prop_assert_eq!(p.find_first(start, vals.len(), value), expect);
        }

        #[test]
        fn prop_roundtrip(vals in proptest::collection::vec(0u64..u64::MAX, 0..300)) {
            let p = BitPacked::from_slice(&vals);
            prop_assert_eq!(p.to_vec(), vals);
        }

        #[test]
        fn prop_roundtrip_small_domain(vals in proptest::collection::vec(0u64..1000, 0..500)) {
            let p = BitPacked::from_slice(&vals);
            prop_assert!(p.width() <= 10);
            for (i, &v) in vals.iter().enumerate() {
                prop_assert_eq!(p.get(i), v);
            }
        }

        #[test]
        fn prop_random_access_matches_iter(vals in proptest::collection::vec(0u64..1_000_000, 1..200), idx in 0usize..199) {
            let p = BitPacked::from_slice(&vals);
            let i = idx % vals.len();
            prop_assert_eq!(p.get(i), vals[i]);
        }
    }
}
