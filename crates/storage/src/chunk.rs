//! Chunks: the horizontal partitions of a compressed activity table.
//!
//! Chunking respects user boundaries — the activity tuples of each user are
//! contained in exactly one chunk (§4.1). This property is what makes the
//! per-chunk `UserCount` aggregation of §4.5 correct and lets chunks be
//! processed independently (and in parallel) with a trivial merge.
//!
//! Segments are reference-counted so a chunk can be assembled from columns
//! that also live elsewhere (e.g. the byte-budgeted segment cache of
//! [`FileSource`](crate::source::FileSource)) without copying the packed
//! words. A chunk may be **partial**: the v3 on-disk format addresses every
//! column independently, and a projection-aware fetch materializes only the
//! columns a query names — the positions of unfetched columns hold `None`,
//! exactly like the user column (whose data lives in `user_rle`).

use crate::column::ChunkColumn;
use crate::rle::UserRle;
use crate::StorageError;
use std::sync::Arc;

/// One chunk: the RLE user column plus one compressed segment per other
/// attribute, indexed by schema attribute position (`None` at the user
/// attribute's position, whose data lives in `user_rle`, and at the
/// positions of columns a partial fetch did not materialize).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    num_rows: usize,
    user_rle: Arc<UserRle>,
    columns: Vec<Option<Arc<ChunkColumn>>>,
}

impl Chunk {
    /// Assemble a chunk from owned segments, validating that every segment
    /// covers the same number of rows as the user RLE.
    pub fn new(user_rle: UserRle, columns: Vec<Option<ChunkColumn>>) -> Result<Self, StorageError> {
        Chunk::from_shared(
            Arc::new(user_rle),
            columns.into_iter().map(|c| c.map(Arc::new)).collect(),
        )
    }

    /// Assemble a chunk from shared segments (the path used when columns are
    /// served out of a segment cache), with the same validation as
    /// [`Chunk::new`].
    pub fn from_shared(
        user_rle: Arc<UserRle>,
        columns: Vec<Option<Arc<ChunkColumn>>>,
    ) -> Result<Self, StorageError> {
        let num_rows = user_rle.num_rows();
        for (i, col) in columns.iter().enumerate() {
            if let Some(c) = col {
                if c.len() != num_rows {
                    return Err(StorageError::Invalid(format!(
                        "column {i} has {} rows, chunk has {num_rows}",
                        c.len()
                    )));
                }
            }
        }
        Ok(Chunk { num_rows, user_rle, columns })
    }

    /// Number of rows in this chunk.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of distinct users in this chunk.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.user_rle.num_users()
    }

    /// The RLE user column.
    #[inline]
    pub fn user_rle(&self) -> &UserRle {
        &self.user_rle
    }

    /// The RLE user column as a shared handle.
    #[inline]
    pub fn shared_rle(&self) -> &Arc<UserRle> {
        &self.user_rle
    }

    /// The compressed segment of an attribute (`None` for the user column
    /// and for columns not materialized by a partial fetch).
    #[inline]
    pub fn column(&self, attr_idx: usize) -> Option<&ChunkColumn> {
        self.columns.get(attr_idx).and_then(|c| c.as_deref())
    }

    /// The segment of an attribute, panicking if it is the user column or an
    /// unmaterialized column. The executor resolves attribute indexes at
    /// plan time and projects every attribute it touches, so a miss here is
    /// a planner bug.
    #[inline]
    pub fn column_required(&self, attr_idx: usize) -> &ChunkColumn {
        self.columns[attr_idx].as_deref().expect("attribute has a materialized column segment")
    }

    /// All segments.
    pub fn columns(&self) -> &[Option<Arc<ChunkColumn>>] {
        &self.columns
    }

    /// Resolve every materialized segment into flat typed cursors — the
    /// once-per-chunk column resolution the vectorized executor reads
    /// through (see [`crate::cursor::ChunkCursors`]).
    pub fn cursors(&self) -> crate::cursor::ChunkCursors<'_> {
        crate::cursor::ChunkCursors::new(self)
    }

    /// Split the chunk's user runs into morsels of roughly `target_rows`
    /// rows each, returned as `(run_lo, run_hi)` half-open run-index ranges.
    /// A morsel closes at the first user boundary at or past the target —
    /// the same rule chunk building uses — so a user's tuples are never
    /// split across morsels and per-user operators (birth search, age
    /// aggregation) stay morsel-local. A "whale" user longer than the target
    /// becomes a single-run morsel.
    pub fn morsel_run_ranges(&self, target_rows: usize) -> Vec<(usize, usize)> {
        let target = target_rows.max(1);
        let num_users = self.user_rle.num_users();
        let mut morsels = Vec::new();
        let mut lo = 0usize;
        let mut rows = 0usize;
        for i in 0..num_users {
            rows += self.user_rle.run(i).count as usize;
            if rows >= target {
                morsels.push((lo, i + 1));
                lo = i + 1;
                rows = 0;
            }
        }
        if lo < num_users {
            morsels.push((lo, num_users));
        }
        morsels
    }

    /// Compressed payload bytes of the chunk (materialized segments only).
    pub fn packed_bytes(&self) -> usize {
        self.user_rle.packed_bytes()
            + self.columns.iter().flatten().map(|c| c.packed_bytes()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rle3() -> UserRle {
        UserRle::from_rows(&[1, 1, 2])
    }

    #[test]
    fn validates_row_counts() {
        let ok = Chunk::new(rle3(), vec![None, Some(ChunkColumn::from_ints(&[1, 2, 3]))]);
        assert!(ok.is_ok());
        let bad = Chunk::new(rle3(), vec![None, Some(ChunkColumn::from_ints(&[1, 2]))]);
        assert!(matches!(bad.unwrap_err(), StorageError::Invalid(_)));
    }

    #[test]
    fn accessors() {
        let c = Chunk::new(
            rle3(),
            vec![
                None,
                Some(ChunkColumn::from_ints(&[10, 20, 30])),
                Some(ChunkColumn::from_gids(&[0, 1, 0])),
            ],
        )
        .unwrap();
        assert_eq!(c.num_rows(), 3);
        assert_eq!(c.num_users(), 2);
        assert!(c.column(0).is_none());
        assert_eq!(c.column(1).unwrap().int_value(2), 30);
        assert_eq!(c.column_required(2).gid_at(1), 1);
        assert!(c.packed_bytes() > 0);
    }

    #[test]
    fn shared_segments_compare_equal_to_owned() {
        let rle = Arc::new(rle3());
        let col = Arc::new(ChunkColumn::from_ints(&[10, 20, 30]));
        let shared = Chunk::from_shared(rle.clone(), vec![None, Some(col.clone())]).unwrap();
        let owned =
            Chunk::new(rle3(), vec![None, Some(ChunkColumn::from_ints(&[10, 20, 30]))]).unwrap();
        assert_eq!(shared, owned);
        // A second assembly from the same Arcs shares, not copies.
        let again = Chunk::from_shared(rle, vec![None, Some(col)]).unwrap();
        assert_eq!(shared, again);
    }

    #[test]
    fn morsel_ranges_cover_runs_without_splitting_users() {
        // Users: 3 rows, 1 row, 4 rows, 2 rows, 2 rows.
        let rle = UserRle::from_rows(&[7, 7, 7, 8, 9, 9, 9, 9, 10, 10, 11, 11]);
        let c = Chunk::new(rle, vec![None]).unwrap();
        // Target 4: [7,8] = 4 rows closes; [9] = 4 rows closes; [10,11].
        assert_eq!(c.morsel_run_ranges(4), vec![(0, 2), (2, 3), (3, 5)]);
        // Target 1: every run its own morsel.
        assert_eq!(c.morsel_run_ranges(1), vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        // Target larger than the chunk: one morsel.
        assert_eq!(c.morsel_run_ranges(100), vec![(0, 5)]);
        // A whale user (run 2, 4 rows) overshoots its morsel's target of 2
        // but is never split across morsels.
        assert_eq!(c.morsel_run_ranges(2), vec![(0, 1), (1, 3), (3, 4), (4, 5)]);
        // Ranges tile 0..num_users.
        let ranges = c.morsel_run_ranges(3);
        assert_eq!(ranges.first().unwrap().0, 0);
        assert_eq!(ranges.last().unwrap().1, 5);
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
    }

    #[test]
    fn morsel_ranges_empty_chunk() {
        let c = Chunk::new(UserRle::from_rows(&[]), vec![None]).unwrap();
        assert!(c.morsel_run_ranges(16).is_empty());
    }

    #[test]
    fn partial_chunk_skips_unmaterialized_columns() {
        let partial = Chunk::from_shared(
            Arc::new(rle3()),
            vec![None, None, Some(Arc::new(ChunkColumn::from_gids(&[0, 1, 0])))],
        )
        .unwrap();
        assert!(partial.column(1).is_none());
        assert_eq!(partial.column_required(2).gid_at(0), 0);
        // Row-count validation still applies to materialized columns.
        let bad = Chunk::from_shared(
            Arc::new(rle3()),
            vec![None, None, Some(Arc::new(ChunkColumn::from_gids(&[0, 1])))],
        );
        assert!(bad.is_err());
    }
}
