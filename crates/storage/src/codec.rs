//! Per-blob compression codecs for the v4 on-disk format.
//!
//! A v3 blob stores every packed array raw: `width u8 | len u64 | words…`.
//! v4 keeps that byte layout as the [`Codec::Raw`] case and adds two
//! entropy-coded alternatives for the packed-array section of a column
//! blob (the blob header — tag byte, dictionary gids, int min/max — is
//! never transformed, so a `Raw` v4 blob is byte-identical to its v3
//! counterpart):
//!
//! * [`Codec::Delta`] — delta-then-pack for the per-user-sorted time
//!   column: consecutive differences are zigzag-mapped, their *bit class*
//!   (minimal bit length) is range-ANS coded against the measured class
//!   distribution, and each value's low `class - 1` bits follow in an
//!   LSB-first bit stream (the top bit of a `k`-bit value is implied).
//!   This is the classic Elias-gamma-style split — cheap to decode, and
//!   the class stream soaks up the skew that fixed-width packing wastes.
//! * [`Codec::Ans`] — a table-driven range-ANS stage applied directly to
//!   the packed values, applicable when the alphabet fits the 12-bit
//!   table (`max value < 4096`); it collapses skewed low-cardinality
//!   columns (action codes, demographics) toward their empirical entropy.
//!
//! Selection happens at write time in `encode_array`: every applicable
//! candidate is actually encoded and the smallest wins, with the
//! deterministic tie-break `Raw < Delta < Ans` so identical inputs always
//! produce identical files (the append/compact byte-parity invariant
//! depends on this).
//!
//! The rANS core is the standard 32-bit/byte-renormalizing construction:
//! state in `[L, L << 8)` with `L = 1 << 23`, frequencies normalized to
//! sum to `1 << SCALE_BITS = 4096`, symbols encoded in reverse so the
//! decoder streams forward. The final encoder state leads the stream (4
//! bytes LE); decoding checks the state returns to `L` with every byte
//! consumed, which makes truncation and bit-flips detectable without a
//! checksum.

use crate::bitpack::{bits_for, BitPacked};
use crate::error::StorageError;
use crate::Result;

/// How the packed-array section of one v4 blob is encoded on disk.
///
/// The tag byte is recorded per blob in the v4 footer (see
/// `docs/FORMAT.md`); `Raw` blobs are byte-identical to their v3 form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Codec {
    /// v3 layout: `width u8 | len u64 | packed words…`.
    Raw = 0,
    /// Zigzag deltas, rANS-coded bit classes + explicit low bits.
    Delta = 1,
    /// rANS over the values themselves (alphabet < 4096).
    Ans = 2,
}

impl Codec {
    /// The on-disk tag byte.
    pub fn tag(self) -> u8 {
        self as u8
    }

    /// Parse a footer tag byte.
    pub fn from_tag(tag: u8) -> Option<Codec> {
        match tag {
            0 => Some(Codec::Raw),
            1 => Some(Codec::Delta),
            2 => Some(Codec::Ans),
            _ => None,
        }
    }

    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Codec::Raw => "raw",
            Codec::Delta => "delta",
            Codec::Ans => "ans",
        }
    }
}

// ------------------------------------------------------------------ rANS

/// Frequencies are normalized to sum to `1 << SCALE_BITS`.
const SCALE_BITS: u32 = 12;
const SCALE: u32 = 1 << SCALE_BITS;
/// Lower bound of the normalized state interval.
const RANS_L: u32 = 1 << 23;

/// A normalized symbol table: sorted distinct symbols with frequencies
/// summing to exactly [`SCALE`].
struct FreqTable {
    syms: Vec<u16>,
    freqs: Vec<u16>,
    /// Exclusive prefix sums of `freqs`.
    cum: Vec<u32>,
}

impl FreqTable {
    /// Build from per-symbol counts (parallel to `syms`, all non-zero).
    fn build(syms: Vec<u16>, counts: &[u64]) -> FreqTable {
        debug_assert_eq!(syms.len(), counts.len());
        let freqs = normalize_freqs(counts);
        let cum = prefix_sums(&freqs);
        FreqTable { syms, freqs, cum }
    }

    /// Serialized size: `n_syms u16 | (sym u16, freq u16) * n`.
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.syms.len() as u16).to_le_bytes());
        for (&s, &f) in self.syms.iter().zip(&self.freqs) {
            out.extend_from_slice(&s.to_le_bytes());
            out.extend_from_slice(&f.to_le_bytes());
        }
    }

    /// Parse and validate a table whose symbols must be `<= max_sym`.
    fn read(buf: &mut &[u8], max_sym: u16) -> Result<FreqTable> {
        let n = take_u16(buf)? as usize;
        if n == 0 || n > SCALE as usize {
            return Err(StorageError::Corrupt(format!("bad codec table size {n}")));
        }
        let mut syms = Vec::with_capacity(n);
        let mut freqs = Vec::with_capacity(n);
        let mut total: u32 = 0;
        for i in 0..n {
            let s = take_u16(buf)?;
            let f = take_u16(buf)?;
            if s > max_sym {
                return Err(StorageError::Corrupt(format!(
                    "codec table symbol {s} exceeds maximum {max_sym}"
                )));
            }
            if i > 0 && s <= syms[i - 1] {
                return Err(StorageError::Corrupt("codec table symbols not increasing".into()));
            }
            if f == 0 {
                return Err(StorageError::Corrupt("codec table frequency is zero".into()));
            }
            total += f as u32;
            syms.push(s);
            freqs.push(f);
        }
        if total != SCALE {
            return Err(StorageError::Corrupt(format!(
                "codec table frequencies sum to {total}, want {SCALE}"
            )));
        }
        let cum = prefix_sums(&freqs);
        Ok(FreqTable { syms, freqs, cum })
    }

    /// Slot → symbol-index lookup covering all [`SCALE`] slots.
    fn slot_lut(&self) -> Vec<SlotEntry> {
        let mut lut = vec![SlotEntry::default(); SCALE as usize];
        for ((&sym, &freq), &cum) in self.syms.iter().zip(&self.freqs).zip(&self.cum) {
            for slot in cum..cum + freq as u32 {
                lut[slot as usize] = SlotEntry { sym, freq, cum };
            }
        }
        lut
    }
}

/// One slot of the flattened decode table: everything the hot loop needs
/// in a single 8-byte load.
#[derive(Clone, Copy, Default)]
struct SlotEntry {
    sym: u16,
    freq: u16,
    cum: u32,
}

fn prefix_sums(freqs: &[u16]) -> Vec<u32> {
    let mut cum = Vec::with_capacity(freqs.len());
    let mut acc = 0u32;
    for &f in freqs {
        cum.push(acc);
        acc += f as u32;
    }
    cum
}

/// Scale raw counts to frequencies summing to exactly [`SCALE`], every
/// symbol keeping at least 1. Deterministic (pure integer arithmetic with
/// index tie-breaks) so that identical inputs always serialize
/// identically — append/compact byte-parity depends on it.
fn normalize_freqs(counts: &[u64]) -> Vec<u16> {
    let n = counts.len();
    debug_assert!(n >= 1 && n <= SCALE as usize);
    let total: u64 = counts.iter().sum();
    debug_assert!(total > 0);
    let mut freqs: Vec<u32> = counts
        .iter()
        .map(|&c| ((c as u128 * SCALE as u128 / total as u128) as u32).max(1))
        .collect();
    let mut sum: i64 = freqs.iter().map(|&f| f as i64).sum();
    if sum < SCALE as i64 {
        // Hand the rounding deficit to the heaviest symbols first.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(counts[i]), i));
        let mut k = 0usize;
        while sum < SCALE as i64 {
            freqs[order[k % n]] += 1;
            sum += 1;
            k += 1;
        }
    }
    while sum > SCALE as i64 {
        // The minimum-1 clamp oversubscribed; shave the largest frequency
        // (lowest index on ties) without dropping anyone to zero.
        let i = (0..n)
            .filter(|&i| freqs[i] > 1)
            .max_by_key(|&i| (freqs[i], std::cmp::Reverse(i)))
            .expect("sum > SCALE implies some freq > 1");
        let cut = ((sum - SCALE as i64) as u32).min(freqs[i] - 1);
        freqs[i] -= cut;
        sum -= cut as i64;
    }
    freqs.iter().map(|&f| f as u16).collect()
}

/// rANS-encode `indices` (positions into `table`). Returns the stream:
/// final state (4 bytes LE) followed by the renormalization bytes in
/// decode order.
fn rans_encode(indices: &[usize], table: &FreqTable) -> Vec<u8> {
    let mut renorm = Vec::new();
    let mut x: u32 = RANS_L;
    for &s in indices.iter().rev() {
        let f = table.freqs[s] as u32;
        // Renormalize so the state transition below stays in range.
        let x_max = f << (23 - SCALE_BITS + 8);
        while x >= x_max {
            renorm.push(x as u8);
            x >>= 8;
        }
        x = ((x / f) << SCALE_BITS) + (x % f) + table.cum[s];
    }
    let mut stream = Vec::with_capacity(4 + renorm.len());
    stream.extend_from_slice(&x.to_le_bytes());
    stream.extend(renorm.iter().rev());
    stream
}

/// Decode exactly `n` symbols from `stream`, which must be fully consumed
/// with the state returning to its initial value (both checked, so
/// truncated or tampered streams are rejected).
fn rans_decode(stream: &[u8], n: usize, table: &FreqTable) -> Result<Vec<u16>> {
    if stream.len() < 4 {
        return Err(StorageError::Corrupt("rANS stream shorter than its state".into()));
    }
    let lut = table.slot_lut();
    let mut x = u32::from_le_bytes([stream[0], stream[1], stream[2], stream[3]]);
    let mut pos = 4usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let slot = x & (SCALE - 1);
        let e = lut[slot as usize];
        x = (e.freq as u32) * (x >> SCALE_BITS) + slot - e.cum;
        while x < RANS_L {
            let Some(&b) = stream.get(pos) else {
                return Err(StorageError::Corrupt("rANS stream truncated".into()));
            };
            x = (x << 8) | b as u32;
            pos += 1;
        }
        out.push(e.sym);
    }
    if x != RANS_L || pos != stream.len() {
        return Err(StorageError::Corrupt("rANS stream does not round-trip".into()));
    }
    Ok(out)
}

// ------------------------------------------------------- bit stream

/// LSB-first bit writer for the delta offset stream.
#[derive(Default)]
struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    fn put(&mut self, bits: u64, n: u32) {
        debug_assert!(n <= 64 && (n == 64 || bits < (1u64 << n)));
        let lo = n.min(32);
        self.put_small(bits & low_mask(lo), lo);
        if n > 32 {
            self.put_small(bits >> 32, n - 32);
        }
    }

    fn put_small(&mut self, bits: u64, n: u32) {
        self.acc |= bits << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.out.push(self.acc as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push(self.acc as u8);
        }
        self.out
    }
}

/// LSB-first bit reader; [`BitReader::finish`] enforces that the stream
/// was consumed exactly (any padding bits must be zero).
struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(buf: &'a [u8]) -> BitReader<'a> {
        BitReader { buf, pos: 0, acc: 0, nbits: 0 }
    }

    fn take(&mut self, n: u32) -> Result<u64> {
        debug_assert!(n <= 64);
        let lo = n.min(32);
        let low = self.take_small(lo)?;
        if n > 32 {
            Ok(low | (self.take_small(n - 32)? << 32))
        } else {
            Ok(low)
        }
    }

    fn take_small(&mut self, n: u32) -> Result<u64> {
        if self.nbits < n {
            // Bulk refill: one unaligned 4-byte load instead of up to four
            // byte loops — refills dominate when every value carries bits.
            if let Some(word) = self.buf.get(self.pos..self.pos + 4) {
                let w = u32::from_le_bytes(word.try_into().expect("4-byte slice"));
                let bytes = (63 - self.nbits) / 8;
                let take = bytes.min(4);
                self.acc |= ((w as u64) & low_mask(take * 8)) << self.nbits;
                self.pos += take as usize;
                self.nbits += take * 8;
            }
            while self.nbits < n {
                let Some(&b) = self.buf.get(self.pos) else {
                    return Err(StorageError::Corrupt("codec bit stream truncated".into()));
                };
                self.acc |= (b as u64) << self.nbits;
                self.pos += 1;
                self.nbits += 8;
            }
        }
        let v = self.acc & low_mask(n);
        self.acc >>= n;
        self.nbits -= n;
        Ok(v)
    }

    fn finish(self) -> Result<()> {
        if self.pos != self.buf.len() || self.acc != 0 {
            return Err(StorageError::Corrupt("codec bit stream has trailing data".into()));
        }
        Ok(())
    }
}

fn low_mask(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

// ------------------------------------------------------- array codecs

/// Exact on-disk size of a raw (v3) packed-array section. Saturates on
/// absurd lengths (only reachable from crafted input — decoders compare
/// this against the footer's bounded `uncompressed`, so a saturated value
/// simply fails that comparison).
pub(crate) fn raw_section_len(width: u8, len: u64) -> u64 {
    let words = if width == 0 { 0 } else { len.div_ceil((64 / width as u64).max(1)) };
    words.saturating_mul(8).saturating_add(9)
}

fn raw_section(packed: &BitPacked) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + packed.packed_bytes());
    out.push(packed.width());
    out.extend_from_slice(&(packed.len() as u64).to_le_bytes());
    for w in packed.words() {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

/// Encode a packed array with the smallest applicable codec. Ties prefer
/// `Raw < Delta < Ans`, so a codec is only ever chosen when it is
/// *strictly* smaller than raw — which the v4 footer validation relies on.
pub(crate) fn encode_array(packed: &BitPacked) -> (Codec, Vec<u8>) {
    let mut best = (Codec::Raw, raw_section(packed));
    let values = packed.to_vec();
    if let Some(d) = encode_delta(&values, packed.width()) {
        if d.len() < best.1.len() {
            best = (Codec::Delta, d);
        }
    }
    if let Some(a) = encode_ans(&values, packed.width()) {
        if a.len() < best.1.len() {
            best = (Codec::Ans, a);
        }
    }
    best
}

/// Decode a codec-transformed array section (the whole of `buf`), given
/// the raw section size the footer promised — checked *before* any
/// allocation or decode loop so a corrupt length cannot balloon work.
pub(crate) fn decode_array(codec: Codec, buf: &[u8], expected_raw: u64) -> Result<BitPacked> {
    match codec {
        Codec::Raw => Err(StorageError::Corrupt("raw sections decode on the v3 path".into())),
        Codec::Delta => decode_delta(buf, expected_raw),
        Codec::Ans => decode_ans(buf, expected_raw),
    }
}

/// Class symbol for one delta: `2 * bits(|d|) + sign`. Carrying the sign
/// in the rANS alphabet instead of a zigzag bit lets the entropy coder
/// learn sign skew — on a sorted-per-user time column nearly every delta
/// is non-negative, so the sign costs ~0 bits instead of 1 per value.
fn delta_sym(d: i64) -> (u16, u64) {
    let mag = d.unsigned_abs();
    ((bits_for(mag) as u16) << 1 | (d < 0) as u16, mag)
}

const DELTA_MAX_SYM: u16 = 64 << 1 | 1;

/// Delta codec: `width u8 | len u64 | first u64 | class table |
/// class_stream_len u32 | class stream | offset bits`. The `first` field
/// is present for `len >= 1`, everything after it for `len >= 2`. The
/// class alphabet is `(magnitude bit-length, sign)` pairs; a magnitude's
/// sub-top bits go to the offset stream verbatim.
pub(crate) fn encode_delta(values: &[u64], width: u8) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    out.push(width);
    out.extend_from_slice(&(values.len() as u64).to_le_bytes());
    let Some((&first, rest)) = values.split_first() else { return Some(out) };
    out.extend_from_slice(&first.to_le_bytes());
    if rest.is_empty() {
        return Some(out);
    }
    let mut mags = Vec::with_capacity(rest.len());
    let mut class_counts = [0u64; DELTA_MAX_SYM as usize + 1];
    let mut prev = first;
    for &v in rest {
        let (sym, mag) = delta_sym(v.wrapping_sub(prev) as i64);
        class_counts[sym as usize] += 1;
        mags.push((sym, mag));
        prev = v;
    }
    let syms: Vec<u16> = (0..=DELTA_MAX_SYM).filter(|&c| class_counts[c as usize] > 0).collect();
    let counts: Vec<u64> = syms.iter().map(|&c| class_counts[c as usize]).collect();
    let table = FreqTable::build(syms, &counts);
    let index_of = |sym: u16| table.syms.binary_search(&sym).unwrap();
    let indices: Vec<usize> = mags.iter().map(|&(sym, _)| index_of(sym)).collect();
    let class_stream = rans_encode(&indices, &table);

    table.write(&mut out);
    out.extend_from_slice(&(class_stream.len() as u32).to_le_bytes());
    out.extend_from_slice(&class_stream);
    let mut bits = BitWriter::default();
    for &(sym, mag) in &mags {
        let k = (sym >> 1) as u32;
        if k >= 2 {
            bits.put(mag & low_mask(k - 1), k - 1);
        }
    }
    out.extend_from_slice(&bits.finish());
    Some(out)
}

pub(crate) fn decode_delta(buf: &[u8], expected_raw: u64) -> Result<BitPacked> {
    let mut buf = buf;
    let width = take_u8(&mut buf)?;
    if width > 64 {
        return Err(StorageError::Corrupt(format!("bad bit width {width}")));
    }
    let len = take_u64(&mut buf)?;
    if raw_section_len(width, len) != expected_raw {
        return Err(StorageError::Corrupt(format!(
            "delta section declares {len} x {width}-bit values, which contradicts the footer's \
             uncompressed size"
        )));
    }
    let fits = |v: u64| width == 64 || v < (1u64 << width);
    if len == 0 {
        expect_consumed(buf)?;
        return Ok(BitPacked::from_slice_with_width(&[], width));
    }
    let first = take_u64(&mut buf)?;
    if !fits(first) {
        return Err(StorageError::Corrupt("delta first value exceeds declared width".into()));
    }
    if len == 1 {
        expect_consumed(buf)?;
        return Ok(BitPacked::from_slice_with_width(&[first], width));
    }
    let table = FreqTable::read(&mut buf, DELTA_MAX_SYM)?;
    let class_stream_len = take_u32(&mut buf)? as usize;
    if class_stream_len > buf.len() {
        return Err(StorageError::Corrupt("delta class stream overruns blob".into()));
    }
    let (class_stream, offset_bytes) = buf.split_at(class_stream_len);
    // Fused rANS + offset-bit loop: decoding the class and its offset bits
    // in one pass avoids materializing the class array (measurably faster
    // on the time column, the largest blob in every file).
    if class_stream.len() < 4 {
        return Err(StorageError::Corrupt("rANS stream shorter than its state".into()));
    }
    let lut = table.slot_lut();
    let mut x =
        u32::from_le_bytes([class_stream[0], class_stream[1], class_stream[2], class_stream[3]]);
    let mut pos = 4usize;
    let mut bits = BitReader::new(offset_bytes);
    let mut values = Vec::with_capacity(len as usize);
    values.push(first);
    let mut prev = first;
    for _ in 1..len {
        let slot = x & (SCALE - 1);
        let e = lut[slot as usize];
        x = (e.freq as u32) * (x >> SCALE_BITS) + slot - e.cum;
        while x < RANS_L {
            let Some(&b) = class_stream.get(pos) else {
                return Err(StorageError::Corrupt("rANS stream truncated".into()));
            };
            x = (x << 8) | b as u32;
            pos += 1;
        }
        let k = (e.sym >> 1) as u32;
        let mag = match k {
            0 => 0,
            1 => 1,
            _ => (1u64 << (k - 1)) | bits.take(k - 1)?,
        };
        let d = if e.sym & 1 == 1 { mag.wrapping_neg() } else { mag };
        let v = prev.wrapping_add(d);
        if !fits(v) {
            return Err(StorageError::Corrupt("delta value exceeds declared width".into()));
        }
        values.push(v);
        prev = v;
    }
    if x != RANS_L || pos != class_stream.len() {
        return Err(StorageError::Corrupt("rANS stream does not round-trip".into()));
    }
    bits.finish()?;
    Ok(BitPacked::from_slice_with_width(&values, width))
}

/// ANS codec: `width u8 | len u64 | value table | rANS stream`. Applicable
/// when every value fits the 12-bit table alphabet.
pub(crate) fn encode_ans(values: &[u64], width: u8) -> Option<Vec<u8>> {
    if values.is_empty() || values.iter().any(|&v| v >= SCALE as u64) {
        return None;
    }
    let mut counts = [0u64; SCALE as usize];
    for &v in values {
        counts[v as usize] += 1;
    }
    let syms: Vec<u16> = (0..SCALE as u16).filter(|&v| counts[v as usize] > 0).collect();
    let sym_counts: Vec<u64> = syms.iter().map(|&v| counts[v as usize]).collect();
    let mut index_of = [0u16; SCALE as usize];
    for (i, &v) in syms.iter().enumerate() {
        index_of[v as usize] = i as u16;
    }
    let table = FreqTable::build(syms, &sym_counts);
    let indices: Vec<usize> = values.iter().map(|&v| index_of[v as usize] as usize).collect();
    let stream = rans_encode(&indices, &table);

    let mut out = Vec::with_capacity(9 + 2 + 4 * table.syms.len() + stream.len());
    out.push(width);
    out.extend_from_slice(&(values.len() as u64).to_le_bytes());
    table.write(&mut out);
    out.extend_from_slice(&stream);
    Some(out)
}

pub(crate) fn decode_ans(buf: &[u8], expected_raw: u64) -> Result<BitPacked> {
    let mut buf = buf;
    let width = take_u8(&mut buf)?;
    if width > 64 {
        return Err(StorageError::Corrupt(format!("bad bit width {width}")));
    }
    let len = take_u64(&mut buf)?;
    if len == 0 || raw_section_len(width, len) != expected_raw {
        return Err(StorageError::Corrupt(format!(
            "ANS section declares {len} x {width}-bit values, which contradicts the footer's \
             uncompressed size"
        )));
    }
    let table = FreqTable::read(&mut buf, SCALE as u16 - 1)?;
    if let Some(&top) = table.syms.last() {
        if !(width == 64 || (top as u64) < (1u64 << width)) {
            return Err(StorageError::Corrupt("ANS symbol exceeds declared width".into()));
        }
    }
    let symbols = rans_decode(buf, len as usize, &table)?;
    let values: Vec<u64> = symbols.iter().map(|&s| s as u64).collect();
    Ok(BitPacked::from_slice_with_width(&values, width))
}

// ------------------------------------------------------- byte readers

fn take_u8(buf: &mut &[u8]) -> Result<u8> {
    let (&b, rest) =
        buf.split_first().ok_or_else(|| StorageError::Corrupt("codec section truncated".into()))?;
    *buf = rest;
    Ok(b)
}

fn take_bytes<const N: usize>(buf: &mut &[u8]) -> Result<[u8; N]> {
    if buf.len() < N {
        return Err(StorageError::Corrupt("codec section truncated".into()));
    }
    let (head, rest) = buf.split_at(N);
    *buf = rest;
    Ok(head.try_into().expect("split_at guarantees N bytes"))
}

fn take_u16(buf: &mut &[u8]) -> Result<u16> {
    Ok(u16::from_le_bytes(take_bytes::<2>(buf)?))
}

fn take_u32(buf: &mut &[u8]) -> Result<u32> {
    Ok(u32::from_le_bytes(take_bytes::<4>(buf)?))
}

fn take_u64(buf: &mut &[u8]) -> Result<u64> {
    Ok(u64::from_le_bytes(take_bytes::<8>(buf)?))
}

fn expect_consumed(buf: &[u8]) -> Result<()> {
    if buf.is_empty() {
        Ok(())
    } else {
        Err(StorageError::Corrupt(format!("codec section has {} trailing bytes", buf.len())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn packed(values: &[u64]) -> BitPacked {
        BitPacked::from_slice(values)
    }

    fn roundtrip_delta(values: &[u64], width: u8) {
        let enc = encode_delta(values, width).expect("delta always encodes");
        let dec = decode_delta(&enc, raw_section_len(width, values.len() as u64)).expect("decodes");
        assert_eq!(dec.to_vec(), values);
        assert_eq!(dec.width(), width);
    }

    fn roundtrip_ans(values: &[u64], width: u8) -> bool {
        let Some(enc) = encode_ans(values, width) else { return false };
        let dec = decode_ans(&enc, raw_section_len(width, values.len() as u64)).expect("decodes");
        assert_eq!(dec.to_vec(), values);
        assert_eq!(dec.width(), width);
        true
    }

    #[test]
    fn delta_roundtrips_edge_shapes() {
        roundtrip_delta(&[], 7);
        roundtrip_delta(&[], 0);
        roundtrip_delta(&[42], 6);
        roundtrip_delta(&[0, 0, 0], 0);
        roundtrip_delta(&[5, 5, 5, 5], 3);
        roundtrip_delta(&[u64::MAX, 0, u64::MAX, 1], 64);
        roundtrip_delta(&(0..1000u64).collect::<Vec<_>>(), 10);
        let sawtooth: Vec<u64> = (0..500u64).map(|i| (i % 97) * 31).collect();
        roundtrip_delta(&sawtooth, 12);
    }

    #[test]
    fn ans_roundtrips_edge_shapes() {
        assert!(!roundtrip_ans(&[], 1), "empty arrays are not ANS-applicable");
        assert!(roundtrip_ans(&[3], 2));
        assert!(roundtrip_ans(&[0, 0, 0, 0], 0));
        assert!(roundtrip_ans(&[4095; 10], 12));
        assert!(!roundtrip_ans(&[4096], 13), "alphabet must stay below the table size");
        let skewed: Vec<u64> = (0..2000u64).map(|i| if i % 17 == 0 { i % 7 } else { 0 }).collect();
        assert!(roundtrip_ans(&skewed, 3));
    }

    #[test]
    fn ans_beats_raw_on_skewed_data() {
        // 10K values, 95% zeros: rANS should land near the ~0.3-bit
        // entropy, far below the 3-bit packed representation.
        let values: Vec<u64> =
            (0..10_000u64).map(|i| if i % 20 == 0 { 1 + i % 7 } else { 0 }).collect();
        let p = packed(&values);
        let (codec, bytes) = encode_array(&p);
        assert_eq!(codec, Codec::Ans);
        assert!(
            bytes.len() * 4 < raw_section_len(p.width(), p.len() as u64) as usize,
            "expected >=4x on 95%-constant data, got {} of {}",
            bytes.len(),
            raw_section_len(p.width(), p.len() as u64)
        );
    }

    #[test]
    fn delta_beats_raw_on_sorted_data() {
        let values: Vec<u64> = (0..5_000u64).map(|i| 1_700_000_000 + i * 13 + (i % 5)).collect();
        let p = packed(&values);
        let (codec, bytes) = encode_array(&p);
        assert_eq!(codec, Codec::Delta);
        assert!(bytes.len() * 2 < raw_section_len(p.width(), p.len() as u64) as usize);
    }

    #[test]
    fn selection_prefers_raw_on_ties_and_tiny_arrays() {
        // Tiny arrays: the table + state overhead always loses to raw.
        let (codec, bytes) = encode_array(&packed(&[9, 3]));
        assert_eq!(codec, Codec::Raw);
        assert_eq!(bytes, raw_section(&packed(&[9, 3])));
    }

    #[test]
    fn selection_is_deterministic() {
        let values: Vec<u64> = (0..3_000u64).map(|i| (i * 2654435761) % 4096).collect();
        let p = packed(&values);
        let a = encode_array(&p);
        let b = encode_array(&p);
        assert_eq!(a, b);
    }

    #[test]
    fn decode_rejects_truncation_and_tampering() {
        let values: Vec<u64> = (0..400u64).map(|i| i * 3).collect();
        let enc = encode_delta(&values, 11).unwrap();
        let raw = raw_section_len(11, 400);
        for cut in [1, 4, 9, 12, enc.len() / 2, enc.len() - 1] {
            assert!(decode_delta(&enc[..cut], raw).is_err(), "truncation at {cut} accepted");
        }
        // Flip a byte in every region (header, table, streams): decode must
        // either reject it or at minimum never panic.
        for i in 0..enc.len() {
            let mut bad = enc.clone();
            bad[i] ^= 0x5a;
            let _ = decode_delta(&bad, raw);
        }
        // A declared length that disagrees with the footer's raw size.
        assert!(decode_delta(&enc, raw + 8).is_err());

        let ans = encode_ans(&values, 11).unwrap();
        for cut in [1, 4, 9, 11, ans.len() - 1] {
            assert!(decode_ans(&ans[..cut], raw).is_err());
        }
        for i in 0..ans.len() {
            let mut bad = ans.clone();
            bad[i] ^= 0x5a;
            let _ = decode_ans(&bad, raw);
        }
    }

    #[test]
    fn freq_normalization_is_exact_and_minimum_one() {
        for counts in [
            vec![1u64],
            vec![1, 1],
            vec![1_000_000, 1],
            vec![1; 4096],
            (1..=100u64).collect::<Vec<_>>(),
        ] {
            let freqs = normalize_freqs(&counts);
            assert_eq!(freqs.iter().map(|&f| f as u32).sum::<u32>(), SCALE);
            assert!(freqs.iter().all(|&f| f >= 1));
        }
    }

    proptest! {
        #[test]
        fn prop_delta_roundtrips(values in prop::collection::vec(any::<u64>(), 0..300)) {
            let max = values.iter().copied().max().unwrap_or(0);
            roundtrip_delta(&values, bits_for(max));
        }

        #[test]
        fn prop_delta_roundtrips_small_widths(
            raw in prop::collection::vec(0u64..64, 0..300),
            width in 6u8..=12,
        ) {
            roundtrip_delta(&raw, width);
        }

        #[test]
        fn prop_ans_roundtrips(values in prop::collection::vec(0u64..4096, 1..300)) {
            let max = values.iter().copied().max().unwrap_or(0);
            prop_assert!(roundtrip_ans(&values, bits_for(max).max(1)));
        }

        #[test]
        fn prop_selection_roundtrips_through_chosen_codec(
            values in prop::collection::vec(0u64..5000, 0..400),
        ) {
            let p = packed(&values);
            let (codec, bytes) = encode_array(&p);
            let raw = raw_section_len(p.width(), p.len() as u64);
            prop_assert!(bytes.len() as u64 <= raw);
            match codec {
                Codec::Raw => prop_assert_eq!(&bytes, &raw_section(&p)),
                _ => {
                    let dec = decode_array(codec, &bytes, raw).unwrap();
                    prop_assert_eq!(dec, p);
                }
            }
        }

        #[test]
        fn prop_decode_never_panics_on_garbage(
            bytes in prop::collection::vec(any::<u8>(), 0..200),
            raw in 0u64..100_000,
        ) {
            let _ = decode_delta(&bytes, raw);
            let _ = decode_ans(&bytes, raw);
        }
    }
}
